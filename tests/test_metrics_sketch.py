"""Tests for the streaming metrics plane: sketches, recorder modes,
the shared-memory result channel, and sketch-mode sweep points."""

import math
import os
import pickle
import random
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExperimentError
from repro.experiments import shm_channel
from repro.experiments.common import ClusterConfig, run_point
from repro.experiments.executor import SweepExecutor
from repro.metrics.latency import LatencyRecorder, percentile
from repro.metrics.sketch import RELATIVE_ERROR, LatencySketch
from repro.metrics.sweep import LoadPoint, SweepResult
from repro.sim.units import ms


# ----------------------------------------------------------------------
# Sample-set strategies: the shapes the sketch meets in practice.
# ----------------------------------------------------------------------
def _exp_samples(rng: random.Random, n: int):
    return [int(rng.expovariate(1.0) * 25_000) + 1 for _ in range(n)]


def _bimodal_samples(rng: random.Random, n: int):
    return [
        int(rng.expovariate(1.0) * (250_000 if rng.random() < 0.1 else 25_000)) + 1
        for _ in range(n)
    ]


def _mmpp_samples(rng: random.Random, n: int):
    from repro.workloads.mmpp import MmppArrivals

    process = MmppArrivals(rng, rate_rps=40_000.0, burst=8.0)
    return [process.next_gap() for _ in range(n)]


_SHAPES = {"exp": _exp_samples, "bimodal": _bimodal_samples, "mmpp": _mmpp_samples}


@given(
    shape=st.sampled_from(sorted(_SHAPES)),
    seed=st.integers(min_value=0, max_value=2**31),
    n=st.integers(min_value=1, max_value=4000),
    q=st.sampled_from([0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0]),
)
@settings(max_examples=60, deadline=None)
def test_property_sketch_quantile_within_relative_error(shape, seed, n, q):
    samples = _SHAPES[shape](random.Random(seed), n)
    sketch = LatencySketch()
    sketch.add_many(samples)
    exact = percentile(samples, q)
    assert abs(sketch.quantile(q) - exact) <= RELATIVE_ERROR * exact + 1e-9


@given(
    a=st.lists(st.integers(min_value=0, max_value=10**12), max_size=300),
    b=st.lists(st.integers(min_value=0, max_value=10**12), max_size=300),
    c=st.lists(st.integers(min_value=0, max_value=10**12), max_size=300),
)
@settings(max_examples=60, deadline=None)
def test_property_merge_is_associative_and_matches_union(a, b, c):
    def sketch_of(*sample_lists):
        sketch = LatencySketch()
        for samples in sample_lists:
            sketch.add_many(samples)
        return sketch

    left = sketch_of(a)
    left.merge(sketch_of(b))
    left.merge(sketch_of(c))
    bc = sketch_of(b)
    bc.merge(sketch_of(c))
    right = sketch_of(a)
    right.merge(bc)
    union = sketch_of(a, b, c)
    assert left == right == union


@given(st.lists(st.integers(min_value=0, max_value=10**12), max_size=500))
@settings(max_examples=60, deadline=None)
def test_property_serialization_round_trip(samples):
    sketch = LatencySketch()
    sketch.add_many(samples)
    clone = LatencySketch.from_bytes(sketch.to_bytes())
    assert clone == sketch
    if samples:
        assert clone.quantile(99) == sketch.quantile(99)


def test_add_and_add_many_are_bit_identical():
    rng = random.Random(5)
    samples = _bimodal_samples(rng, 3000) + [0, 0, 1]
    one = LatencySketch()
    for value in samples:
        one.add(value)
    many = LatencySketch()
    many.add_many(np.asarray(samples, dtype=np.int64))
    assert one == many
    assert one.to_bytes() == many.to_bytes()


def test_sketch_tracks_exact_min_max_sum():
    sketch = LatencySketch()
    sketch.add_many([7, 300, 12_345])
    assert sketch.min == 7.0
    assert sketch.max == 12_345.0
    assert sketch.sum == 7 + 300 + 12_345
    assert abs(sketch.quantile(0) - 7.0) <= RELATIVE_ERROR * 7.0
    assert abs(sketch.quantile(100) - 12_345.0) <= RELATIVE_ERROR * 12_345.0


def test_sketch_empty_quantile_is_nan_and_bad_inputs_raise():
    sketch = LatencySketch()
    assert math.isnan(sketch.quantile(99))
    with pytest.raises(ExperimentError):
        sketch.quantile(101)
    with pytest.raises(ExperimentError):
        LatencySketch(relative_error=0.0)
    with pytest.raises(ExperimentError):
        LatencySketch.from_bytes(b"nope")
    with pytest.raises(ExperimentError):
        sketch.merge(LatencySketch(relative_error=0.05))
    with pytest.raises(ExperimentError):
        sketch.merge("not a sketch")


def test_sketch_payload_is_compact():
    sketch = LatencySketch()
    sketch.add_many(_exp_samples(random.Random(1), 20_000))
    payload = sketch.to_bytes()
    assert len(payload) * 10 <= 20_000 * 8  # >=10x under the raw array
    assert LatencySketch.from_bytes(payload) == sketch


# ----------------------------------------------------------------------
# Recorder backends
# ----------------------------------------------------------------------
def _fill(recorder: LatencyRecorder, samples) -> None:
    for latency in samples:
        recorder.record(send_time_ns=1000, done_time_ns=1000 + latency)


def test_recorder_modes_agree_within_sketch_error():
    samples = _bimodal_samples(random.Random(9), 5000)
    exact = LatencyRecorder(mode="exact")
    sketch = LatencyRecorder(mode="sketch")
    _fill(exact, samples)
    _fill(sketch, samples)
    assert len(exact) == len(sketch) == len(samples)
    assert sketch.latencies_ns is None  # sketch mode stores no samples
    assert exact.mean_us() == sketch.mean_us()  # mean is exact in both
    for q in (50.0, 99.0, 99.9):
        reference = exact.percentile_ns(q)
        assert abs(sketch.percentile_ns(q) - reference) <= RELATIVE_ERROR * reference
    assert exact.sketch_bytes() is None
    assert sketch.sketch_bytes() == sketch.sketch.to_bytes()
    # Payloads: O(requests) vs O(buckets) — the gap widens with n; the
    # 10x-at-10M contract is policed by benchmarks/bench_metrics.py.
    assert len(sketch.result_payload()) < len(exact.result_payload())


def test_recorder_empty_is_nan_in_both_modes():
    for mode in ("exact", "sketch"):
        recorder = LatencyRecorder(mode=mode)
        assert math.isnan(recorder.p50_us())
        assert math.isnan(recorder.p99_us())
        assert math.isnan(recorder.p999_us())
        assert math.isnan(recorder.mean_us())


def test_recorder_merge_rules():
    samples_a = _exp_samples(random.Random(1), 500)
    samples_b = _exp_samples(random.Random(2), 700)
    exact_a = LatencyRecorder(mode="exact")
    exact_b = LatencyRecorder(mode="exact")
    _fill(exact_a, samples_a)
    _fill(exact_b, samples_b)
    exact_a.merge(exact_b)
    assert len(exact_a) == 1200

    sketch = LatencyRecorder(mode="sketch")
    _fill(sketch, samples_a)
    sketch.merge(exact_b)  # sketch absorbs exact samples
    assert len(sketch) == 1200
    both = LatencySketch()
    both.add_many(samples_a)
    both.add_many(samples_b)
    assert sketch.sketch == both

    other_sketch = LatencyRecorder(mode="sketch")
    _fill(other_sketch, samples_b)
    merged = LatencyRecorder(mode="sketch")
    _fill(merged, samples_a)
    merged.merge(other_sketch)
    assert len(merged) == 1200

    exact = LatencyRecorder(mode="exact")
    with pytest.raises(ExperimentError):
        exact.merge(other_sketch)  # raw samples no longer exist

    with pytest.raises(ExperimentError):
        LatencyRecorder(mode="histogram")


def test_recorder_mean_needs_no_numpy_materialisation():
    recorder = LatencyRecorder(mode="exact")
    _fill(recorder, [1000, 2000, 3000])
    assert recorder.mean_us() == pytest.approx(2.0)
    sketch = LatencyRecorder(mode="sketch")
    _fill(sketch, [1000, 2000, 3000])
    assert sketch.mean_us() == pytest.approx(2.0)


# ----------------------------------------------------------------------
# LoadPoint / SweepResult sketch plumbing
# ----------------------------------------------------------------------
def _point_with_sketch(samples) -> LoadPoint:
    sketch = LatencySketch()
    sketch.add_many(samples)
    return LoadPoint(
        offered_rps=1.0,
        throughput_rps=1.0,
        p50_us=0.0,
        p99_us=0.0,
        p999_us=0.0,
        mean_us=0.0,
        samples=len(samples),
        latency_sketch=sketch.to_bytes(),
    )


def test_sweep_result_merges_point_sketches():
    shard_a = _exp_samples(random.Random(3), 800)
    shard_b = _exp_samples(random.Random(4), 900)
    sweep = SweepResult(scheme="netclone", workload="exp")
    sweep.add(_point_with_sketch(shard_a))
    sweep.add(_point_with_sketch(shard_b))
    merged = sweep.merged_sketch()
    union = LatencySketch()
    union.add_many(shard_a + shard_b)
    assert merged == union
    # A mixed exact/sketch series refuses to pretend it merged.
    exact_point = replace(sweep.points[0], latency_sketch=None)
    assert exact_point.sketch() is None
    sweep.add(exact_point)
    assert sweep.merged_sketch() is None


# ----------------------------------------------------------------------
# Shared-memory result channel
# ----------------------------------------------------------------------
def test_shm_channel_round_trip_and_passthrough():
    if not shm_channel.available():
        pytest.skip("shared memory unavailable on this platform")
    payload = {"point": list(range(100)), "tag": "x"}
    ref = shm_channel.write_result(payload)
    with shm_channel.ShmReader() as reader:
        if isinstance(ref, shm_channel.ShmRef):
            assert len(pickle.dumps(ref)) < 200  # pipe traffic is O(1)
        assert reader.resolve(ref) == payload
        assert reader.resolve("plain") == "plain"  # non-refs pass through
        assert reader.resolve_all(["a", 1]) == ["a", 1]


def test_shm_channel_env_gate(monkeypatch):
    monkeypatch.setenv("REPRO_SHM_RESULTS", "0")
    monkeypatch.setattr(shm_channel, "_AVAILABLE", None)
    assert not shm_channel.available()
    assert shm_channel.write_result({"x": 1}) == {"x": 1}
    monkeypatch.setattr(shm_channel, "_AVAILABLE", None)


# ----------------------------------------------------------------------
# Sketch-mode sweep points, serial and pooled
# ----------------------------------------------------------------------
def _tiny_config(**overrides) -> ClusterConfig:
    base = dict(
        scheme="netclone",
        num_servers=4,
        num_clients=2,
        rate_rps=30_000,
        warmup_ns=ms(1),
        measure_ns=ms(4),
        drain_ns=ms(1),
        seed=11,
    )
    base.update(overrides)
    return ClusterConfig(**base)


def test_run_point_sketch_mode_attaches_sketch_and_matches_exact():
    exact = run_point(_tiny_config(metrics="exact"))
    sketched = run_point(_tiny_config(metrics="sketch"))
    assert exact.latency_sketch is None
    assert sketched.latency_sketch is not None
    sketch = sketched.sketch()
    assert sketch.count == sketched.samples == exact.samples
    # Same simulated trajectory; only the percentile backend differs.
    assert sketched.mean_us == exact.mean_us
    for attribute in ("p50_us", "p99_us", "p999_us"):
        reference = getattr(exact, attribute)
        assert abs(getattr(sketched, attribute) - reference) <= (
            RELATIVE_ERROR * reference
        )


def test_config_rejects_unknown_metrics_mode():
    with pytest.raises(ExperimentError):
        _tiny_config(metrics="histogram")


@pytest.mark.slow
def test_sketch_points_identical_across_jobs_and_channels(monkeypatch):
    configs = [
        _tiny_config(metrics="sketch", rate_rps=rate) for rate in (20_000, 35_000)
    ]
    serial = SweepExecutor(jobs=1).run_points(configs)
    pooled = SweepExecutor(jobs=2).run_points(configs)
    assert [p.latency_sketch for p in serial] == [p.latency_sketch for p in pooled]
    assert [p.p99_us for p in serial] == [p.p99_us for p in pooled]
    # Same again with the shm channel forced off: transport-independent.
    monkeypatch.setenv("REPRO_SHM_RESULTS", "0")
    monkeypatch.setattr(shm_channel, "_AVAILABLE", None)
    piped = SweepExecutor(jobs=2).run_points(configs)
    assert [p.latency_sketch for p in piped] == [p.latency_sketch for p in serial]
