"""Open-loop measurement client.

Mirrors the paper's client application (§4.2): an open-loop generator
whose inter-arrival times are exponentially distributed around a
target rate, with sender and receiver sharing one host.  The client
records the latency of the *first* response per request and counts any
further (redundant) responses separately — that count is exactly what
response filtering is supposed to keep at zero.

Subclasses implement :meth:`build_packets` — the only thing that
differs between Baseline, C-Clone, LÆDGE and NetClone clients.

Arrival generation is batched: instead of one RNG call + payload
object + reschedule per request, the client pre-draws whole arrival
records (request payload, packets, next gap) in chunks of
``ARRIVAL_CHUNK`` and consumes them index-wise.  The draws come from
the same per-client RNG streams in the same order as the per-call
code path, so simulated trajectories are bit-identical — only the
Python-level bookkeeping is amortised.  Subclasses whose
``build_packets`` reads simulation time or live client state (and so
cannot be evaluated early) opt out with ``ARRIVAL_PREDRAW = False``.
"""

from __future__ import annotations

import random
from heapq import heappush
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ExperimentError
from repro.metrics.latency import LatencyRecorder
from repro.net.host import Host
from repro.net.packet import PROTO_UDP, Packet, PacketPool
from repro.sim.core import Simulator

__all__ = ["OpenLoopClient"]


class OpenLoopClient(Host):
    """Generates requests at a fixed average rate and measures latency."""

    #: Whether arrival records may be pre-drawn ahead of simulated time.
    #: Requires ``build_packets`` to depend only on the client RNG and
    #: static configuration — never on ``sim.now`` or live state.
    ARRIVAL_PREDRAW = True
    #: Arrival records drawn per refill.
    ARRIVAL_CHUNK = 64

    def __init__(
        self,
        sim: Simulator,
        name: str,
        ip: int,
        client_id: int,
        workload: Any,
        rate_rps: float,
        recorder: LatencyRecorder,
        rng: random.Random,
        stop_at_ns: Optional[int] = None,
        tx_cost_ns: int = 700,
        rx_cost_ns: int = 300,
        rx_queue_limit: int = 4096,
        packet_pool: Optional[PacketPool] = None,
        arrival_process: Optional[Any] = None,
    ):
        super().__init__(
            sim,
            name,
            ip,
            tx_cost_ns=tx_cost_ns,
            rx_cost_ns=rx_cost_ns,
            rx_queue_limit=rx_queue_limit,
        )
        if rate_rps <= 0:
            raise ExperimentError("client rate must be positive")
        self.client_id = client_id
        self.workload = workload
        self.rate_rps = rate_rps
        self.recorder = recorder
        self.rng = rng
        self.stop_at_ns = stop_at_ns
        self.packet_pool = packet_pool
        #: Optional open-loop modulation (MMPP bursts, diurnal waves):
        #: an object with ``next_gap() -> int ns`` (and optionally
        #: ``set_rate``).  ``None`` keeps the plain exponential gaps —
        #: draw-for-draw identical to the historical client.
        self.arrival_process = arrival_process
        self._mean_gap_ns = 1e9 / rate_rps
        #: Sequence number of the last request actually sent.
        self._seq = 0
        #: High-water mark of pre-drawn sequence numbers (>= ``_seq``).
        self._predrawn_seq = 0
        self._outstanding: Dict[int, int] = {}
        #: Pre-drawn (seq, request, packets, gap) records and read cursor.
        self._arrivals: List[Optional[Tuple[int, Any, List[Packet], int]]] = []
        self._arrival_idx = 0
        self.redundant_responses = 0
        self.responses_received = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the open-loop arrival process."""
        self.sim.call_after(self._next_gap(), self._send_one)

    def _next_gap(self) -> int:
        if self.arrival_process is not None:
            return self.arrival_process.next_gap()
        return int(self.rng.expovariate(1.0) * self._mean_gap_ns) + 1

    def set_rate(self, rate_rps: float) -> None:
        """Change the offered rate mid-run (load-surge drills).

        Pre-drawn arrival records carry gaps drawn at the old rate, so
        they are flushed (their packets go back to the pool) and the
        flushed sequence numbers are re-drawn at the new rate.  The one
        gap already on the event queue still reflects the old rate —
        the first post-change arrival is where the new rate takes hold,
        exactly as if the operator had reconfigured a live generator.
        """
        if rate_rps <= 0:
            raise ExperimentError("client rate must be positive")
        self.rate_rps = rate_rps
        self._mean_gap_ns = 1e9 / rate_rps
        if self.arrival_process is not None:
            set_rate = getattr(self.arrival_process, "set_rate", None)
            if set_rate is not None:
                set_rate(rate_rps)
        if self.ARRIVAL_PREDRAW:
            self._flush_arrivals()

    def _new_packet(
        self,
        src: int,
        dst: int,
        sport: int,
        dport: int,
        size: int,
        payload: Any = None,
        nc: Optional[Any] = None,
        proto: int = PROTO_UDP,
    ) -> Packet:
        """Build one outbound packet, recycling through the pool if set."""
        pool = self.packet_pool
        if pool is not None:
            return pool.acquire(
                src, dst, sport, dport, size, payload=payload, nc=nc, proto=proto
            )
        return Packet(src, dst, sport, dport, size, payload=payload, nc=nc, proto=proto)

    def _refill_arrivals(self) -> None:
        """Pre-draw the next chunk of arrival records.

        Draw order per request matches the per-call path exactly —
        request payload (workload stream), then packets, then gap
        (client stream) — so both RNG streams stay bit-identical; only
        *when* the draws happen (in batches, ahead of simulated time)
        changes, which no draw depends on.
        """
        chunk = self.ARRIVAL_CHUNK
        seq = self._predrawn_seq
        make_chunk = getattr(self.workload, "make_request_chunk", None)
        if make_chunk is not None:
            requests = make_chunk(self.client_id, seq + 1, chunk)
        else:
            requests = [
                self.workload.make_request(self.client_id, seq + 1 + i)
                for i in range(chunk)
            ]
        buf: List[Optional[Tuple[int, Any, List[Packet], int]]] = []
        for request in requests:
            seq += 1
            buf.append((seq, request, self.build_packets(request), self._next_gap()))
        self._predrawn_seq = seq
        self._arrivals = buf
        self._arrival_idx = 0

    def flush_predrawn(self) -> None:
        """Release any pre-drawn, unsent arrival packets to the pool.

        Drain-time bookkeeping for harnesses (scenario runner, the
        ``REPRO_SANITIZE`` ledgers): packets sitting in the pre-draw
        buffer are held legitimately and must not count as leaks.
        """
        self._flush_arrivals()

    def _flush_arrivals(self) -> None:
        """Discard pre-drawn arrivals (their packets go back to the pool).

        Used when a control-plane update invalidates pre-built packets
        (e.g. a new group table): the records were drawn against state
        that no longer exists, so they must not reach the wire.
        """
        for record in self._arrivals[self._arrival_idx:]:
            if record is None:
                continue
            for packet in record[2]:
                packet.release()
        self._arrivals = []
        self._arrival_idx = 0
        # Flushed records were never sent, so their sequence numbers
        # are free again; re-drawing them keeps sent seqs contiguous.
        self._predrawn_seq = self._seq

    def _send_one(self) -> None:
        if self.stop_at_ns is not None and self.sim.now >= self.stop_at_ns:
            return
        if self.ARRIVAL_PREDRAW:
            idx = self._arrival_idx
            if idx >= len(self._arrivals):
                self._refill_arrivals()
                idx = 0
            record = self._arrivals[idx]
            self._arrivals[idx] = None  # the record's refs die with the send
            self._arrival_idx = idx + 1
            seq, request, packets, gap = record
            self._seq = seq
            send_time = self.sim.now
            self._outstanding[seq] = send_time
            self.recorder.note_sent(send_time)
            for packet in packets:
                packet.created_at = send_time
                self.send(packet)
            # Simulator.call_after push inlined (keep in sync with
            # sim/core.py) — pre-drawn gaps are non-negative ints.
            sim = self.sim
            when = sim.now + gap
            seq = sim._seq + 1
            sim._seq = seq
            tail = sim._tail
            if not tail or when >= tail[-1][0]:
                tail.append((when, seq, self._send_one, ()))
            else:
                heappush(sim._heap, (when, seq, self._send_one, ()))
            return
        # Per-call path for clients whose packet construction must see
        # live state (time-based hedging, retransmit bookkeeping, ...).
        self._seq += 1
        self._predrawn_seq = self._seq
        seq = self._seq
        request = self.workload.make_request(self.client_id, seq)
        send_time = self.sim.now
        self._outstanding[seq] = send_time
        self.recorder.note_sent(send_time)
        for packet in self.build_packets(request):
            packet.created_at = send_time
            self.send(packet)
        self.sim.call_after(self._next_gap(), self._send_one)

    # ------------------------------------------------------------------
    def build_packets(self, request: Any) -> List[Packet]:
        """Packets to emit for one request; scheme-specific."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def handle(self, packet: Packet) -> None:
        payload = packet.payload
        if payload is None or payload.client_id != self.client_id:
            packet.release()
            return
        self.responses_received += 1
        sent = self._outstanding.pop(payload.client_seq, None)
        if sent is None:
            # Second (redundant) response for an already-completed request.
            self.redundant_responses += 1
            packet.release()
            return
        self.recorder.record(sent, self.sim.now)
        packet.release()

    @property
    def outstanding(self) -> int:
        """Requests sent but not yet answered."""
        return len(self._outstanding)
