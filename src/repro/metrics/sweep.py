"""Load-sweep result containers.

Every throughput-latency figure in the paper is a sweep: offered load
on the x-axis (measured throughput, MRPS) and tail latency on the
y-axis.  :class:`LoadPoint` is one (scheme, load) measurement;
:class:`SweepResult` is a labelled series of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.sketch import LatencySketch

__all__ = ["LoadPoint", "SweepResult"]


@dataclass
class LoadPoint:
    """One measured operating point."""

    offered_rps: float
    throughput_rps: float
    p50_us: float
    p99_us: float
    p999_us: float
    mean_us: float
    samples: int
    extra: Dict[str, float] = field(default_factory=dict)
    #: Serialized :class:`~repro.metrics.sketch.LatencySketch` when the
    #: point was measured with ``metrics="sketch"`` — O(buckets) bytes,
    #: mergeable across points/shards; ``None`` in exact mode (where
    #: the scalar percentiles above are the whole story).
    latency_sketch: Optional[bytes] = None

    def sketch(self) -> Optional[LatencySketch]:
        """The point's latency sketch, deserialized (``None`` if exact)."""
        if self.latency_sketch is None:
            return None
        return LatencySketch.from_bytes(self.latency_sketch)

    @property
    def throughput_mrps(self) -> float:
        """Throughput in millions of requests per second."""
        return self.throughput_rps / 1e6

    def row(self) -> str:
        """One formatted table row."""
        return (
            f"{self.offered_rps / 1e6:8.3f} {self.throughput_mrps:10.3f} "
            f"{self.p50_us:9.1f} {self.p99_us:9.1f} {self.p999_us:10.1f}"
        )


@dataclass
class SweepResult:
    """A labelled series of load points (one curve in a figure)."""

    scheme: str
    workload: str
    points: List[LoadPoint] = field(default_factory=list)

    HEADER = (
        f"{'offered':>8} {'tput_MRPS':>10} {'p50_us':>9} {'p99_us':>9} {'p999_us':>10}"
    )

    def add(self, point: LoadPoint) -> None:
        """Append one measured point."""
        self.points.append(point)

    def max_throughput_mrps(self) -> float:
        """Highest measured throughput along the curve."""
        if not self.points:
            return float("nan")
        return max(point.throughput_mrps for point in self.points)

    def p99_at_load(self, offered_rps: float, tolerance: float = 0.3) -> float:
        """p99 at the point closest to *offered_rps* (nan if too far)."""
        if not self.points:
            return float("nan")
        best = min(self.points, key=lambda p: abs(p.offered_rps - offered_rps))
        if offered_rps > 0 and abs(best.offered_rps - offered_rps) / offered_rps > tolerance:
            return float("nan")
        return best.p99_us

    def merged_sketch(self) -> Optional[LatencySketch]:
        """One sketch folding every point's latency sketch together.

        ``None`` unless **every** point carries a sketch (mixing exact
        and sketch points would silently drop the exact samples).
        Useful for sharded runs of one operating point: quantiles of
        the merged sketch are quantiles of the union sample stream,
        within the sketch error bound.
        """
        if not self.points or any(p.latency_sketch is None for p in self.points):
            return None
        merged = self.points[0].sketch()
        for point in self.points[1:]:
            merged.merge(point.sketch())
        return merged

    def format(self) -> str:
        """Multi-line text table for this curve."""
        lines = [f"# {self.scheme} on {self.workload}", self.HEADER]
        lines.extend(point.row() for point in self.points)
        return "\n".join(lines)
