"""The worker server application (§4.2 server, §3.4 server-side rules).

One dispatcher thread (modelled by the NIC RX serialisation) feeds a
global FCFS request queue drained by ``num_workers`` worker threads.
NetClone-specific behaviour, both switchable for the baselines:

* **clone dropping** — a cloned request (``CLO == 2``) arriving while
  the queue is non-empty is dropped, because the tracked state that
  triggered the clone was stale (§3.4);
* **state piggybacking** — responses carry the current queue length in
  the STATE field (0 means idle; RackSched integration reads it as a
  queue length, plain NetClone as a binary state).

Execution jitter (the 15× slowdowns of §5.1.2) is applied per
*execution*, so the two sides of a cloned request draw independently —
that is the variability cloning masks.
"""

from __future__ import annotations

import random
from collections import deque
from heapq import heappush
from typing import Any, Deque, Optional

from repro.apps.service import ServiceModel
from repro.core.constants import (
    CLO_CLONED_COPY,
    MSG_REQ,
    MSG_RESP,
    NETCLONE_UDP_PORT,
)
from repro.errors import ExperimentError
from repro.net.host import Host
from repro.net.packet import PROTO_UDP, Packet
from repro.sim.core import Simulator
from repro.sim.monitor import Counter
from repro.workloads.distributions import JitterModel

__all__ = ["RpcServer"]


class RpcServer(Host):
    """A worker server with a dispatcher queue and worker threads."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        ip: int,
        server_id: int,
        service: ServiceModel,
        jitter: JitterModel,
        rng: random.Random,
        num_workers: int = 15,
        netclone_mode: bool = True,
        drop_stale_clones: bool = True,
        reply_to_ip: Optional[int] = None,
        tx_cost_ns: int = 700,
        rx_cost_ns: int = 500,
        rx_queue_limit: int = 16384,
        packet_pool: Optional[Any] = None,
    ):
        super().__init__(
            sim,
            name,
            ip,
            tx_cost_ns=tx_cost_ns,
            rx_cost_ns=rx_cost_ns,
            rx_queue_limit=rx_queue_limit,
        )
        if num_workers <= 0:
            raise ExperimentError("server needs at least one worker thread")
        self.server_id = server_id
        self.service = service
        self.jitter = jitter
        self.rng = rng
        self.num_workers = num_workers
        #: NetClone mode: drop stale clones, piggyback state.
        self.netclone_mode = netclone_mode
        #: The §3.4 stale-clone drop; disable for the ablation bench.
        self.drop_stale_clones = drop_stale_clones
        #: LÆDGE routes responses through the coordinator.
        self.reply_to_ip = reply_to_ip
        #: Pool to recycle request packets into / draw responses from.
        self.packet_pool = packet_pool
        self.queue: Deque[Packet] = deque()
        self.busy_workers = 0
        self.counters = Counter()
        # Hot-path shortcuts: per-request counter bumps go straight to
        # the dict (Counter.reset clears in place, alias stays valid),
        # and trivial-spin services skip two dispatches per execution.
        self._counts = self.counters._counts
        self._trivial_spin = bool(getattr(service, "trivial_spin", False))
        self._fixed_resp_size = getattr(service, "fixed_response_size", None)
        #: Samples of the queue length at response time (Figure 13a).
        self.state_samples_zero = 0
        self.state_samples_total = 0

    # ------------------------------------------------------------------
    @property
    def queue_len(self) -> int:
        """Current dispatcher-queue occupancy (pending, not in service)."""
        return len(self.queue)

    # ------------------------------------------------------------------
    def handle(self, packet: Packet) -> None:
        nc = packet.nc
        if nc is not None and nc.msg_type != MSG_REQ:
            self._counts["non_request_ignored"] += 1
            packet.release()
            return
        if (
            self.netclone_mode
            and self.drop_stale_clones
            and nc is not None
            and nc.clo == CLO_CLONED_COPY
            and self.queue
        ):
            # Stale cloning decision: the tracked state said idle, the
            # actual state is busy.  Drop the clone, never the original.
            self._counts["clones_dropped"] += 1
            packet.release()
            return
        self._counts["requests_accepted"] += 1
        if self.busy_workers < self.num_workers:
            self.busy_workers += 1
            self._start_work(packet)
        else:
            self.queue.append(packet)

    def _start_work(self, packet: Packet) -> None:
        if self._trivial_spin:
            # JitterModel.apply inlined (factor >= 1 is ctor-enforced,
            # so the never-shorten invariant holds by construction).
            base = packet.payload.service_ns
            jitter = self.jitter
            if jitter.p > 0.0 and self.rng.random() < jitter.p:
                base = int(base * jitter.factor)
            # Simulator.call_after push inlined (keep in sync with
            # sim/core.py) — one service completion per request.
            sim = self.sim
            when = sim.now + base
            seq = sim._seq + 1
            sim._seq = seq
            tail = sim._tail
            if not tail or when >= tail[-1][0]:
                tail.append((when, seq, self._finish_work, (packet,)))
            else:
                heappush(sim._heap, (when, seq, self._finish_work, (packet,)))
            return
        base = self.service.base_service_ns(packet.payload)
        duration = self.jitter.apply(base, self.rng)
        if duration < base:
            raise ExperimentError("jitter must never shorten execution")
        self.sim.call_after(duration, self._finish_work, packet)

    def _finish_work(self, packet: Packet) -> None:
        if not self._trivial_spin:
            self.service.execute(packet.payload)
        # Hand the next queued request to this worker thread first, so
        # the piggybacked state reflects the queue after the dispatch.
        if self.queue:
            self._start_work(self.queue.popleft())
        else:
            self.busy_workers -= 1
        self._respond(packet)

    def _respond(self, request: Packet) -> None:
        queue_len = len(self.queue)
        self.state_samples_total += 1
        if queue_len == 0:
            self.state_samples_zero += 1
        nc = request.nc
        resp_nc = None
        if nc is not None:
            # The request's life ends in this call (released below) and
            # nothing else holds its header — clones carry their own
            # copy — so the response steals it instead of copying.
            resp_nc = nc
            resp_nc.msg_type = MSG_RESP
            resp_nc.sid = self.server_id
            resp_nc.state = min(queue_len, 255) if self.netclone_mode else 0
        dst = self.reply_to_ip if self.reply_to_ip is not None else request.src
        dport = request.dport if nc is not None else request.sport
        size = self._fixed_resp_size
        if size is None:
            size = self.service.response_size(request.payload)
        pool = self.packet_pool
        if pool is not None:
            response = pool.acquire(
                self.ip,
                dst,
                NETCLONE_UDP_PORT,
                dport,
                size,
                request.payload,
                resp_nc,
                PROTO_UDP,
                request.created_at,
            )
        else:
            response = Packet(
                src=self.ip,
                dst=dst,
                sport=NETCLONE_UDP_PORT,
                dport=dport,
                size=size,
                payload=request.payload,
                nc=resp_nc,
                created_at=request.created_at,
            )
        # The response now owns the payload reference; the request's
        # life on the wire is over.
        request.release()
        self._counts["responses_sent"] += 1
        self.send(response)

    # ------------------------------------------------------------------
    def empty_queue_fraction(self) -> float:
        """Fraction of responses that reported an empty queue (Fig. 13a)."""
        if self.state_samples_total == 0:
            return float("nan")
        return self.state_samples_zero / self.state_samples_total
