"""Tests for the §3.7 multi-packet extension."""

import random

import pytest

from repro.apps.service import SyntheticService
from repro.core import (
    CLO_CLONED_COPY,
    MSG_REQ,
    NETCLONE_UDP_PORT,
    VIRTUAL_SERVICE_IP,
)
from repro.core.header import NetCloneHeader
from repro.core.multipacket import (
    Fragment,
    MultiPacketClient,
    MultiPacketProgram,
    MultiPacketServer,
    client_request_id,
)
from repro.core.program import CLO_NEVER_CLONE
from repro.errors import ExperimentError
from repro.metrics.latency import LatencyRecorder
from repro.net import Packet, StarTopology
from repro.sim import Simulator
from repro.sim.units import ms
from repro.switchsim import ProgrammableSwitch
from repro.workloads import ExponentialDistribution, JitterModel, SyntheticWorkload

SERVER_IPS = [1001, 1002, 1003]


# ----------------------------------------------------------------------
# Unit: program-level behaviour
# ----------------------------------------------------------------------
def make_program(**kwargs):
    kwargs.setdefault("server_ips", SERVER_IPS)
    return MultiPacketProgram(**kwargs)


def make_switch():
    return ProgrammableSwitch(Simulator())


def fragment_request(req_id, index, count, grp=0, clo=0):
    class _Inner:
        client_id = 0
        client_seq = req_id & 0xFFFFFF
        write = False

    return Packet(
        src=5000,
        dst=VIRTUAL_SERVICE_IP,
        sport=NETCLONE_UDP_PORT,
        dport=NETCLONE_UDP_PORT,
        size=128,
        payload=Fragment(_Inner(), index, count),
        nc=NetCloneHeader(MSG_REQ, req_id=req_id, grp=grp, clo=clo),
    )


def apply(program, switch, packet, recirculated=False):
    packet.recirculated = recirculated
    return program.apply(packet, program.pipeline.new_pass(), switch)


def test_client_request_id_distinct_per_client_and_seq():
    a = client_request_id(0, 1)
    b = client_request_id(0, 2)
    c = client_request_id(1, 1)
    assert len({a, b, c}) == 3
    assert a != 0  # zero is the empty-slot sentinel
    with pytest.raises(ExperimentError):
        client_request_id(-1, 0)


def test_missing_client_id_dropped():
    program, switch = make_program(), make_switch()
    packet = fragment_request(req_id=0, index=0, count=2)
    action = apply(program, switch, packet)
    assert action.drop
    assert switch.counters.get("nc_missing_client_id") == 1


def test_first_fragment_clone_marks_inflight_table():
    program, switch = make_program(), make_switch()
    req_id = client_request_id(0, 1)
    first = fragment_request(req_id, index=0, count=3)
    action = apply(program, switch, first)
    assert len(action.recirculate) == 1
    slot = program.flow_hash.index(req_id)
    assert program.cloned_request_table.peek(slot) == req_id


def test_follow_on_fragments_cloned_regardless_of_state():
    """'Every packet of a cloned request should be cloned regardless of
    system load' (§3.7)."""
    program, switch = make_program(), make_switch()
    req_id = client_request_id(0, 1)
    apply(program, switch, fragment_request(req_id, index=0, count=3))
    # Servers now look busy: a fresh request would NOT be cloned...
    program.state_table.poke(0, 1)
    program.shadow_table.poke(1, 1)
    follow_on = fragment_request(req_id, index=1, count=3)
    action = apply(program, switch, follow_on)
    assert len(action.recirculate) == 1  # ...but the fragment still is
    assert switch.counters.get("nc_follow_on_fragment_cloned") == 1


def test_fragments_of_uncloned_request_not_cloned():
    program, switch = make_program(), make_switch()
    program.state_table.poke(0, 1)  # busy at fragment 0: no clone
    req_id = client_request_id(0, 2)
    assert apply(program, switch, fragment_request(req_id, 0, 2)).recirculate == []
    program.state_table.poke(0, 0)  # idle again before fragment 1
    action = apply(program, switch, fragment_request(req_id, 1, 2))
    assert action.recirculate == []  # consistency preserved


def test_response_fragment_zero_clears_inflight_entry():
    program, switch = make_program(), make_switch()
    req_id = client_request_id(0, 3)
    apply(program, switch, fragment_request(req_id, 0, 1))
    slot = program.flow_hash.index(req_id)
    assert program.cloned_request_table.peek(slot) == req_id

    class _Inner:
        client_id = 0
        client_seq = 3
        write = False

    response = Packet(
        src=SERVER_IPS[0],
        dst=5000,
        sport=NETCLONE_UDP_PORT,
        dport=NETCLONE_UDP_PORT,
        size=128,
        payload=Fragment(_Inner(), 0, 2),
        nc=NetCloneHeader(2, req_id=req_id, sid=0, state=0, clo=1, idx=0),
    )
    apply(program, switch, response)
    assert program.cloned_request_table.peek(slot) == 0


def test_response_fragments_filtered_in_ordered_tables():
    program, switch = make_program(num_filter_tables=4), make_switch()
    req_id = client_request_id(0, 4)

    class _Inner:
        client_id = 0
        client_seq = 4
        write = False

    def response(sid, index):
        return Packet(
            src=SERVER_IPS[sid],
            dst=5000,
            sport=NETCLONE_UDP_PORT,
            dport=NETCLONE_UDP_PORT,
            size=128,
            payload=Fragment(_Inner(), index, 2),
            nc=NetCloneHeader(2, req_id=req_id, sid=sid, state=0, clo=1, idx=index),
        )

    # Fragment 0 from server 0 wins; server 1's copy is filtered.
    assert not apply(program, switch, response(0, 0)).drop
    assert apply(program, switch, response(1, 0)).drop
    # Fragment 1 is filtered independently (its own ordered table).
    assert not apply(program, switch, response(1, 1)).drop
    assert apply(program, switch, response(0, 1)).drop
    assert switch.counters.get("nc_filtered") == 2


# ----------------------------------------------------------------------
# End-to-end multi-packet cluster
# ----------------------------------------------------------------------
def build_cluster(frags=2, response_frags=2, rate=60e3, horizon=ms(30)):
    sim = Simulator()
    switch = ProgrammableSwitch(sim)
    topo = StarTopology(sim, switch)
    jitter = JitterModel(0.0, 15.0)
    servers = []
    for index in range(3):
        server = MultiPacketServer(
            sim,
            name=f"srv{index}",
            ip=topo.allocate_ip(),
            server_id=index,
            service=SyntheticService(),
            jitter=jitter,
            rng=random.Random(index),
            num_workers=4,
            response_frags=response_frags,
        )
        topo.add_host(server)
        servers.append(server)
    program = MultiPacketProgram([s.ip for s in servers])
    switch.install_program(program)
    recorder = LatencyRecorder(warmup_ns=0, end_ns=horizon)
    client = MultiPacketClient(
        sim=sim,
        name="client",
        ip=topo.allocate_ip(),
        client_id=0,
        workload=SyntheticWorkload(ExponentialDistribution(20.0), random.Random(4)),
        rate_rps=rate,
        recorder=recorder,
        rng=random.Random(5),
        stop_at_ns=horizon,
        num_groups=program.num_groups,
        frags_per_request=frags,
    )
    topo.add_host(client)
    return sim, switch, program, client, servers, recorder


def test_multipacket_end_to_end_exactly_once():
    sim, switch, program, client, servers, recorder = build_cluster()
    client.start()
    sim.run(until=ms(45))
    assert recorder.completed_in_window > 200
    assert client.redundant_responses == 0
    assert switch.counters.get("nc_cloned") > 0
    # Both request fragments were cloned for cloned requests.
    assert switch.counters.get("nc_follow_on_fragment_cloned") > 0
    for server in servers:
        assert server.counters.get("requests_reassembled") > 0
        assert server.queue_len == 0


def test_multipacket_single_fragment_degenerates_to_base():
    sim, switch, program, client, servers, recorder = build_cluster(
        frags=1, response_frags=1
    )
    client.start()
    sim.run(until=ms(45))
    assert recorder.completed_in_window > 200
    assert client.redundant_responses == 0


def test_multipacket_validation():
    sim, switch, program, client, servers, recorder = build_cluster()
    with pytest.raises(ExperimentError):
        MultiPacketClient(
            sim=sim,
            name="bad",
            ip=9,
            client_id=1,
            workload=None,
            rate_rps=1.0,
            recorder=recorder,
            rng=random.Random(0),
            num_groups=program.num_groups,
            frags_per_request=0,
        )
