"""Tests for address helpers and byte-exact header codecs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AddressError, CodecError
from repro.net import (
    EthernetHeader,
    IPv4Header,
    UDPHeader,
    format_ip,
    format_mac,
    ip_to_int,
    mac_to_int,
)
from repro.net.headers import internet_checksum


def test_ip_roundtrip_known_value():
    assert ip_to_int("10.0.1.101") == (10 << 24) | (1 << 8) | 101
    assert format_ip(ip_to_int("10.0.1.101")) == "10.0.1.101"


@pytest.mark.parametrize("bad", ["10.0.1", "10.0.1.1.1", "256.0.0.1", "a.b.c.d", ""])
def test_ip_malformed_rejected(bad):
    with pytest.raises(AddressError):
        ip_to_int(bad)


def test_format_ip_range_check():
    with pytest.raises(AddressError):
        format_ip(-1)
    with pytest.raises(AddressError):
        format_ip(1 << 32)


def test_mac_roundtrip():
    text = "02:00:00:00:01:0a"
    assert format_mac(mac_to_int(text)) == text


@pytest.mark.parametrize("bad", ["02:00:00:00:01", "zz:00:00:00:01:0a", ""])
def test_mac_malformed_rejected(bad):
    with pytest.raises(AddressError):
        mac_to_int(bad)


@given(st.integers(min_value=0, max_value=(1 << 32) - 1))
@settings(max_examples=100, deadline=None)
def test_property_ip_int_text_roundtrip(value):
    assert ip_to_int(format_ip(value)) == value


@given(st.integers(min_value=0, max_value=(1 << 48) - 1))
@settings(max_examples=100, deadline=None)
def test_property_mac_int_text_roundtrip(value):
    assert mac_to_int(format_mac(value)) == value


def test_ethernet_roundtrip():
    header = EthernetHeader(dst_mac=mac_to_int("02:00:00:00:00:01"), src_mac=1)
    wire = header.pack()
    assert len(wire) == EthernetHeader.WIRE_SIZE
    assert EthernetHeader.unpack(wire) == header


def test_ethernet_short_buffer():
    with pytest.raises(CodecError):
        EthernetHeader.unpack(b"\x00" * 5)


def test_ipv4_roundtrip_and_checksum():
    header = IPv4Header(
        src=ip_to_int("10.0.1.1"),
        dst=ip_to_int("10.0.1.101"),
        protocol=17,
        total_length=128,
        ttl=63,
        identification=7,
    )
    wire = header.pack()
    assert len(wire) == IPv4Header.WIRE_SIZE
    assert internet_checksum(wire) == 0
    assert IPv4Header.unpack(wire) == header


def test_ipv4_corrupted_checksum_rejected():
    wire = bytearray(
        IPv4Header(src=1, dst=2, protocol=17, total_length=40).pack()
    )
    wire[8] ^= 0xFF
    with pytest.raises(CodecError):
        IPv4Header.unpack(bytes(wire))


def test_ipv4_wrong_version_rejected():
    wire = bytearray(IPv4Header(src=1, dst=2, protocol=17, total_length=40).pack())
    wire[0] = (6 << 4) | 5
    # Fix up the checksum for the mutated byte so the version check is hit.
    wire[10:12] = b"\x00\x00"
    body = bytes(wire)
    checksum = internet_checksum(body)
    wire[10:12] = checksum.to_bytes(2, "big")
    with pytest.raises(CodecError):
        IPv4Header.unpack(bytes(wire))


def test_udp_roundtrip():
    header = UDPHeader(sport=4000, dport=9000, length=64)
    wire = header.pack()
    assert len(wire) == UDPHeader.WIRE_SIZE
    assert UDPHeader.unpack(wire) == header


def test_udp_port_range_checked():
    with pytest.raises(CodecError):
        UDPHeader(sport=70000, dport=1, length=8).pack()


@given(
    src=st.integers(min_value=0, max_value=(1 << 32) - 1),
    dst=st.integers(min_value=0, max_value=(1 << 32) - 1),
    length=st.integers(min_value=20, max_value=65535),
    ttl=st.integers(min_value=0, max_value=255),
)
@settings(max_examples=100, deadline=None)
def test_property_ipv4_roundtrip(src, dst, length, ttl):
    header = IPv4Header(src=src, dst=dst, protocol=17, total_length=length, ttl=ttl)
    assert IPv4Header.unpack(header.pack()) == header
