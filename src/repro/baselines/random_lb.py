"""Baseline: random server selection, no cloning (§5.1.3).

"The baseline sends requests to workers randomly without cloning."
The switch forwards by plain L3 routing; servers respond directly to
the client.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from repro.apps.client import OpenLoopClient
from repro.errors import ExperimentError
from repro.net.packet import Packet

__all__ = ["BaselineClient", "PLAIN_RPC_PORT"]

#: UDP port for non-NetClone RPC traffic.
PLAIN_RPC_PORT = 7000


class BaselineClient(OpenLoopClient):
    """Open-loop client that sprays requests over the servers uniformly."""

    def __init__(self, *args: Any, server_ips: Sequence[int], **kwargs: Any):
        super().__init__(*args, **kwargs)
        if not server_ips:
            raise ExperimentError("baseline client needs at least one server")
        self.server_ips = list(server_ips)

    def build_packets(self, request: Any) -> List[Packet]:
        destination = self.rng.choice(self.server_ips)
        return [
            self._new_packet(
                src=self.ip,
                dst=destination,
                sport=PLAIN_RPC_PORT,
                dport=PLAIN_RPC_PORT,
                size=self.workload.request_size(request),
                payload=request,
            )
        ]
