"""Stage-pinned register arrays.

On a PISA ASIC each register array lives in the SRAM of exactly one
match-action stage, chosen at compile time, and a packet can perform at
most **one** stateful ALU operation on it per pipeline pass.  Reading
the server-state array twice for two candidate servers is therefore
impossible — the reason NetClone keeps a *shadow* copy in a later
stage (§3.4).

:class:`RegisterArray` enforces both constraints at runtime:

* construction binds the array to a stage index; access from any other
  stage raises :class:`~repro.errors.StageAccessError`;
* the pipeline stamps each pass with a token; a second access under
  the same token raises too.

A read-modify-write made through :meth:`access` counts as the single
allowed operation, matching the hardware's stateful ALU.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.errors import StageAccessError

__all__ = ["RegisterArray"]


class RegisterArray:
    """A fixed-size array of integer cells bound to one pipeline stage."""

    def __init__(self, name: str, size: int, stage: int, width_bits: int = 32, initial: int = 0):
        if size <= 0:
            raise StageAccessError(f"register array {name!r} needs positive size")
        if stage < 0:
            raise StageAccessError(f"register array {name!r} needs a valid stage")
        if width_bits not in (1, 8, 16, 32, 64):
            raise StageAccessError(f"unsupported register width {width_bits}")
        self.name = name
        self.size = size
        self.stage = stage
        self.width_bits = width_bits
        self._mask = (1 << width_bits) - 1
        self.cells: List[int] = [initial & self._mask] * size
        self._last_pass_token: Optional[int] = None
        self.access_count = 0

    # ------------------------------------------------------------------
    def _check(self, index: int, stage: int, pass_token: Optional[int]) -> None:
        if not 0 <= index < self.size:
            raise StageAccessError(
                f"index {index} out of range for register {self.name!r} (size {self.size})"
            )
        if stage != self.stage:
            raise StageAccessError(
                f"register {self.name!r} is allocated to stage {self.stage}, "
                f"accessed from stage {stage}"
            )
        if pass_token is not None and pass_token == self._last_pass_token:
            raise StageAccessError(
                f"register {self.name!r} accessed twice in one pipeline pass"
            )
        self._last_pass_token = pass_token
        self.access_count += 1

    def access(
        self,
        index: int,
        stage: int,
        pass_token: Optional[int],
        update: Optional[Callable[[int], int]] = None,
    ) -> Tuple[int, int]:
        """The single stateful operation of a pass on this array.

        Reads cell *index*; if *update* is given the cell is rewritten
        with ``update(old)`` in the same operation (read-modify-write).
        Returns ``(old_value, new_value)``.
        """
        # Checks inlined from _check: this runs once per register per
        # pipeline pass, the hottest switch-model path.
        if not 0 <= index < self.size:
            raise StageAccessError(
                f"index {index} out of range for register {self.name!r} (size {self.size})"
            )
        if stage != self.stage:
            raise StageAccessError(
                f"register {self.name!r} is allocated to stage {self.stage}, "
                f"accessed from stage {stage}"
            )
        if pass_token is not None and pass_token == self._last_pass_token:
            raise StageAccessError(
                f"register {self.name!r} accessed twice in one pipeline pass"
            )
        self._last_pass_token = pass_token
        self.access_count += 1
        old = self.cells[index]
        new = old
        if update is not None:
            new = update(old) & self._mask
            self.cells[index] = new
        return old, new

    def write(
        self,
        index: int,
        stage: int,
        pass_token: Optional[int],
        value: int,
    ) -> Tuple[int, int]:
        """Unconditional overwrite as the single stateful op of a pass.

        Equivalent to ``access(..., update=lambda _old: value)`` without
        allocating or calling the update callable — the response path
        writes two state registers per packet, which makes that cost
        measurable.  Returns ``(old_value, new_value)``.
        """
        if not 0 <= index < self.size:
            raise StageAccessError(
                f"index {index} out of range for register {self.name!r} (size {self.size})"
            )
        if stage != self.stage:
            raise StageAccessError(
                f"register {self.name!r} is allocated to stage {self.stage}, "
                f"accessed from stage {stage}"
            )
        if pass_token is not None and pass_token == self._last_pass_token:
            raise StageAccessError(
                f"register {self.name!r} accessed twice in one pipeline pass"
            )
        self._last_pass_token = pass_token
        self.access_count += 1
        old = self.cells[index]
        new = value & self._mask
        self.cells[index] = new
        return old, new

    def filter_swap(
        self,
        index: int,
        stage: int,
        pass_token: Optional[int],
        value: int,
    ) -> int:
        """The fingerprint-filter ALU op: clear on match, else insert.

        A single stateful compare-and-swap — ``cell = 0`` if the cell
        already holds *value* (the mate response passed first), else
        ``cell = value``.  Returns the old cell value.  Equivalent to
        ``access(..., update=lambda old: 0 if old == value else value)``
        without allocating a closure per response packet.
        """
        if not 0 <= index < self.size:
            raise StageAccessError(
                f"index {index} out of range for register {self.name!r} (size {self.size})"
            )
        if stage != self.stage:
            raise StageAccessError(
                f"register {self.name!r} is allocated to stage {self.stage}, "
                f"accessed from stage {stage}"
            )
        if pass_token is not None and pass_token == self._last_pass_token:
            raise StageAccessError(
                f"register {self.name!r} accessed twice in one pipeline pass"
            )
        self._last_pass_token = pass_token
        self.access_count += 1
        cells = self.cells
        old = cells[index]
        cells[index] = 0 if old == value else value & self._mask
        return old

    # -- control-plane access (no pass/stage constraints) ---------------
    def peek(self, index: int) -> int:
        """Control-plane read, exempt from data-plane constraints."""
        return self.cells[index]

    def poke(self, index: int, value: int) -> None:
        """Control-plane write, exempt from data-plane constraints."""
        self.cells[index] = value & self._mask

    def clear(self, value: int = 0) -> None:
        """Control-plane reset of every cell (e.g. after power cycle)."""
        masked = value & self._mask
        for i in range(self.size):
            self.cells[i] = masked

    @property
    def sram_bytes(self) -> int:
        """SRAM footprint of this array in bytes."""
        return self.size * self.width_bits // 8

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RegisterArray {self.name} size={self.size} stage={self.stage} "
            f"width={self.width_bits}b>"
        )
