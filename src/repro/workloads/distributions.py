"""Service-time distributions and the jitter model of §5.1.2.

The paper's synthetic workloads draw a *base* service time per request
(exponential with mean 25/50 µs, or a bimodal mix of simple and complex
RPCs) and emulate service-time *variability* separately: with jitter
probability ``p`` a request takes 15× longer than normal on the server
that executes it.  The base time is a property of the request (both
clones share it); jitter is a property of the *execution* (each server
draws independently) — this separation is what makes cloning effective,
and it is modelled the same way here.
"""

from __future__ import annotations

import random
from typing import Sequence, Tuple

from repro.errors import WorkloadError
from repro.sim.units import us

__all__ = [
    "BimodalDistribution",
    "ExponentialDistribution",
    "FixedDistribution",
    "JitterModel",
    "LognormalDistribution",
    "ServiceDistribution",
]


class ServiceDistribution:
    """Base class: draws base service times in integer nanoseconds."""

    #: Human-readable label used in experiment tables.
    name = "base"

    def sample(self, rng: random.Random) -> int:
        """One base service time in ns."""
        raise NotImplementedError

    def sample_chunk(self, rng: random.Random, n: int) -> list:
        """*n* consecutive draws, bit-identical to *n* ``sample`` calls.

        Batched arrival generation consumes these index-wise; concrete
        distributions may override with a vectorised draw as long as
        the RNG stream stays identical to the per-call path.
        """
        return [self.sample(rng) for _ in range(n)]

    @property
    def mean_ns(self) -> float:
        """Analytic mean of the distribution in ns."""
        raise NotImplementedError


class FixedDistribution(ServiceDistribution):
    """Every request takes exactly ``mean_us`` microseconds."""

    def __init__(self, mean_us: float):
        if mean_us <= 0:
            raise WorkloadError("mean must be positive")
        self._mean_ns = us(mean_us)
        self.name = f"Fixed({mean_us:g})"

    def sample(self, rng: random.Random) -> int:
        return self._mean_ns

    @property
    def mean_ns(self) -> float:
        return float(self._mean_ns)


class ExponentialDistribution(ServiceDistribution):
    """Exponential service times, the paper's default (mean 25 µs)."""

    def __init__(self, mean_us: float):
        if mean_us <= 0:
            raise WorkloadError("mean must be positive")
        self._mean_ns = mean_us * 1000.0
        self.name = f"Exp({mean_us:g})"

    def sample(self, rng: random.Random) -> int:
        value = rng.expovariate(1.0 / self._mean_ns)
        return int(value) + 1

    def sample_chunk(self, rng: random.Random, n: int) -> list:
        # Same draws as n sample() calls, minus n method dispatches.
        expovariate = rng.expovariate
        rate = 1.0 / self._mean_ns
        return [int(expovariate(rate)) + 1 for _ in range(n)]

    @property
    def mean_ns(self) -> float:
        return self._mean_ns


class BimodalDistribution(ServiceDistribution):
    """A mix of short and long RPCs, e.g. 90 % 25 µs / 10 % 250 µs.

    Each mode is itself exponentially distributed around its mean,
    mirroring how a "simple or complex RPC" mix behaves in practice.
    """

    def __init__(self, modes: Sequence[Tuple[float, float]]):
        if not modes:
            raise WorkloadError("bimodal needs at least one mode")
        total = sum(weight for weight, _ in modes)
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(f"mode weights must sum to 1, got {total}")
        for weight, mean in modes:
            if weight <= 0 or mean <= 0:
                raise WorkloadError("weights and means must be positive")
        self.modes = [(weight, mean * 1000.0) for weight, mean in modes]
        label = ",".join(f"{weight * 100:g}%-{mean / 1000:g}" for weight, mean in self.modes)
        self.name = f"Bimodal({label})"

    def sample(self, rng: random.Random) -> int:
        pick = rng.random()
        cumulative = 0.0
        mean_ns = self.modes[-1][1]
        for weight, mode_mean in self.modes:
            cumulative += weight
            if pick < cumulative:
                mean_ns = mode_mean
                break
        return int(rng.expovariate(1.0 / mean_ns)) + 1

    @property
    def mean_ns(self) -> float:
        return sum(weight * mean for weight, mean in self.modes)


class LognormalDistribution(ServiceDistribution):
    """Heavy-tailed lognormal service times (extension workload)."""

    def __init__(self, mean_us: float, sigma: float = 1.0):
        if mean_us <= 0 or sigma <= 0:
            raise WorkloadError("mean and sigma must be positive")
        import math

        self._sigma = sigma
        # Choose mu so that the lognormal mean equals mean_us.
        self._mu = math.log(mean_us * 1000.0) - sigma * sigma / 2.0
        self._mean_ns = mean_us * 1000.0
        self.name = f"Lognormal({mean_us:g},{sigma:g})"

    def sample(self, rng: random.Random) -> int:
        return int(rng.lognormvariate(self._mu, self._sigma)) + 1

    @property
    def mean_ns(self) -> float:
        return self._mean_ns


class JitterModel:
    """Server-side execution jitter (§5.1.2).

    With probability ``p`` an execution suffers interference (GC,
    background tasks, power management, ...) and takes ``factor`` times
    its base service time.  Each server draws independently, so a
    cloned request effectively takes the minimum of two draws.
    """

    def __init__(self, p: float = 0.01, factor: float = 15.0):
        if not 0.0 <= p <= 1.0:
            raise WorkloadError("jitter probability must lie in [0, 1]")
        if factor < 1.0:
            raise WorkloadError("jitter factor must be >= 1")
        self.p = p
        self.factor = factor

    def apply(self, base_ns: int, rng: random.Random) -> int:
        """Final execution time for one server's attempt."""
        if self.p > 0.0 and rng.random() < self.p:
            return int(base_ns * self.factor)
        return base_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JitterModel(p={self.p}, factor={self.factor})"
