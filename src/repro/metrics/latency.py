"""Latency recording with a measurement window.

The paper's client "measures the throughput and latency by generating
requests at a given target sending rate".  The recorder implements the
standard open-loop methodology: samples whose *send time* falls inside
``[warmup_ns, end_ns)`` count toward latency percentiles and
throughput; everything else (cold start, drain tail) is ignored.
"""

from __future__ import annotations

from array import array
from typing import Optional, Sequence

import numpy as np

from repro.errors import ExperimentError
from repro.sim.units import SECONDS

__all__ = ["LatencyRecorder", "percentile"]


def percentile(samples: Sequence[int], q: float) -> float:
    """The *q*-th percentile of *samples* in the same unit (ns).

    Uses the "lower" interpolation so the value is an observed sample,
    matching how tail latency is usually reported.
    """
    if len(samples) == 0:
        return float("nan")
    if not 0 <= q <= 100:
        raise ExperimentError(f"percentile {q} out of range")
    return float(np.percentile(np.asarray(samples, dtype=np.int64), q, method="lower"))


class LatencyRecorder:
    """Collects request latencies inside a measurement window."""

    def __init__(self, warmup_ns: int = 0, end_ns: Optional[int] = None):
        if warmup_ns < 0:
            raise ExperimentError("warmup must be non-negative")
        if end_ns is not None and end_ns <= warmup_ns:
            raise ExperimentError("measurement window must be non-empty")
        self.warmup_ns = warmup_ns
        self.end_ns = end_ns
        self.latencies_ns = array("q")
        self.sent_in_window = 0
        self.completed_in_window = 0
        #: Optional IntervalMonitor fed with completion times (Fig. 16).
        self.completion_monitor = None

    # ------------------------------------------------------------------
    def _in_window(self, time_ns: int) -> bool:
        if time_ns < self.warmup_ns:
            return False
        return self.end_ns is None or time_ns < self.end_ns

    def note_sent(self, send_time_ns: int) -> None:
        """Count one request sent at *send_time_ns*."""
        # _in_window inlined: one call per request sent.
        if send_time_ns >= self.warmup_ns and (
            self.end_ns is None or send_time_ns < self.end_ns
        ):
            self.sent_in_window += 1

    def record(self, send_time_ns: int, done_time_ns: int) -> None:
        """Record a completed request (first response received).

        Throughput counts completions *occurring* inside the window (so
        a saturated system reports its service rate, not the offered
        rate); latency samples belong to requests *sent* inside the
        window (so cold-start and drain artefacts are excluded).
        """
        if done_time_ns < send_time_ns:
            raise ExperimentError("completion before send")
        if self.completion_monitor is not None:
            self.completion_monitor.note(done_time_ns)
        # _in_window inlined: two calls per completion.
        end_ns = self.end_ns
        if done_time_ns >= self.warmup_ns and (end_ns is None or done_time_ns < end_ns):
            self.completed_in_window += 1
        if send_time_ns >= self.warmup_ns and (end_ns is None or send_time_ns < end_ns):
            self.latencies_ns.append(done_time_ns - send_time_ns)

    # ------------------------------------------------------------------
    @property
    def window_ns(self) -> Optional[int]:
        """Length of the measurement window, if bounded."""
        if self.end_ns is None:
            return None
        return self.end_ns - self.warmup_ns

    def throughput_rps(self) -> float:
        """Completed requests per second over the window."""
        window = self.window_ns
        if window is None or window <= 0:
            return float("nan")
        return self.completed_in_window * SECONDS / window

    def offered_rps(self) -> float:
        """Requests sent per second over the window."""
        window = self.window_ns
        if window is None or window <= 0:
            return float("nan")
        return self.sent_in_window * SECONDS / window

    def p50_us(self) -> float:
        """Median latency in microseconds."""
        return percentile(self.latencies_ns, 50) / 1000.0

    def p99_us(self) -> float:
        """99th-percentile latency in microseconds."""
        return percentile(self.latencies_ns, 99) / 1000.0

    def p999_us(self) -> float:
        """99.9th-percentile latency in microseconds."""
        return percentile(self.latencies_ns, 99.9) / 1000.0

    def mean_us(self) -> float:
        """Mean latency in microseconds."""
        if not self.latencies_ns:
            return float("nan")
        return float(np.mean(np.frombuffer(self.latencies_ns, dtype=np.int64))) / 1000.0

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's samples into this one."""
        self.latencies_ns.extend(other.latencies_ns)
        self.sent_in_window += other.sent_in_window
        self.completed_in_window += other.completed_in_window

    def __len__(self) -> int:
        return len(self.latencies_ns)
