"""Zipfian key popularity.

The Redis/Memcached experiments use a skewed access pattern
(Zipf-0.99 over 1 M objects, §5.5).  Sampling uses a precomputed CDF
and binary search — O(log n) per draw after an O(n) setup shared by
every client.
"""

from __future__ import annotations

import bisect
import random
from typing import List

import numpy as np

from repro.errors import WorkloadError

__all__ = ["DriftingZipfGenerator", "ZipfGenerator"]


class ZipfGenerator:
    """Draws keys in ``[0, num_keys)`` with Zipf(s) popularity."""

    def __init__(self, num_keys: int, skew: float = 0.99):
        if num_keys <= 0:
            raise WorkloadError("num_keys must be positive")
        if skew < 0:
            raise WorkloadError("skew must be non-negative")
        self.num_keys = num_keys
        self.skew = skew
        ranks = np.arange(1, num_keys + 1, dtype=np.float64)
        weights = ranks ** (-skew)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        self._cdf: List[float] = cdf.tolist()

    def sample(self, rng: random.Random) -> int:
        """One key, 0-based, rank 0 being the most popular."""
        return bisect.bisect_left(self._cdf, rng.random())

    def popularity(self, key: int) -> float:
        """Probability mass of *key*."""
        if not 0 <= key < self.num_keys:
            raise WorkloadError(f"key {key} out of range")
        previous = self._cdf[key - 1] if key > 0 else 0.0
        return self._cdf[key] - previous


class DriftingZipfGenerator(ZipfGenerator):
    """Zipf popularity whose hot set drifts over time.

    The rank distribution is a fixed Zipf(s), but the rank → key
    mapping rotates: every ``drift_period`` requests the whole mapping
    shifts by one key, so yesterday's cold keys become today's hot
    ones — the "popularity churn" that defeats static caching and
    placement assumptions.  Callers sample with :meth:`sample_at`,
    passing a per-client request ordinal as the time proxy; the ordinal
    is deterministic under pre-drawn arrivals (unlike simulated time,
    which a pre-draw hasn't reached yet), so drifting runs stay
    bit-reproducible.
    """

    def __init__(self, num_keys: int, skew: float = 0.99, drift_period: int = 10_000):
        if drift_period <= 0:
            raise WorkloadError("drift_period must be positive")
        super().__init__(num_keys, skew)
        self.drift_period = drift_period

    def sample_at(self, rng: random.Random, step: int) -> int:
        """One key at request ordinal *step* (0-based rotation)."""
        return (self.sample(rng) + step // self.drift_period) % self.num_keys
