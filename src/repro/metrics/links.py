"""Per-link utilization series.

Every :class:`~repro.net.link.Link` counts the bytes it clocks onto
the wire per direction; this module reduces those counters to a
utilization series — one :class:`LinkLoad` per link — so trunk
saturation experiments (fig18) can report how hot each inter-rack
link ran alongside the latency percentiles.  Utilization is the
busiest direction's *offered* share of the line rate over the whole
simulated window (the link is full duplex, so each direction owns the
full rate); values above 1.0 mean the direction was oversubscribed
and queued a growing backlog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.metrics.tables import format_table
from repro.net.link import Link

__all__ = ["LinkLoad", "collect_link_loads", "format_link_loads", "trunk_summary"]


@dataclass
class LinkLoad:
    """One link's traffic totals over a finished run."""

    name: str
    tx_bytes: int
    tx_count: int
    drop_count: int
    #: Busiest-direction offered fraction of the line rate over the
    #: window (> 1.0 = oversubscribed).
    utilization: float

    def row(self) -> tuple:
        return (
            self.name,
            f"{self.tx_bytes}",
            f"{self.tx_count}",
            f"{self.drop_count}",
            f"{self.utilization:.3f}",
        )


def collect_link_loads(links: Sequence[Link], window_ns: int) -> List[LinkLoad]:
    """One :class:`LinkLoad` per link, measured over *window_ns*."""
    return [
        LinkLoad(
            name=link.name,
            tx_bytes=link.tx_bytes,
            tx_count=link.tx_count,
            drop_count=link.drop_count,
            utilization=link.utilization(window_ns),
        )
        for link in links
    ]


def format_link_loads(loads: Sequence[LinkLoad]) -> str:
    """A printable table of per-link traffic totals."""
    return format_table(
        ["link", "tx_bytes", "tx_pkts", "drops", "util"],
        [load.row() for load in loads],
    )


def trunk_summary(trunks: Sequence[Link], window_ns: int) -> Dict[str, float]:
    """Reduce a fabric's trunk set to sweep-point extras.

    Always returns the same keys (zeros on trunkless fabrics such as
    the single-rack star) so load points stay field-compatible across
    topologies — determinism tests compare ``extra`` dicts key for key.
    """
    loads = collect_link_loads(trunks, window_ns)
    return {
        "trunk_util_max": max((l.utilization for l in loads), default=0.0),
        "trunk_util_mean": (
            sum(l.utilization for l in loads) / len(loads) if loads else 0.0
        ),
        "trunk_tx_bytes": float(sum(l.tx_bytes for l in loads)),
        "trunk_drops": float(sum(l.drop_count for l in loads)),
    }
