"""A real (executed, not mocked) in-memory key-value store.

Worker servers in the KV experiments hold a replica of the full
dataset and actually execute GET/SCAN/SET against it; the *simulated
service time* of each operation comes from a cost model
(:mod:`repro.kvstore.cost`) so that experiment time is decoupled from
wall-clock time.

Values are deterministic functions of the key (16-byte keys, 64-byte
values as in §5.5) generated lazily, so a million-object replica does
not need a gigabyte of RAM per simulated server.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import KVStoreError

__all__ = ["KeyValueStore"]


class KeyValueStore:
    """One server's replica of the object store."""

    KEY_BYTES = 16
    VALUE_BYTES = 64

    def __init__(self, num_keys: int = 1_000_000):
        if num_keys <= 0:
            raise KVStoreError("num_keys must be positive")
        self.num_keys = num_keys
        # Overlay of explicit writes on top of the deterministic base image.
        self._writes: Dict[int, bytes] = {}
        self.gets = 0
        self.scans = 0
        self.sets = 0

    # ------------------------------------------------------------------
    def _base_value(self, key: int) -> bytes:
        # Deterministic 64-byte value derived from the key; identical on
        # every replica, which is what lets cloned reads hit any server.
        seed = key.to_bytes(8, "little")
        return (seed * 8)[: self.VALUE_BYTES]

    def _check_key(self, key: int) -> None:
        if not 0 <= key < self.num_keys:
            raise KVStoreError(f"key {key} outside keyspace of {self.num_keys}")

    # ------------------------------------------------------------------
    def get(self, key: int) -> bytes:
        """Read one object."""
        self._check_key(key)
        self.gets += 1
        override = self._writes.get(key)
        return override if override is not None else self._base_value(key)

    def scan(self, start_key: int, count: int) -> List[bytes]:
        """Read *count* consecutive objects starting at *start_key*."""
        self._check_key(start_key)
        if count <= 0:
            raise KVStoreError("scan count must be positive")
        self.scans += 1
        out = []
        for offset in range(count):
            key = (start_key + offset) % self.num_keys
            override = self._writes.get(key)
            out.append(override if override is not None else self._base_value(key))
        return out

    def set(self, key: int, value: bytes) -> None:
        """Write one object (replica-local; replication is out of scope)."""
        self._check_key(key)
        if len(value) != self.VALUE_BYTES:
            raise KVStoreError(
                f"values are fixed at {self.VALUE_BYTES} bytes, got {len(value)}"
            )
        self.sets += 1
        self._writes[key] = value

    def value_checksum(self, key: int) -> int:
        """Cheap content digest used by integrity tests."""
        return sum(self.get(key)) & 0xFFFF
