"""Unit tests for the open-loop client and a model-based filter check."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.client import OpenLoopClient
from repro.core import NetCloneProgram
from repro.core.constants import MSG_RESP, NETCLONE_UDP_PORT
from repro.core.header import NetCloneHeader
from repro.errors import ExperimentError
from repro.metrics.latency import LatencyRecorder
from repro.net import Host, Link, Packet
from repro.sim import Simulator
from repro.sim.units import ms, us
from repro.workloads import ExponentialDistribution, SyntheticWorkload


class EchoPeer(Host):
    """Reflects every packet back after a fixed delay."""

    def __init__(self, sim, delay_ns=5_000):
        super().__init__(sim, "echo", 2, tx_cost_ns=0, rx_cost_ns=0)
        self.delay_ns = delay_ns
        self.count = 0

    def handle(self, packet):
        self.count += 1
        response = Packet(
            src=self.ip,
            dst=packet.src,
            sport=packet.dport,
            dport=packet.sport,
            size=packet.size,
            payload=packet.payload,
            created_at=packet.created_at,
        )
        self.sim.schedule(self.delay_ns, self.send, response)


class DirectClient(OpenLoopClient):
    """Minimal strategy: one plain packet to the echo peer."""

    def build_packets(self, request):
        return [
            Packet(
                src=self.ip,
                dst=2,
                sport=1111,
                dport=2222,
                size=self.workload.request_size(request),
                payload=request,
            )
        ]


def build(rate=1e5, horizon=ms(5), echo_delay=5_000):
    sim = Simulator()
    recorder = LatencyRecorder(warmup_ns=0, end_ns=horizon)
    client = DirectClient(
        sim=sim,
        name="client",
        ip=1,
        client_id=0,
        workload=SyntheticWorkload(ExponentialDistribution(10.0), random.Random(3)),
        rate_rps=rate,
        recorder=recorder,
        rng=random.Random(4),
        stop_at_ns=horizon,
        tx_cost_ns=0,
        rx_cost_ns=0,
    )
    peer = EchoPeer(sim, delay_ns=echo_delay)
    link = Link(sim, client, peer, propagation_ns=100, bandwidth_bps=1e15)
    client.attach_link(link)
    peer.attach_link(link)
    return sim, client, peer, recorder


def test_open_loop_rate_approximation():
    sim, client, peer, recorder = build(rate=1e6, horizon=ms(10))
    client.start()
    sim.run()
    # ~1e6 rps for 10 ms -> ~10k requests.
    assert recorder.sent_in_window == pytest.approx(10_000, rel=0.1)


def test_latency_measured_from_send_to_first_response():
    sim, client, peer, recorder = build(rate=1e4, echo_delay=us(7))
    client.start()
    sim.run()
    assert len(recorder.latencies_ns) > 10
    expected = us(7) + 200  # echo delay + two propagation hops
    assert min(recorder.latencies_ns) == expected


def test_duplicate_responses_counted_redundant():
    sim, client, peer, recorder = build(rate=1e4)

    original_handle = EchoPeer.handle

    def double_handle(self, packet):
        original_handle(self, packet)
        original_handle(self, packet)

    peer.handle = double_handle.__get__(peer)
    client.start()
    sim.run()
    assert client.redundant_responses == recorder.completed_in_window
    assert client.responses_received == 2 * recorder.completed_in_window


def test_foreign_payload_ignored():
    sim, client, peer, recorder = build()

    class ForeignPayload:
        client_id = 99
        client_seq = 1

    client.handle(
        Packet(src=2, dst=1, sport=0, dport=0, size=64, payload=ForeignPayload())
    )
    assert client.responses_received == 0


def test_client_stops_at_deadline():
    sim, client, peer, recorder = build(rate=1e5, horizon=ms(2))
    client.start()
    sim.run()
    assert client._seq <= 1e5 * 0.002 * 1.5 + 5
    assert sim.now < ms(4)  # no runaway arrivals after the deadline


def test_rate_validation():
    sim = Simulator()
    with pytest.raises(ExperimentError):
        DirectClient(
            sim=sim,
            name="bad",
            ip=1,
            client_id=0,
            workload=None,
            rate_rps=0,
            recorder=LatencyRecorder(),
            rng=random.Random(0),
        )


# ----------------------------------------------------------------------
# Model-based check of the filter-table register semantics
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.integers(min_value=1, max_value=6), st.booleans()),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=80, deadline=None)
def test_property_filter_register_matches_reference_model(events):
    """The one-slot filter register equals a reference dict model.

    Events are (req_id, is_first_response) pairs replayed against both
    the real program (single filter table, single slot — worst case)
    and a trivial reference: slot holds the last inserted id; an
    arriving id equal to the slot drops and clears, anything else
    inserts/overwrites.
    """
    from repro.switchsim import ProgrammableSwitch

    program = NetCloneProgram(
        server_ips=[11, 12], num_filter_tables=1, filter_slots=1
    )
    switch = ProgrammableSwitch(Simulator())
    slot_model = 0
    for req_id, _unused in events:
        packet = Packet(
            src=11,
            dst=5,
            sport=NETCLONE_UDP_PORT,
            dport=NETCLONE_UDP_PORT,
            size=64,
            nc=NetCloneHeader(MSG_RESP, req_id=req_id, sid=0, state=0, clo=1, idx=0),
        )
        action = program.apply(packet, program.pipeline.new_pass(), switch)
        # None is the plain-forward fast path (no drop).
        if slot_model == req_id:
            assert action is not None and action.drop
            slot_model = 0
        else:
            assert action is None or not action.drop
            slot_model = req_id
        assert program.filters[0].peek(0) == slot_model
