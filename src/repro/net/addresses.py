"""IPv4 and MAC address helpers.

Addresses travel through the simulator as plain integers (cheap to
hash, compare and copy); these helpers convert between the integer
form and the usual dotted/colon-separated text form.
"""

from __future__ import annotations

from repro.errors import AddressError

__all__ = ["format_ip", "format_mac", "ip_to_int", "mac_to_int"]

_IP_MAX = (1 << 32) - 1
_MAC_MAX = (1 << 48) - 1


def ip_to_int(text: str) -> int:
    """Parse dotted-quad *text* (e.g. ``"10.0.1.101"``) to an integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"malformed IPv4 address {text!r}")
    value = 0
    for part in parts:
        try:
            octet = int(part, 10)
        except ValueError as exc:
            raise AddressError(f"malformed IPv4 address {text!r}") from exc
        if not 0 <= octet <= 255:
            raise AddressError(f"IPv4 octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ip(value: int) -> str:
    """Format integer *value* as a dotted quad."""
    if not 0 <= value <= _IP_MAX:
        raise AddressError(f"IPv4 value out of range: {value!r}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def mac_to_int(text: str) -> int:
    """Parse colon-separated *text* (e.g. ``"02:00:00:00:01:0a"``)."""
    parts = text.split(":")
    if len(parts) != 6:
        raise AddressError(f"malformed MAC address {text!r}")
    value = 0
    for part in parts:
        try:
            byte = int(part, 16)
        except ValueError as exc:
            raise AddressError(f"malformed MAC address {text!r}") from exc
        if not 0 <= byte <= 255:
            raise AddressError(f"MAC byte out of range in {text!r}")
        value = (value << 8) | byte
    return value


def format_mac(value: int) -> str:
    """Format integer *value* as colon-separated hex bytes."""
    if not 0 <= value <= _MAC_MAX:
        raise AddressError(f"MAC value out of range: {value!r}")
    return ":".join(f"{(value >> shift) & 0xFF:02x}" for shift in (40, 32, 24, 16, 8, 0))
