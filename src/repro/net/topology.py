"""Topology builders.

The paper's testbed is a single rack: one ToR switch with every host a
direct cable away.  :class:`StarTopology` wires hosts to switch ports,
assigns addresses, and installs L3 routes.  It is deliberately generic
over the switch object (anything exposing ``connect(port, link)`` and
``install_route(ip, port)``) so both the programmable switch model and
test doubles can be used.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.errors import NetworkError, PortError
from repro.net.addresses import ip_to_int
from repro.net.host import Host
from repro.net.link import Link
from repro.sim.core import Simulator

__all__ = ["StarTopology"]


class StarTopology:
    """A single-switch star: every host gets its own switch port."""

    def __init__(
        self,
        sim: Simulator,
        switch: Any,
        propagation_ns: int = 300,
        bandwidth_bps: float = 100e9,
        subnet: str = "10.0.1.0",
    ):
        self.sim = sim
        self.switch = switch
        self.propagation_ns = propagation_ns
        self.bandwidth_bps = bandwidth_bps
        self.subnet_base = ip_to_int(subnet)
        self.hosts: List[Host] = []
        self.links: List[Link] = []
        self.port_of: Dict[str, int] = {}
        self._next_port = 0
        self._next_host_octet = 100

    def allocate_ip(self) -> int:
        """Next free address in the subnet (``.101``, ``.102``, ...)."""
        self._next_host_octet += 1
        if self._next_host_octet > 254:
            raise NetworkError("subnet exhausted")
        return self.subnet_base + self._next_host_octet

    def add_host(self, host: Host) -> int:
        """Cable *host* to the next switch port; returns the port index."""
        if host.name in self.port_of:
            raise PortError(f"host {host.name} already attached")
        port = self._next_port
        self._next_port += 1
        link = Link(
            self.sim,
            host,
            self.switch,
            propagation_ns=self.propagation_ns,
            bandwidth_bps=self.bandwidth_bps,
            name=f"link-{host.name}",
        )
        host.attach_link(link)
        self.switch.connect(port, link)
        self.switch.install_route(host.ip, port)
        self.hosts.append(host)
        self.links.append(link)
        self.port_of[host.name] = port
        return port

    def link_of(self, host: Host) -> Link:
        """The uplink of *host*."""
        port = self.port_of.get(host.name)
        if port is None:
            raise PortError(f"host {host.name} not attached")
        return self.links[port]
