"""Shared utilities for the figure/table harnesses.

Every throughput-latency figure is driven the same way: compute the
cluster's theoretical capacity from worker count and mean service
time, sweep offered load over fractions of it, and print one curve per
scheme.  ``scale`` shrinks the measurement windows and thins the load
grid so the identical harness serves CI smoke tests, pytest-benchmark
runs, and full reproductions.
"""

from __future__ import annotations

import logging
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.errors import ExperimentError
from repro.experiments.common import (
    ClusterConfig,
    placement_override_kwargs,
    run_sweep,
    topology_override_kwargs,
)
from repro.experiments.executor import SweepExecutor, resolve_executor
from repro.experiments.schemes import get_scheme
from repro.metrics.sweep import LoadPoint, SweepResult
from repro.sim.units import ms

_LOG = logging.getLogger(__name__)

__all__ = [
    "DEFAULT_FRACTIONS",
    "capacity_rps",
    "format_series",
    "load_grid",
    "scaled_config",
    "sweep_schemes",
]

#: Offered-load fractions of theoretical capacity for a full sweep.
DEFAULT_FRACTIONS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def capacity_rps(total_workers: int, mean_service_ns: float) -> float:
    """Theoretical saturation throughput of the worker pool."""
    if total_workers <= 0 or mean_service_ns <= 0:
        raise ExperimentError("capacity needs positive workers and service time")
    return total_workers * 1e9 / mean_service_ns


def load_grid(
    capacity: float,
    scale: float = 1.0,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
) -> List[float]:
    """Offered loads for a sweep, thinned when *scale* < 1."""
    chosen = list(fractions)
    if scale < 0.4 and len(chosen) > 4:
        chosen = chosen[1::3] + [chosen[-1]]
    return [capacity * fraction for fraction in sorted(set(chosen))]


def scaled_config(config: ClusterConfig, scale: float) -> ClusterConfig:
    """Shrink the measurement windows by *scale* (floored sensibly)."""
    if scale <= 0:
        raise ExperimentError("scale must be positive")
    if scale >= 1.0:
        return config
    return replace(
        config,
        warmup_ns=max(ms(2), int(config.warmup_ns * scale)),
        measure_ns=max(ms(5), int(config.measure_ns * scale)),
        drain_ns=max(ms(2), int(config.drain_ns * scale)),
    )


def sweep_schemes(
    config: ClusterConfig,
    schemes: Sequence[str],
    loads: Sequence[float],
    jobs: Optional[int] = None,
    executor: Optional[SweepExecutor] = None,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> Dict[str, SweepResult]:
    """One curve per scheme over the same load grid.

    The whole scheme × load grid is flattened into one batch so a
    parallel executor keeps every worker busy across curves, not just
    within one; the serial default matches ``run_sweep`` per scheme.
    *topology* / *placement* override the config's fabric and group
    placement for every curve.
    """
    chosen = resolve_executor(executor, jobs)
    schemes = list(schemes)
    canonical = [get_scheme(scheme).name for scheme in schemes]
    override_kwargs = topology_override_kwargs(config, topology)
    override_kwargs.update(placement_override_kwargs(config, placement))
    loads = list(loads)
    point_configs = [
        replace(config, scheme=name, rate_rps=rate, **override_kwargs)
        for name in canonical
        for rate in loads
    ]
    points: List[LoadPoint] = chosen.run_points(point_configs)
    # Results are keyed by the names the caller passed (aliases intact);
    # the curve labels use the canonical names the configs resolved to.
    results: Dict[str, SweepResult] = {}
    per_scheme = len(loads)
    for index, (key, name) in enumerate(zip(schemes, canonical)):
        result = SweepResult(scheme=name, workload=config.workload.name)
        for point in points[index * per_scheme : (index + 1) * per_scheme]:
            result.add(point)
        results[key] = result
    return results


def format_series(
    title: str,
    series: Dict[str, SweepResult],
    notes: Optional[Sequence[str]] = None,
    chart: bool = True,
) -> str:
    """A printable report section for one figure panel."""
    lines = [f"== {title} =="]
    for scheme in series:
        lines.append(series[scheme].format())
        lines.append("")
    if chart:
        from repro.metrics.charts import render_sweeps

        try:
            lines.append(render_sweeps(list(series.values())))
            lines.append("")
        except ExperimentError:
            pass  # a panel with no samples is not chartable; omit the chart
        except Exception:
            _LOG.exception("chart rendering failed for %r; omitting the chart", title)
    if notes:
        lines.append("shape checks:")
        lines.extend(f"  - {note}" for note in notes)
        lines.append("")
    return "\n".join(lines)
