"""JSQ(d): client-side power-of-d-choices load balancing (demo plugin).

The client samples ``d`` distinct servers per request and sends to the
one with the fewest of *its own* outstanding requests (ties break
uniformly).  This is the classic power-of-d-choices approximation of
join-shortest-queue using only local knowledge — no cloning, no switch
program, no coordinator — and sits between the random Baseline and the
switch-side RackSched JSQ.

The module doubles as the reference example of the scheme plugin
surface: it registers ``jsq-d3`` purely through
:func:`~repro.experiments.schemes.register_scheme`, with zero edits to
:mod:`repro.experiments.common`.  The outstanding-count bookkeeping
(including lazy staleness expiry for requests lost to queue overflow)
is shared with bounded-random via
:class:`~repro.baselines.tracking.OutstandingTrackingClient`.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.baselines.tracking import OutstandingTrackingClient
from repro.errors import ExperimentError
from repro.experiments.schemes import SchemeContext, SchemeSpec, register_scheme

__all__ = ["JsqDClient"]


class JsqDClient(OutstandingTrackingClient):
    """Open-loop client that joins the least-loaded of *d* random servers."""

    def __init__(self, *args: Any, d: int = 3, **kwargs: Any):
        super().__init__(*args, **kwargs)
        if d < 1:
            raise ExperimentError("JSQ(d) needs d >= 1")
        if len(self.server_ips) < d:
            raise ExperimentError(
                f"JSQ(d={d}) needs at least {d} servers, got {len(self.server_ips)}"
            )
        self.d = d

    def _pick_server(self) -> int:
        candidates = self.rng.sample(self.server_ips, self.d)
        best = min(self._outstanding_at[ip] for ip in candidates)
        return self.rng.choice(
            [ip for ip in candidates if self._outstanding_at[ip] == best]
        )


def _jsq_d3_client(ctx: SchemeContext, common: Dict[str, Any]) -> JsqDClient:
    return JsqDClient(server_ips=ctx.server_ips, d=3, **common)


@register_scheme
def _jsq_d3_spec() -> SchemeSpec:
    return SchemeSpec(
        name="jsq-d3",
        description="client-side join-least-outstanding over 3 random choices",
        aliases=("p3c",),
        make_client=_jsq_d3_client,
    )
