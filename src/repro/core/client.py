"""The NetClone client.

NetClone clients do not know server addresses (§3.3): each request is
addressed to a virtual service IP with a randomly chosen *group ID*
(picking the candidate pair) and a randomly chosen *filter-table
index*; the switch does the rest.  Both the request and its responses
carry the reserved NetClone UDP port so the ToR applies the custom
logic in both directions.
"""

from __future__ import annotations

from typing import Any, List

from repro.apps.client import OpenLoopClient
from repro.core.constants import (
    CLO_NOT_CLONED,
    MSG_REQ,
    NETCLONE_UDP_PORT,
    VIRTUAL_SERVICE_IP,
)
from repro.core.header import NetCloneHeader
from repro.core.program import CLO_NEVER_CLONE
from repro.errors import ExperimentError
from repro.net.packet import Packet

__all__ = ["NetCloneClient"]


class NetCloneClient(OpenLoopClient):
    """Open-loop client speaking the NetClone protocol."""

    def __init__(self, *args: Any, num_groups: int, num_filter_tables: int = 2, **kwargs: Any):
        super().__init__(*args, **kwargs)
        if num_groups < 2:
            raise ExperimentError("NetClone needs at least two groups (two servers)")
        if num_filter_tables < 1:
            raise ExperimentError("need at least one filter table")
        self.num_groups = num_groups
        self.num_filter_tables = num_filter_tables

    def build_packets(self, request: Any) -> List[Packet]:
        header = NetCloneHeader(
            msg_type=MSG_REQ,
            req_id=0,  # assigned by the switch
            grp=self.rng.randrange(self.num_groups),
            sid=0,
            state=0,
            clo=CLO_NEVER_CLONE if getattr(request, "write", False) else CLO_NOT_CLONED,
            idx=self.rng.randrange(self.num_filter_tables),
            swid=0,
        )
        packet = Packet(
            src=self.ip,
            dst=VIRTUAL_SERVICE_IP,
            sport=NETCLONE_UDP_PORT,
            dport=NETCLONE_UDP_PORT,
            size=self.workload.request_size(request) + NetCloneHeader.WIRE_SIZE,
            payload=request,
            nc=header,
        )
        return [packet]
