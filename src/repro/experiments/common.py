"""Cluster construction and measurement driver.

This module turns a :class:`ClusterConfig` into a simulated testbed
matching §5.1.1 — one ToR switch, client hosts, worker servers (plus a
coordinator host for LÆDGE) — runs it, and reduces the run to a
:class:`~repro.metrics.sweep.LoadPoint`.

Supported schemes:

=====================  ====================================================
``baseline``           random server choice, no cloning (plain L3 switch)
``cclone``             static client-side cloning, d = 2
``laedge``             coordinator-based dynamic cloning
``netclone``           NetClone switch program (cloning + filtering)
``netclone-nofilter``  NetClone with response filtering disabled (Fig. 15)
``netclone-noclonedrop`` NetClone without the server-side stale-clone drop
``racksched``          switch JSQ power-of-two, no cloning
``netclone-racksched`` NetClone + RackSched integration (§3.7)
=====================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.apps.client import OpenLoopClient
from repro.baselines.cclone import CCloneClient
from repro.baselines.laedge import LaedgeClient, LaedgeCoordinator
from repro.baselines.random_lb import BaselineClient
from repro.core.client import NetCloneClient
from repro.core.program import NetCloneProgram
from repro.core.racksched import NetCloneRackSchedProgram, RackSchedProgram
from repro.core.server import RpcServer
from repro.errors import ExperimentError
from repro.experiments.specs import WorkloadSpec, make_synthetic_spec
from repro.metrics.latency import LatencyRecorder
from repro.metrics.sweep import LoadPoint, SweepResult
from repro.net.topology import StarTopology
from repro.sim.core import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.units import ms
from repro.switchsim.switch import ProgrammableSwitch
from repro.workloads.distributions import JitterModel

__all__ = ["Cluster", "ClusterConfig", "SCHEMES", "run_point", "run_sweep"]

SCHEMES = (
    "baseline",
    "cclone",
    "laedge",
    "netclone",
    "netclone-nofilter",
    "netclone-noclonedrop",
    "racksched",
    "netclone-racksched",
)

_NETCLONE_SCHEMES = {
    "netclone",
    "netclone-nofilter",
    "netclone-noclonedrop",
    "racksched",
    "netclone-racksched",
}


@dataclass
class ClusterConfig:
    """Everything needed to build and measure one operating point."""

    scheme: str = "netclone"
    workload: Optional[WorkloadSpec] = None
    num_servers: int = 6
    workers_per_server: Union[int, Sequence[int]] = 15
    num_clients: int = 2
    rate_rps: float = 1.0e6
    jitter_p: float = 0.01
    jitter_factor: float = 15.0
    warmup_ns: int = ms(10)
    measure_ns: int = ms(40)
    drain_ns: int = ms(5)
    seed: int = 1

    # NetClone data-plane parameters (§4.1 defaults).
    num_filter_tables: int = 2
    filter_slots: int = 1 << 17

    # Host stack costs (VMA-like kernel bypass).
    client_tx_ns: int = 350
    client_rx_ns: int = 650
    server_tx_ns: int = 700
    server_rx_ns: int = 500
    coordinator_cpu_ns: int = 700
    laedge_slots_per_server: Optional[int] = None

    # Switch timing.
    switch_pipeline_ns: int = 400
    switch_recirc_ns: int = 700

    extra: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ExperimentError(
                f"unknown scheme {self.scheme!r}; choose one of {SCHEMES}"
            )
        if self.workload is None:
            self.workload = make_synthetic_spec("exp", mean_us=25.0)
        if self.num_servers < 2:
            raise ExperimentError("experiments need at least two servers")
        if self.num_clients < 1:
            raise ExperimentError("experiments need at least one client")
        if self.rate_rps <= 0:
            raise ExperimentError("offered load must be positive")

    # ------------------------------------------------------------------
    def worker_counts(self) -> List[int]:
        """Per-server worker-thread counts (homogeneous or explicit)."""
        if isinstance(self.workers_per_server, int):
            return [self.workers_per_server] * self.num_servers
        counts = list(self.workers_per_server)
        if len(counts) != self.num_servers:
            raise ExperimentError(
                f"{len(counts)} worker counts for {self.num_servers} servers"
            )
        return counts

    @property
    def end_ns(self) -> int:
        """End of the measurement window."""
        return self.warmup_ns + self.measure_ns

    @property
    def total_ns(self) -> int:
        """Total simulated time including drain."""
        return self.end_ns + self.drain_ns


class Cluster:
    """A built testbed, ready to run."""

    def __init__(self, config: ClusterConfig):
        self.config = config
        self.sim = Simulator()
        self.rngs = RngRegistry(config.seed)
        self.recorder = LatencyRecorder(warmup_ns=config.warmup_ns, end_ns=config.end_ns)
        self.switch = ProgrammableSwitch(
            self.sim,
            name="tor",
            pipeline_latency_ns=config.switch_pipeline_ns,
            recirc_latency_ns=config.switch_recirc_ns,
        )
        self.topology = StarTopology(self.sim, self.switch)
        self.servers: List[RpcServer] = []
        self.clients: List[OpenLoopClient] = []
        self.coordinator: Optional[LaedgeCoordinator] = None
        self.program: Optional[NetCloneProgram] = None
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        config = self.config
        scheme = config.scheme
        netclone_mode = scheme in _NETCLONE_SCHEMES
        jitter = JitterModel(config.jitter_p, config.jitter_factor)

        # LÆDGE needs its coordinator's address before servers exist.
        coordinator_ip = self.topology.allocate_ip() if scheme == "laedge" else None

        worker_counts = self.config.worker_counts()
        for index in range(config.num_servers):
            server = RpcServer(
                self.sim,
                name=f"srv{index + 1}",
                ip=self.topology.allocate_ip(),
                server_id=index,
                service=config.workload.make_service(index),
                jitter=jitter,
                rng=self.rngs.stream(f"server{index}"),
                num_workers=worker_counts[index],
                netclone_mode=netclone_mode,
                reply_to_ip=coordinator_ip,
                tx_cost_ns=config.server_tx_ns,
                rx_cost_ns=config.server_rx_ns,
            )
            self.topology.add_host(server)
            self.servers.append(server)
        server_ips = [server.ip for server in self.servers]

        if scheme == "laedge":
            slots = config.laedge_slots_per_server
            if slots is None:
                slots = max(worker_counts)
            self.coordinator = LaedgeCoordinator(
                self.sim,
                name="coordinator",
                ip=coordinator_ip,
                server_ips=server_ips,
                rng=self.rngs.stream("coordinator"),
                slots_per_server=slots,
                cpu_cost_ns=config.coordinator_cpu_ns,
            )
            self.topology.add_host(self.coordinator)

        if netclone_mode:
            program_args = dict(
                server_ips=server_ips,
                num_filter_tables=config.num_filter_tables,
                filter_slots=config.filter_slots,
            )
            if scheme == "racksched":
                self.program = RackSchedProgram(**program_args)
            elif scheme == "netclone-racksched":
                self.program = NetCloneRackSchedProgram(**program_args)
            else:
                self.program = NetCloneProgram(
                    filtering_enabled=(scheme != "netclone-nofilter"),
                    **program_args,
                )
            self.switch.install_program(self.program)
            if scheme == "netclone-noclonedrop":
                # Ablation: keep state piggybacking but accept stale clones.
                for server in self.servers:
                    server.drop_stale_clones = False

        per_client_rate = config.rate_rps / config.num_clients
        for index in range(config.num_clients):
            self.clients.append(
                self._make_client(index, per_client_rate, server_ips, coordinator_ip)
            )

    def _make_client(
        self,
        index: int,
        rate_rps: float,
        server_ips: Sequence[int],
        coordinator_ip: Optional[int],
    ) -> OpenLoopClient:
        config = self.config
        common = dict(
            sim=self.sim,
            name=f"client{index + 1}",
            ip=self.topology.allocate_ip(),
            client_id=index,
            workload=config.workload.make_workload(self.rngs.stream(f"workload{index}")),
            rate_rps=rate_rps,
            recorder=self.recorder,
            rng=self.rngs.stream(f"client{index}"),
            stop_at_ns=config.end_ns,
            tx_cost_ns=config.client_tx_ns,
            rx_cost_ns=config.client_rx_ns,
        )
        scheme = config.scheme
        if scheme == "baseline":
            client: OpenLoopClient = BaselineClient(server_ips=server_ips, **common)
        elif scheme == "cclone":
            client = CCloneClient(server_ips=server_ips, **common)
        elif scheme == "laedge":
            client = LaedgeClient(coordinator_ip=coordinator_ip, **common)
        else:
            assert self.program is not None
            client = NetCloneClient(
                num_groups=self.program.num_groups,
                num_filter_tables=config.num_filter_tables,
                **common,
            )
        self.topology.add_host(client)
        return client

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm every client's arrival process."""
        for client in self.clients:
            client.start()

    def run(self, until: Optional[int] = None) -> None:
        """Run to *until* (default: the configured total duration)."""
        self.sim.run(until=self.config.total_ns if until is None else until)

    # ------------------------------------------------------------------
    def load_point(self) -> LoadPoint:
        """Reduce the finished run to one measured point."""
        recorder = self.recorder
        extra: Dict[str, float] = {
            "redundant_responses": float(
                sum(client.redundant_responses for client in self.clients)
            ),
            "clones_dropped": float(
                sum(server.counters.get("clones_dropped") for server in self.servers)
            ),
            "empty_queue_fraction": _mean_or_nan(
                [server.empty_queue_fraction() for server in self.servers]
            ),
        }
        for key in ("nc_cloned", "nc_filtered", "nc_fingerprint_overwrite"):
            extra[key] = float(self.switch.counters.get(key))
        if self.coordinator is not None:
            extra["coordinator_queue"] = float(self.coordinator.queue_len)
        return LoadPoint(
            offered_rps=recorder.offered_rps(),
            throughput_rps=recorder.throughput_rps(),
            p50_us=recorder.p50_us(),
            p99_us=recorder.p99_us(),
            p999_us=recorder.p999_us(),
            mean_us=recorder.mean_us(),
            samples=len(recorder),
            extra=extra,
        )


def _mean_or_nan(values: Sequence[float]) -> float:
    cleaned = [v for v in values if v == v]
    if not cleaned:
        return float("nan")
    return sum(cleaned) / len(cleaned)


# ----------------------------------------------------------------------
def run_point(config: ClusterConfig) -> LoadPoint:
    """Build, run and reduce one operating point."""
    cluster = Cluster(config)
    cluster.start()
    cluster.run()
    return cluster.load_point()


def run_sweep(
    config: ClusterConfig,
    offered_loads_rps: Sequence[float],
    scheme: Optional[str] = None,
) -> SweepResult:
    """Measure one throughput-latency curve.

    *config* provides everything but the rate (and optionally the
    scheme); each load re-runs an independent cluster with the same
    seed so curves differ only in offered load.
    """
    chosen_scheme = scheme if scheme is not None else config.scheme
    result = SweepResult(scheme=chosen_scheme, workload=config.workload.name)
    for rate in offered_loads_rps:
        point_config = replace(config, scheme=chosen_scheme, rate_rps=rate)
        result.add(run_point(point_config))
    return result
