"""JSQ(d): client-side power-of-d-choices load balancing (demo plugin).

The client samples ``d`` distinct servers per request and sends to the
one with the fewest of *its own* outstanding requests (ties break
uniformly).  This is the classic power-of-d-choices approximation of
join-shortest-queue using only local knowledge — no cloning, no switch
program, no coordinator — and sits between the random Baseline and the
switch-side RackSched JSQ.

The module doubles as the reference example of the scheme plugin
surface: it registers ``jsq-d3`` purely through
:func:`~repro.experiments.schemes.register_scheme`, with zero edits to
:mod:`repro.experiments.common`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.apps.client import OpenLoopClient
from repro.baselines.random_lb import PLAIN_RPC_PORT
from repro.errors import ExperimentError
from repro.experiments.schemes import SchemeContext, SchemeSpec, register_scheme
from repro.net.packet import Packet

__all__ = ["JsqDClient"]


class JsqDClient(OpenLoopClient):
    """Open-loop client that joins the least-loaded of *d* random servers.

    Requests whose packets are dropped (bounded NIC RX queues at
    overload) never see a response, so their outstanding marks would
    bias routing away from the affected server forever.  Entries older
    than ``stale_after_ns`` are therefore expired lazily — insertion
    order is send order, so the purge is O(1) amortised.  The default
    (10 ms) is far above any plausible response latency in these
    clusters, so only genuinely lost requests expire; lower it in step
    with the workload's tail latency if you register a faster variant.
    """

    def __init__(
        self,
        *args: Any,
        server_ips: Sequence[int],
        d: int = 3,
        stale_after_ns: int = 10_000_000,
        **kwargs: Any,
    ):
        super().__init__(*args, **kwargs)
        if d < 1:
            raise ExperimentError("JSQ(d) needs d >= 1")
        if len(server_ips) < d:
            raise ExperimentError(
                f"JSQ(d={d}) needs at least {d} servers, got {len(server_ips)}"
            )
        self.server_ips = list(server_ips)
        self.d = d
        self.stale_after_ns = stale_after_ns
        self._outstanding_at: Dict[int, int] = {ip: 0 for ip in self.server_ips}
        self._inflight_server: Dict[int, Tuple[int, int]] = {}

    def _expire_stale(self) -> None:
        deadline = self.sim.now - self.stale_after_ns
        while self._inflight_server:
            seq = next(iter(self._inflight_server))
            destination, sent_at = self._inflight_server[seq]
            if sent_at > deadline:
                break
            del self._inflight_server[seq]
            self._outstanding_at[destination] -= 1

    def build_packets(self, request: Any) -> List[Packet]:
        self._expire_stale()
        candidates = self.rng.sample(self.server_ips, self.d)
        best = min(self._outstanding_at[ip] for ip in candidates)
        destination = self.rng.choice(
            [ip for ip in candidates if self._outstanding_at[ip] == best]
        )
        self._outstanding_at[destination] += 1
        self._inflight_server[self._seq] = (destination, self.sim.now)
        return [
            Packet(
                src=self.ip,
                dst=destination,
                sport=PLAIN_RPC_PORT,
                dport=PLAIN_RPC_PORT,
                size=self.workload.request_size(request),
                payload=request,
            )
        ]

    def handle(self, packet: Packet) -> None:
        payload = packet.payload
        if payload is not None and payload.client_id == self.client_id:
            entry = self._inflight_server.pop(payload.client_seq, None)
            if entry is not None:
                self._outstanding_at[entry[0]] -= 1
        super().handle(packet)


def _jsq_d3_client(ctx: SchemeContext, common: Dict[str, Any]) -> JsqDClient:
    return JsqDClient(server_ips=ctx.server_ips, d=3, **common)


@register_scheme
def _jsq_d3_spec() -> SchemeSpec:
    return SchemeSpec(
        name="jsq-d3",
        description="client-side join-least-outstanding over 3 random choices",
        aliases=("p3c",),
        make_client=_jsq_d3_client,
    )
