"""Measurement: latency recording, sketches, percentiles, sweeps, tables."""

from repro.metrics.latency import LatencyRecorder, percentile
from repro.metrics.sketch import LatencySketch
from repro.metrics.sweep import LoadPoint, SweepResult
from repro.metrics.tables import format_table

__all__ = [
    "LatencyRecorder",
    "LatencySketch",
    "LoadPoint",
    "SweepResult",
    "format_table",
    "percentile",
]

from repro.metrics.charts import render_chart, render_sweeps  # noqa: E402
from repro.metrics.export import sweeps_to_csv, write_sweeps_csv  # noqa: E402
from repro.metrics.links import (  # noqa: E402
    LinkLoad,
    collect_link_loads,
    format_link_loads,
    trunk_summary,
)

__all__ += [
    "LinkLoad",
    "collect_link_loads",
    "format_link_loads",
    "render_chart",
    "render_sweeps",
    "sweeps_to_csv",
    "trunk_summary",
    "write_sweeps_csv",
]
