"""detlint rule engine: a positive and a seeded-violation pair per rule.

Mirrors ``test_scenario_invariants.py``'s structure: the positive side
is idiomatic code each rule must accept, the negative side plants the
exact hazard and asserts the exact message.  A second parametrized pass
re-lints every violation with the rule *disabled* and asserts silence —
so each seeded-violation test genuinely depends on its rule being
registered and enabled.

Also here: suppression and baseline round-trips, the signature-gating
helper the CLI and tools share, and the runtime sanitizers (planted
packet leak, RNG draw accounting).
"""

import pytest

from repro.analysis import (
    filter_baselined,
    lint_source,
    load_baseline,
    rule_names,
    write_baseline,
)
from repro.errors import ExperimentError
from repro.experiments.registry import UNREQUESTED, gate_harness_axes
from repro.sim.sanitize import (
    CountingRandom,
    SanitizingPacketPool,
    SanitizingRngRegistry,
    build_report,
    diff_draw_counts,
)

SIM_MODULE = "repro.sim.fake"
PLAIN_MODULE = "repro.charts.fake"


def _lint(source, module=PLAIN_MODULE, rules=None):
    return lint_source(source, path="fake.py", module=module, rules=rules)


def _only(findings, rule):
    hits = [finding for finding in findings if finding.rule == rule]
    assert len(hits) == 1, findings
    return hits[0]


# ----------------------------------------------------------------------
# Seeded violations: (rule, module, source, exact message)
# ----------------------------------------------------------------------
VIOLATIONS = [
    (
        "unseeded-random",
        PLAIN_MODULE,
        "import random\nvalue = random.random()\n",
        "module-level random.random() draws from the shared global "
        "stream; draw from a named RngRegistry stream instead",
    ),
    (
        "unseeded-random",
        PLAIN_MODULE,
        "import numpy as np\npick = np.random.choice([1, 2])\n",
        "module-level numpy.random.choice() draws from numpy's shared "
        "global stream; use RngRegistry.numpy_stream instead",
    ),
    (
        "wall-clock",
        SIM_MODULE,
        "import time\ndef stamp(sim):\n    return time.time()\n",
        f"wall-clock read time.time() inside {SIM_MODULE}; "
        "simulated components must take time from sim.now",
    ),
    (
        "unordered-iteration",
        SIM_MODULE,
        "def drain(events):\n    for event in set(events):\n        event()\n",
        "iterating a set has hash-seed-dependent order; sort it (or keep "
        "a list/deque) before it can feed scheduling or RNG draws",
    ),
    (
        "unordered-iteration",
        SIM_MODULE,
        "def track(table, obj):\n    table[id(obj)] = obj\n",
        "id()-keyed mapping makes ordering depend on object addresses; "
        "key by a stable field (uid, name, index) instead",
    ),
    (
        "env-read",
        SIM_MODULE,
        "import os\ndef knob():\n    return os.environ.get('REPRO_X')\n",
        "os.environ.get() inside knob() makes per-call behaviour "
        "depend on ambient process state; read configuration once at "
        "import or cluster-build time",
    ),
    (
        "packet-leak",
        PLAIN_MODULE,
        "def burst(pool):\n    pool.acquire(1, 2, 3, 4, 64)\n",
        "pool.acquire(...) result is discarded in burst(); the packet "
        "can never be released",
    ),
    (
        "packet-leak",
        PLAIN_MODULE,
        "def burst(pool):\n"
        "    packet = pool.acquire(1, 2, 3, 4, 64)\n"
        "    packet.size = 128\n",
        "packet acquired into 'packet' is neither released nor "
        "handed off on any path of burst()",
    ),
    (
        "dropped-handle",
        PLAIN_MODULE,
        "def arm(sim, cb):\n    sim.at(5, cb)\n",
        "cancellable handle from sim.at(...) is dropped; use "
        "sim.call_at(...) on the handle-free fast lane (same seq "
        "consumption, bit-identical order) or store the handle for cancel",
    ),
    (
        "dropped-handle",
        PLAIN_MODULE,
        "def arm(self, cb):\n    self.sim.schedule(5, cb)\n",
        "cancellable handle from self.sim.schedule(...) is dropped; use "
        "self.sim.call_after(...) on the handle-free fast lane (same seq "
        "consumption, bit-identical order) or store the handle for cancel",
    ),
    (
        "shm-leak",
        PLAIN_MODULE,
        "from multiprocessing import shared_memory\n"
        "def open_channel():\n"
        "    return shared_memory.SharedMemory(create=True, size=64)\n",
        "shared_memory segment created without an owner-side "
        f"unlink() anywhere in {PLAIN_MODULE}; leaked segments "
        "outlive the process",
    ),
    (
        "spec-lambda",
        PLAIN_MODULE,
        "spec = SchemeSpec(name='x', make_clients=lambda ctx: [])\n",
        "lambda inside SchemeSpec(...) cannot pickle to sweep "
        "worker processes; use a module-level function",
    ),
    (
        "param-guard",
        PLAIN_MODULE,
        "def make_policy(params):\n    return params.get('p', 0.5)\n",
        "plugin factory make_policy() reads params without rejecting "
        "unknown keys; a typoed knob silently runs defaults — "
        "validate with a known-key check",
    ),
    (
        "epoch-stamp",
        PLAIN_MODULE,
        "def push(tor, pairs):\n    tor.install_group_table(build(pairs))\n",
        "group table installed without a .with_epoch() stamp; clients "
        "compare epochs to detect rebuilds, so an unstamped install "
        "that keeps the group count looks like no change",
    ),
]

_IDS = [f"{rule}-{index}" for index, (rule, _, _, _) in enumerate(VIOLATIONS)]


@pytest.mark.parametrize("rule,module,source,message", VIOLATIONS, ids=_IDS)
def test_seeded_violation_fires_with_exact_message(rule, module, source, message):
    finding = _only(_lint(source, module=module), rule)
    assert finding.message == message
    assert finding.line >= 1 and finding.path == "fake.py"


@pytest.mark.parametrize("rule,module,source,message", VIOLATIONS, ids=_IDS)
def test_seeded_violation_silent_when_rule_disabled(rule, module, source, message):
    enabled = [name for name in rule_names() if name != rule]
    assert not [
        finding
        for finding in _lint(source, module=module, rules=enabled)
        if finding.rule == rule
    ]


# ----------------------------------------------------------------------
# Positives: idiomatic code every rule must accept
# ----------------------------------------------------------------------
POSITIVES = [
    # Owned, seeded streams are the sanctioned randomness.
    "import random\nrng = random.Random(7)\nvalue = rng.random()\n",
    "import numpy as np\nrng = np.random.default_rng(7)\n",
    # Simulated time comes from the simulator.
    "def stamp(sim):\n    return sim.now\n",
    # Sorted sets and stable keys are fine in sim packages.
    "def drain(events):\n    for event in sorted(set(events)):\n        event()\n",
    "def track(table, packet):\n    table[packet.uid] = packet\n",
    # Module-level env reads configure once at import.
    "import os\nFLAG = os.environ.get('REPRO_X')\n",
    # Released, returned, or handed-off packets are all owned paths.
    "def burst(pool):\n"
    "    packet = pool.acquire(1, 2, 3, 4, 64)\n"
    "    packet.release()\n",
    "def burst(pool):\n    return pool.acquire(1, 2, 3, 4, 64)\n",
    "def burst(self, pool):\n"
    "    packet = pool.acquire(1, 2, 3, 4, 64)\n"
    "    self.send(packet)\n",
    # Fast-lane scheduling needs no handle; stored handles can cancel.
    "def arm(sim, cb):\n    sim.call_at(5, cb)\n",
    "def arm(self, sim, cb):\n    self.timer = sim.at(5, cb)\n",
    # The owner unlinks its segments somewhere in the module.
    "from multiprocessing import shared_memory\n"
    "def open_channel():\n"
    "    return shared_memory.SharedMemory(create=True, size=64)\n"
    "def close_channel(seg):\n    seg.close()\n    seg.unlink()\n",
    # Module-level factories pickle; guarded params reject typos.
    "spec = SchemeSpec(name='x', make_clients=build_clients)\n",
    "def make_policy(params):\n"
    "    _check_params(params, {'p'})\n"
    "    return params.get('p', 0.5)\n",
    # Stamped tables, directly or via a local.
    "def push(tor, base, epoch):\n"
    "    tor.install_group_table(base.with_epoch(epoch))\n",
    "def push(tor, base, epoch):\n"
    "    table = base.with_epoch(epoch)\n"
    "    tor.install_group_table(table)\n",
]


@pytest.mark.parametrize("source", POSITIVES)
def test_idiomatic_code_is_clean(source):
    assert _lint(source, module=SIM_MODULE) == []


def test_sim_scoped_rules_ignore_other_packages():
    wall = "import time\ndef stamp(sim):\n    return time.time()\n"
    assert _lint(wall, module="repro.charts.export") == []
    assert _only(_lint(wall, module="repro.net.fake"), "wall-clock")


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_inline_suppression_silences_named_rule():
    source = (
        "import random\n"
        "value = random.random()  # detlint: ignore[unseeded-random] -- demo\n"
    )
    assert _lint(source) == []


def test_inline_suppression_is_rule_specific():
    source = (
        "import random\n"
        "value = random.random()  # detlint: ignore[wall-clock] -- wrong rule\n"
    )
    assert _only(_lint(source), "unseeded-random")


def test_bare_ignore_silences_every_rule_on_the_line():
    source = "import random\nvalue = random.random()  # detlint: ignore\n"
    assert _lint(source) == []


def test_skip_file_silences_the_whole_file():
    source = (
        "# detlint: skip-file\n"
        "import random\n"
        "value = random.random()\n"
        "def burst(pool):\n    pool.acquire(1, 2, 3, 4, 64)\n"
    )
    assert _lint(source) == []


# ----------------------------------------------------------------------
# Baseline round-trip
# ----------------------------------------------------------------------
def test_baseline_round_trip(tmp_path):
    source = "import random\nvalue = random.random()\n"
    findings = _lint(source)
    path = str(tmp_path / "baseline.json")
    write_baseline(findings, path)
    fresh, matched = filter_baselined(findings, load_baseline(path))
    assert fresh == [] and matched == len(findings) == 1


def test_baseline_survives_line_shifts_but_not_new_findings(tmp_path):
    original = "import random\nvalue = random.random()\n"
    path = str(tmp_path / "baseline.json")
    write_baseline(_lint(original), path)
    # Same finding, pushed two lines down: still baselined (fingerprints
    # carry no line numbers).
    shifted = "import random\n\n\nvalue = random.random()\n"
    fresh, matched = filter_baselined(_lint(shifted), load_baseline(path))
    assert fresh == [] and matched == 1
    # A second, distinct draw is a new finding.
    grown = shifted + "def roll():\n    return random.random()\n"
    fresh, matched = filter_baselined(_lint(grown), load_baseline(path))
    assert matched == 1
    assert [finding.scope for finding in fresh] == ["roll"]


def test_baseline_matching_is_multiset():
    source = "import random\na = random.random()\nb = random.random()\n"
    findings = _lint(source)
    assert len(findings) == 2
    # One baseline entry covers one of the identical pair, not both.
    fresh, matched = filter_baselined(findings, [findings[0].fingerprint()])
    assert matched == 1 and len(fresh) == 1


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(str(tmp_path / "absent.json")) == []


# ----------------------------------------------------------------------
# Shared harness-capability gating (CLI + tools)
# ----------------------------------------------------------------------
def _harness_with_axes(scale, seed, workload=None, metrics="exact"):
    return {"workload": workload, "metrics": metrics}


def _harness_without_axes(scale, seed):
    return {}


def test_gate_passes_requested_axis_through():
    kwargs = gate_harness_axes(
        _harness_with_axes, "fake", requested={"workload": "mmpp"}
    )
    assert kwargs == {"workload": "mmpp"}


def test_gate_supplies_default_for_declared_unrequested_axis():
    kwargs = gate_harness_axes(
        _harness_with_axes,
        "fake",
        requested={"metrics": UNREQUESTED},
        defaults={"metrics": "exact"},
    )
    assert kwargs == {"metrics": "exact"}


def test_gate_omits_unrequested_axis_without_default():
    assert gate_harness_axes(
        _harness_with_axes, "fake", requested={"workload": UNREQUESTED}
    ) == {}


def test_gate_errors_on_unaware_harness():
    with pytest.raises(ExperimentError, match="has no --metrics axis"):
        gate_harness_axes(
            _harness_without_axes, "fake", requested={"metrics": "sketch"}
        )


def test_gate_none_is_a_real_value():
    # fluid=None selects the per-packet path — it must be passed, not
    # treated as "unrequested".
    def collect(scale, fluid=0.0):
        return fluid

    kwargs = gate_harness_axes(collect, "fig18", requested={"fluid": None})
    assert kwargs == {"fluid": None}


# ----------------------------------------------------------------------
# Runtime sanitizers
# ----------------------------------------------------------------------
def test_packet_ledger_catches_a_planted_leak():
    pool = SanitizingPacketPool()
    kept = pool.acquire(1, 2, 3, 4, 64)
    leaked = pool.acquire(5, 6, 7, 8, 64)
    kept.release()
    report = build_report(pool, SanitizingRngRegistry(7))
    assert not report.clean
    assert report.acquired == 2 and report.retired == 1
    [(uid, site)] = report.packet_leaks
    assert uid == leaked.uid
    assert site.startswith("test_analysis_rules.py:")
    assert f"leaked packet uid={uid} acquired at {site}" in report.format()


def test_packet_ledger_clean_when_everything_released():
    pool = SanitizingPacketPool()
    for _ in range(3):
        packet = pool.acquire(1, 2, 3, 4, 64)
        packet.release()
    report = build_report(pool, SanitizingRngRegistry(7))
    assert report.clean and report.acquired == report.retired == 3
    assert report.foreign_releases == 0


def test_packet_ledger_tracks_recycled_lives():
    pool = SanitizingPacketPool()
    first = pool.acquire(1, 2, 3, 4, 64)
    first.release()
    second = pool.acquire(1, 2, 3, 4, 64)
    # Same object recycled, new life: only the open life is a leak.
    assert second is first
    report = build_report(pool, SanitizingRngRegistry(7))
    assert [uid for uid, _ in report.packet_leaks] == [second.uid]


def test_counting_random_counts_derived_draws():
    rng = CountingRandom(7)
    rng.random()
    rng.expovariate(1.0)
    rng.randrange(10)
    assert rng.draws >= 3
    plain = CountingRandom(7)
    plain.random()
    plain.expovariate(1.0)
    plain.randrange(10)
    # Determinism: same seed, same draw count, same values.
    assert plain.draws == rng.draws


def test_draw_counts_identical_across_same_seed_runs():
    def run(seed):
        rngs = SanitizingRngRegistry(seed)
        rngs.stream("client").expovariate(2.0)
        rngs.stream("server").random()
        rngs.stream("server").random()
        return rngs.draw_counts()

    assert run(7) == run(7)
    assert diff_draw_counts(run(7), run(7)) == []


def test_diff_draw_counts_names_divergent_streams():
    first = {"client": 4, "server": 2}
    second = {"client": 4, "server": 3, "extra": 1}
    assert diff_draw_counts(first, second) == ["extra", "server"]


def test_sanitized_cluster_run_is_clean(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    from repro.experiments.common import Cluster, ClusterConfig

    config = ClusterConfig(
        scheme="netclone",
        num_servers=2,
        num_clients=2,
        rate_rps=10_000,
        warmup_ns=1_000_000,
        measure_ns=4_000_000,
        drain_ns=2_000_000,
    )
    cluster = Cluster(config)
    assert isinstance(cluster.packet_pool, SanitizingPacketPool)
    cluster.start()
    cluster.run()
    report = cluster.sanitize_check()
    assert report is not None and report.clean
    assert report.acquired > 0 and report.draw_counts
    assert report.draw_digest  # stable digest, usable for run-vs-run diffs


def test_unsanitized_cluster_pays_nothing(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    from repro.experiments.common import Cluster, ClusterConfig
    from repro.net.packet import PacketPool

    config = ClusterConfig(
        scheme="netclone",
        num_servers=2,
        num_clients=2,
        rate_rps=10_000,
        warmup_ns=1_000_000,
        measure_ns=2_000_000,
        drain_ns=1_000_000,
    )
    cluster = Cluster(config)
    assert type(cluster.packet_pool) is PacketPool
    assert cluster.sanitize_report() is None and cluster.sanitize_check() is None
