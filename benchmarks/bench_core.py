"""Benchmark: raw engine throughput, no network model on top.

Two substrates every experiment sits on, measured in isolation: the
event loop's fast lane (``call_at`` pushing bare tuples) and the
packet free-list pool.  ``REPRO_BENCH_SCALE`` scales the cycle counts
(1M schedule/run cycles at the default 0.25).
"""

from conftest import run_once

from repro.net.packet import PacketPool
from repro.sim.core import Simulator


def _schedule_run(n: int) -> int:
    """Schedule *n* monotone fast-lane events, then drain them."""
    sim = Simulator()
    call_at = sim.call_at
    noop = int
    for t in range(n):
        call_at(t, noop)
    return sim.run()


def _schedule_run_churn(n: int) -> int:
    """Same, with every fourth event a cancellable that gets cancelled.

    Exercises the slow lane, lazy deletion and heap compaction under
    the fast lane's feet.
    """
    sim = Simulator()
    call_at = sim.call_at
    at = sim.at
    noop = int
    for t in range(n):
        if t & 3:
            call_at(t, noop)
        else:
            at(t, noop).cancel()
    return sim.run()


def _pool_cycle(n: int) -> PacketPool:
    """Acquire/release *n* packet lives through one pool."""
    pool = PacketPool()
    for _ in range(n):
        pool.acquire(1, 2, 3, 4, 128).release()
    return pool


def bench_core_schedule_run(benchmark, bench_scale):
    n = max(1, int(4_000_000 * bench_scale))
    executed = run_once(benchmark, _schedule_run, n=n)
    assert executed == n


def bench_core_schedule_run_churn(benchmark, bench_scale):
    n = max(4, int(4_000_000 * bench_scale))
    executed = run_once(benchmark, _schedule_run_churn, n=n)
    assert executed == n - (n + 3) // 4


def bench_core_packet_pool(benchmark, bench_scale):
    n = max(1, int(4_000_000 * bench_scale))
    pool = run_once(benchmark, _pool_cycle, n=n)
    # Steady state: one backing object recycled for every life.
    assert pool.allocated == 1
    assert pool.released == n
