"""ASIC resource accounting.

Section 4.1 of the paper reports the NetClone prototype's footprint on
a 6.5 Tbps Tofino: 7 match-action stages, 18.04 % SRAM, 12.28 % match
input crossbar, 26.79 % hash units, 21.43 % ALUs, and — for the filter
tables specifically — 2 tables x 2^17 slots x 32 bits ~= 1.05 MB, which
the paper calls 4.77 % of switch memory (implying a ~22 MB SRAM
budget, consistent with the "10-20 MB" figure in §2.3).

:class:`ResourceModel` recomputes these numbers from an actual
pipeline, so the `table_resources` experiment can print the same rows
as §4.1 and tests can assert the arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.switchsim.pipeline import Pipeline

__all__ = ["ResourceModel", "ResourceReport", "TOFINO_SRAM_BYTES"]

#: SRAM budget implied by §4.1's "1.05 MB is 4.77 % of switch memory".
TOFINO_SRAM_BYTES = 22 * 1024 * 1024

#: Back-of-the-envelope capacity constants from §4.1.
_PAPER_AVG_LATENCY_US = 50
_KRPS_PER_SLOT = 20


@dataclass(frozen=True)
class ResourceReport:
    """Computed resource usage of one compiled program."""

    stages_used: int
    register_sram_bytes: int
    register_cells: int
    table_entries: int
    hash_units: int
    sram_fraction: float
    supported_throughput_rps: float

    def rows(self) -> List[str]:
        """Formatted rows mirroring the §4.1 narrative."""
        megabytes = self.register_sram_bytes / (1024 * 1024)
        return [
            f"match-action stages used: {self.stages_used}",
            f"register SRAM: {megabytes:.2f} MB "
            f"({self.sram_fraction * 100:.2f}% of switch memory)",
            f"register cells: {self.register_cells}",
            f"match-action table entries: {self.table_entries}",
            f"hash units: {self.hash_units}",
            f"supported throughput (20 KRPS/slot rule): "
            f"{self.supported_throughput_rps / 1e9:.2f} BRPS",
        ]


class ResourceModel:
    """Accounts a pipeline's usage against the ASIC budget."""

    def __init__(self, sram_budget_bytes: int = TOFINO_SRAM_BYTES):
        self.sram_budget_bytes = sram_budget_bytes

    def report(self, pipeline: Pipeline, filter_slots: int = 0) -> ResourceReport:
        """Account *pipeline*; ``filter_slots`` sizes the throughput rule.

        The paper's back-of-the-envelope: with 50 us average request
        latency each filter slot turns over 20 K times per second, so
        2^18 total slots support ~5.24 BRPS.
        """
        registers = pipeline.all_registers()
        sram = sum(reg.sram_bytes for reg in registers)
        cells = sum(reg.size for reg in registers)
        entries = sum(len(table) for table in pipeline.all_tables())
        supported = float(filter_slots) * _KRPS_PER_SLOT * 1e3
        return ResourceReport(
            stages_used=pipeline.stages_used,
            register_sram_bytes=sram,
            register_cells=cells,
            table_entries=entries,
            hash_units=len(pipeline.all_hash_units()),
            sram_fraction=sram / self.sram_budget_bytes,
            supported_throughput_rps=supported,
        )
