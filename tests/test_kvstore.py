"""Tests for the key-value store substrate and cost models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KVStoreError
from repro.kvstore import (
    KeyValueStore,
    KvCostModel,
    MemcachedCostModel,
    RedisCostModel,
)
from repro.workloads.kv import KvOp, KvRequest


def test_store_get_returns_fixed_size_values():
    store = KeyValueStore(num_keys=100)
    value = store.get(5)
    assert len(value) == KeyValueStore.VALUE_BYTES
    assert store.get(5) == value  # deterministic


def test_store_values_differ_by_key():
    store = KeyValueStore(num_keys=100)
    assert store.get(1) != store.get(2)


def test_store_replicas_identical():
    """Two replicas serve identical data — what makes cloning safe."""
    a, b = KeyValueStore(1000), KeyValueStore(1000)
    for key in (0, 17, 999):
        assert a.get(key) == b.get(key)
        assert a.value_checksum(key) == b.value_checksum(key)


def test_store_scan_wraps_around_keyspace():
    store = KeyValueStore(num_keys=10)
    values = store.scan(8, 5)
    assert len(values) == 5
    assert values[0] == store.get(8)
    assert values[2] == store.get(0)  # wrapped


def test_store_set_overrides_and_counts():
    store = KeyValueStore(num_keys=10)
    new_value = b"\x07" * store.VALUE_BYTES
    store.set(3, new_value)
    assert store.get(3) == new_value
    assert store.scan(3, 1) == [new_value]
    assert store.sets == 1 and store.gets == 1 and store.scans == 1


def test_store_validation():
    with pytest.raises(KVStoreError):
        KeyValueStore(0)
    store = KeyValueStore(10)
    with pytest.raises(KVStoreError):
        store.get(10)
    with pytest.raises(KVStoreError):
        store.scan(0, 0)
    with pytest.raises(KVStoreError):
        store.set(1, b"short")


@given(st.integers(min_value=0, max_value=999))
@settings(max_examples=100, deadline=None)
def test_property_store_values_fixed_width(key):
    store = KeyValueStore(1000)
    assert len(store.get(key)) == store.VALUE_BYTES


# ----------------------------------------------------------------------
# Cost models
# ----------------------------------------------------------------------
def request(op, count=1):
    return KvRequest(client_id=0, client_seq=1, op=op, key=0, count=count)


def test_cost_models_scale_scan_with_count():
    for model in (RedisCostModel(), MemcachedCostModel()):
        small = model.service_ns(request(KvOp.SCAN, count=10))
        large = model.service_ns(request(KvOp.SCAN, count=100))
        assert large > small
        assert model.service_ns(request(KvOp.GET)) < small


def test_cost_models_calibration_anchor():
    """GET ~50 us, SCAN(100) ~2.5 ms: the Figure 11/12 saturation points."""
    redis = RedisCostModel()
    get = redis.service_ns(request(KvOp.GET))
    scan = redis.service_ns(request(KvOp.SCAN, count=100))
    mean_99_1 = 0.99 * get + 0.01 * scan
    mean_90_10 = 0.9 * get + 0.1 * scan
    # 48 workers saturate at 48/mean: ~0.6 MRPS and ~0.15 MRPS.
    assert 48 / (mean_99_1 / 1e9) == pytest.approx(0.64e6, rel=0.1)
    assert 48 / (mean_90_10 / 1e9) == pytest.approx(0.16e6, rel=0.15)


def test_cost_model_set_and_unknown():
    model = KvCostModel(get_ns=1, scan_base_ns=2, scan_per_item_ns=3, set_ns=4)
    assert model.service_ns(request(KvOp.SET)) == 4
    with pytest.raises(KVStoreError):
        KvCostModel(get_ns=-1, scan_base_ns=0, scan_per_item_ns=0, set_ns=0)
