"""Shared-memory result channel for sweep workers.

``concurrent.futures`` returns every worker result through the pool's
result pipe: the payload is pickled in the worker, copied through a
socketpair, and unpickled in the parent — three copies of O(payload)
bytes per point.  For the streaming metrics plane the payloads are
small (sketch-mode points carry O(buckets) sketches), but exact-mode
points on 100M-request workloads would ship O(requests) sample bytes
through that pipe.  This module moves result payloads out of the pipe:

* Each **worker** lazily creates an append-only arena of
  ``multiprocessing.shared_memory`` segments (one ring of
  :data:`ARENA_BYTES` blocks, a bigger block when a payload needs it),
  writes each pickled result into the arena, and returns a tiny
  :class:`ShmRef` (segment name, offset, length) through the pipe —
  O(1) pipe traffic per point regardless of payload size.
* The **parent** resolves refs through a :class:`ShmReader`, which
  attaches each segment once, reads payloads zero-copy out of the
  mapping, and unlinks every segment when the batch closes.

The channel degrades exactly like the executor it serves: if shared
memory is unavailable (no ``/dev/shm``, exotic platforms) or any write
fails, the worker returns the plain result object through the pipe —
``resolve`` passes non-refs through untouched, so mixed batches are
fine and behaviour is transport-independent (jobs=1 ≡ jobs=N results,
bit for bit).  ``REPRO_SHM_RESULTS=0`` disables the channel outright.

Worker-created segments are deliberately unregistered from the
worker's ``resource_tracker`` (the parent owns unlinking); a worker
that dies between creating a segment and returning its ref leaks that
segment until reboot — the same window in which the pool itself is
broken and falls back to serial.
"""

from __future__ import annotations

import logging
import os
import pickle
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

_LOG = logging.getLogger(__name__)

__all__ = ["ARENA_BYTES", "ShmReader", "ShmRef", "available", "write_result"]

#: Default arena-segment size; payloads larger than this get their own
#: right-sized segment.
ARENA_BYTES = 1 << 20


@dataclass(frozen=True)
class ShmRef:
    """Pipe-sized pointer to one pickled result in shared memory."""

    name: str
    offset: int
    length: int


def _shared_memory():
    from multiprocessing import shared_memory

    return shared_memory


def available() -> bool:
    """Whether the channel should be used (probed once per process)."""
    global _AVAILABLE
    if _AVAILABLE is None:
        if os.environ.get("REPRO_SHM_RESULTS", "1") == "0":
            _AVAILABLE = False
        else:
            try:
                # No _unregister here: unlink() already tells the
                # tracker, and a second notice raises in its loop.
                shm = _shared_memory().SharedMemory(create=True, size=16)
                shm.close()
                shm.unlink()
                _AVAILABLE = True
            except Exception as exc:
                _LOG.debug("shared-memory result channel unavailable: %s", exc)
                _AVAILABLE = False
    return _AVAILABLE


_AVAILABLE: Optional[bool] = None


def _unregister(shm: Any) -> None:
    """Drop *shm* from this process's resource tracker, best effort.

    The parent owns unlinking; without this, a ``spawn``-method
    worker's tracker would unlink segments at worker exit (racing the
    parent's reads) or warn about "leaked" segments it doesn't own.
    """
    try:  # pragma: no cover - tracker layout is an implementation detail
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


class _WriterArena:
    """Worker-side append-only arena over shared-memory segments."""

    def __init__(self) -> None:
        self._segment: Optional[Any] = None
        self._offset = 0
        self._counter = 0

    def _new_segment(self, size: int) -> Any:
        shared_memory = _shared_memory()
        self._counter += 1
        name = f"repro_sweep_{os.getpid()}_{self._counter}"
        segment = shared_memory.SharedMemory(
            create=True, size=max(size, ARENA_BYTES), name=name
        )
        _unregister(segment)
        return segment

    def write(self, data: bytes) -> ShmRef:
        """Append *data*; returns its :class:`ShmRef`."""
        length = len(data)
        if self._segment is None or self._offset + length > self._segment.size:
            # The previous segment stays mapped until process exit so
            # the parent can read refs into it at any time.
            self._segment = self._new_segment(length)
            self._offset = 0
        offset = self._offset
        self._segment.buf[offset : offset + length] = data
        self._offset = offset + length
        return ShmRef(self._segment.name, offset, length)


_ARENA: Optional[_WriterArena] = None


def write_result(result: Any) -> Any:
    """Worker side: park *result* in shared memory, return a ref.

    Falls back to returning *result* itself (the classic pipe path)
    when the channel is unavailable or the write fails — the parent's
    :meth:`ShmReader.resolve` handles both shapes.
    """
    global _ARENA
    if not available():
        return result
    try:
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        if _ARENA is None:
            _ARENA = _WriterArena()
        return _ARENA.write(payload)
    except Exception as exc:
        _LOG.debug("shm result write failed (%s); returning via pipe", exc)
        return result


class ShmReader:
    """Parent side: resolves :class:`ShmRef` results, owns cleanup.

    Use as a context manager around one executor batch; segments are
    attached once per name and unlinked on close.  Resolve every ref
    **before** closing (and before worker processes are reaped on
    platforms using the ``spawn`` start method).
    """

    def __init__(self) -> None:
        self._segments: Dict[str, Any] = {}

    def __enter__(self) -> "ShmReader":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def resolve(self, result: Any) -> Any:
        """Materialise one worker result (pass non-refs through)."""
        if not isinstance(result, ShmRef):
            return result
        segment = self._segments.get(result.name)
        if segment is None:
            segment = _shared_memory().SharedMemory(name=result.name)
            self._segments[result.name] = segment
        data = bytes(segment.buf[result.offset : result.offset + result.length])
        return pickle.loads(data)

    def resolve_all(self, results: List[Any]) -> List[Any]:
        """Materialise a whole batch, order preserved."""
        return [self.resolve(result) for result in results]

    def close(self) -> None:
        """Detach and unlink every segment this reader attached."""
        for segment in self._segments.values():
            try:
                segment.close()
                segment.unlink()
            except Exception:  # pragma: no cover - double-close races
                pass
        self._segments.clear()
