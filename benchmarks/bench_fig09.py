"""Benchmark: regenerate Figure 9 (2/4/6 worker servers)."""

from conftest import run_once

from repro.experiments import fig09_scalability


def bench_fig09_scalability(benchmark, bench_scale, bench_seed):
    report = run_once(
        benchmark, fig09_scalability.run, scale=bench_scale, seed=bench_seed
    )
    assert "Figure 9" in report
    assert "scalability" in report
