"""Host base class.

A host owns a NIC, is attached to exactly one link (its ToR uplink in
the star topologies used throughout), and dispatches received packets
to :meth:`handle`, which applications override.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Optional

from repro.errors import NetworkError
from repro.net.link import Link
from repro.net.nic import Nic
from repro.net.packet import Packet
from repro.sim.core import Simulator

__all__ = ["Host"]


class Host:
    """One end host (client, server, or coordinator)."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        ip: int,
        tx_cost_ns: int = 700,
        rx_cost_ns: int = 700,
        rx_queue_limit: int = 4096,
    ):
        self.sim = sim
        self.name = name
        self.ip = ip
        self.nic = Nic(
            sim,
            tx_cost_ns=tx_cost_ns,
            rx_cost_ns=rx_cost_ns,
            rx_queue_limit=rx_queue_limit,
        )
        self.link: Optional[Link] = None

    # ------------------------------------------------------------------
    def attach_link(self, link: Link) -> None:
        """Connect this host to its (single) uplink."""
        if self.link is not None:
            raise NetworkError(f"{self.name} is already attached to a link")
        self.link = link

    def send(self, packet: Packet) -> None:
        """Send *packet* through the NIC TX path onto the uplink.

        The hot path books the NIC TX slot *and* the uplink's
        serialisation slot in one step, at call time: each direction of
        the uplink has this host as its only sender and TX completion
        times are nondecreasing, so the link booking a departure at
        ``done`` would make is already known now — no TX-done event.
        Links that can drop (down or lossy) fall back to the evented
        path, which re-evaluates the link when the packet actually
        leaves the NIC.
        """
        link = self.link
        if link is None:
            raise NetworkError(f"{self.name} has no link attached")
        nic = self.nic
        now = self.sim.now
        start = nic._tx_free_at
        if start < now:
            start = now
        done = start + nic.tx_cost_ns
        nic._tx_free_at = done
        nic.tx_count += 1
        if link.down or link.loss_probability > 0.0:
            if done == now:
                link.send(packet, self)
            else:
                self.sim.call_at(done, self._emit, packet)
            return
        size = packet.size
        ser = link._ser_ns.get(size)
        if ser is None:
            ser = link.serialization_ns(size)
        if link.a is self:
            lstart = link._free_at_a
            if lstart < done:
                lstart = done
            done_serialising = lstart + ser
            link._free_at_a = done_serialising
            link._tx_bytes_a += size
            mode = link._mode_b
            entry = link._entry_b
            when = done_serialising + link._sched_off_b
        else:
            lstart = link._free_at_b
            if lstart < done:
                lstart = done
            done_serialising = lstart + ser
            link._free_at_b = done_serialising
            link._tx_bytes_b += size
            mode = link._mode_a
            entry = link._entry_a
            when = done_serialising + link._sched_off_a
        link.tx_count += 1
        sim = self.sim
        if mode == 2:
            entry(packet, when)
            return
        # Simulator.call_at push inlined (keep in sync with sim/core.py).
        seq = sim._seq + 1
        sim._seq = seq
        tail = sim._tail
        if not tail or when >= tail[-1][0]:
            tail.append((when, seq, entry, (packet, link)))
        else:
            heappush(sim._heap, (when, seq, entry, (packet, link)))

    def _emit(self, packet: Packet) -> None:
        assert self.link is not None
        self.link.send(packet, self)

    def deliver(self, packet: Packet, link: Link) -> None:
        """Called by the link when *packet* arrives at this host."""
        self.nic.rx(packet, self.handle)

    def link_rx_at(self, packet: Packet, arrival: int) -> None:
        """Fused link arrival + NIC RX accounting, called at *send* time.

        A host has exactly one uplink, and a link direction delivers in
        nondecreasing arrival order, so the RX resource booking for an
        arrival at ``arrival`` can be computed when the packet is put
        on the wire — the per-packet deliver event disappears and only
        the handler dispatch at RX completion remains.
        """
        nic = self.nic
        start = nic._rx_free_at
        if start < arrival:
            start = arrival
        cost = nic.rx_cost_ns
        if cost > 0 and (start - arrival) // cost >= nic.rx_queue_limit:
            nic.rx_dropped += 1
            packet.release()
            return
        done = start + cost
        nic._rx_free_at = done
        nic.rx_count += 1
        # Simulator.call_at push inlined (keep in sync with sim/core.py).
        sim = self.sim
        seq = sim._seq + 1
        sim._seq = seq
        tail = sim._tail
        if not tail or done >= tail[-1][0]:
            tail.append((done, seq, self.handle, (packet,)))
        else:
            heappush(sim._heap, (done, seq, self.handle, (packet,)))

    # ------------------------------------------------------------------
    def handle(self, packet: Packet) -> None:
        """Application hook; default drops the packet silently."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.net.addresses import format_ip

        return f"<Host {self.name} {format_ip(self.ip)}>"
