"""Scheme plugin registry and parallel sweep engine tests.

Covers the registry round-trip (register/lookup/alias/unregister and
the error paths), the demonstration plugin scheme, determinism of the
parallel executor against the serial path, and the CLI surface that
exposes both (``schemes`` subcommand, ``--jobs``).
"""

import logging

import pytest
from helpers import assert_points_identical, tiny_config

from repro.cli import main
from repro.errors import ExperimentError
from repro.experiments.common import ClusterConfig, run_point, run_sweep
from repro.experiments.executor import SweepExecutor, point_seed, resolve_executor
from repro.experiments.harness import format_series, sweep_schemes
from repro.experiments.schemes import (
    SchemeSpec,
    describe_schemes,
    get_scheme,
    register_scheme,
    scheme_names,
    unregister_scheme,
)
from repro.metrics.sweep import SweepResult
from repro.sim.core import Simulator
from repro.sim.units import ms


# ----------------------------------------------------------------------
# Registry round-trip
# ----------------------------------------------------------------------
def test_builtin_schemes_registered():
    names = scheme_names()
    for expected in (
        "baseline",
        "cclone",
        "laedge",
        "netclone",
        "netclone-nofilter",
        "netclone-noclonedrop",
        "racksched",
        "netclone-racksched",
    ):
        assert expected in names


def test_plugin_scheme_visible_without_common_edits():
    assert "jsq-d3" in scheme_names()
    assert get_scheme("p3c").name == "jsq-d3"  # alias resolves
    assert any("jsq-d3" in line for line in describe_schemes())


def test_unknown_scheme_raises_with_known_names():
    with pytest.raises(ExperimentError, match="baseline"):
        get_scheme("nope")
    with pytest.raises(ExperimentError):
        ClusterConfig(scheme="nope")


def test_alias_normalises_in_config():
    assert ClusterConfig(scheme="p3c").scheme == "jsq-d3"


def test_register_lookup_unregister_round_trip():
    from repro.baselines.random_lb import BaselineClient

    @register_scheme
    def _tmp_spec() -> SchemeSpec:
        return SchemeSpec(
            name="tmp-test-scheme",
            description="temporary",
            aliases=("tmp-alias",),
            make_client=lambda ctx, common: BaselineClient(
                server_ips=ctx.server_ips, **common
            ),
        )

    try:
        assert get_scheme("tmp-alias").name == "tmp-test-scheme"
        # End-to-end through the generic Cluster with zero common.py edits.
        point = run_point(tiny_config(scheme="tmp-test-scheme"))
        assert point.samples > 0
        with pytest.raises(ExperimentError, match="already registered"):
            register_scheme(
                SchemeSpec(
                    name="tmp-test-scheme",
                    description="dup",
                    make_client=lambda ctx, common: None,
                )
            )
    finally:
        unregister_scheme("tmp-test-scheme")
    with pytest.raises(ExperimentError):
        get_scheme("tmp-test-scheme")
    with pytest.raises(ExperimentError):
        unregister_scheme("tmp-test-scheme")


def test_register_rejects_non_spec_factory():
    with pytest.raises(ExperimentError, match="SchemeSpec"):
        register_scheme(lambda: 42)


# ----------------------------------------------------------------------
# Demonstration plugin end-to-end
# ----------------------------------------------------------------------
def test_jsq_d3_runs_end_to_end():
    result = run_sweep(tiny_config(scheme="jsq-d3"), [0.1e6, 0.2e6])
    assert result.scheme == "jsq-d3"
    assert len(result.points) == 2
    assert all(point.samples > 0 for point in result.points)


def test_jsq_d3_needs_enough_servers():
    with pytest.raises(ExperimentError, match="at least 3 servers"):
        run_point(tiny_config(scheme="jsq-d3", num_servers=2))


def test_jsq_d_expires_stale_outstanding_marks():
    import random
    from types import SimpleNamespace

    from repro.baselines.jsq_d import JsqDClient
    from repro.metrics.latency import LatencyRecorder

    class FakeWorkload:
        def make_request(self, client_id, seq):
            return SimpleNamespace(client_id=client_id, client_seq=seq)

        def request_size(self, request):
            return 100

    sim = Simulator()
    workload = FakeWorkload()
    client = JsqDClient(
        sim,
        "c1",
        1,
        client_id=0,
        workload=workload,
        rate_rps=1e6,
        recorder=LatencyRecorder(warmup_ns=0, end_ns=10**9),
        rng=random.Random(1),
        server_ips=[10, 11, 12],
        d=3,
        stale_after_ns=1_000,
    )
    client._seq = 1
    dest = client.build_packets(workload.make_request(0, 1))[0].dst
    assert client._outstanding_at[dest] == 1
    # The response was dropped; past the staleness window the mark must
    # expire instead of biasing routing away from `dest` forever.
    sim.now = 5_000
    client._seq = 2
    client.build_packets(workload.make_request(0, 2))
    assert 1 not in client._inflight_server
    assert sum(client._outstanding_at.values()) == 1  # only the live request


def test_plugin_modules_accepts_late_additions(tmp_path, monkeypatch):
    from repro.experiments import schemes

    assert "baseline" in schemes.scheme_names()  # registry already warm
    plugin = tmp_path / "late_plugin_mod.py"
    plugin.write_text(
        "from repro.baselines.random_lb import BaselineClient\n"
        "from repro.experiments.schemes import SchemeSpec, register_scheme\n"
        "register_scheme(SchemeSpec(\n"
        "    name='late-plugin', description='registered after first lookup',\n"
        "    make_client=lambda ctx, common: BaselineClient(\n"
        "        server_ips=ctx.server_ips, **common),\n"
        "))\n"
    )
    monkeypatch.syspath_prepend(str(tmp_path))
    schemes.PLUGIN_MODULES.append("late_plugin_mod")
    try:
        assert schemes.get_scheme("late-plugin").name == "late-plugin"
    finally:
        schemes.PLUGIN_MODULES.remove("late_plugin_mod")
        schemes._loaded_plugins.discard("late_plugin_mod")
        schemes.unregister_scheme("late-plugin")


# ----------------------------------------------------------------------
# Parallel executor determinism
# ----------------------------------------------------------------------
def test_parallel_run_sweep_matches_serial():
    loads = [0.1e6, 0.15e6, 0.2e6]
    serial = run_sweep(tiny_config(), loads)
    parallel = run_sweep(tiny_config(), loads, jobs=2)
    assert len(serial.points) == len(parallel.points)
    for a, b in zip(serial.points, parallel.points):
        assert_points_identical(a, b)


def test_parallel_sweep_schemes_matches_serial():
    loads = [0.1e6, 0.2e6]
    schemes = ("baseline", "jsq-d3")
    serial = sweep_schemes(tiny_config(), schemes, loads)
    parallel = sweep_schemes(tiny_config(), schemes, loads, jobs=2)
    assert set(serial) == set(parallel) == set(schemes)
    for scheme in schemes:
        for a, b in zip(serial[scheme].points, parallel[scheme].points):
            assert_points_identical(a, b)


def test_executor_falls_back_serially_on_unpicklable_config(caplog):
    config = tiny_config(extra={"callback": lambda: None})
    with caplog.at_level(logging.WARNING, logger="repro.experiments.executor"):
        points = SweepExecutor(jobs=2).run_points([config, config])
    assert len(points) == 2 and all(p.samples > 0 for p in points)
    assert any("not picklable" in record.message for record in caplog.records)


@pytest.mark.skipif(
    __import__("multiprocessing").get_start_method() != "fork",
    reason="workers inherit the in-test scheme registration only under fork",
)
def test_worker_raised_errors_propagate_not_retried_serially():
    from repro.baselines.random_lb import BaselineClient
    from repro.experiments.schemes import SchemeSpec, register_scheme, unregister_scheme

    def _failing_client(ctx, common):
        if common["client_id"] == 0:
            raise FileNotFoundError("missing model file")
        return BaselineClient(server_ips=ctx.server_ips, **common)

    register_scheme(
        SchemeSpec(
            name="tmp-failing-scheme",
            description="raises inside the worker",
            make_client=_failing_client,
            module="tests.test_schemes_executor",
        )
    )
    try:
        # An OSError raised *inside* run_point must surface to the
        # caller, not be misread as pool failure and re-run serially.
        with pytest.raises(FileNotFoundError, match="missing model file"):
            SweepExecutor(jobs=2).run_points(
                [tiny_config(scheme="tmp-failing-scheme")] * 2
            )
    finally:
        unregister_scheme("tmp-failing-scheme")


def test_workload_spec_ships_once_per_pool_not_per_point():
    import pickle

    from repro.experiments.executor import _SpecRef, _strip_specs
    from repro.experiments.specs import KvSpec

    spec = KvSpec(num_keys=200_000)  # the Zipf CDF alone is ~1.6 MB here
    loads = [0.05e6, 0.1e6, 0.15e6, 0.2e6]
    configs = [tiny_config(workload=spec, rate_rps=rate) for rate in loads]
    stripped, table = _strip_specs(configs)
    # The per-point payload no longer carries the CDF...
    per_point = max(len(pickle.dumps(config)) for config in stripped)
    assert per_point < 10_000, f"per-point payload is {per_point} bytes"
    # ...which lives in the once-per-worker initializer table instead.
    assert list(table.values()) == [spec]
    assert len(pickle.dumps(table)) > 1_000_000
    assert all(isinstance(c.workload, _SpecRef) for c in stripped)
    # And the worker-side resolution round-trips: parallel == serial.
    serial = SweepExecutor().run_points(configs[:2])
    parallel = SweepExecutor(jobs=2).run_points(configs[:2])
    for a, b in zip(serial, parallel):
        assert_points_identical(a, b)


def test_mixed_workload_batches_keep_distinct_specs():
    from repro.experiments.executor import _strip_specs
    from repro.experiments.specs import make_synthetic_spec

    spec_a = make_synthetic_spec("exp", mean_us=25.0)
    spec_b = make_synthetic_spec("bimodal")
    configs = [
        tiny_config(workload=spec_a),
        tiny_config(workload=spec_b),
        tiny_config(workload=spec_a),
    ]
    stripped, table = _strip_specs(configs)
    assert len(table) == 2
    assert stripped[0].workload == stripped[2].workload
    assert stripped[0].workload != stripped[1].workload


def test_submission_order_is_longest_first_but_results_ordered():
    from repro.experiments.executor import point_cost, submission_order

    rates = [0.05e6, 0.2e6, 0.1e6, 0.2e6]
    configs = [tiny_config(rate_rps=rate) for rate in rates]
    order = submission_order(configs)
    # Costliest first; equal costs keep submission order (stable sort).
    assert order == [1, 3, 2, 0]
    costs = [point_cost(configs[i]) for i in order]
    assert costs == sorted(costs, reverse=True)
    # Collection still restores the caller's order.
    points = SweepExecutor(jobs=2).run_points(configs)
    assert [p.offered_rps for p in points] == [
        pytest.approx(r, rel=0.2) for r in rates
    ]


def test_resolve_executor_and_point_seed():
    executor = SweepExecutor(jobs=3)
    assert resolve_executor(executor, None) is executor
    assert resolve_executor(None, None).jobs == 1
    assert resolve_executor(None, 4).jobs == 4
    assert SweepExecutor(jobs=0).jobs >= 1  # 0 = all cores
    assert point_seed(1, "a") == point_seed(1, "a")
    assert point_seed(1, "a") != point_seed(1, "b")
    assert point_seed(1, "a") != point_seed(2, "a")


def test_executor_reseed_derives_distinct_deterministic_seeds():
    configs = [tiny_config(rate_rps=0.05e6)] * 2
    once = SweepExecutor().run_points(configs, reseed=True)
    again = SweepExecutor().run_points(configs, reseed=True)
    for a, b in zip(once, again):
        assert_points_identical(a, b)
    # Distinct derived seeds give distinct arrival processes.
    assert once[0].p50_us != once[1].p50_us


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_schemes_subcommand(capsys):
    assert main(["schemes"]) == 0
    out = capsys.readouterr().out
    assert "netclone" in out and "jsq-d3" in out and "coordinator" in out


def test_cli_list_mentions_schemes(capsys):
    assert main(["--list"]) == 0
    assert "schemes" in capsys.readouterr().out


def test_cli_accepts_jobs(capsys):
    assert main(["resources", "--jobs", "2"]) == 0
    assert "stages" in capsys.readouterr().out


# ----------------------------------------------------------------------
# format_series error handling
# ----------------------------------------------------------------------
def test_format_series_swallows_no_sample_panels():
    # Empty series -> render raises ExperimentError -> chart omitted.
    series = {"baseline": SweepResult(scheme="baseline", workload="w")}
    text = format_series("Panel", series)
    assert "Panel" in text


def test_format_series_logs_unexpected_chart_failures(caplog, monkeypatch):
    import repro.metrics.charts as charts

    def boom(sweeps, **kwargs):
        raise RuntimeError("chart bug")

    monkeypatch.setattr(charts, "render_sweeps", boom)
    series = {"baseline": SweepResult(scheme="baseline", workload="w")}
    with caplog.at_level(logging.ERROR, logger="repro.experiments.harness"):
        text = format_series("Panel", series)
    assert "Panel" in text  # report still produced
    assert any("chart rendering failed" in r.message for r in caplog.records)


# ----------------------------------------------------------------------
# Simulator cancelled-entry handling
# ----------------------------------------------------------------------
def _noop():
    pass


def test_simulator_compacts_dominating_cancelled_entries():
    sim = Simulator()
    handles = [sim.at(i + 1, _noop) for i in range(200)]
    assert sim.pending == 200
    for handle in handles[:150]:
        handle.cancel()
    # Cancelled entries dominate -> the heap was compacted in place
    # (at least once; later cancels may sit below the threshold).
    assert sim.pending <= 100
    assert sim.run() == 50
    assert sim.event_count == 50


def test_simulator_step_run_peek_skip_cancelled():
    sim = Simulator()
    first = sim.at(10, _noop)
    sim.at(20, _noop)
    first.cancel()
    assert sim.peek() == 20
    assert sim.step()
    assert sim.now == 20
    assert not sim.step()


def test_simulator_cancel_idempotent_after_run():
    sim = Simulator()
    handle = sim.at(5, _noop)
    sim.run()
    # Cancelling an already-fired handle must not corrupt bookkeeping:
    # it is no longer in the heap, so it must not count towards the
    # compaction trigger either.
    handle.cancel()
    handle.cancel()
    assert sim.pending == 0
    assert sim._cancelled == 0
    assert sim.peek() is None


def test_sweep_schemes_keeps_caller_keys_for_aliases():
    results = sweep_schemes(tiny_config(), ["p3c"], [0.1e6])
    assert set(results) == {"p3c"}  # caller's key preserved
    assert results["p3c"].scheme == "jsq-d3"  # curve label canonical
