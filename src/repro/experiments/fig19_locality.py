"""Figure 19 (extension): placement locality vs trunk pressure.

PR 3's fig18 showed *where* a spine-leaf fabric hurts: cloning doubles
trunk crossings and deterministic ECMP concentrates them, so spine
uplinks saturate and p99 explodes.  This experiment measures the
placement-layer answer: the same offered load is run over a grid of
group placement policy × cloning scheme × rack count, and each cell
reports tail latency next to the trunk byte/utilization series from
:mod:`repro.metrics.links` — the before/after for keeping request
redundancy inside the source rack before it touches shared core links.

Expected shape: ``global`` placement sends ~(1 − 1/racks) of requests
*and* clones across the trunks; ``rack-local`` keeps both request and
responses inside the rack, cutting ``trunk_tx_bytes`` to (nearly)
zero and holding a single-rack-like tail even when trunks are tight;
``rack-weighted:p`` interpolates linearly between them, which is the
knob the locality sweep turns.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.experiments.common import ClusterConfig
from repro.experiments.executor import resolve_executor
from repro.experiments.harness import capacity_rps, scaled_config
from repro.experiments.placements import canonical_placement
from repro.experiments.registry import register
from repro.experiments.specs import make_synthetic_spec
from repro.experiments.topologies import parse_topology
from repro.metrics.sweep import LoadPoint
from repro.metrics.tables import format_table

__all__ = ["PLACEMENTS", "RACK_COUNTS", "SCHEMES", "collect", "run"]

#: Cloning schemes compared (both install per-ToR group tables).
SCHEMES = ("netclone", "netclone-racksched")

#: Placement policies swept by default; a policy pinned via
#: ``--placement`` runs against the ``global`` baseline instead
#: (pinning ``global`` itself runs only global).
PLACEMENTS = ("global", "rack-weighted:p=0.5", "rack-local")

#: Rack counts swept (servers/clients spread round-robin).
RACK_COUNTS = (2, 4)

NUM_SERVERS = 8
WORKERS = 15
NUM_CLIENTS = 4
#: Offered load as a fraction of worker-pool capacity.
LOAD_FRACTION = 0.6
#: Tight-ish trunks so locality shows up in the tail, not just the
#: byte counters (a pinned ``trunk_bandwidth_bps`` overrides).
TRUNK_GBPS = 1.0

#: One cell of the grid: (racks, measured point).
Cell = Tuple[int, LoadPoint]


def _placements(pinned: Optional[str]) -> Tuple[str, ...]:
    """The placement set to sweep; a pinned policy races ``global``."""
    if pinned is None:
        return PLACEMENTS
    pinned = canonical_placement(pinned)
    if pinned == "global":
        return ("global",)
    return ("global", pinned)


def collect(
    scale: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> Dict[Tuple[str, str], List[Cell]]:
    """(scheme, placement) → cells over the rack-count grid.

    *topology* must resolve to ``spine_leaf`` (the default); inline
    parameters are honoured — ``spines=4`` widens the mesh, a pinned
    ``racks`` collapses the swept axis to that rack count, and
    ``trunk_bandwidth_bps`` re-tightens the trunks.  *placement* pins
    one policy to race the ``global`` baseline.  The whole grid is one
    executor batch, so ``jobs > 1`` keeps every worker busy across all
    three axes.
    """
    from repro.errors import ExperimentError

    name, params = parse_topology(topology or "spine_leaf")
    if name != "spine_leaf":
        raise ExperimentError(
            f"fig19 measures trunk locality; topology {name!r} has no "
            "rack structure to localise into (use spine_leaf, optionally "
            "with inline params)"
        )
    base_params = {"spines": 2, "trunk_bandwidth_bps": TRUNK_GBPS * 1e9}
    base_params.update(params)
    placements = _placements(placement)
    # A pinned rack count collapses the swept axis rather than being
    # silently overwritten by the grid.
    pinned_racks = base_params.pop("racks", None)
    if pinned_racks is not None:
        rack_counts: Tuple[int, ...] = (int(pinned_racks),)
    else:
        rack_counts = RACK_COUNTS if scale >= 0.4 else RACK_COUNTS[:1]

    spec = make_synthetic_spec("exp", mean_us=25.0)
    capacity = capacity_rps(NUM_SERVERS * WORKERS, spec.mean_service_ns)
    config = scaled_config(
        ClusterConfig(
            workload=spec,
            topology=name,
            num_servers=NUM_SERVERS,
            workers_per_server=WORKERS,
            num_clients=NUM_CLIENTS,
            rate_rps=LOAD_FRACTION * capacity,
            seed=seed,
        ),
        scale,
    )
    grid = [
        (
            (scheme, chosen, racks),
            replace(
                config,
                scheme=scheme,
                placement=chosen,
                placement_params={},
                topology_params={**base_params, "racks": racks},
            ),
        )
        for scheme in SCHEMES
        for chosen in placements
        for racks in rack_counts
    ]
    points = resolve_executor(None, jobs).run_points([cfg for _, cfg in grid])
    results: Dict[Tuple[str, str], List[Cell]] = {}
    for ((scheme, chosen, racks), _), point in zip(grid, points):
        results.setdefault((scheme, chosen), []).append((racks, point))
    return results


def run(
    scale: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> str:
    """Run Figure 19 and return the formatted report."""
    results = collect(scale, seed, jobs=jobs, topology=topology, placement=placement)
    lines = ["== Figure 19: placement locality vs trunk pressure on spine-leaf =="]
    rows = []
    for (scheme, chosen), cells in results.items():
        for racks, point in cells:
            rows.append(
                (
                    scheme,
                    chosen,
                    f"{racks}",
                    f"{point.throughput_rps / 1e6:.2f}",
                    f"{point.p50_us:.1f}",
                    f"{point.p99_us:.1f}",
                    f"{point.extra['trunk_util_max']:.3f}",
                    f"{point.extra['trunk_tx_bytes'] / 1e6:.2f}",
                )
            )
    lines.append(
        format_table(
            ["scheme", "placement", "racks", "tput_MRPS", "p50_us", "p99_us",
             "util_max", "trunk_MB"],
            rows,
        )
    )
    lines.append("")
    lines.append("shape checks:")
    most_racks = max(racks for racks, _ in next(iter(results.values())))

    def cell(scheme: str, chosen: str, racks: int) -> Optional[LoadPoint]:
        for at, point in results.get((scheme, chosen), []):
            if at == racks:
                return point
        return None

    local_policies = sorted({c for _, c in results} - {"global"})
    for scheme in SCHEMES if local_policies else ():
        base = cell(scheme, "global", most_racks)
        best = min(
            (cell(scheme, chosen, most_racks) for chosen in local_policies),
            key=lambda point: point.extra["trunk_tx_bytes"] if point else float("inf"),
        )
        if base and best:
            lines.append(
                f"  - {scheme} at {most_racks} racks: rack-aware placement "
                f"moved {best.extra['trunk_tx_bytes'] / 1e6:.2f} MB across "
                f"the trunks vs global {base.extra['trunk_tx_bytes'] / 1e6:.2f} MB "
                f"(p99 {best.p99_us:.0f} us vs {base.p99_us:.0f} us)"
            )
    weighted = [c for c in local_policies if c.startswith("rack-weighted")]
    if weighted:
        base = cell("netclone", "global", most_racks)
        mid = cell("netclone", weighted[0], most_racks)
        local = cell("netclone", "rack-local", most_racks)
        if base and mid and local:
            lines.append(
                f"  - locality knob interpolates: trunk MB global "
                f"{base.extra['trunk_tx_bytes'] / 1e6:.2f} > {weighted[0]} "
                f"{mid.extra['trunk_tx_bytes'] / 1e6:.2f} > rack-local "
                f"{local.extra['trunk_tx_bytes'] / 1e6:.2f}"
            )
    lines.append("")
    report = "\n".join(lines)
    print(report)
    return report


@register(
    "fig19",
    "placement locality: group placement × cloning scheme × rack count on spine-leaf",
)
def _run(
    scale: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> str:
    return run(scale, seed, jobs=jobs, topology=topology, placement=placement)
