#!/usr/bin/env python
"""Measure, record and police the repo's performance baselines.

Two baselines are kept checked in at the repo root:

* ``BENCH_core.json`` — raw engine throughput: schedule/run cycles of
  bare fast-lane events (``Simulator.call_at``), in events/sec.
* ``BENCH_fig18.json`` — end-to-end harness throughput: the fig18
  trunk-saturation grid at benchmark scale with ``coarse_tail=True``,
  in measured points/sec.

Modes::

    python tools/bench_baseline.py --update   # re-measure, rewrite both files
    python tools/bench_baseline.py            # re-measure, compare, exit 1 on
                                              # a >30% throughput regression

``REPRO_BENCH_SCALE`` (default 0.25) sets the measurement scale — the
baselines are recorded at 0.25 and compare mode refuses to compare
across scales.  ``REPRO_BENCH_ROUNDS`` (default 3) sets how many times
each measurement repeats; the p50 wall time is what's recorded, which
keeps one background-load spike from failing a run.

Throughput is hardware-bound: after moving to a different CI runner
class or workstation, refresh the files with ``--update`` in the same
change that starts exercising them there.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.sim.core import Simulator  # noqa: E402  (path bootstrap above)

#: Relative throughput drop that fails compare mode.
TOLERANCE = 0.30

#: Fast-lane events per schedule/run cycle at scale 1.0.
CORE_EVENTS = 4_000_000


def _measure_core(scale: float, rounds: int) -> dict:
    n = max(1, int(CORE_EVENTS * scale))
    walls = []
    for _ in range(rounds):
        sim = Simulator()
        call_at = sim.call_at
        noop = int
        start = time.perf_counter()
        for t in range(n):
            call_at(t, noop)
        executed = sim.run()
        walls.append(time.perf_counter() - start)
        assert executed == n
    wall = statistics.median(walls)
    return {
        "bench": "core",
        "scale": scale,
        "events": n,
        "rounds": rounds,
        "wall_s_p50": round(wall, 4),
        "events_per_sec": round(n / wall, 1),
    }


def _measure_fig18(scale: float, seed: int, rounds: int) -> dict:
    from repro.experiments import fig18_trunk_saturation

    walls = []
    points = 0
    for _ in range(rounds):
        start = time.perf_counter()
        results = fig18_trunk_saturation.collect(
            scale=scale, seed=seed, coarse_tail=True
        )
        walls.append(time.perf_counter() - start)
        points = sum(len(cells) for cells in results.values())
    wall = statistics.median(walls)
    return {
        "bench": "fig18",
        "scale": scale,
        "seed": seed,
        "coarse_tail": True,
        "points": points,
        "rounds": rounds,
        "wall_s_p50": round(wall, 2),
        "points_per_sec": round(points / wall, 4),
    }


BASELINES = (
    ("BENCH_core.json", "events_per_sec", _measure_core),
    ("BENCH_fig18.json", "points_per_sec", _measure_fig18),
)


def _compare(baseline: dict, measured: dict, rate_key: str) -> str | None:
    """Error string if *measured* regresses past tolerance, else None."""
    if baseline.get("scale") != measured["scale"]:
        return (
            f"scale mismatch: baseline recorded at {baseline.get('scale')}, "
            f"measured at {measured['scale']} (set REPRO_BENCH_SCALE to match)"
        )
    old = float(baseline[rate_key])
    new = float(measured[rate_key])
    floor = old * (1.0 - TOLERANCE)
    if new < floor:
        return (
            f"{rate_key} regressed {1.0 - new / old:.1%}: "
            f"{new:,.1f} vs baseline {old:,.1f} "
            f"(floor {floor:,.1f} at {TOLERANCE:.0%} tolerance)"
        )
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the checked-in baselines instead of comparing",
    )
    parser.add_argument(
        "--scale", type=float,
        default=float(os.environ.get("REPRO_BENCH_SCALE", "0.25")),
    )
    parser.add_argument(
        "--seed", type=int,
        default=int(os.environ.get("REPRO_BENCH_SEED", "1")),
    )
    parser.add_argument(
        "--rounds", type=int,
        default=int(os.environ.get("REPRO_BENCH_ROUNDS", "3")),
    )
    parser.add_argument(
        "--out", type=Path, default=None, metavar="DIR",
        help="also write the freshly measured JSONs into DIR "
             "(CI uploads these as the run's artifact)",
    )
    args = parser.parse_args(argv)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)

    failures = []
    for filename, rate_key, measure in BASELINES:
        path = REPO / filename
        if measure is _measure_core:
            measured = measure(args.scale, args.rounds)
        else:
            measured = measure(args.scale, args.seed, args.rounds)
        print(
            f"{filename}: {rate_key}={measured[rate_key]:,} "
            f"(p50 wall {measured['wall_s_p50']}s over {args.rounds} rounds)"
        )
        if args.out is not None:
            (args.out / filename).write_text(json.dumps(measured, indent=2) + "\n")
        if args.update:
            path.write_text(json.dumps(measured, indent=2) + "\n")
            print(f"  wrote {path.relative_to(REPO)}")
            continue
        if not path.exists():
            failures.append(f"{filename}: no checked-in baseline (run --update)")
            continue
        baseline = json.loads(path.read_text())
        error = _compare(baseline, measured, rate_key)
        if error:
            failures.append(f"{filename}: {error}")
        else:
            old = float(baseline[rate_key])
            print(f"  ok vs baseline {old:,.1f} ({measured[rate_key] / old:.2f}x)")

    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
