"""Tests for the discrete-event engine core."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.sim import Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0
    assert sim.pending == 0


def test_schedule_runs_callback_at_time():
    sim = Simulator()
    fired = []
    sim.schedule(1_000, fired.append, "a")
    sim.run()
    assert fired == ["a"]
    assert sim.now == 1_000


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(300, order.append, 3)
    sim.schedule(100, order.append, 1)
    sim.schedule(200, order.append, 2)
    sim.run()
    assert order == [1, 2, 3]


def test_same_time_events_fifo():
    sim = Simulator()
    order = []
    for i in range(10):
        sim.schedule(50, order.append, i)
    sim.run()
    assert order == list(range(10))


def test_zero_delay_runs_after_current_instant_fifo():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(0, order.append, "nested")

    sim.schedule(10, first)
    sim.schedule(10, order.append, "second")
    sim.run()
    assert order == ["first", "second", "nested"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.schedule(-1, lambda: None)


def test_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(100, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.at(50, lambda: None)


def test_cancel_prevents_execution():
    sim = Simulator()
    fired = []
    handle = sim.schedule(100, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []
    assert not handle


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(100, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(100, fired.append, 1)
    sim.schedule(900, fired.append, 2)
    sim.run(until=500)
    assert fired == [1]
    assert sim.now == 500
    sim.run()
    assert fired == [1, 2]
    assert sim.now == 900


def test_run_until_advances_clock_when_queue_drains():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run(until=1_000)
    assert sim.now == 1_000


def test_run_max_events():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(i + 1, fired.append, i)
    executed = sim.run(max_events=3)
    assert executed == 3
    assert fired == [0, 1, 2]


def test_step_runs_exactly_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, "a")
    sim.schedule(20, fired.append, "b")
    assert sim.step()
    assert fired == ["a"]
    assert sim.step()
    assert not sim.step()


def test_peek_skips_cancelled():
    sim = Simulator()
    handle = sim.schedule(10, lambda: None)
    sim.schedule(30, lambda: None)
    handle.cancel()
    assert sim.peek() == 30


def test_peek_empty_returns_none():
    sim = Simulator()
    assert sim.peek() is None


def test_event_count_accumulates():
    sim = Simulator()
    for i in range(7):
        sim.schedule(i, lambda: None)
    sim.run()
    assert sim.event_count == 7


def test_callbacks_can_schedule_more_work():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 5:
            sim.schedule(10, chain, n + 1)

    sim.schedule(0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3, 4, 5]
    assert sim.now == 50


@given(delays=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_property_events_fire_in_nondecreasing_time(delays):
    sim = Simulator()
    fire_times = []
    for delay in delays:
        sim.schedule(delay, lambda: fire_times.append(sim.now))
    sim.run()
    assert fire_times == sorted(fire_times)
    assert len(fire_times) == len(delays)


@given(
    delays=st.lists(
        st.tuples(st.integers(min_value=0, max_value=100), st.integers()),
        min_size=1,
        max_size=100,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_fifo_within_equal_times(delays):
    sim = Simulator()
    fired = []
    for delay, tag in delays:
        sim.schedule(delay, fired.append, (delay, tag))
    sim.run()
    # Stable sort by delay must reproduce the firing order exactly.
    assert fired == sorted(fired, key=lambda pair: pair[0])
