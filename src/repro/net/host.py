"""Host base class.

A host owns a NIC, is attached to exactly one link (its ToR uplink in
the star topologies used throughout), and dispatches received packets
to :meth:`handle`, which applications override.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import NetworkError
from repro.net.link import Link
from repro.net.nic import Nic
from repro.net.packet import Packet
from repro.sim.core import Simulator

__all__ = ["Host"]


class Host:
    """One end host (client, server, or coordinator)."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        ip: int,
        tx_cost_ns: int = 700,
        rx_cost_ns: int = 700,
        rx_queue_limit: int = 4096,
    ):
        self.sim = sim
        self.name = name
        self.ip = ip
        self.nic = Nic(
            sim,
            tx_cost_ns=tx_cost_ns,
            rx_cost_ns=rx_cost_ns,
            rx_queue_limit=rx_queue_limit,
        )
        self.link: Optional[Link] = None

    # ------------------------------------------------------------------
    def attach_link(self, link: Link) -> None:
        """Connect this host to its (single) uplink."""
        if self.link is not None:
            raise NetworkError(f"{self.name} is already attached to a link")
        self.link = link

    def send(self, packet: Packet) -> None:
        """Send *packet* through the NIC TX path onto the uplink."""
        if self.link is None:
            raise NetworkError(f"{self.name} has no link attached")
        self.nic.tx(packet, self._emit)

    def _emit(self, packet: Packet) -> None:
        assert self.link is not None
        self.link.send(packet, self)

    def deliver(self, packet: Packet, link: Link) -> None:
        """Called by the link when *packet* arrives at this host."""
        self.nic.rx(packet, self.handle)

    # ------------------------------------------------------------------
    def handle(self, packet: Packet) -> None:
        """Application hook; default drops the packet silently."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.net.addresses import format_ip

        return f"<Host {self.name} {format_ip(self.ip)}>"
