"""Regenerate the pinned scenario golden (deliberate changes only).

Usage::

    PYTHONPATH=src python tests/data/regen_scenario_golden.py

Rewrites ``scenario_golden_tiny.json`` from a fresh run of the same
tiny kill/restore scenario ``tests/test_scenario_runner.py`` executes.
Commit the diff together with the engine change that motivated it.
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from helpers import tiny_scenario  # noqa: E402

from repro.scenarios import run_scenario  # noqa: E402


def main() -> None:
    scenario = tiny_scenario(
        name="golden-tiny",
        events=[
            {"at_ms": 1.5, "action": "kill_server", "server": 0},
            {"at_ms": 3.0, "action": "restore_server", "server": 0},
        ],
    )
    data = run_scenario(scenario).report.to_dict()
    path = os.path.join(os.path.dirname(__file__), "scenario_golden_tiny.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
