"""Fluid-mode (analytic) sweep cells: eligibility, determinism, and
the accuracy contract vs. live packet mode.

The contract tests re-run the fig18 ECMP cells in packet mode at the
benchmark scale and hold the fluid numbers to
:data:`repro.sim.fluid.ACCURACY_CONTRACT` — the same bounds the module
docstring documents.  Packet mode is deterministic per seed, so these
are golden comparisons that track the real simulator, not frozen
constants.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import ExperimentError
from repro.experiments import fig18_trunk_saturation as fig18
from repro.experiments.common import ClusterConfig
from repro.experiments.executor import resolve_executor
from repro.experiments.harness import capacity_rps, scaled_config
from repro.experiments.specs import KvSpec, make_synthetic_spec
from repro.sim import fluid

SCALE = 0.25
SEED = 1

#: fig18's opt-in fabric parameters (the sweep never fails a spine).
FABRIC = {"racks": 2, "spines": 4, "express_spines": True}


def _cell_config(
    scheme: str = "baseline",
    policy: str = "ecmp",
    gbps: float = 1.0,
    topology: str = "spine_leaf",
    workload=None,
) -> ClusterConfig:
    """One fig18 grid cell, built exactly as the experiment builds it."""
    spec = workload if workload is not None else make_synthetic_spec("exp", mean_us=25.0)
    capacity = capacity_rps(fig18.NUM_SERVERS * fig18.WORKERS, spec.mean_service_ns)
    config = scaled_config(
        ClusterConfig(
            workload=spec,
            topology=topology,
            num_servers=fig18.NUM_SERVERS,
            workers_per_server=fig18.WORKERS,
            num_clients=fig18.NUM_CLIENTS,
            rate_rps=fig18.LOAD_FRACTION * capacity,
            seed=SEED,
        ),
        SCALE,
    )
    return replace(
        config,
        scheme=scheme,
        topology_params={
            **FABRIC,
            "spine_policy": policy,
            "trunk_bandwidth_bps": gbps * 1e9,
        },
    )


# ----------------------------------------------------------------------
# Eligibility
# ----------------------------------------------------------------------
def test_rejects_non_spine_leaf_topology():
    plan = fluid.plan(_cell_config(topology="star"))
    assert not plan.eligible
    assert "spine_leaf" in plan.reason
    with pytest.raises(ExperimentError):
        plan.point()


def test_rejects_unmodelled_scheme():
    plan = fluid.plan(_cell_config(scheme="cclone-d3"))
    assert not plan.eligible
    assert "cclone-d3" in plan.reason


def test_rejects_unmodelled_policy():
    config = _cell_config()
    config = replace(
        config,
        topology_params={**config.topology_params, "spine_policy": "weighted"},
    )
    plan = fluid.plan(config)
    assert not plan.eligible
    assert "weighted" in plan.reason


def test_rejects_non_exponential_workloads():
    for workload in (make_synthetic_spec("bimodal"), KvSpec(num_keys=1000)):
        plan = fluid.plan(_cell_config(workload=workload))
        assert not plan.eligible
        assert "not the" in plan.reason


def test_evaluate_raises_on_ineligible():
    with pytest.raises(ExperimentError):
        fluid.evaluate(_cell_config(scheme="cclone-d3"))


# ----------------------------------------------------------------------
# Determinism and saturation prediction
# ----------------------------------------------------------------------
def test_fluid_point_is_deterministic():
    first = fluid.evaluate(_cell_config("netclone", "ecmp", 0.5))
    second = fluid.evaluate(_cell_config("netclone", "ecmp", 0.5))
    assert first == second  # dataclass equality covers extras too


def test_fluid_point_seed_independent():
    config = _cell_config("baseline", "ecmp", 0.5)
    reseeded = replace(config, seed=SEED + 41)
    assert fluid.evaluate(config) == fluid.evaluate(reseeded)


def test_hot_trunk_prediction_brackets_saturation():
    tight = fluid.plan(_cell_config("baseline", "ecmp", 0.5))
    loose = fluid.plan(_cell_config("baseline", "ecmp", 1.0))
    assert tight.eligible and loose.eligible
    assert tight.hot_trunk_utilisation > 1.0
    assert loose.hot_trunk_utilisation < 1.0
    # Cloning adds trunk crossings: NetClone's hot trunk runs hotter.
    cloned = fluid.plan(_cell_config("netclone", "ecmp", 1.0))
    assert cloned.hot_trunk_utilisation > loose.hot_trunk_utilisation


def test_fluid_marker_present():
    point = fluid.evaluate(_cell_config("baseline", "ecmp", 1.0))
    assert point.extra["fluid"] == 1.0


# ----------------------------------------------------------------------
# Accuracy contract vs. live packet mode (golden: packet mode is
# deterministic per seed)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def ecmp_cells():
    """(scheme, packet point, fluid point) for the sub-saturation ECMP cells."""
    schemes = ("baseline", "netclone")
    configs = [_cell_config(scheme, "ecmp", 1.0) for scheme in schemes]
    packet = resolve_executor(None, 1).run_points(configs)
    analytic = [fluid.evaluate(config) for config in configs]
    return list(zip(schemes, packet, analytic))


def _relative(measured: float, reference: float) -> float:
    if reference == 0.0:
        return abs(measured)
    return abs(measured - reference) / abs(reference)


@pytest.mark.slow
def test_accuracy_contract_sub_saturation(ecmp_cells):
    bounds = fluid.ACCURACY_CONTRACT
    for scheme, packet, analytic in ecmp_cells:
        for key in ("offered_rps", "throughput_rps", "p50_us", "p99_us", "mean_us"):
            err = _relative(getattr(analytic, key), getattr(packet, key))
            assert err <= bounds[key], (
                f"{scheme}: {key} off by {err:.1%} (bound {bounds[key]:.0%})"
            )
        for key in ("trunk_util_max", "trunk_util_mean", "trunk_tx_bytes"):
            err = _relative(analytic.extra[key], packet.extra[key])
            assert err <= bounds[key], (
                f"{scheme}: {key} off by {err:.1%} (bound {bounds[key]:.0%})"
            )


@pytest.mark.slow
def test_fluid_extras_field_compatible(ecmp_cells):
    """Fluid points carry exactly the packet extras plus the marker."""
    for _scheme, packet, analytic in ecmp_cells:
        assert "fluid" not in packet.extra
        assert set(analytic.extra) == set(packet.extra) | {"fluid"}
        assert analytic.samples > 0


# ----------------------------------------------------------------------
# Harness routing: the fluid flag on fig18.collect
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_collect_fluid_threshold_routes_cells():
    """fluid=1.0 keeps saturated cells analytic, the rest packet —
    and the split is deterministic across jobs."""
    topology = "spine_leaf:spine_policy=ecmp"
    serial = fig18.collect(scale=SCALE, seed=SEED, topology=topology, fluid=1.0)
    for (_scheme, policy), cells in serial.items():
        assert policy == "ecmp"
        for gbps, point in cells:
            predicted = fluid.plan(
                _cell_config(_scheme, policy, gbps)
            ).hot_trunk_utilisation
            if predicted >= 1.0:
                assert point.extra.get("fluid") == 1.0, (gbps, _scheme)
            else:
                assert "fluid" not in point.extra, (gbps, _scheme)
    parallel = fig18.collect(
        scale=SCALE, seed=SEED, topology=topology, fluid=1.0, jobs=2
    )
    assert serial == parallel


@pytest.mark.slow
def test_collect_fluid_zero_sends_every_eligible_cell_analytic():
    results = fig18.collect(
        scale=SCALE, seed=SEED, topology="spine_leaf:spine_policy=ecmp", fluid=0.0
    )
    for _key, cells in results.items():
        for _gbps, point in cells:
            assert point.extra.get("fluid") == 1.0
