"""Shared helpers for the test suite.

Import explicitly (``from helpers import tiny_config``); not a
conftest.py on purpose — that module name is claimed by
benchmarks/conftest.py and would collide when both trees are
collected in one pytest run.
"""

import math

from repro.experiments.common import ClusterConfig
from repro.sim.units import ms


def tiny_config(**overrides):
    """A cluster config small enough for sub-second runs."""
    defaults = dict(
        scheme="netclone",
        num_servers=3,
        workers_per_server=4,
        num_clients=2,
        rate_rps=0.2e6,
        warmup_ns=ms(1),
        measure_ns=ms(3),
        drain_ns=ms(1),
        seed=7,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def tiny_scenario(name="tiny", events=(), cluster=None, **scenario_fields):
    """A validated scenario over a :func:`tiny_config`-sized cluster.

    *events* are plain event dicts (the ``Scenario.from_dict`` shape);
    *cluster* overrides individual cluster-config fields.  Shared by
    the scenario unit tests and the scenario fuzz harness, exactly as
    :func:`tiny_config` is shared by the cluster ones.
    """
    from repro.scenarios import Scenario

    config = dict(
        scheme="netclone",
        num_servers=3,
        workers_per_server=4,
        num_clients=2,
        rate_rps=0.2e6,
        warmup_ns=ms(1),
        measure_ns=ms(3),
        drain_ns=ms(1),
        seed=7,
    )
    config.update(cluster or {})
    spec = {
        "name": name,
        "cluster": config,
        "events": list(events),
        "report_window_ns": ms(1),
    }
    spec.update(scenario_fields)
    return Scenario.from_dict(spec)


def assert_points_identical(a, b):
    """Field-by-field LoadPoint equality that treats nan == nan."""

    def same(x, y):
        if isinstance(x, float) and math.isnan(x):
            return isinstance(y, float) and math.isnan(y)
        return x == y

    for name in ("offered_rps", "throughput_rps", "p50_us", "p99_us", "p999_us",
                 "mean_us", "samples"):
        assert same(getattr(a, name), getattr(b, name)), name
    assert a.extra.keys() == b.extra.keys()
    for key in a.extra:
        assert same(a.extra[key], b.extra[key]), key
