"""Declarative chaos scenarios (spec → runner → invariants → sweep).

The harness has four layers, importable separately so pool workers
and offline report checkers pay only for what they use:

* :mod:`repro.scenarios.spec` — :class:`Scenario`: a typed, validated
  list of timed operator events plus a checkpoint schedule, loadable
  from a dict or TOML;
* :mod:`repro.scenarios.runner` — :func:`run_scenario`: schedules the
  events on a live cluster, snapshots telemetry, drains, and reduces
  the run to a :class:`ScenarioReport` with one result per library
  invariant;
* :mod:`repro.scenarios.invariants` — the reusable invariant library
  (pure functions over report data);
* :mod:`repro.scenarios.catalog` / :mod:`repro.scenarios.sweep` — the
  built-in scenario catalog and the scenario × scheme × placement ×
  topology grid bridge onto
  :class:`~repro.experiments.executor.SweepExecutor`.
"""

from repro.scenarios.catalog import catalog, catalog_names, get_scenario
from repro.scenarios.invariants import (
    INVARIANTS,
    InvariantResult,
    ReportView,
    evaluate_invariants,
    invariant_names,
)
from repro.scenarios.runner import ScenarioReport, ScenarioRun, run_scenario
from repro.scenarios.spec import (
    EVENT_TYPES,
    Scenario,
    ScenarioEvent,
    event_action_names,
)
from repro.scenarios.sweep import run_scenario_grid, scenario_grid

__all__ = [
    "EVENT_TYPES",
    "INVARIANTS",
    "InvariantResult",
    "ReportView",
    "Scenario",
    "ScenarioEvent",
    "ScenarioReport",
    "ScenarioRun",
    "catalog",
    "catalog_names",
    "evaluate_invariants",
    "event_action_names",
    "get_scenario",
    "run_scenario",
    "run_scenario_grid",
    "scenario_grid",
]
