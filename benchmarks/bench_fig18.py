"""Benchmark: regenerate Figure 18 (trunk saturation vs spine policy)."""

from conftest import run_once

from repro.experiments import fig18_trunk_saturation


def bench_fig18_trunk_saturation(benchmark, bench_scale, bench_seed, bench_jobs):
    report = run_once(
        benchmark,
        fig18_trunk_saturation.run,
        scale=bench_scale,
        seed=bench_seed,
        jobs=bench_jobs,
    )
    assert "Figure 18" in report
    assert "least-loaded" in report
