"""Topology plugin registry.

Schemes decide *what* runs on the fabric; topologies decide what the
fabric *is*.  A :class:`TopologySpec` names a fabric builder that,
given a build context (simulator + :class:`ClusterConfig`), produces
the switches, links, routes and host-attachment hooks of one fabric
(see :class:`repro.net.topology.Fabric`).  The registry maps topology
names (and aliases) to specs, mirroring the scheme registry in
:mod:`repro.experiments.schemes`, so
:class:`~repro.experiments.common.Cluster` composes any registered
scheme with any registered topology — the §3.7 SWID gate makes the
scheme's switch program safe to install per ToR.

Registering a topology::

    from repro.experiments.topologies import TopologySpec, register_topology

    @register_topology
    def _my_fabric() -> TopologySpec:
        return TopologySpec(
            name="my-fabric",
            description="one line for `repro-netclone topologies`",
            make_fabric=lambda ctx: MyFabric(ctx.sim, ctx.make_switch),
        )

Builders read free-form knobs from ``ctx.config.topology_params``
(e.g. ``spine_leaf`` honours ``racks`` and ``spines``).  Plugin
modules listed in :data:`PLUGIN_MODULES` are imported lazily on first
lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.experiments.plugin_registry import (
    PluginRegistry,
    format_plugin_params,
    parse_plugin_params,
)
from repro.net.topology import (
    Fabric,
    SingleRackFabric,
    SpineLeafFabric,
    TwoRackFabric,
    spine_policy_names,
)

__all__ = [
    "PLUGIN_MODULES",
    "TopologyContext",
    "TopologySpec",
    "canonical_topology",
    "describe_topologies",
    "format_topology",
    "get_topology",
    "iter_topologies",
    "parse_topology",
    "register_topology",
    "registered_modules",
    "topology_names",
    "unregister_topology",
]

#: Modules imported lazily on registry access so self-registering
#: plugin topologies become visible without the core importing them
#: eagerly.  Append at any time; new entries load on the next lookup.
PLUGIN_MODULES: List[str] = []


@dataclass
class TopologyContext:
    """Build-time state handed to every :class:`TopologySpec` builder.

    ``make_switch(name)`` builds a switch with the config's pipeline
    timing, so fabric builders never import the switch model.
    """

    sim: Any
    config: Any

    @property
    def params(self) -> Dict[str, Any]:
        """The config's free-form ``topology_params``."""
        return dict(getattr(self.config, "topology_params", None) or {})

    def make_switch(self, name: str):
        from repro.switchsim.switch import ProgrammableSwitch

        return ProgrammableSwitch(
            self.sim,
            name=name,
            pipeline_latency_ns=self.config.switch_pipeline_ns,
            recirc_latency_ns=self.config.switch_recirc_ns,
        )


@dataclass
class TopologySpec:
    """Declarative description of one fabric layout."""

    #: Canonical topology name (what ``ClusterConfig.topology`` normalises to).
    name: str
    #: One-line description shown by ``repro-netclone topologies``.
    description: str
    #: ``ctx -> Fabric`` — build the switches/links/routes of one fabric.
    make_fabric: Callable[[TopologyContext], Fabric]
    #: Alternative lookup names.
    aliases: Tuple[str, ...] = ()
    #: Module that registered the spec (filled in by ``register_topology``).
    module: Optional[str] = None


_IMPL = PluginRegistry(
    kind="topology",
    spec_type=TopologySpec,
    plugin_modules=PLUGIN_MODULES,
    factory_field="make_fabric",
)
#: Shared with :class:`PluginRegistry` (tests reset entries here).
_loaded_plugins = _IMPL._loaded_plugins


def register_topology(spec_or_factory):
    """Register a topology; usable as a decorator or called directly.

    Accepts either a :class:`TopologySpec` or a zero-argument factory
    returning one (the decorator form).  Duplicate names or aliases
    raise :class:`~repro.errors.ExperimentError`.
    """
    return _IMPL.register(spec_or_factory)


def unregister_topology(name: str) -> None:
    """Remove a topology (and its aliases); mainly for tests."""
    _IMPL.unregister(name)


def get_topology(name: str) -> TopologySpec:
    """The spec registered under *name* (aliases resolve)."""
    return _IMPL.get(name)


def parse_topology(value: str) -> Tuple[str, Dict[str, Any]]:
    """Split ``"name:key=val,key=val"`` into (canonical name, params).

    The bare form (``"spine_leaf"``, or any alias) yields an empty
    param dict.  Numeric values are coerced, so
    ``"spine_leaf:spines=4,spine_policy=least-loaded"`` parses to
    ``("spine_leaf", {"spines": 4, "spine_policy": "least-loaded"})``.
    Unknown topology names and malformed params raise
    :class:`~repro.errors.ExperimentError`.
    """
    name, params = parse_plugin_params(value, "topology")
    return get_topology(name).name, params


def format_topology(name: str, params: Dict[str, Any]) -> str:
    """The inverse of :func:`parse_topology` (stable param order)."""
    return format_plugin_params(name, params)


def canonical_topology(value: str) -> str:
    """*value* with the name de-aliased and params in canonical order.

    Validates as a side effect: unknown names and malformed params
    raise.  Used by the CLI and panel-keyed harnesses so one spelling
    of ``"spine_leaf:spines=4,..."`` exists everywhere.
    """
    return format_topology(*parse_topology(value))


def topology_names() -> Tuple[str, ...]:
    """Canonical names of every registered topology, in registration order."""
    return _IMPL.names()


def iter_topologies() -> List[TopologySpec]:
    """Every registered spec, in registration order."""
    return _IMPL.specs()


def describe_topologies() -> List[str]:
    """``name — description`` lines (aliases in parentheses)."""
    return _IMPL.describe()


def registered_modules() -> Tuple[str, ...]:
    """Modules that registered topologies (for sweep worker re-imports)."""
    return _IMPL.registered_modules()


# ----------------------------------------------------------------------
# Built-in fabrics
# ----------------------------------------------------------------------
def _check_params(params: Dict[str, Any], known: Tuple[str, ...], topology: str) -> None:
    """Reject unknown builder knobs.

    A typoed key (``spine=4``, ``trunk_bandwidth_gbps=...``) would
    otherwise be dropped by ``params.get`` and the experiment would
    silently run at the defaults while reporting the parameters the
    user typed.
    """
    from repro.errors import ExperimentError

    unknown = sorted(set(params) - set(known))
    if unknown:
        raise ExperimentError(
            f"unknown {topology} parameter(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}"
        )


def _strict_int(value: Any) -> int:
    """``int()`` that refuses to truncate (``2.5`` raises, ``2.0`` is 2)."""
    if isinstance(value, float) and not value.is_integer():
        raise ValueError(f"{value!r} is not an integer")
    return int(value)


def _param(params: Dict[str, Any], key: str, default: Any, cast) -> Any:
    """One builder knob, cast with a diagnosable error.

    An uncastable value ("spines=two") or a silently-lossy one
    ("racks=2.5") raises ExperimentError naming the parameter, instead
    of a raw ValueError from inside a cluster build (possibly deep in
    a sweep worker process) or an experiment quietly running different
    parameters than it reports.
    """
    from repro.errors import ExperimentError

    value = params.get(key, default)
    try:
        return cast(value)
    except (TypeError, ValueError):
        kind = "int" if cast is _strict_int else cast.__name__
        raise ExperimentError(
            f"topology parameter {key}={value!r} must be {kind}"
        ) from None


def _star_fabric(ctx: TopologyContext) -> Fabric:
    _check_params(ctx.params, (), "star")
    return SingleRackFabric(ctx.sim, ctx.make_switch)


def _two_rack_fabric(ctx: TopologyContext) -> Fabric:
    params = ctx.params
    _check_params(
        params,
        ("client_rack", "server_rack", "coordinator_rack",
         "trunk_propagation_ns", "trunk_bandwidth_bps"),
        "two_rack",
    )
    return TwoRackFabric(
        ctx.sim,
        ctx.make_switch,
        client_rack=_param(params, "client_rack", 0, _strict_int),
        server_rack=_param(params, "server_rack", 1, _strict_int),
        # None means "with the clients" and must pass through uncast.
        coordinator_rack=(
            None
            if params.get("coordinator_rack") is None
            else _param(params, "coordinator_rack", 0, _strict_int)
        ),
        trunk_propagation_ns=_param(params, "trunk_propagation_ns", 1000, _strict_int),
        trunk_bandwidth_bps=_param(params, "trunk_bandwidth_bps", 400e9, float),
    )


def _spine_leaf_fabric(ctx: TopologyContext) -> Fabric:
    params = ctx.params
    _check_params(
        params,
        ("racks", "spines", "trunk_propagation_ns", "trunk_bandwidth_bps",
         "spine_policy", "flowlet_gap_ns", "express_spines"),
        "spine_leaf",
    )
    policy = str(params.get("spine_policy", "ecmp"))
    if policy not in spine_policy_names():
        from repro.errors import ExperimentError

        raise ExperimentError(
            f"topology parameter spine_policy={policy!r} must be one of: "
            f"{', '.join(sorted(spine_policy_names()))}"
        )
    return SpineLeafFabric(
        ctx.sim,
        ctx.make_switch,
        racks=_param(params, "racks", 2, _strict_int),
        spines=_param(params, "spines", 2, _strict_int),
        trunk_propagation_ns=_param(params, "trunk_propagation_ns", 1000, _strict_int),
        trunk_bandwidth_bps=_param(params, "trunk_bandwidth_bps", 400e9, float),
        spine_policy=policy,
        flowlet_gap_ns=_param(params, "flowlet_gap_ns", 100_000, _strict_int),
        express_spines=bool(params.get("express_spines", False)),
    )


register_topology(
    TopologySpec(
        name="star",
        description="single rack: one ToR, every host a cable away (§5.1.1)",
        make_fabric=_star_fabric,
        aliases=("single-rack", "1rack"),
        module=__name__,
    )
)

register_topology(
    TopologySpec(
        name="two_rack",
        description="client rack + server rack joined by a trunk (§3.7)",
        make_fabric=_two_rack_fabric,
        aliases=("two-rack", "2rack"),
        module=__name__,
    )
)

register_topology(
    TopologySpec(
        name="spine_leaf",
        description=(
            "racks×spines Clos fabric; params: racks, spines, spine_policy "
            "(ecmp|least-loaded|flowlet), trunk_bandwidth_bps (§3.7)"
        ),
        make_fabric=_spine_leaf_fabric,
        aliases=("spine-leaf", "clos"),
        module=__name__,
    )
)
