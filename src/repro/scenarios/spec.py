"""Declarative chaos-scenario specs.

A :class:`Scenario` is a typed list of timed operator events — the
§3.6 vocabulary (switch power cycles that wipe soft state, spine
withdraw/fail/restore, server kill/restore, rack drains, load surges,
rolling table pushes) — plus a checkpoint schedule, against one
cluster configuration.  Specs are plain data: loadable from a dict or
a TOML document, picklable, and validated **at construction** so a
typoed action name, an out-of-range server id or an event scheduled
past the horizon fails with a diagnosable error before any simulation
state exists.

The event vocabulary (see :data:`EVENT_TYPES` for parameters):

``kill_server``      power a server off *and* submit the control-plane
                     removal (access link down + placement-consistent
                     per-ToR table rebuild)
``restore_server``   the symmetric power-on + control-plane restore
``withdraw_spine``   hitless route withdrawal (traffic drains off)
``fail_spine``       power a spine off without withdrawing it first
                     (in-flight packets become the drop window)
``restore_spine``    routes (and power, if failed) come back after an
                     optional re-initialisation delay
``drain_rack``       hitless control-plane removal of every live
                     server in a rack (rack maintenance)
``restore_rack``     restore every drained/killed server of a rack
``load_surge``       multiply every client's offered rate for a fixed
                     duration (pre-drawn arrivals are flushed)
``push_tables``      rolling placement-table push: fresh epoch on
                     every ToR and client, no liveness change
``wipe_switch``      ToR power cycle: down for ``down_ns``, then back
                     with **every register wiped** and an optional
                     port/ASIC re-init delay (the paper's Figure 16)

Events at the same timestamp apply in list order.  Events that drive
the control plane (``kill_server``/``restore_server``/``drain_rack``/
``restore_rack``/``push_tables``) need a scheme that installs a switch
program and delegates group construction to the placement policy —
checked here, at spec time.
"""

from __future__ import annotations

import tomllib

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ExperimentError
from repro.sim.units import ms

__all__ = [
    "EVENT_TYPES",
    "HANDLER_ACTIONS",
    "Scenario",
    "ScenarioEvent",
    "event_action_names",
]


@dataclass(frozen=True)
class _EventType:
    """Static description of one event action."""

    #: parameter name -> (type caster, required, default)
    params: Mapping[str, Tuple[type, bool, Any]]
    #: One-line description (shown by ``repro-netclone scenarios``).
    description: str
    #: Needs a :class:`~repro.core.failures.ServerFailureHandler`.
    needs_handler: bool = False
    #: Only meaningful on fabrics with spines (spine_leaf).
    needs_spines: bool = False


EVENT_TYPES: Dict[str, _EventType] = {
    "kill_server": _EventType(
        params={"server": (int, True, None)},
        description="power a server off + control-plane removal",
        needs_handler=True,
    ),
    "restore_server": _EventType(
        params={"server": (int, True, None)},
        description="power a server on + control-plane restore",
        needs_handler=True,
    ),
    "withdraw_spine": _EventType(
        params={"spine": (int, True, None)},
        description="hitless spine route withdrawal",
        needs_spines=True,
    ),
    "fail_spine": _EventType(
        params={"spine": (int, True, None)},
        description="power a spine off without withdrawing routes",
        needs_spines=True,
    ),
    "restore_spine": _EventType(
        params={"spine": (int, True, None), "reinit_ns": (int, False, 0)},
        description="restore a spine's routes (and power) after reinit",
        needs_spines=True,
    ),
    "drain_rack": _EventType(
        params={"rack": (int, True, None)},
        description="hitless control-plane drain of a whole rack",
        needs_handler=True,
    ),
    "restore_rack": _EventType(
        params={"rack": (int, True, None)},
        description="restore every removed server of a rack",
        needs_handler=True,
    ),
    "load_surge": _EventType(
        params={"factor": (float, True, None), "duration_ns": (int, True, None)},
        description="multiply every client's offered rate for a duration",
    ),
    "push_tables": _EventType(
        params={},
        description="rolling placement-table push (fresh epoch, no change)",
        needs_handler=True,
    ),
    "wipe_switch": _EventType(
        params={
            "tor": (int, False, 0),
            "down_ns": (int, True, None),
            "reinit_ns": (int, False, 0),
        },
        description="ToR power cycle; registers wiped on recovery",
    ),
}

#: Actions that drive the server-failure control plane.
HANDLER_ACTIONS = frozenset(
    name for name, etype in EVENT_TYPES.items() if etype.needs_handler
)

#: Actions that only exist on spine-leaf fabrics.
SPINE_ACTIONS = frozenset(
    name for name, etype in EVENT_TYPES.items() if etype.needs_spines
)

#: Actions that change which servers are live (for static applicability
#: analysis, e.g. whether rack-local trunks can be expected silent).
LIVENESS_ACTIONS = frozenset(
    {"kill_server", "restore_server", "drain_rack", "restore_rack"}
)


def event_action_names() -> Tuple[str, ...]:
    """Registered event actions, sorted."""
    return tuple(sorted(EVENT_TYPES))


@dataclass(frozen=True)
class ScenarioEvent:
    """One timed operator action."""

    time_ns: int
    action: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"at_ns": self.time_ns, "action": self.action}
        out.update(self.params)
        return out


def _make_event(time_ns: int, action: str, raw: Mapping[str, Any]) -> ScenarioEvent:
    """Validate and normalise one event's action + parameters."""
    etype = EVENT_TYPES.get(action)
    if etype is None:
        known = ", ".join(event_action_names())
        raise ExperimentError(f"unknown event action {action!r}; known: {known}")
    if time_ns < 0:
        raise ExperimentError(f"{action}: event time {time_ns} is negative")
    unknown = set(raw) - set(etype.params)
    if unknown:
        raise ExperimentError(
            f"{action}: unknown parameter(s) {sorted(unknown)}; "
            f"accepts {sorted(etype.params)}"
        )
    resolved: List[Tuple[str, Any]] = []
    for name, (caster, required, default) in etype.params.items():
        if name in raw:
            value = raw[name]
            try:
                cast = caster(value)
            except (TypeError, ValueError):
                raise ExperimentError(
                    f"{action}: parameter {name}={value!r} is not a "
                    f"{caster.__name__}"
                ) from None
            if caster is int and isinstance(value, float) and value != cast:
                raise ExperimentError(
                    f"{action}: parameter {name}={value!r} loses precision "
                    "as an int"
                )
            value = cast
        elif required:
            raise ExperimentError(f"{action}: missing required parameter {name!r}")
        else:
            value = default
        resolved.append((name, value))
    event = ScenarioEvent(time_ns=int(time_ns), action=action, params=tuple(resolved))
    _check_event_semantics(event)
    return event


def _check_event_semantics(event: ScenarioEvent) -> None:
    p = event.param_dict()
    for name in ("server", "spine", "rack", "tor"):
        if name in p and p[name] < 0:
            raise ExperimentError(
                f"{event.action}: {name}={p[name]} must be non-negative"
            )
    if event.action == "load_surge":
        if p["factor"] <= 0:
            raise ExperimentError("load_surge: factor must be positive")
        if p["duration_ns"] <= 0:
            raise ExperimentError("load_surge: duration_ns must be positive")
    if event.action == "wipe_switch" and p["down_ns"] <= 0:
        raise ExperimentError("wipe_switch: down_ns must be positive")
    if event.action in ("wipe_switch", "restore_spine") and p["reinit_ns"] < 0:
        raise ExperimentError(f"{event.action}: reinit_ns must be non-negative")


@dataclass
class Scenario:
    """A validated chaos scenario: cluster + timed events + checkpoints.

    ``cluster`` holds :class:`~repro.experiments.common.ClusterConfig`
    keyword arguments (scheme/topology/placement/rates/windows/seed);
    it is built once during validation so every config error surfaces
    here.  ``checkpoints_ns`` is the telemetry snapshot schedule —
    empty means *after every event* (plus the always-taken end-of-run
    snapshot).  ``skip_invariants`` names invariant checks this
    scenario opts out of (e.g. a scenario that deliberately drives a
    rack below two live servers opts out of nothing — applicability is
    derived — but a scheme-specific spec may want to silence one).
    """

    name: str
    description: str = ""
    cluster: Dict[str, Any] = field(default_factory=dict)
    events: List[ScenarioEvent] = field(default_factory=list)
    checkpoints_ns: List[int] = field(default_factory=list)
    #: Window of the throughput / trunk-byte timeline in the report.
    report_window_ns: int = ms(25)
    skip_invariants: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not str(self.name).strip():
            raise ExperimentError("scenario needs a non-empty name")
        self.name = str(self.name)
        config = self.config()  # validates scheme/topology/placement/...
        horizon = config.total_ns
        events: List[ScenarioEvent] = []
        for event in self.events:
            if not isinstance(event, ScenarioEvent):
                raise ExperimentError(
                    f"scenario {self.name!r}: events must be ScenarioEvent "
                    f"instances (got {type(event).__name__}; use "
                    "Scenario.from_dict for raw mappings)"
                )
            if event.time_ns >= horizon:
                raise ExperimentError(
                    f"scenario {self.name!r}: {event.action} at "
                    f"{event.time_ns} ns is past the {horizon} ns horizon"
                )
            events.append(event)
        # Stable sort: same-time events keep their list order.
        self.events = sorted(events, key=lambda e: e.time_ns)
        if self.report_window_ns <= 0:
            raise ExperimentError("report_window_ns must be positive")
        checkpoints = []
        for t in self.checkpoints_ns:
            t = int(t)
            if not 0 <= t <= horizon:
                raise ExperimentError(
                    f"scenario {self.name!r}: checkpoint at {t} ns is "
                    f"outside [0, {horizon}] ns"
                )
            checkpoints.append(t)
        self.checkpoints_ns = sorted(set(checkpoints))
        self.skip_invariants = tuple(self.skip_invariants)
        from repro.scenarios.invariants import invariant_names

        unknown = set(self.skip_invariants) - set(invariant_names())
        if unknown:
            raise ExperimentError(
                f"scenario {self.name!r}: unknown invariant(s) "
                f"{sorted(unknown)}; known: {', '.join(invariant_names())}"
            )
        self._check_cross_constraints(config)

    # ------------------------------------------------------------------
    def _check_cross_constraints(self, config: Any) -> None:
        """Event/config consistency checkable without a built fabric."""
        from repro.experiments.schemes import get_scheme

        spec = get_scheme(config.scheme)
        if self.needs_handler:
            if spec.make_program is None:
                raise ExperimentError(
                    f"scenario {self.name!r} drives the server-failure "
                    f"control plane but scheme {config.scheme!r} installs "
                    "no switch program (no tables to rebuild)"
                )
            if spec.group_pairs is not None:
                raise ExperimentError(
                    f"scenario {self.name!r} drives the server-failure "
                    f"control plane but scheme {config.scheme!r} pins a "
                    "custom group construction"
                )
        for event in self.events:
            p = event.param_dict()
            if event.action in SPINE_ACTIONS and config.topology != "spine_leaf":
                raise ExperimentError(
                    f"scenario {self.name!r}: {event.action} needs a "
                    f"spine_leaf fabric, not {config.topology!r}"
                )
            if "server" in p and p["server"] >= config.num_servers:
                raise ExperimentError(
                    f"scenario {self.name!r}: {event.action} targets server "
                    f"{p['server']} but the cluster has {config.num_servers}"
                )

    # ------------------------------------------------------------------
    def config(self, scale: float = 1.0, seed: Optional[int] = None) -> Any:
        """A fresh :class:`ClusterConfig` for this scenario.

        ``scale < 1`` shrinks the *offered rate* (never the timeline —
        event times are absolute, so compressing the horizon would
        reorder the story); ``seed`` overrides the spec's seed.
        """
        from repro.experiments.common import ClusterConfig

        kwargs = dict(self.cluster)
        if seed is not None:
            kwargs["seed"] = seed
        config = ClusterConfig(**kwargs)
        if scale < 1.0:
            if scale <= 0:
                raise ExperimentError("scale must be positive")
            config = replace(config, rate_rps=config.rate_rps * scale)
        return config

    @property
    def needs_handler(self) -> bool:
        """Whether any event drives the server-failure control plane."""
        return any(event.action in HANDLER_ACTIONS for event in self.events)

    def with_overrides(
        self,
        scheme: Optional[str] = None,
        topology: Optional[str] = None,
        placement: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> "Scenario":
        """A re-validated copy with sweep-axis overrides applied.

        This is how scenario × scheme × placement × topology becomes a
        sweepable grid: the scenario is the fourth axis, and each cell
        re-runs full validation, so an incompatible combination (e.g.
        a control-plane scenario on a program-less scheme) fails before
        any cluster is built.
        """
        cluster = dict(self.cluster)
        if scheme is not None:
            cluster["scheme"] = scheme
        if topology is not None:
            cluster["topology"] = topology
            cluster.pop("topology_params", None)
        if placement is not None:
            cluster["placement"] = placement
            cluster.pop("placement_params", None)
        if seed is not None:
            cluster["seed"] = seed
        return replace(
            self,
            cluster=cluster,
            events=list(self.events),
            checkpoints_ns=list(self.checkpoints_ns),
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain-data form that round-trips through :meth:`from_dict`."""
        return {
            "name": self.name,
            "description": self.description,
            "cluster": dict(self.cluster),
            "events": [event.to_dict() for event in self.events],
            "checkpoints_ns": list(self.checkpoints_ns),
            "report_window_ns": self.report_window_ns,
            "skip_invariants": list(self.skip_invariants),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Build and validate a scenario from a plain mapping.

        Event times may be given as ``at_ns`` (int) or ``at_ms``
        (float); the checkpoint schedule likewise as ``checkpoints_ns``
        or ``checkpoints_ms``.
        """
        if not isinstance(data, Mapping):
            raise ExperimentError(
                f"scenario spec must be a mapping, not {type(data).__name__}"
            )
        known = {
            "name", "description", "cluster", "events",
            "checkpoints_ns", "checkpoints_ms",
            "report_window_ns", "report_window_ms", "skip_invariants",
        }
        unknown = set(data) - known
        if unknown:
            raise ExperimentError(
                f"unknown scenario field(s) {sorted(unknown)}; "
                f"accepts {sorted(known)}"
            )
        events = []
        for raw in data.get("events", ()):
            raw = dict(raw)
            time_ns = _take_time(raw, "at", f"event in {data.get('name')!r}")
            action = raw.pop("action", None)
            if action is None:
                raise ExperimentError("every event needs an 'action' field")
            events.append(_make_event(time_ns, str(action), raw))
        checkpoints = [int(t) for t in data.get("checkpoints_ns", ())]
        checkpoints += [_ms_to_ns(t) for t in data.get("checkpoints_ms", ())]
        window = data.get("report_window_ns")
        if window is None and "report_window_ms" in data:
            window = _ms_to_ns(data["report_window_ms"])
        return cls(
            name=data.get("name", ""),
            description=str(data.get("description", "")),
            cluster=dict(data.get("cluster", {})),
            events=events,
            checkpoints_ns=checkpoints,
            report_window_ns=int(window) if window is not None else ms(25),
            skip_invariants=tuple(data.get("skip_invariants", ())),
        )

    @classmethod
    def from_toml(cls, text: str) -> "Scenario":
        """Parse a TOML document (see :meth:`from_dict` for the shape)."""
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ExperimentError(f"invalid scenario TOML: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def from_toml_file(cls, path: Any) -> "Scenario":
        with open(path, "rb") as fh:
            try:
                data = tomllib.load(fh)
            except tomllib.TOMLDecodeError as exc:
                raise ExperimentError(
                    f"invalid scenario TOML in {path}: {exc}"
                ) from None
        return cls.from_dict(data)


def _ms_to_ns(value: Any) -> int:
    return int(round(float(value) * 1e6))


def _take_time(raw: Dict[str, Any], stem: str, where: str) -> int:
    """Pop ``<stem>_ns``/``<stem>_ms`` from *raw*; exactly one required."""
    has_ns = f"{stem}_ns" in raw
    has_ms = f"{stem}_ms" in raw
    if has_ns and has_ms:
        raise ExperimentError(f"{where}: give {stem}_ns or {stem}_ms, not both")
    if has_ns:
        return int(raw.pop(f"{stem}_ns"))
    if has_ms:
        return _ms_to_ns(raw.pop(f"{stem}_ms"))
    raise ExperimentError(f"{where}: missing {stem}_ns / {stem}_ms")
