"""Figure 16: performance under switch failures (§5.6.4).

Throughput over a 25-second timeline: the switch is stopped at t = 5 s
and reactivated at t = 7 s; port/ASIC re-initialisation takes a few
more seconds (the paper observes recovery at ~10 s and attributes the
length of the gap to the switch architecture, not NetClone).

Recovery wipes every register — NetClone keeps only soft state, so
the wipe must be harmless: the sequence number restarts, state tables
read IDLE, filter tables are empty, and the system simply resumes.
The run asserts no permanent misbehaviour (no duplicate deliveries to
the client after recovery; throughput returns to the offered rate).

The simulated offered rate is scaled down (tens of KRPS rather than
MRPS) to keep the 25-second timeline tractable in pure Python; the
shape of the figure does not depend on the absolute rate because the
cluster is far from saturation either way.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.experiments.common import Cluster, ClusterConfig
from repro.experiments.registry import register
from repro.experiments.specs import make_synthetic_spec
from repro.metrics.tables import format_table
from repro.sim.monitor import IntervalMonitor
from repro.sim.units import sec

__all__ = ["collect", "run"]

NUM_SERVERS = 6
WORKERS = 15
OFFERED_RPS = 40_000.0
HORIZON_S = 25
FAIL_AT_S = 5
RECOVER_AT_S = 7
REINIT_S = 3


def collect(
    scale: float = 1.0,
    seed: int = 1,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> Tuple[List[float], List[float], dict]:
    """(window starts s, throughput KRPS per window, integrity stats)."""
    horizon_s = HORIZON_S if scale >= 1.0 else max(10, int(HORIZON_S * scale))
    spec = make_synthetic_spec("exp", mean_us=25.0)
    config = ClusterConfig(
        scheme="netclone",
        topology=topology,
        placement=placement,
        workload=spec,
        num_servers=NUM_SERVERS,
        workers_per_server=WORKERS,
        rate_rps=OFFERED_RPS * min(scale, 1.0),
        warmup_ns=0,
        measure_ns=sec(horizon_s),
        drain_ns=sec(1),
        seed=seed,
    )
    cluster = Cluster(config)
    monitor = IntervalMonitor(window_ns=sec(1), horizon_ns=sec(horizon_s))
    cluster.recorder.completion_monitor = monitor
    switch = cluster.switch
    cluster.sim.at(sec(FAIL_AT_S), switch.fail)
    cluster.sim.at(sec(RECOVER_AT_S), switch.recover, sec(REINIT_S))
    cluster.start()
    cluster.run()
    rates_krps = [rate / 1e3 for rate in monitor.rates_per_second()[:horizon_s]]
    stats = {
        "redundant_responses": sum(c.redundant_responses for c in cluster.clients),
        "completed": cluster.recorder.completed_in_window,
        "offered_rps": config.rate_rps,
        "recovered_rate_krps": rates_krps[-1] if rates_krps else float("nan"),
    }
    return monitor.window_starts_sec()[: len(rates_krps)], rates_krps, stats


def run(
    scale: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> str:
    """Run Figure 16 and return the formatted report.

    *jobs* is accepted for CLI symmetry but unused: the figure is one
    continuous timeline with mid-run failure injection, so there is no
    independent-point batch to fan out.  The injected failure hits the
    primary (first) ToR of whatever *topology* is selected.
    """
    starts, rates, stats = collect(scale, seed, topology=topology, placement=placement)
    lines = ["== Figure 16: throughput under a switch failure =="]
    lines.append(
        format_table(
            ["time (s)", "throughput (KRPS)"],
            [(f"{start:.0f}", f"{rate:.1f}") for start, rate in zip(starts, rates)],
        )
    )
    offered_krps = stats["offered_rps"] / 1e3
    outage = [rate for start, rate in zip(starts, rates) if FAIL_AT_S < start < RECOVER_AT_S]
    lines.append("")
    lines.append("shape checks:")
    lines.append(
        f"  - outage window throughput ~0 KRPS (measured "
        f"{max(outage) if outage else float('nan'):.1f} KRPS)"
    )
    lines.append(
        f"  - recovered to {stats['recovered_rate_krps']:.1f} KRPS of "
        f"{offered_krps:.1f} KRPS offered by the end of the timeline"
    )
    lines.append(
        f"  - no permanent misbehaviour: {stats['redundant_responses']} duplicate "
        f"deliveries after the register wipe (paper: soft state only)"
    )
    report = "\n".join(lines)
    print(report)
    return report


@register("fig16", "throughput timeline across a switch failure and recovery")
def _run(
    scale: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> str:
    return run(scale, seed, topology=topology, placement=placement)
