"""Server-failure handling (§3.6), placement-consistent.

When a worker server dies, performance degrades until the operator
(or a health monitor) removes it: "The switch control plane can
quickly remove the failed server from the list of potential
destination servers by updating relevant tables (e.g., the group table
and the address table) in the switch data plane and the number of
groups on the client side."

:class:`ServerFailureHandler` implements that flow on top of the
:class:`~repro.switchsim.controlplane.ControlPlane` — and, on a
multi-rack fabric, keeps it consistent with the cluster's placement
policy (:mod:`repro.core.placement`).  One removal (or restoration)
is one control-plane operation that:

1. flips the server's bit in the :class:`PlacementContext` live mask
   and re-derives **one group table per ToR** via
   ``policy.group_table(ctx, rack)`` — so a ``rack-local`` deployment
   stays rack-local, per ToR, across failures, and a rack left with
   fewer than two live servers falls back to the global pair set
   (returning to rack-local pairs on :meth:`restore_server`);
2. installs each rack's table on *its own* ToR program and removes
   (or re-installs) the server's address-table entry fabric-wide;
3. pushes the new epoch-stamped
   :class:`~repro.core.placement.GroupTable` objects to that rack's
   clients — not merely a shrunken group count — so clients swap
   tables atomically instead of guessing staleness from table sizes.

Built without placement information (the legacy single-rack form),
the handler behaves exactly like the seed implementation: a global
rebuild over the survivors, bit-identical RNG behaviour included
(uniform tables spend one ``randrange`` per draw, the same stream as
the count-only fallback).

Until the control-plane update lands, requests whose group includes
the dead server are lost — the transient degradation the paper
describes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.placement import (
    GlobalPlacement,
    GroupTable,
    PlacementContext,
    PlacementPolicy,
)
from repro.errors import ExperimentError
from repro.switchsim.controlplane import ControlPlane

__all__ = ["ServerFailureHandler"]


class ServerFailureHandler:
    """Removes (and restores) servers in a running NetClone deployment.

    The legacy form takes one *program* plus *clients* and rebuilds a
    single global table.  Cluster assembly passes the placement-aware
    extras (see :meth:`repro.experiments.common.Cluster.failure_handler`):

    :param programs: per-ToR switch programs in rack order
        (``programs[0]`` must be *program*, the primary ToR's).
    :param placement: the cluster's
        :class:`~repro.core.placement.PlacementPolicy`; defaults to
        :class:`~repro.core.placement.GlobalPlacement` — the seed
        behaviour.
    :param context: the :class:`PlacementContext` mapping server IDs
        to racks; required whenever more than one program is handled.
    :param client_racks: rack of each entry in *clients* (defaults to
        rack 0 for all — the single-rack case).
    """

    def __init__(
        self,
        program: Any,
        control_plane: ControlPlane,
        clients: Sequence[object] = (),
        *,
        programs: Optional[Sequence[Any]] = None,
        placement: Optional[PlacementPolicy] = None,
        context: Optional[PlacementContext] = None,
        client_racks: Optional[Sequence[int]] = None,
    ):
        self.program = program
        self.programs: List[Any] = list(programs) if programs is not None else [program]
        if not self.programs or self.programs[0] is not program:
            raise ExperimentError("programs[0] must be the primary ToR's program")
        self.control_plane = control_plane
        self.clients = list(clients)
        self.placement: PlacementPolicy = (
            placement if placement is not None else GlobalPlacement()
        )
        # server_id -> ip for the servers currently in rotation.
        self.active: Dict[int, int] = dict(self.program.addr_table.entries())
        # server_id -> ip for servers this handler removed (restorable).
        self._removed: Dict[int, int] = {}
        if context is None:
            if len(self.programs) > 1:
                raise ExperimentError(
                    "multi-ToR failure handling needs a PlacementContext "
                    "(which rack each server lives in)"
                )
            context = PlacementContext(
                server_racks=(0,) * (max(self.active, default=0) + 1),
                num_racks=1,
            )
        if len(context.server_racks) <= max(self.active, default=0):
            raise ExperimentError(
                f"placement map covers {len(context.server_racks)} servers "
                f"but the address table holds ID {max(self.active, default=0)}"
            )
        self._base_context = context
        # A server can be live only if the provided mask agrees AND it
        # is actually in the address table.
        provided = context.live_mask()
        self._live: List[bool] = [
            bool(provided[sid]) and sid in self.active
            for sid in range(len(context.server_racks))
        ]
        if client_racks is None:
            client_racks = [0] * len(self.clients)
        self._client_racks = [int(rack) for rack in client_racks]
        if len(self._client_racks) != len(self.clients):
            raise ExperimentError(
                f"{len(self._client_racks)} client racks for "
                f"{len(self.clients)} clients"
            )
        for rack in self._client_racks:
            if not 0 <= rack < len(self.programs):
                raise ExperimentError(
                    f"client rack {rack} has no ToR program "
                    f"(fabric has {len(self.programs)})"
                )
        for client in self.clients:
            self._check_client_shape(client)
        #: Control-plane table generation; rebuilds stamp epoch+1 on
        #: every table they push (assembly-time tables are epoch 0).
        self.epoch = 0
        #: Per-ToR tables installed by the last rebuild (rack order);
        #: empty until the first failure/recovery operation applies.
        self.tables: List[GroupTable] = []

    # ------------------------------------------------------------------
    def remove_server(self, server_id: int) -> int:
        """Schedule removal of *server_id*; returns the apply time (ns).

        The rebuild is submitted as one control-plane operation: table
        updates on a real switch are batched by the agent, and what
        matters for the model is the (slow) control-plane latency
        before any of it takes effect.

        The guard is fabric-wide: cloning needs two live servers
        *somewhere*, so removals stop when only two remain.  A single
        **rack** dropping below two live servers is legal — its ToR
        falls back to the placement policy's global pair set until
        :meth:`restore_server` brings a member back.
        """
        if server_id not in self.active:
            raise ExperimentError(f"server {server_id} is not in rotation")
        # Count *live* servers, not address-table entries: a context
        # built with some live bits already cleared must fail here,
        # diagnosably, not inside the deferred rebuild callback.
        remaining = [
            sid for sid, alive in enumerate(self._live)
            if alive and sid != server_id
        ]
        if len(remaining) < 2:
            raise ExperimentError(
                "cannot drop below two live servers fabric-wide (cloning "
                f"needs a pair); only {remaining} would remain"
            )
        self._removed[server_id] = self.active.pop(server_id)
        self._live[server_id] = False
        return self.control_plane.submit(self._apply_removal, server_id)

    def restore_server(self, server_id: int) -> int:
        """Schedule recovery of *server_id*; returns the apply time (ns).

        The symmetric operation: the server's address-table entry is
        re-installed fabric-wide, its live bit set, and every ToR's
        group table re-derived — a rack that had fallen back to global
        pairs returns to its placement-native table.
        """
        if server_id in self.active:
            raise ExperimentError(f"server {server_id} is already in rotation")
        if server_id not in self._removed:
            raise ExperimentError(
                f"server {server_id} was never removed by this handler"
            )
        ip = self._removed.pop(server_id)
        self.active[server_id] = ip
        self._live[server_id] = True
        return self.control_plane.submit(self._apply_restore, server_id, ip)

    # ------------------------------------------------------------------
    def push_tables(self) -> int:
        """Schedule a rolling table push; returns the apply time (ns).

        The maintenance half of the §3.6 control-plane story: re-derive
        and install every ToR's placement-built group table (and push
        the fresh epoch to that rack's clients) *without* any liveness
        change — what an operator does after re-weighting a policy or
        as a periodic anti-entropy sweep.  Chaos scenarios use it to
        race table pushes against failures and load surges: clients
        must swap epochs atomically with live pre-drawn packets in
        flight.
        """
        return self.control_plane.submit(self._rebuild_group_tables)

    def drain_rack(self, rack: int) -> List[int]:
        """Hitlessly remove every live server in *rack*; returns their IDs.

        A drain is control-plane only — the servers stay powered on and
        answer what is already queued, but every ToR's group table is
        rebuilt without them, so no *new* request is steered their way
        (rack maintenance, the §3.6 removal path applied rack-wide).
        The fabric-wide two-live-server guard is checked up front so a
        drain either schedules completely or not at all.
        """
        victims = [
            sid
            for sid, home in enumerate(self._base_context.server_racks)
            if home == rack and self._live[sid]
        ]
        if not victims:
            raise ExperimentError(f"rack {rack} has no live servers to drain")
        survivors = [
            sid for sid, alive in enumerate(self._live)
            if alive and sid not in victims
        ]
        if len(survivors) < 2:
            raise ExperimentError(
                f"draining rack {rack} would leave {survivors} live "
                "fabric-wide; cloning needs at least two servers"
            )
        for sid in victims:
            self.remove_server(sid)
        return victims

    def restore_rack(self, rack: int) -> List[int]:
        """Restore every server of *rack* removed by this handler."""
        victims = [
            sid
            for sid in self.removed_server_ids
            if self._base_context.server_racks[sid] == rack
        ]
        if not victims:
            raise ExperimentError(
                f"rack {rack} has no servers removed by this handler"
            )
        for sid in victims:
            self.restore_server(sid)
        return victims

    # ------------------------------------------------------------------
    def _apply_removal(self, server_id: int) -> None:
        self._rebuild_group_tables()
        for program in self.programs:
            program.addr_table.remove(server_id)

    def _apply_restore(self, server_id: int, ip: int) -> None:
        for program in self.programs:
            program.addr_table.install(server_id, ip)
        self._rebuild_group_tables()

    def _rebuild_group_tables(self) -> None:
        """Re-derive and install one placement-built table per ToR."""
        self.epoch += 1
        ctx = self._base_context.with_live(self._live)
        self.tables = []
        for rack, program in enumerate(self.programs):
            table = self.placement.group_table(ctx, rack).with_epoch(self.epoch)
            program.install_group_table(table)
            self.tables.append(table)
        for client, rack in zip(self.clients, self._client_racks):
            self._push_table(client, self.tables[rack])

    # ------------------------------------------------------------------
    @staticmethod
    def _check_client_shape(client: object) -> None:
        """Reject clients a rebuild could not update.

        The seed implementation silently skipped anything without a
        ``num_groups`` attribute, leaving it sampling dead pairs
        forever; unknown shapes now fail at construction time instead.
        """
        if callable(getattr(client, "install_group_table", None)):
            return
        if hasattr(client, "group_table") or hasattr(client, "num_groups"):
            return
        raise ExperimentError(
            f"client {getattr(client, 'name', client)!r} exposes neither "
            "install_group_table() nor group_table/num_groups; a rebuild "
            "could not stop it from sampling dead server pairs"
        )

    @staticmethod
    def _push_table(client: object, table: GroupTable) -> None:
        install = getattr(client, "install_group_table", None)
        if callable(install):
            install(table)
            return
        # Attribute-shaped clients: update table and count *together* —
        # a client carrying only one of them would otherwise keep
        # drawing from the stale space.
        if hasattr(client, "group_table"):
            client.group_table = table
        if hasattr(client, "num_groups"):
            client.num_groups = table.num_groups

    @property
    def active_server_ids(self) -> List[int]:
        """Server IDs still in rotation."""
        return sorted(self.active)

    @property
    def removed_server_ids(self) -> List[int]:
        """Server IDs removed by this handler and not yet restored."""
        return sorted(self._removed)
