"""Core discrete-event engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Entries
are ``(time, seq, handle)`` tuples: ``time`` orders events, ``seq`` is a
monotonically increasing tie-breaker that guarantees FIFO ordering for
events scheduled at the same instant, and ``handle`` carries the
callback.  Cancellation is O(1): the handle is flagged and skipped when
popped (lazy deletion), and the heap is compacted in one pass when
cancelled entries come to dominate it.

The callback API is deliberately minimal because it sits on the hot
path of every simulated packet.  Higher-level conveniences (generator
processes, resources) are layered on top in sibling modules.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SchedulingError

__all__ = ["EventHandle", "Simulator"]


class EventHandle:
    """A scheduled callback that can be cancelled.

    Instances are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.at`.  They are true-ish while still pending.
    """

    __slots__ = ("fn", "args", "cancelled", "time", "sim")

    def __init__(
        self,
        time: int,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.sim = sim

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.sim is not None:
            self.sim._note_cancelled()

    def __bool__(self) -> bool:
        return not self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<EventHandle t={self.time} {name} {state}>"


class Simulator:
    """A discrete-event simulator with an integer nanosecond clock.

    Typical callback-style use::

        sim = Simulator()
        sim.schedule(1_000, print, "one microsecond later")
        sim.run()

    The engine never invents time: the clock only advances to the
    timestamp of the next scheduled event.
    """

    __slots__ = ("now", "_queue", "_seq", "_running", "_event_count", "_cancelled")

    #: Compaction trigger: at least this many cancelled entries AND
    #: cancelled entries making up at least half the heap.
    COMPACT_THRESHOLD = 64

    def __init__(self) -> None:
        #: Current simulated time in nanoseconds.
        self.now: int = 0
        self._queue: List[Tuple[int, int, EventHandle]] = []
        self._seq = 0
        self._running = False
        self._event_count = 0
        self._cancelled = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` ns after *now*.

        ``delay`` must be non-negative; a zero delay runs after all
        events already scheduled for the current instant (FIFO).
        """
        if delay < 0:
            raise SchedulingError(f"negative delay {delay!r}")
        return self.at(self.now + delay, fn, *args)

    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run at absolute ``time`` ns."""
        if time < self.now:
            raise SchedulingError(
                f"cannot schedule at t={time} which is before now={self.now}"
            )
        handle = EventHandle(time, fn, args, sim=self)
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, handle))
        return handle

    # ------------------------------------------------------------------
    # Cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`EventHandle.cancel`; compacts a heap whose
        live entries are drowned out by lazily-deleted ones."""
        self._cancelled += 1
        if (
            self._cancelled >= self.COMPACT_THRESHOLD
            and self._cancelled * 2 >= len(self._queue)
        ):
            self._queue = [entry for entry in self._queue if not entry[2].cancelled]
            heapq.heapify(self._queue)
            self._cancelled = 0

    def _live_head(self) -> Optional[Tuple[int, int, EventHandle]]:
        """The earliest non-cancelled entry, discarding dead ones.

        The single place that implements lazy deletion: ``step``,
        ``run`` and ``peek`` all funnel through it.
        """
        queue = self._queue
        while queue:
            entry = queue[0]
            if entry[2].cancelled:
                heapq.heappop(queue)
                if self._cancelled:
                    self._cancelled -= 1
                continue
            return entry
        return None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue was
        empty (cancelled entries are discarded silently).
        """
        entry = self._live_head()
        if entry is None:
            return False
        heapq.heappop(self._queue)
        time, _seq, handle = entry
        handle.sim = None  # fired: later cancel() must not count it
        self.now = time
        self._event_count += 1
        handle.fn(*handle.args)
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains or a limit is hit.

        :param until: stop (and fast-forward the clock to ``until``)
            once the next event is strictly later than this time.
        :param max_events: stop after this many events have run.
        :returns: the number of events executed by this call.
        """
        executed = 0
        self._running = True
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                entry = self._live_head()
                if entry is None:
                    if until is not None and until > self.now:
                        self.now = until
                    break
                time, _seq, handle = entry
                if until is not None and time > until:
                    self.now = until
                    break
                heapq.heappop(self._queue)
                handle.sim = None  # fired: later cancel() must not count it
                self.now = time
                self._event_count += 1
                handle.fn(*handle.args)
                executed += 1
        finally:
            self._running = False
        return executed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of queue entries, including lazily-cancelled ones."""
        return len(self._queue)

    @property
    def event_count(self) -> int:
        """Total number of events executed since construction."""
        return self._event_count

    def peek(self) -> Optional[int]:
        """Timestamp of the next live event, or ``None`` if drained."""
        entry = self._live_head()
        return entry[0] if entry is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now} pending={len(self._queue)}>"
