"""Figure 10: performance with RackSched (§5.4).

Baseline vs NetClone vs NetClone+RackSched on Exp(25) and
Bimodal(90-25,10-250), under homogeneous (6×15 worker threads) and
heterogeneous (3×15 + 3×8) clusters.

Expected shape: NetClone+RackSched is the best overall; its edge over
plain NetClone is largest on the heterogeneous clusters, where JSQ
absorbs the load imbalance that random first-candidate forwarding
cannot.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Union

from repro.experiments.common import ClusterConfig
from repro.experiments.harness import (
    capacity_rps,
    format_series,
    load_grid,
    scaled_config,
    sweep_schemes,
)
from repro.experiments.registry import register
from repro.experiments.specs import make_synthetic_spec
from repro.metrics.sweep import SweepResult

__all__ = ["PANELS", "collect", "run"]

SCHEMES = ("baseline", "netclone", "netclone-racksched")

HOMOGENEOUS: Union[int, Sequence[int]] = 15
HETEROGENEOUS: Tuple[int, ...] = (15, 15, 15, 8, 8, 8)

PANELS = {
    "a-Exp-Homogeneous": ("exp", None, HOMOGENEOUS),
    "b-Exp-Heterogeneous": ("exp", None, HETEROGENEOUS),
    "c-Bimodal-Homogeneous": ("bimodal", ((0.9, 25.0), (0.1, 250.0)), HOMOGENEOUS),
    "d-Bimodal-Heterogeneous": ("bimodal", ((0.9, 25.0), (0.1, 250.0)), HETEROGENEOUS),
}

NUM_SERVERS = 6


def collect(
    scale: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> Dict[str, Dict[str, SweepResult]]:
    """All four panels' curves, keyed by panel then scheme."""
    results: Dict[str, Dict[str, SweepResult]] = {}
    for panel, (kind, modes, workers) in PANELS.items():
        spec = make_synthetic_spec(kind, mean_us=25.0, modes=modes)
        config = scaled_config(
            ClusterConfig(
                workload=spec,
                topology=topology,
                placement=placement,
                num_servers=NUM_SERVERS,
                workers_per_server=workers,
                seed=seed,
            ),
            scale,
        )
        total_workers = (
            NUM_SERVERS * workers if isinstance(workers, int) else sum(workers)
        )
        capacity = capacity_rps(total_workers, spec.mean_service_ns)
        loads = load_grid(capacity, scale)
        results[panel] = sweep_schemes(config, SCHEMES, loads, jobs=jobs)
    return results


def run(
    scale: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> str:
    """Run Figure 10 and return the formatted report."""
    sections = []
    for panel, series in collect(scale, seed, jobs=jobs, topology=topology, placement=placement).items():
        mid = series["baseline"].points[len(series["baseline"].points) // 2].offered_rps
        notes = [
            f"p99 at mid load: Baseline {series['baseline'].p99_at_load(mid):.0f} us, "
            f"NetClone {series['netclone'].p99_at_load(mid):.0f} us, "
            f"NetClone+RackSched {series['netclone-racksched'].p99_at_load(mid):.0f} us "
            f"(paper: NetClone+RackSched best)",
        ]
        sections.append(format_series(f"Figure 10 ({panel})", series, notes))
    report = "\n".join(sections)
    print(report)
    return report


@register("fig10", "NetClone with RackSched, homogeneous and heterogeneous clusters")
def _run(
    scale: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> str:
    return run(scale, seed, jobs=jobs, topology=topology, placement=placement)
