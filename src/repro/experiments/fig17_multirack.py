"""Figure 17 (extension): schemes across multi-rack fabrics (§3.7).

The paper evaluates NetClone in one rack and sketches the multi-rack
deployment in §3.7: only ToR switches run NetClone logic and the SWID
field keeps exactly one ToR responsible for each client's requests.
This experiment puts that sketch on the same sweep machinery as every
other figure: the same scheme set is swept over the single-rack star,
the two-rack trunk fabric, and a spine-leaf Clos, one panel per
fabric.

Expected shape: every fabric preserves the scheme ordering (NetClone
tracks the Baseline's throughput with lower tail latency); the
inter-rack fabrics shift the whole latency curve up by the extra
trunk/spine hops but cloning and filtering keep working — redundant
deliveries at the clients stay at zero because the client-side ToR
filters both response copies.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

from repro.experiments.common import ClusterConfig
from repro.experiments.executor import resolve_executor
from repro.experiments.harness import (
    capacity_rps,
    format_series,
    load_grid,
    scaled_config,
)
from repro.experiments.registry import register
from repro.experiments.specs import make_synthetic_spec
from repro.experiments.topologies import canonical_topology
from repro.metrics.sweep import SweepResult

__all__ = ["FABRICS", "SCHEMES", "collect", "run"]

SCHEMES = ("baseline", "cclone", "netclone")

#: Panel id -> topology-registry name (all built-in fabrics).
FABRICS = ("star", "two_rack", "spine_leaf")

NUM_SERVERS = 6
WORKERS = 15


def collect(
    scale: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> Dict[str, Dict[str, SweepResult]]:
    """One panel per fabric (or just *topology* when given).

    The whole fabric × scheme × load grid is flattened into a single
    executor batch — one process pool for the entire figure — so
    parallel workers stay busy across panels, not just within one.
    """
    fabrics = FABRICS if topology is None else (canonical_topology(topology),)
    spec = make_synthetic_spec("exp", mean_us=25.0)
    capacity = capacity_rps(NUM_SERVERS * WORKERS, spec.mean_service_ns)
    loads = load_grid(capacity, scale)
    config = scaled_config(
        ClusterConfig(
            workload=spec,
            placement=placement,
            num_servers=NUM_SERVERS,
            workers_per_server=WORKERS,
            seed=seed,
        ),
        scale,
    )
    # One (panel-key, config) pair per point, built by a single
    # comprehension so collection can never drift from submission.
    grid = [
        ((fabric, scheme), replace(config, topology=fabric, scheme=scheme,
                                   rate_rps=rate))
        for fabric in fabrics
        for scheme in SCHEMES
        for rate in loads
    ]
    points = resolve_executor(None, jobs).run_points([cfg for _, cfg in grid])
    results: Dict[str, Dict[str, SweepResult]] = {}
    for ((fabric, scheme), point_config), point in zip(grid, points):
        panel = results.setdefault(fabric, {})
        if scheme not in panel:
            panel[scheme] = SweepResult(
                scheme=point_config.scheme, workload=config.workload.name
            )
        panel[scheme].add(point)
    return results


def run(
    scale: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> str:
    """Run Figure 17 and return the formatted report."""
    results = collect(scale, seed, jobs=jobs, topology=topology, placement=placement)
    sections = []
    for fabric, series in results.items():
        base = series["baseline"]
        netclone = series["netclone"]
        low = base.points[0].offered_rps
        cloned = sum(point.extra.get("nc_cloned", 0.0) for point in netclone.points)
        redundant = sum(
            point.extra.get("redundant_responses", 0.0) for point in netclone.points
        )
        notes = [
            f"NetClone max throughput {netclone.max_throughput_mrps():.2f} MRPS vs "
            f"Baseline {base.max_throughput_mrps():.2f} MRPS (tracks it on every fabric)",
            f"p99 at lowest load: Baseline {base.p99_at_load(low):.0f} us, "
            f"NetClone {netclone.p99_at_load(low):.0f} us",
            f"ToR-only cloning stayed live off-rack: {cloned:.0f} clones, "
            f"{redundant:.0f} redundant deliveries reached clients "
            f"(client-side ToR filters both copies)",
        ]
        sections.append(format_series(f"Figure 17 ({fabric})", series, notes))
    if topology is None and {"star", "two_rack"} <= results.keys():
        star = results["star"]["netclone"]
        two = results["two_rack"]["netclone"]
        low = star.points[0].offered_rps
        sections.append(
            "cross-fabric shape check:\n"
            f"  - trunk hops cost latency: NetClone p50 at lowest load "
            f"{star.points[0].p50_us:.1f} us (star) < "
            f"{two.points[0].p50_us:.1f} us (two_rack) at {low / 1e6:.2f} MRPS\n"
        )
    report = "\n".join(sections)
    print(report)
    return report


@register("fig17", "multi-rack fabrics: same schemes over star/two-rack/spine-leaf (§3.7)")
def _run(
    scale: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> str:
    return run(scale, seed, jobs=jobs, topology=topology, placement=placement)
