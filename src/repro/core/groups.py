"""Group-ID construction (§3.3).

A group ID names an *ordered* pair of candidate servers.  The paper
uses 2·C(n,2) = n·(n−1) groups — every ordered pair of distinct
servers — because the switch forwards non-cloned requests to the
*first* candidate, so keeping both orders of each pair preserves the
randomness of server selection.  (With only {Srv1, Srv2} and never
{Srv2, Srv1}, all non-cloned requests would herd onto Srv1.)

*Which* servers are candidates for which clients is a placement
decision; :func:`ordered_pairs` is the construction primitive the
placement policies in :mod:`repro.core.placement` build per-ToR group
tables from, and :func:`build_group_pairs` is the seed-era global
special case (every server, IDs ``0..n-1``).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ExperimentError
from repro.switchsim.tables import MatchActionTable

__all__ = ["build_group_pairs", "install_group_table", "ordered_pairs"]


def ordered_pairs(server_ids: Sequence[int]) -> List[Tuple[int, int]]:
    """All ordered pairs of distinct IDs from *server_ids*, in order.

    Deterministic: pairs are emitted in first-major order following the
    sequence given, so equal inputs always yield equal tables.
    """
    ids = list(server_ids)
    if len(ids) < 2:
        raise ExperimentError("NetClone requires at least two servers")
    return [
        (first, second) for first in ids for second in ids if first != second
    ]


def build_group_pairs(num_servers: int) -> List[Tuple[int, int]]:
    """All ordered pairs of distinct server IDs, deterministically.

    Group ID *g* maps to ``pairs[g]``.  Requires at least two servers
    (NetClone needs a pair for redundancy, §5.3.2).
    """
    return ordered_pairs(range(num_servers))


def install_group_table(table: MatchActionTable, num_servers: int) -> int:
    """Install the ordered pairs into the switch group table.

    Returns the number of groups installed (``n * (n - 1)``).
    """
    pairs = build_group_pairs(num_servers)
    for group_id, pair in enumerate(pairs):
        table.install(group_id, pair)
    return len(pairs)
