#!/usr/bin/env python3
"""Failure drill: power-cycle the ToR mid-run (§3.6 / Figure 16).

NetClone keeps only *soft* state in the switch — server states, the
request-ID sequence, and filter-table fingerprints.  This drill kills
the switch at t = 200 ms, brings it back at t = 280 ms with every
register wiped, and shows (a) the throughput gap and recovery and
(b) that the wipe causes no misbehaviour: no duplicate deliveries, no
stuck requests, service simply resumes.

Run:  python examples/switch_failure_drill.py
"""

from repro.experiments.common import Cluster, ClusterConfig
from repro.sim.monitor import IntervalMonitor
from repro.sim.units import ms

FAIL_AT = ms(200)
RECOVER_AT = ms(280)
REINIT = ms(60)
HORIZON = ms(600)


def main() -> None:
    print(__doc__)
    config = ClusterConfig(
        scheme="netclone",
        rate_rps=120e3,
        warmup_ns=0,
        measure_ns=HORIZON,
        drain_ns=ms(20),
        seed=5,
    )
    cluster = Cluster(config)
    monitor = IntervalMonitor(window_ns=ms(20), horizon_ns=HORIZON)
    cluster.recorder.completion_monitor = monitor
    cluster.sim.at(FAIL_AT, cluster.switch.fail)
    cluster.sim.at(RECOVER_AT, cluster.switch.recover, REINIT)
    cluster.start()
    cluster.run()

    print("time(ms)  throughput(KRPS)")
    for start_s, rate in zip(monitor.window_starts_sec(), monitor.rates_per_second()):
        start_ms = start_s * 1e3
        if start_ms >= HORIZON / ms(1):
            break
        bar = "#" * int(rate / 4e3)
        marker = ""
        if FAIL_AT <= start_ms * ms(1) < FAIL_AT + ms(20):
            marker = "  <- switch stopped"
        elif RECOVER_AT + REINIT <= start_ms * ms(1) < RECOVER_AT + REINIT + ms(20):
            marker = "  <- back online (registers wiped)"
        print(f"{start_ms:7.0f}  {rate / 1e3:8.1f} {bar}{marker}")

    redundant = sum(client.redundant_responses for client in cluster.clients)
    dropped = cluster.switch.counters.get("rx_dropped_down")
    print()
    print(f"packets dropped while down : {dropped}")
    print(f"duplicate deliveries after the wipe : {redundant}  (soft state only)")
    print(f"sequence register restarted at : {cluster.program.seq.peek(0)} "
          f"(safe: earlier IDs have long completed)")


if __name__ == "__main__":
    main()
