#!/usr/bin/env python3
"""Multi-rack deployment with switch-ID gating (§3.7).

Clients live in rack A, servers in rack B, joined by a trunk.  Both
ToRs run the NetClone program, but the SWID field ensures only the
*client-side* ToR clones, assigns request IDs and filters responses;
the server-side ToR sees stamped packets and falls through to plain
L3 forwarding.

Run:  python examples/multirack_deployment.py
"""

import random

from repro.apps.service import SyntheticService
from repro.core import NetCloneClient, NetCloneProgram, RpcServer
from repro.core.multirack import TwoRackTopology
from repro.metrics.latency import LatencyRecorder
from repro.sim import Simulator
from repro.sim.units import ms
from repro.switchsim import ProgrammableSwitch
from repro.workloads import ExponentialDistribution, JitterModel, SyntheticWorkload

NUM_SERVERS = 4
RATE_RPS = 80e3
HORIZON = ms(100)


def main() -> None:
    print(__doc__)
    sim = Simulator()
    client_tor = ProgrammableSwitch(sim, name="tor-A")
    server_tor = ProgrammableSwitch(sim, name="tor-B")
    fabric = TwoRackTopology(sim, client_tor, server_tor)

    jitter = JitterModel(0.01, 15.0)
    servers = []
    for index in range(NUM_SERVERS):
        server = RpcServer(
            sim,
            name=f"srv{index + 1}",
            ip=fabric.server_star.allocate_ip(),
            server_id=index,
            service=SyntheticService(),
            jitter=jitter,
            rng=random.Random(100 + index),
            num_workers=8,
        )
        fabric.add_server(server)
        servers.append(server)

    server_ips = [server.ip for server in servers]
    client_tor.install_program(NetCloneProgram(server_ips, switch_id=1))
    server_tor.install_program(NetCloneProgram(server_ips, switch_id=2))

    recorder = LatencyRecorder(warmup_ns=ms(10), end_ns=HORIZON)
    client = NetCloneClient(
        sim=sim,
        name="client",
        ip=fabric.client_star.allocate_ip(),
        client_id=0,
        workload=SyntheticWorkload(ExponentialDistribution(25.0), random.Random(1)),
        rate_rps=RATE_RPS,
        recorder=recorder,
        rng=random.Random(2),
        stop_at_ns=HORIZON,
        num_groups=client_tor.program.num_groups,
    )
    fabric.add_client(client)
    client.start()
    sim.run(until=HORIZON + ms(20))

    print(f"completed requests : {recorder.completed_in_window}")
    print(f"p50 / p99          : {recorder.p50_us():.1f} / {recorder.p99_us():.1f} us")
    print(f"(note the extra trunk hop vs the single-rack quickstart)")
    print()
    print("who did the NetClone work?")
    for tor in (client_tor, server_tor):
        counters = tor.counters
        print(
            f"  {tor.name}: cloned={counters.get('nc_cloned')} "
            f"filtered={counters.get('nc_filtered')} "
            f"recirculated={counters.get('recirculated')}"
        )
    print()
    print(f"tor-A stamped SWID=1; tor-B's gate skipped those packets, so its")
    print(f"sequence register is untouched: {server_tor.program.seq.peek(0)}")


if __name__ == "__main__":
    main()
