"""The NetClone switch data-plane program (Algorithm 1).

Compiled into the PISA pipeline model with the same placement the
paper describes (7 stages with two filter tables):

========= =====================================================
stage     contents
========= =====================================================
0         global sequence register ``SEQ`` + group table ``GrpT``
1         server state table ``StateT`` (register array)
2         shadow state table ``ShadowT`` (copy of ``StateT``)
3         address table ``AddrT`` (server ID → IP)
4         hash unit over REQ_ID
5..5+k-1  filter tables ``FilterT[0..k-1]`` (register arrays)
========= =====================================================

Because a register array can be accessed once per pass and only from
its own stage, reading the state of *both* candidate servers requires
the shadow copy — exactly the §3.4 trick — and giving the cloned copy
its destination IP requires a second pass through ``AddrT`` via
recirculation (§3.4 "Cloning in the switch").

The same class also implements the §3.7 RackSched integration: the
state table generalises to a *load* table holding queue lengths
(servers piggyback their queue length; IDLE simply means zero), and a
``scheduler`` knob selects between NetClone's random first-candidate
forwarding and RackSched's power-of-two JSQ.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.constants import (
    CLO_CLONED_COPY,
    CLO_CLONED_ORIGINAL,
    CLO_NOT_CLONED,
    MSG_REQ,
    MSG_RESP,
    NETCLONE_UDP_PORT,
    STATE_IDLE,
    SWID_UNSET,
)
# Aliased: the method NetCloneProgram.install_group_table (the §3.6
# control-plane reinstall path) would otherwise shadow this module-level
# seed-table builder inside the class body.
from repro.core.groups import install_group_table as install_global_pairs
from repro.errors import PipelineConfigError, StageAccessError
from repro.net.packet import Packet
from repro.switchsim.hashing import HashUnit
from repro.switchsim.pipeline import PassContext, Pipeline, PipelineAction
from repro.switchsim.registers import RegisterArray, RegisterFile
from repro.switchsim.switch import ProgrammableSwitch, SwitchProgram
from repro.switchsim.tables import MatchActionTable

from zlib import crc32

__all__ = ["NetCloneProgram"]

#: CLO value a client may set to opt a request out of cloning (writes).
CLO_NEVER_CLONE = 3

_SEQ_MAX = (1 << 32) - 1

#: Scheduler selecting the destination among the candidate pair.
SCHED_RANDOM = "random"
SCHED_JSQ = "jsq"


def _next_seq(value: int) -> int:
    """Increment the global sequence, skipping 0 (0 = empty slot)."""
    return 1 if value >= _SEQ_MAX else value + 1


class NetCloneProgram(SwitchProgram):
    """NetClone (optionally + RackSched) for one ToR switch."""

    STAGE_GRP = 0
    STAGE_STATE = 1
    STAGE_SHADOW = 2
    STAGE_ADDR = 3
    STAGE_HASH = 4
    STAGE_FILTER_BASE = 5

    def __init__(
        self,
        server_ips: Sequence[int],
        num_filter_tables: int = 2,
        filter_slots: int = 1 << 17,
        switch_id: int = 1,
        cloning_enabled: bool = True,
        filtering_enabled: bool = True,
        scheduler: str = SCHED_RANDOM,
        max_servers: int = 256,
        group_pairs: Optional[Sequence[tuple]] = None,
    ):
        if len(server_ips) < 2:
            raise PipelineConfigError("NetClone needs at least two servers")
        if num_filter_tables < 1:
            raise PipelineConfigError("need at least one filter table")
        if scheduler not in (SCHED_RANDOM, SCHED_JSQ):
            raise PipelineConfigError(f"unknown scheduler {scheduler!r}")
        num_stages = max(
            Pipeline.DEFAULT_NUM_STAGES, self.STAGE_FILTER_BASE + num_filter_tables
        )
        self.pipeline = Pipeline(num_stages=num_stages)
        self.switch_id = switch_id
        self.cloning_enabled = cloning_enabled
        self.filtering_enabled = filtering_enabled
        self.scheduler = scheduler
        # Per-packet paths test a bool, not a string compare.
        self._jsq = scheduler == SCHED_JSQ
        self.num_servers = len(server_ips)

        place = self.pipeline
        # All of this program's register state lives in one shared flat
        # backing store; each array addresses its slice via a base
        # offset (see RegisterFile).
        self._register_file = RegisterFile()
        self.seq = place.place_register(
            RegisterArray(
                "SEQ", size=1, stage=self.STAGE_GRP, width_bits=32,
                file=self._register_file,
            )
        )
        self.grp_table = place.place_table(
            MatchActionTable("GrpT", stage=self.STAGE_GRP, max_entries=max_servers * max_servers)
        )
        self.state_table = place.place_register(
            RegisterArray(
                "StateT", size=max_servers, stage=self.STAGE_STATE, width_bits=8,
                file=self._register_file,
            )
        )
        self.shadow_table = place.place_register(
            RegisterArray(
                "ShadowT", size=max_servers, stage=self.STAGE_SHADOW, width_bits=8,
                file=self._register_file,
            )
        )
        self.addr_table = place.place_table(
            MatchActionTable("AddrT", stage=self.STAGE_ADDR, max_entries=max_servers)
        )
        self.hash_unit = place.place_hash(
            HashUnit("ReqIdHash", stage=self.STAGE_HASH, buckets=filter_slots)
        )
        self.filters: List[RegisterArray] = [
            place.place_register(
                RegisterArray(
                    f"FilterT{i}",
                    size=filter_slots,
                    stage=self.STAGE_FILTER_BASE + i,
                    width_bits=32,
                    file=self._register_file,
                )
            )
            for i in range(num_filter_tables)
        ]
        self._register_file.freeze()

        #: Control-plane generation of the installed group table; §3.6
        #: rebuilds bump it in lockstep with the tables pushed to the
        #: rack's clients (see :meth:`install_group_table`).
        self.table_epoch = 0
        if group_pairs is None:
            self.num_groups = install_global_pairs(self.grp_table, self.num_servers)
        else:
            # Ablation hook (§3.3): install a custom candidate-pair set,
            # e.g. unordered pairs, to measure the herding the paper's
            # ordered n*(n-1) construction avoids.
            for group_id, pair in enumerate(group_pairs):
                self.grp_table.install(group_id, tuple(pair))
            self.num_groups = len(group_pairs)
        for server_id, ip in enumerate(server_ips):
            self.addr_table.install(server_id, ip)

        #: Index-based fast lane over the register file, or ``None``
        #: when this program shape cannot be statically verified (e.g.
        #: a subclass overriding a pass method).
        self.fast_apply = self._build_fast_apply()

    # ------------------------------------------------------------------
    def _build_fast_apply(self):
        """Compile the fixed pass shapes into an index-based fast lane.

        The three NetClone pass shapes (request, recirculated clone,
        response) touch a fixed sequence of pipeline objects.
        :meth:`Pipeline.compile_plan` proves once, at install time,
        everything :class:`PassContext` would re-check per packet —
        feed-forward stage order, placement, one register access per
        pass — which licenses a per-packet path that skips the context
        object entirely and addresses register state through flat
        ``base + index`` offsets into the shared register file.

        Returns ``None`` (→ the dynamic checked path stays in charge)
        for subclasses that override any pass logic, or if a plan
        fails to verify.
        """
        cls = type(self)
        for name in (
            "apply",
            "_apply_request",
            "_apply_cloned_request",
            "_apply_response",
            "matches",
        ):
            if getattr(cls, name) is not getattr(NetCloneProgram, name):
                return None
        file = self._register_file
        if file.data is None:
            return None
        pipeline = self.pipeline
        try:
            self.plan_request = pipeline.compile_plan(
                (self.seq, self.grp_table, self.state_table,
                 self.shadow_table, self.addr_table)
            )
            self.plan_cloned_request = pipeline.compile_plan((self.addr_table,))
            # The response plan is the access-order skeleton: each pass
            # touches exactly one of the filter tables, all of which sit
            # in stages after the hash unit.
            self.plan_response = pipeline.compile_plan(
                (self.state_table, self.shadow_table, self.hash_unit,
                 *self.filters)
            )
        except PipelineConfigError:
            return None

        program = self
        cells = file.data
        seq_reg = self.seq
        seq_i = seq_reg.base
        grp_table = self.grp_table
        grp_get = grp_table._entries.get
        state_reg = self.state_table
        shadow_reg = self.shadow_table
        state_base = state_reg.base
        shadow_base = shadow_reg.base
        state_size = state_reg.size
        state_mask = state_reg._mask
        addr_table = self.addr_table
        addr_get = addr_table._entries.get
        hash_unit = self.hash_unit
        buckets = hash_unit.buckets
        filters = tuple(self.filters)
        filter_bases = tuple(f.base for f in filters)
        filter_mask = filters[0]._mask
        num_filters = len(filters)

        def fast_apply(packet, switch):
            nc = packet.nc
            msg_type = nc.msg_type
            if msg_type == MSG_REQ:
                if packet.recirculated:
                    # Recirculated clone (lines 11-13).
                    nc.clo = CLO_CLONED_COPY
                    addr_table.lookup_count += 1
                    address = addr_get(nc.sid)
                    if address is None:
                        addr_table.miss_count += 1
                        switch.counters.incr("nc_unknown_server")
                        action = PipelineAction()
                        action.drop = True
                        return action
                    packet.dst = address
                    return None
                # Fresh request (lines 1-10).
                if nc.swid == SWID_UNSET:
                    nc.swid = program.switch_id
                seq_reg.access_count += 1
                old = cells[seq_i]
                seq = 1 if old >= _SEQ_MAX else old + 1
                cells[seq_i] = seq
                nc.req_id = seq
                grp_table.lookup_count += 1
                pair = grp_get(nc.grp)
                if pair is None:
                    grp_table.miss_count += 1
                    switch.counters.incr("nc_unknown_group")
                    action = PipelineAction()
                    action.drop = True
                    return action
                srv1, srv2 = pair
                if not 0 <= srv1 < state_size:
                    raise StageAccessError(
                        f"index {srv1} out of range for register "
                        f"{state_reg.name!r} (size {state_size})"
                    )
                if not 0 <= srv2 < state_size:
                    raise StageAccessError(
                        f"index {srv2} out of range for register "
                        f"{shadow_reg.name!r} (size {state_size})"
                    )
                state_reg.access_count += 1
                state1 = cells[state_base + srv1]
                shadow_reg.access_count += 1
                state2 = cells[shadow_base + srv2]
                destination = srv1
                if (
                    program.cloning_enabled
                    and nc.clo != CLO_NEVER_CLONE
                    and state1 == STATE_IDLE
                    and state2 == STATE_IDLE
                ):
                    nc.clo = CLO_CLONED_ORIGINAL
                    nc.sid = srv2
                    action = PipelineAction()
                    action.recirculate.append(packet.copy())
                    switch._counts["nc_cloned"] += 1
                else:
                    action = None
                    if nc.clo == CLO_NEVER_CLONE:
                        nc.clo = CLO_NOT_CLONED
                    if program._jsq and state2 < state1:
                        destination = srv2
                        switch._counts["nc_jsq_second_choice"] += 1
                addr_table.lookup_count += 1
                address = addr_get(destination)
                if address is None:
                    addr_table.miss_count += 1
                    switch.counters.incr("nc_unknown_server")
                    if action is None:
                        action = PipelineAction()
                    action.drop = True
                    return action
                packet.dst = address
                return action
            if msg_type == MSG_RESP:
                # Response (lines 14-26).
                sid = nc.sid
                if not 0 <= sid < state_size:
                    raise StageAccessError(
                        f"index {sid} out of range for register "
                        f"{state_reg.name!r} (size {state_size})"
                    )
                value = nc.state & state_mask
                state_reg.access_count += 1
                cells[state_base + sid] = value
                shadow_reg.access_count += 1
                cells[shadow_base + sid] = value
                if nc.clo == CLO_NOT_CLONED or not program.filtering_enabled:
                    return None
                req_id = nc.req_id
                hash_unit.invocations += 1
                slot = crc32(
                    (req_id & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
                ) % buckets
                which = nc.idx % num_filters
                filter_reg = filters[which]
                filter_reg.access_count += 1
                flat = filter_bases[which] + slot
                old = cells[flat]
                if old == req_id:
                    cells[flat] = 0
                    switch._counts["nc_filtered"] += 1
                    action = PipelineAction()
                    action.drop = True
                    return action
                cells[flat] = req_id & filter_mask
                if old != 0:
                    switch._counts["nc_fingerprint_overwrite"] += 1
                switch._counts["nc_fingerprint_insert"] += 1
                return None
            # Unknown message type: fall back to plain forwarding.
            return None

        return fast_apply

    # ------------------------------------------------------------------
    def install_group_table(self, table) -> None:
        """Control-plane reinstall: wipe ``GrpT`` and load *table*.

        *table* is a :class:`~repro.core.placement.GroupTable` (or any
        object with ``pairs``/``num_groups``/``epoch``).  Group IDs are
        dense, so the table is rebuilt rather than punched with holes —
        exactly the §3.6 update path, now per ToR.
        """
        for group_id in list(self.grp_table.entries()):
            self.grp_table.remove(group_id)
        for group_id, pair in enumerate(table.pairs):
            self.grp_table.install(group_id, tuple(pair))
        self.num_groups = table.num_groups
        self.table_epoch = table.epoch

    # ------------------------------------------------------------------
    def matches(self, packet: Packet) -> bool:
        """NetClone packets: reserved UDP port, parseable header, SWID gate."""
        if packet.dport != NETCLONE_UDP_PORT or packet.nc is None:
            return False
        swid = packet.nc.swid
        return swid == SWID_UNSET or swid == self.switch_id

    # ------------------------------------------------------------------
    def apply(
        self, packet: Packet, ctx: PassContext, switch: ProgrammableSwitch
    ) -> Optional[PipelineAction]:
        nc = packet.nc
        if nc.msg_type == MSG_REQ:
            if packet.recirculated:
                return self._apply_cloned_request(packet, ctx, switch)
            return self._apply_request(packet, ctx, switch)
        if nc.msg_type == MSG_RESP:
            return self._apply_response(packet, ctx, switch)
        # Unknown message type: fall back to plain forwarding.
        return None

    # -- requests (Algorithm 1, lines 1-10) ------------------------------
    def _apply_request(
        self, packet: Packet, ctx: PassContext, switch: ProgrammableSwitch
    ) -> Optional[PipelineAction]:
        nc = packet.nc
        if nc.swid == SWID_UNSET:
            nc.swid = self.switch_id

        _, seq = ctx.reg(self.seq, 0, update=_next_seq)
        nc.req_id = seq

        pair = ctx.table(self.grp_table, nc.grp)
        if pair is None:
            switch.counters.incr("nc_unknown_group")
            action = PipelineAction()
            action.drop = True
            return action
        srv1, srv2 = pair

        state1, _ = ctx.reg(self.state_table, srv1)
        state2, _ = ctx.reg(self.shadow_table, srv2)

        may_clone = (
            self.cloning_enabled
            and nc.clo != CLO_NEVER_CLONE
            and state1 == STATE_IDLE
            and state2 == STATE_IDLE
        )
        destination = srv1
        action = None
        if may_clone:
            # Mark as cloned original, remember the clone's server in
            # SID, and recirculate a copy that will pick up its IP on
            # the second pass (lines 7-9).
            nc.clo = CLO_CLONED_ORIGINAL
            nc.sid = srv2
            action = PipelineAction()
            action.recirculate.append(packet.copy())
            switch._counts["nc_cloned"] += 1
        else:
            if nc.clo == CLO_NEVER_CLONE:
                nc.clo = CLO_NOT_CLONED
            if self._jsq and state2 < state1:
                # RackSched fallback: join the shorter queue (§3.7).
                destination = srv2
                switch._counts["nc_jsq_second_choice"] += 1

        address = ctx.table(self.addr_table, destination)
        if address is None:
            switch.counters.incr("nc_unknown_server")
            if action is None:
                action = PipelineAction()
            action.drop = True
            return action
        packet.dst = address
        return action

    # -- recirculated clones (lines 11-13) --------------------------------
    def _apply_cloned_request(
        self, packet: Packet, ctx: PassContext, switch: ProgrammableSwitch
    ) -> Optional[PipelineAction]:
        nc = packet.nc
        nc.clo = CLO_CLONED_COPY
        address = ctx.table(self.addr_table, nc.sid)
        if address is None:
            switch.counters.incr("nc_unknown_server")
            action = PipelineAction()
            action.drop = True
            return action
        packet.dst = address
        return None

    # -- responses (lines 14-26) ------------------------------------------
    def _apply_response(
        self, packet: Packet, ctx: PassContext, switch: ProgrammableSwitch
    ) -> Optional[PipelineAction]:
        nc = packet.nc
        reported_state = nc.state

        ctx.reg_set(self.state_table, nc.sid, reported_state)
        ctx.reg_set(self.shadow_table, nc.sid, reported_state)

        if nc.clo == CLO_NOT_CLONED or not self.filtering_enabled:
            return None

        req_id = nc.req_id
        slot = ctx.hash(self.hash_unit, req_id)
        filter_table = self.filters[nc.idx % len(self.filters)]
        # Single stateful compare-and-swap: clear on match, insert
        # otherwise (no per-packet update closure).
        old = ctx.reg_swap(filter_table, slot, req_id)
        if old == req_id:
            # The faster response already passed: this is the slower
            # one.  The slot was cleared for reuse by the update above.
            switch._counts["nc_filtered"] += 1
            action = PipelineAction()
            action.drop = True
            return action
        if old != 0:
            switch._counts["nc_fingerprint_overwrite"] += 1
        switch._counts["nc_fingerprint_insert"] += 1
        return None

    # ------------------------------------------------------------------
    def on_register_wipe(self) -> None:
        """After a power cycle all state is zero; nothing to rebuild.

        Zeroed state tables read as IDLE and the sequence restarts at
        1, which §3.6 argues is safe — requests with earlier sequence
        numbers have long completed.
        """

    @property
    def filter_slot_count(self) -> int:
        """Total fingerprint slots across all filter tables."""
        return sum(f.size for f in self.filters)
