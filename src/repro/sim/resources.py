"""Queueing resources for simulation processes.

Three classic primitives:

* :class:`Store` — an unbounded (or bounded) FIFO of Python objects,
  with both a process-friendly ``get()`` event API and a fast
  callback API (``put_nowait`` / ``pop_nowait``) for hot paths.
* :class:`Resource` — a counted semaphore (e.g. a pool of workers).
* :class:`Container` — a continuous level (e.g. tokens, bytes).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.errors import ProcessError
from repro.sim.core import Simulator
from repro.sim.processes import ProcessEvent

__all__ = ["Container", "Resource", "Store"]


class Store:
    """A FIFO store of arbitrary items.

    ``capacity`` bounds the number of items held; ``put`` on a full
    store blocks the putting process until space is available.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ProcessError("Store capacity must be positive or None")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[ProcessEvent] = deque()
        self._putters: Deque[ProcessEvent] = deque()
        self._put_values: Deque[Any] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        """Whether a further ``put_nowait`` would be rejected."""
        return self.capacity is not None and len(self.items) >= self.capacity

    # -- fast, non-blocking API ----------------------------------------
    def put_nowait(self, item: Any) -> bool:
        """Insert *item* if there is room; return whether it was taken.

        If a process is blocked on ``get()``, the item is handed to it
        directly without touching the queue.
        """
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                return True
        if self.capacity is not None and len(self.items) >= self.capacity:
            return False
        self.items.append(item)
        return True

    def pop_nowait(self) -> Any:
        """Remove and return the oldest item; ``None`` if empty."""
        if not self.items:
            return None
        item = self.items.popleft()
        self._admit_waiting_putter()
        return item

    def _admit_waiting_putter(self) -> None:
        while self._putters:
            putter = self._putters.popleft()
            value = self._put_values.popleft()
            if putter.triggered:
                continue
            self.items.append(value)
            putter.succeed(value)
            return

    # -- blocking (process) API ----------------------------------------
    def get(self) -> ProcessEvent:
        """Event that fires with the next item (FIFO among getters)."""
        event = ProcessEvent(self.sim)
        if self.items:
            item = self.items.popleft()
            self._admit_waiting_putter()
            event.succeed(item)
        else:
            self._getters.append(event)
        return event

    def put(self, item: Any) -> ProcessEvent:
        """Event that fires once *item* has been accepted."""
        event = ProcessEvent(self.sim)
        if self.put_nowait(item):
            event.succeed(item)
        else:
            self._putters.append(event)
            self._put_values.append(item)
        return event


class Resource:
    """A counted resource with FIFO acquisition.

    ``request()`` returns an event that fires when one unit has been
    granted; ``release()`` returns it.  The classic worker-pool shape::

        def job(sim, pool):
            yield pool.request()
            try:
                yield Timeout(sim, us(25))
            finally:
                pool.release()
    """

    def __init__(self, sim: Simulator, capacity: int):
        if capacity <= 0:
            raise ProcessError("Resource capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[ProcessEvent] = deque()

    @property
    def available(self) -> int:
        """Units currently free."""
        return self.capacity - self.in_use

    def request(self) -> ProcessEvent:
        """Event granting one unit of the resource."""
        event = ProcessEvent(self.sim)
        if self.in_use < self.capacity:
            self.in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one unit, waking the oldest waiter if any."""
        if self.in_use <= 0:
            raise ProcessError("release() without matching request()")
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.triggered:
                waiter.succeed()
                return
        self.in_use -= 1


class Container:
    """A continuous level between 0 and ``capacity``.

    Models fluid quantities (tokens, bytes of buffer).  ``get`` blocks
    until the requested amount is present; ``put`` blocks until it fits.
    """

    def __init__(self, sim: Simulator, capacity: float, init: float = 0.0):
        if capacity <= 0:
            raise ProcessError("Container capacity must be positive")
        if not 0 <= init <= capacity:
            raise ProcessError("initial level must lie within [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self.level = init
        self._getters: Deque[ProcessEvent] = deque()
        self._get_amounts: Deque[float] = deque()
        self._putters: Deque[ProcessEvent] = deque()
        self._put_amounts: Deque[float] = deque()

    def get(self, amount: float) -> ProcessEvent:
        """Event that fires once *amount* has been withdrawn."""
        if amount <= 0:
            raise ProcessError("get amount must be positive")
        event = ProcessEvent(self.sim)
        self._getters.append(event)
        self._get_amounts.append(amount)
        self._settle()
        return event

    def put(self, amount: float) -> ProcessEvent:
        """Event that fires once *amount* has been deposited."""
        if amount <= 0:
            raise ProcessError("put amount must be positive")
        if amount > self.capacity:
            raise ProcessError("put amount exceeds container capacity")
        event = ProcessEvent(self.sim)
        self._putters.append(event)
        self._put_amounts.append(amount)
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters and self.level + self._put_amounts[0] <= self.capacity:
                putter = self._putters.popleft()
                amount = self._put_amounts.popleft()
                if not putter.triggered:
                    self.level += amount
                    putter.succeed(amount)
                progressed = True
            if self._getters and self.level >= self._get_amounts[0]:
                getter = self._getters.popleft()
                amount = self._get_amounts.popleft()
                if not getter.triggered:
                    self.level -= amount
                    getter.succeed(amount)
                progressed = True
