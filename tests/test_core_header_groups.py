"""Tests for the NetClone header codec and group construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MSG_REQ,
    MSG_RESP,
    NetCloneHeader,
    build_group_pairs,
    install_group_table,
)
from repro.errors import CodecError, ExperimentError
from repro.switchsim import MatchActionTable


def test_header_wire_size_is_12_bytes():
    header = NetCloneHeader(msg_type=MSG_REQ)
    assert NetCloneHeader.WIRE_SIZE == 12
    assert len(header.pack()) == 12


def test_header_roundtrip_all_fields():
    header = NetCloneHeader(
        msg_type=MSG_RESP,
        req_id=0xDEADBEEF,
        grp=513,
        sid=7,
        state=1,
        clo=2,
        idx=1,
        swid=3,
    )
    assert NetCloneHeader.unpack(header.pack()) == header


def test_header_short_buffer_rejected():
    with pytest.raises(CodecError):
        NetCloneHeader.unpack(b"\x01\x02")


def test_header_field_out_of_range_rejected():
    header = NetCloneHeader(msg_type=MSG_REQ, req_id=1 << 40)
    with pytest.raises(CodecError):
        header.pack()


def test_header_copy_is_independent():
    header = NetCloneHeader(msg_type=MSG_REQ, req_id=5, grp=2)
    clone = header.copy()
    clone.req_id = 9
    clone.clo = 1
    assert header.req_id == 5
    assert header.clo == 0
    assert clone == clone.copy()


def test_header_eq_other_type():
    assert NetCloneHeader(msg_type=MSG_REQ).__eq__(42) is NotImplemented


@given(
    msg_type=st.integers(min_value=0, max_value=255),
    req_id=st.integers(min_value=0, max_value=(1 << 32) - 1),
    grp=st.integers(min_value=0, max_value=(1 << 16) - 1),
    sid=st.integers(min_value=0, max_value=255),
    state=st.integers(min_value=0, max_value=255),
    clo=st.integers(min_value=0, max_value=255),
    idx=st.integers(min_value=0, max_value=255),
    swid=st.integers(min_value=0, max_value=255),
)
@settings(max_examples=200, deadline=None)
def test_property_header_roundtrip(msg_type, req_id, grp, sid, state, clo, idx, swid):
    header = NetCloneHeader(msg_type, req_id, grp, sid, state, clo, idx, swid)
    assert NetCloneHeader.unpack(header.pack()) == header


# ----------------------------------------------------------------------
# Groups
# ----------------------------------------------------------------------
def test_groups_count_is_n_times_n_minus_1():
    for n in (2, 3, 6, 10):
        pairs = build_group_pairs(n)
        assert len(pairs) == n * (n - 1)


def test_groups_every_ordered_pair_once():
    pairs = build_group_pairs(4)
    assert len(set(pairs)) == len(pairs)
    for first in range(4):
        for second in range(4):
            if first != second:
                assert (first, second) in pairs
    assert all(first != second for first, second in pairs)


def test_groups_first_candidate_uniform():
    """Each server appears as first candidate equally often (§3.3)."""
    pairs = build_group_pairs(6)
    counts = {}
    for first, _second in pairs:
        counts[first] = counts.get(first, 0) + 1
    assert set(counts.values()) == {5}


def test_groups_minimum_two_servers():
    with pytest.raises(ExperimentError):
        build_group_pairs(1)


def test_install_group_table():
    table = MatchActionTable("GrpT", stage=0)
    count = install_group_table(table, 3)
    assert count == 6
    assert len(table) == 6
    assert table.lookup(0, stage=0) == (0, 1)


@given(st.integers(min_value=2, max_value=20))
@settings(max_examples=30, deadline=None)
def test_property_groups_complete_and_distinct(n):
    pairs = build_group_pairs(n)
    assert len(pairs) == n * (n - 1)
    assert len(set(pairs)) == len(pairs)
    assert all(0 <= a < n and 0 <= b < n and a != b for a, b in pairs)
