"""Ablation: filter-table sizing and count (§3.5 design choices).

The paper reserves 2 filter tables × 2^17 slots.  This bench varies
both knobs and measures the *filtering miss rate* — redundant
responses that reach the client because a hash collision overwrote the
fingerprint before the slower response arrived.  Expected shape:
misses are essentially zero at the paper's sizing and grow as slots
shrink; adding tables at a fixed total budget reduces misses because
the client-chosen table index separates colliding requests.
"""

from dataclasses import replace

from conftest import run_once

from repro.experiments.common import Cluster, ClusterConfig
from repro.experiments.harness import scaled_config
from repro.metrics.tables import format_table

CONFIGS = [
    # (tables, slots per table)
    (1, 16),
    (1, 256),
    (2, 16),
    (2, 256),
    (4, 16),
    (2, 1 << 17),  # the paper's configuration
]


def measure(scale: float, seed: int) -> str:
    base = scaled_config(
        ClusterConfig(scheme="netclone", rate_rps=1.4e6, seed=seed), scale
    )
    rows = []
    for tables, slots in CONFIGS:
        cluster = Cluster(
            replace(base, num_filter_tables=tables, filter_slots=slots)
        )
        cluster.start()
        cluster.run()
        cloned = cluster.switch.counters.get("nc_cloned")
        overwrites = cluster.switch.counters.get("nc_fingerprint_overwrite")
        leaked = sum(client.redundant_responses for client in cluster.clients)
        miss_rate = leaked / cloned if cloned else 0.0
        rows.append(
            (
                tables,
                slots,
                cloned,
                overwrites,
                leaked,
                f"{miss_rate * 100:.3f}%",
            )
        )
    report = "== Ablation: filter table count x slots (filtering miss rate) ==\n"
    report += format_table(
        ["tables", "slots", "cloned", "overwrites", "leaked responses", "miss rate"],
        rows,
    )
    print(report)
    return report


def bench_ablation_filter_tables(benchmark, bench_scale, bench_seed):
    report = run_once(benchmark, measure, scale=bench_scale, seed=bench_seed)
    assert "miss rate" in report
    # The paper's configuration must filter essentially everything.
    paper_row = report.splitlines()[-1]
    assert "0.000%" in paper_row
