"""Command-line entry point: ``python -m repro`` / ``repro-netclone``.

Examples::

    repro-netclone --list
    repro-netclone schemes
    repro-netclone fig7 --scale 0.25 --jobs 4
    repro-netclone fig16 resources --seed 7
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.registry import get_experiment, list_experiments
from repro.experiments.schemes import describe_schemes

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-netclone",
        description="Reproduce the NetClone (SIGCOMM 2023) evaluation.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (fig7..fig16, table1, resources), or "
        "'schemes' to list the registered schemes",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="shrink measurement windows/grids (e.g. 0.25 for a quick pass)",
    )
    parser.add_argument("--seed", type=int, default=1, help="root RNG seed")
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="sweep points in N parallel worker processes (0 = all CPU cores)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.list or not args.experiments:
        print("available experiments:")
        for line in list_experiments():
            print(f"  {line}")
        print("  schemes — list registered load-balancing/cloning schemes")
        return 0
    for experiment_id in args.experiments:
        if experiment_id == "schemes":
            print("registered schemes:")
            for line in describe_schemes():
                print(f"  {line}")
            continue
        harness = get_experiment(experiment_id)
        harness(scale=args.scale, seed=args.seed, jobs=args.jobs)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
