"""Workload specifications shared by the experiment harnesses.

A spec bundles the two scheme-independent halves of a workload: the
per-client request generator and the per-server service model.  Specs
are deliberately tiny factories so that every client gets its own RNG
stream and every server its own store replica.
"""

from __future__ import annotations

import random
from functools import partial
from typing import Optional, Sequence, Tuple

from repro.apps.service import KvService, ServiceModel, SyntheticService
from repro.errors import ExperimentError
from repro.kvstore.cost import KvCostModel, MemcachedCostModel, RedisCostModel
from repro.kvstore.store import KeyValueStore
from repro.workloads.distributions import (
    BimodalDistribution,
    ExponentialDistribution,
    ServiceDistribution,
)
from repro.workloads.kv import KvWorkload
from repro.workloads.mmpp import DiurnalArrivals, MmppArrivals
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.zipf import DriftingZipfGenerator, ZipfGenerator

__all__ = [
    "DiurnalSpec",
    "KvSpec",
    "MmppSpec",
    "SyntheticSpec",
    "WorkloadSpec",
    "make_synthetic_spec",
]

#: Golden-ratio conjugate; spaces per-tenant diurnal phases maximally
#: apart for any client count (phase_i = frac(i·φ⁻¹)).
_GOLDEN = 0.61803398875


class WorkloadSpec:
    """Factory pair: client workloads and server services."""

    name = "spec"

    def make_workload(self, rng: random.Random):
        """A request generator for one client."""
        raise NotImplementedError

    def make_service(self, server_index: int) -> ServiceModel:
        """A service model for one server."""
        raise NotImplementedError

    def make_arrival_process(
        self, rng: random.Random, rate_rps: float, client_index: int
    ):
        """An arrival-gap generator for one client, or ``None``.

        ``None`` (the default) keeps the client's plain exponential
        gaps — bit-identical to the historical Poisson open loop.
        Burst-modelling specs return an object with ``next_gap() ->
        int ns`` (and optionally ``set_rate``); *rng* is the client's
        dedicated arrival stream and *client_index* lets multi-tenant
        specs desynchronise tenants (per-client phase).
        """
        return None


class SyntheticSpec(WorkloadSpec):
    """Dummy-RPC spec around a service-time distribution factory."""

    def __init__(self, distribution_factory, name: Optional[str] = None):
        self._factory = distribution_factory
        probe: ServiceDistribution = distribution_factory()
        self.name = name if name is not None else probe.name
        self.mean_service_ns = probe.mean_ns

    def make_workload(self, rng: random.Random) -> SyntheticWorkload:
        return SyntheticWorkload(self._factory(), rng)

    def make_service(self, server_index: int) -> SyntheticService:
        return SyntheticService()


def make_synthetic_spec(
    kind: str,
    mean_us: float = 25.0,
    modes: Optional[Sequence[Tuple[float, float]]] = None,
) -> SyntheticSpec:
    """The paper's synthetic workloads by name.

    ``kind`` is ``"exp"`` (Exp(mean)) or ``"bimodal"`` (defaults to the
    paper's 90 %-25 µs / 10 %-250 µs mix when *modes* is omitted).
    """
    # partial() rather than a lambda keeps the spec picklable, so
    # configs embedding it can cross SweepExecutor process boundaries.
    if kind == "exp":
        return SyntheticSpec(partial(ExponentialDistribution, mean_us))
    if kind == "bimodal":
        chosen = tuple(modes) if modes is not None else ((0.9, 25.0), (0.1, 250.0))
        return SyntheticSpec(partial(BimodalDistribution, chosen))
    raise ExperimentError(f"unknown synthetic workload kind {kind!r}")


class MmppSpec(SyntheticSpec):
    """Bursty dummy-RPC spec: MMPP arrivals over a service distribution.

    Service times come from the same synthetic distributions as
    :class:`SyntheticSpec`; only the arrival process changes, so any
    latency difference against the plain spec is attributable to
    burstiness alone.
    """

    def __init__(
        self,
        kind: str = "exp",
        mean_us: float = 25.0,
        burst: float = 8.0,
        high_fraction: float = 0.1,
        period_ms: float = 1.0,
    ):
        base = make_synthetic_spec(kind, mean_us=mean_us)
        super().__init__(
            base._factory,
            name=f"mmpp({burst:g}x,{high_fraction:g})-{base.name}",
        )
        if burst <= 1.0:
            raise ExperimentError("mmpp burst must exceed 1")
        if not 0.0 < high_fraction < 1.0:
            raise ExperimentError("mmpp high_fraction must lie in (0, 1)")
        if period_ms <= 0:
            raise ExperimentError("mmpp period_ms must be positive")
        self.burst = burst
        self.high_fraction = high_fraction
        self.period_ms = period_ms

    def make_arrival_process(
        self, rng: random.Random, rate_rps: float, client_index: int
    ) -> MmppArrivals:
        return MmppArrivals(
            rng,
            rate_rps,
            burst=self.burst,
            high_fraction=self.high_fraction,
            period_s=self.period_ms * 1e-3,
        )


class DiurnalSpec(SyntheticSpec):
    """Multi-tenant diurnal spec: phase-staggered sinusoidal arrivals.

    Every client is one "tenant" whose offered load follows a sine
    wave; phases are spread by the golden-ratio sequence so no two
    tenants peak together regardless of the client count — aggregate
    load stays near nominal while individual servers see rolling
    hot spots.
    """

    def __init__(
        self,
        kind: str = "exp",
        mean_us: float = 25.0,
        amplitude: float = 0.5,
        period_ms: float = 2.0,
    ):
        base = make_synthetic_spec(kind, mean_us=mean_us)
        super().__init__(
            base._factory,
            name=f"diurnal({amplitude:g},{period_ms:g}ms)-{base.name}",
        )
        if not 0.0 <= amplitude < 1.0:
            raise ExperimentError("diurnal amplitude must lie in [0, 1)")
        if period_ms <= 0:
            raise ExperimentError("diurnal period_ms must be positive")
        self.amplitude = amplitude
        self.period_ms = period_ms

    def make_arrival_process(
        self, rng: random.Random, rate_rps: float, client_index: int
    ) -> DiurnalArrivals:
        return DiurnalArrivals(
            rng,
            rate_rps,
            amplitude=self.amplitude,
            period_s=self.period_ms * 1e-3,
            phase=(client_index * _GOLDEN) % 1.0,
        )


class KvSpec(WorkloadSpec):
    """Key-value spec (§5.5): Zipf-0.99 keys, GET/SCAN mix.

    ``drift_period`` > 0 swaps the static Zipf popularity for a
    drifting one (see
    :class:`~repro.workloads.zipf.DriftingZipfGenerator`): the hot set
    rotates by one key every *drift_period* requests per client.
    """

    def __init__(
        self,
        cost_model: str = "redis",
        scan_fraction: float = 0.01,
        num_keys: int = 1_000_000,
        zipf_skew: float = 0.99,
        scan_count: int = 100,
        drift_period: int = 0,
    ):
        if cost_model == "redis":
            self._cost_factory = RedisCostModel
        elif cost_model == "memcached":
            self._cost_factory = MemcachedCostModel
        else:
            raise ExperimentError(f"unknown cost model {cost_model!r}")
        self.scan_fraction = scan_fraction
        self.num_keys = num_keys
        self.scan_count = scan_count
        self.drift_period = drift_period
        # One Zipf CDF shared by all clients (it is read-only and costs
        # ~8 MB for a million keys).
        if drift_period > 0:
            self._zipf = DriftingZipfGenerator(num_keys, zipf_skew, drift_period)
        else:
            self._zipf = ZipfGenerator(num_keys, zipf_skew)
        probe: KvCostModel = self._cost_factory()
        get_pct = round((1.0 - scan_fraction) * 100)
        self.name = f"{probe.name}-{get_pct:g}%GET-{100 - get_pct:g}%SCAN"
        if drift_period > 0:
            self.name += f"-drift{drift_period:g}"
        self.mean_service_ns = (1.0 - scan_fraction) * probe.get_ns + scan_fraction * (
            probe.scan_base_ns + probe.scan_per_item_ns * scan_count
        )

    def make_workload(self, rng: random.Random) -> KvWorkload:
        return KvWorkload(
            rng,
            num_keys=self.num_keys,
            scan_fraction=self.scan_fraction,
            scan_count=self.scan_count,
            zipf=self._zipf,
        )

    def make_service(self, server_index: int) -> KvService:
        return KvService(KeyValueStore(self.num_keys), self._cost_factory())
