"""Plugin/config rules: hazards in the registry and control planes.

* ``spec-lambda`` — ``*Spec(...)`` constructions carrying a lambda
  cannot pickle to sweep worker processes; the failure surfaces later,
  inside the executor, far from the spec that caused it;
* ``param-guard`` — a plugin factory that reads ``params.get(...)``
  without rejecting unknown keys lets a typoed CLI knob
  (``--placement rack-weighted:prob=0.7``) silently run defaults;
* ``epoch-stamp`` — ``install_group_table`` with a table that was
  never ``.with_epoch()``-stamped re-creates the PR-5 aliasing bug:
  clients compare epochs, so an unstamped rebuild that keeps the
  group count looks like "no change".
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.core import RuleContext, RuleSpec, register_rule

__all__ = ["EPOCH_STAMP", "PARAM_GUARD", "SPEC_LAMBDA"]

SPEC_LAMBDA = "spec-lambda"
PARAM_GUARD = "param-guard"
EPOCH_STAMP = "epoch-stamp"


def _call_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _own_nodes(fn: ast.AST) -> List[ast.AST]:
    nodes: List[ast.AST] = []
    stack: List[ast.AST] = list(getattr(fn, "body", []))
    while stack:
        node = stack.pop()
        nodes.append(node)
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return nodes


class _SpecLambdaChecker:
    def visit_Call(self, node: ast.Call, ctx: RuleContext) -> None:
        name = _call_name(node)
        if name is None or not name.endswith("Spec"):
            return
        for value in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(value, ast.Lambda):
                ctx.report(
                    value,
                    f"lambda inside {name}(...) cannot pickle to sweep "
                    "worker processes; use a module-level function",
                )


class _ParamGuardChecker:
    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: RuleContext) -> None:
        self._check(node, ctx)

    def visit_AsyncFunctionDef(self, node: ast.AST, ctx: RuleContext) -> None:
        self._check(node, ctx)

    def _check(self, fn: ast.AST, ctx: RuleContext) -> None:
        args = fn.args
        arg_names = {
            arg.arg
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
        }
        if "params" not in arg_names:
            return
        nodes = _own_nodes(fn)
        reads = False
        guarded = False
        for node in nodes:
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name is not None and "check_params" in name:
                    guarded = True
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("get", "pop")
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "params"
                ):
                    reads = True
                elif (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "set"
                    and len(node.args) == 1
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id == "params"
                ):
                    guarded = True  # set(params) - known_keys idiom
            elif (
                isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id == "params"
            ):
                reads = True
            elif isinstance(node, ast.Raise):
                guarded = True
        if reads and not guarded:
            ctx.report(
                fn,
                f"plugin factory {fn.name}() reads params without rejecting "
                "unknown keys; a typoed knob silently runs defaults — "
                "validate with a known-key check",
            )


class _EpochStampChecker:
    def visit_Call(self, node: ast.Call, ctx: RuleContext) -> None:
        if not (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "install_group_table"
            and node.args
        ):
            return
        arg = node.args[0]
        if self._stamped(arg):
            return
        if isinstance(arg, ast.Name) and self._name_ok(arg.id, node, ctx):
            return
        ctx.report(
            node,
            "group table installed without a .with_epoch() stamp; clients "
            "compare epochs to detect rebuilds, so an unstamped install "
            "that keeps the group count looks like no change",
        )

    @staticmethod
    def _stamped(node: ast.AST) -> bool:
        return any(
            isinstance(sub, ast.Attribute) and sub.attr == "with_epoch"
            for sub in ast.walk(node)
        )

    def _name_ok(self, name: str, call: ast.Call, ctx: RuleContext) -> bool:
        fn = ctx.current_function
        if fn is None:
            return False
        args = fn.args
        if name in {
            arg.arg
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
        }:
            return True  # stamped (or not) by the caller; out of scope here
        for node in _own_nodes(fn):
            if (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(target, ast.Name) and target.id == name
                    for target in node.targets
                )
                and self._stamped(node.value)
            ):
                return True
        return False


register_rule(
    RuleSpec(
        name=SPEC_LAMBDA,
        description="lambdas inside *Spec(...) constructions break pickling "
        "to sweep worker processes",
        make_checker=_SpecLambdaChecker,
        severity="error",
        module=__name__,
    )
)

register_rule(
    RuleSpec(
        name=PARAM_GUARD,
        description="plugin factories reading params without a "
        "typo-rejecting unknown-key check",
        make_checker=_ParamGuardChecker,
        severity="warning",
        module=__name__,
    )
)

register_rule(
    RuleSpec(
        name=EPOCH_STAMP,
        description="install_group_table calls whose table bypasses "
        "with_epoch stamping (the PR-5 stale-table aliasing hazard)",
        make_checker=_EpochStampChecker,
        severity="error",
        module=__name__,
    )
)
