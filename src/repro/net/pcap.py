"""PCAP export.

Writes simulated packets as a classic libpcap capture file (magic
0xa1b23c4d, nanosecond timestamps) with real Ethernet/IPv4/UDP framing
and the NetClone header as the UDP payload prefix — loadable in
Wireshark/tcpdump for debugging.  The encoders come from
:mod:`repro.net.headers` and :mod:`repro.core.header`, so the capture
doubles as an executable definition of the wire format.
"""

from __future__ import annotations

import struct
from typing import Any, BinaryIO

from repro.errors import CodecError
from repro.net.headers import EthernetHeader, IPv4Header, UDPHeader
from repro.net.packet import Packet

__all__ = ["PcapWriter"]

_MAGIC_NANOSECOND = 0xA1B23C4D
_LINKTYPE_ETHERNET = 1


class PcapWriter:
    """Streams packets into a nanosecond-resolution pcap file."""

    def __init__(self, fileobj: BinaryIO, snaplen: int = 65535):
        self._file = fileobj
        self.packets_written = 0
        self._file.write(
            struct.pack(
                "<IHHiIII",
                _MAGIC_NANOSECOND,
                2,  # version major
                4,  # version minor
                0,  # thiszone
                0,  # sigfigs
                snaplen,
                _LINKTYPE_ETHERNET,
            )
        )

    # ------------------------------------------------------------------
    def frame_bytes(self, packet: Packet) -> bytes:
        """Encode *packet* as an Ethernet/IPv4/UDP frame."""
        nc_bytes = packet.nc.pack() if packet.nc is not None else b""
        payload_len = max(0, packet.size - 14 - 20 - 8 - len(nc_bytes))
        payload = nc_bytes + b"\x00" * payload_len
        udp = UDPHeader(
            sport=packet.sport,
            dport=packet.dport,
            length=UDPHeader.WIRE_SIZE + len(payload),
        ).pack()
        ip = IPv4Header(
            src=packet.src,
            dst=packet.dst,
            protocol=packet.proto,
            total_length=IPv4Header.WIRE_SIZE + len(udp) + len(payload),
        ).pack()
        # Synthetic but stable MACs derived from the IPs.
        eth = EthernetHeader(
            dst_mac=0x020000000000 | packet.dst,
            src_mac=0x020000000000 | packet.src,
        ).pack()
        return eth + ip + udp + payload

    def write(self, time_ns: int, packet: Packet) -> None:
        """Append one record at simulated time *time_ns*."""
        if time_ns < 0:
            raise CodecError("pcap timestamps must be non-negative")
        frame = self.frame_bytes(packet)
        seconds, nanos = divmod(time_ns, 1_000_000_000)
        self._file.write(struct.pack("<IIII", seconds, nanos, len(frame), len(frame)))
        self._file.write(frame)
        self.packets_written += 1
