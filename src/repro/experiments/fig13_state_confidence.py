"""Figure 13: confidence of the empty-queue state signal (§5.6.1).

(a) The fraction of responses reporting an empty queue, as offered
load sweeps 10 %..100 % of capacity.  Expected shape: decreasing in
load, but never 0 even at very high load (queues drain between
bursts) and never quite 1 even at low load (bursts queue briefly) —
the two observations that explain NetClone's behaviour at both ends.

(b) Ten repetitions of Baseline vs NetClone at 90 % load: mean and
standard deviation of p99.  Expected shape: NetClone's mean p99 is
lower, with enough run-to-run spread that individual runs can cross.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.common import ClusterConfig
from repro.experiments.executor import SweepExecutor, resolve_executor
from repro.experiments.harness import capacity_rps, scaled_config
from repro.experiments.registry import register
from repro.experiments.specs import make_synthetic_spec
from repro.metrics.tables import format_table

__all__ = ["collect_empty_queue", "collect_repeated_p99", "run"]

NUM_SERVERS = 6
WORKERS = 15
REPEATS = 10
HIGH_LOAD_FRACTION = 0.9


def _effective_capacity(config: ClusterConfig) -> float:
    """Achievable capacity: worker capacity divided by the jitter
    inflation factor (1 + p·(factor−1)).  The paper's load percentages
    are fractions of what the cluster can actually serve, so anchoring
    to raw worker capacity would place '90 %' beyond saturation."""
    raw = capacity_rps(NUM_SERVERS * WORKERS, config.workload.mean_service_ns)
    inflation = 1.0 + config.jitter_p * (config.jitter_factor - 1.0)
    return raw / inflation


def _base_config(
    scale: float,
    seed: int,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> ClusterConfig:
    spec = make_synthetic_spec("exp", mean_us=25.0)
    return scaled_config(
        ClusterConfig(
            workload=spec,
            topology=topology,
            placement=placement,
            num_servers=NUM_SERVERS,
            workers_per_server=WORKERS,
            seed=seed,
        ),
        scale,
    )


def collect_empty_queue(
    scale: float = 1.0,
    seed: int = 1,
    executor: Optional[SweepExecutor] = None,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> List[Tuple[float, float]]:
    """(load fraction, empty-queue fraction) samples for panel (a)."""
    config = _base_config(scale, seed, topology, placement)
    capacity = _effective_capacity(config)
    fractions = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
    if scale < 0.4:
        fractions = (0.1, 0.4, 0.7, 1.0)
    configs = [
        replace(config, scheme="netclone", rate_rps=capacity * fraction)
        for fraction in fractions
    ]
    points = resolve_executor(executor, None).run_points(configs)
    samples = []
    for fraction, point in zip(fractions, points):
        zeros = point.extra["state_samples_zero"]
        total = point.extra["state_samples_total"]
        samples.append((fraction, zeros / total if total else float("nan")))
    return samples


def collect_repeated_p99(
    scale: float = 1.0,
    seed: int = 1,
    repeats: int = REPEATS,
    executor: Optional[SweepExecutor] = None,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> Dict[str, Tuple[float, float]]:
    """Mean and std of p99 over repeated runs at 90 % load (panel b)."""
    config = _base_config(scale, seed, topology, placement)
    rate = _effective_capacity(config) * HIGH_LOAD_FRACTION
    schemes = ("baseline", "netclone")
    configs = [
        replace(config, scheme=scheme, rate_rps=rate, seed=seed + run_index)
        for scheme in schemes
        for run_index in range(repeats)
    ]
    points = resolve_executor(executor, None).run_points(configs)
    out: Dict[str, Tuple[float, float]] = {}
    for index, scheme in enumerate(schemes):
        p99s = [p.p99_us for p in points[index * repeats : (index + 1) * repeats]]
        out[scheme] = (float(np.mean(p99s)), float(np.std(p99s)))
    return out


def run(
    scale: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> str:
    """Run Figure 13 and return the formatted report."""
    executor = SweepExecutor(jobs=jobs)
    empty = collect_empty_queue(
        scale, seed, executor=executor, topology=topology, placement=placement
    )
    repeats = REPEATS if scale >= 1.0 else max(3, int(REPEATS * scale))
    stats = collect_repeated_p99(
        scale, seed, repeats=repeats, executor=executor, topology=topology,
        placement=placement
    )
    lines = ["== Figure 13 (a): portion of empty queues vs offered load =="]
    lines.append(
        format_table(
            ["offered load (%)", "empty-queue fraction (%)"],
            [(f"{frac * 100:.0f}", f"{portion * 100:.1f}") for frac, portion in empty],
        )
    )
    lines.append("")
    lines.append(f"== Figure 13 (b): p99 at 90% load over {repeats} runs ==")
    lines.append(
        format_table(
            ["scheme", "mean p99 (us)", "std (us)"],
            [
                (scheme, f"{mean:.1f}", f"{std:.1f}")
                for scheme, (mean, std) in stats.items()
            ],
        )
    )
    lines.append("")
    lines.append("shape checks:")
    lines.append(
        f"  - empty-queue fraction decreases with load: "
        f"{empty[0][1] * 100:.1f}% at {empty[0][0] * 100:.0f}% load -> "
        f"{empty[-1][1] * 100:.1f}% at {empty[-1][0] * 100:.0f}% load"
    )
    lines.append(
        f"  - NetClone mean p99 {stats['netclone'][0]:.0f} +/- {stats['netclone'][1]:.0f} us vs "
        f"Baseline {stats['baseline'][0]:.0f} +/- {stats['baseline'][1]:.0f} us at 90% load "
        f"(paper: NetClone lower on average, with runs occasionally crossing)"
    )
    report = "\n".join(lines)
    print(report)
    return report


@register("fig13", "confidence of the empty-queue state signal")
def _run(
    scale: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> str:
    return run(scale, seed, jobs=jobs, topology=topology, placement=placement)
