"""Benchmark: regenerate Figure 11 (Redis, 99/1 and 90/10 mixes)."""

from conftest import run_once

from repro.experiments import fig11_redis


def bench_fig11_redis(benchmark, bench_scale, bench_seed):
    report = run_once(benchmark, fig11_redis.run, scale=bench_scale, seed=bench_seed)
    assert "Figure 11" in report
    assert "GET" in report
