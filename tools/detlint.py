#!/usr/bin/env python
"""Standalone entry for the detlint rule engine (``make lint``).

A thin wrapper over ``repro-netclone lint`` that works without an
installed package or a configured ``PYTHONPATH`` — CI and pre-commit
hooks call it straight from a checkout::

    python tools/detlint.py
    python tools/detlint.py src/repro/sim --findings-json findings.json
    python tools/detlint.py --list-rules
    python tools/detlint.py --update-baseline

Arguments are exactly the CLI's: positional paths narrow the run
(default: the full ``src/repro`` + ``examples`` + ``tools`` tree), and
``--baseline`` / ``--update-baseline`` / ``--findings-json`` behave as
documented there.  Exit code 1 on any non-baselined finding.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))


def main(argv: list[str] | None = None) -> int:
    from repro.cli import main as cli_main

    args = sys.argv[1:] if argv is None else list(argv)
    return cli_main(["lint", *args])


if __name__ == "__main__":
    sys.exit(main())
