"""Placement policies: rack-aware candidate-pair construction (§3.3).

The paper's group table names ordered pairs of candidate servers; which
pairs exist is inherently a *placement* decision.  The seed code had a
single global construction (every ordered pair over every server, see
:mod:`repro.core.groups`), which on a multi-rack fabric sends almost
every clone across a trunk.  This module turns that decision into a
policy object consulted **once per ToR** at cluster build time:

* :class:`GlobalPlacement` — every ordered pair over every live
  server, bit-identical to the seed construction;
* :class:`RackLocalPlacement` — only pairs inside the ToR's own rack,
  so clones never cross a trunk; racks with fewer than two live
  servers fall back to the global pair set;
* :class:`RackWeightedPlacement` — a probabilistic mix: clients draw a
  rack-local pair with probability ``p`` and a global pair otherwise,
  the knob locality sweeps turn.

A policy reduces a :class:`PlacementContext` (which rack each server
lives in) to one :class:`GroupTable` per ToR: the ordered pairs the
switch installs plus the sampling rule the rack's clients use to draw
group IDs.  Policies are selected by name through the registry in
:mod:`repro.experiments.placements` (``ClusterConfig.placement``,
``--placement``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.groups import ordered_pairs
from repro.errors import ExperimentError

__all__ = [
    "GlobalPlacement",
    "GroupTable",
    "PlacementContext",
    "PlacementPolicy",
    "RackLocalPlacement",
    "RackWeightedPlacement",
    "as_group_table",
]


@dataclass(frozen=True)
class GroupTable:
    """One ToR's group table plus the client-side sampling rule.

    ``pairs[g]`` is the ordered candidate pair group ID *g* maps to —
    exactly what the switch installs.  ``split`` divides the table
    into a *preferred* section ``pairs[:split]`` and a *fallback*
    section ``pairs[split:]``; clients draw from the preferred section
    with probability ``p_local`` and uniformly from the fallback
    otherwise.  ``split == len(pairs)`` marks a pure uniform table
    (one ``randrange`` per draw — the seed client's exact RNG
    behaviour, which the ``global`` bit-identity golden tests pin).

    ``epoch`` is the control-plane generation the table belongs to:
    assembly-time tables are epoch 0 and every §3.6 failure/recovery
    rebuild stamps the next epoch on the tables it pushes
    (:meth:`with_epoch`).  Clients compare epochs — not table sizes —
    to decide whether their cached table still matches the switch, so
    a rebuild that happens to keep the group count is never mistaken
    for "no change".
    """

    pairs: Tuple[Tuple[int, int], ...]
    split: int
    p_local: float = 1.0
    epoch: int = 0

    def __post_init__(self) -> None:
        if len(self.pairs) < 2:
            raise ExperimentError(
                "a group table needs at least two groups (one server pair, "
                "both orders)"
            )
        if not 0 <= self.split <= len(self.pairs):
            raise ExperimentError(
                f"group-table split {self.split} outside [0, {len(self.pairs)}]"
            )
        if not 0.0 <= self.p_local <= 1.0:
            raise ExperimentError(
                f"group-table p_local {self.p_local} outside [0, 1]"
            )
        if self.epoch < 0:
            raise ExperimentError(f"group-table epoch {self.epoch} is negative")

    def with_epoch(self, epoch: int) -> "GroupTable":
        """This table stamped as control-plane generation *epoch*."""
        return replace(self, epoch=epoch)

    @property
    def num_groups(self) -> int:
        """Dense group-ID space size (what the switch installs)."""
        return len(self.pairs)

    @property
    def is_uniform(self) -> bool:
        """Whether every draw is uniform over the whole table."""
        return self.split >= len(self.pairs) or self.split <= 0

    def sample(self, rng: Any) -> int:
        """Draw one group ID with this table's locality mix.

        Uniform tables spend exactly one ``rng.randrange`` call, so a
        ``global`` table replays the seed client's RNG stream
        bit-for-bit; sectioned tables spend one ``rng.random`` to pick
        the section plus one ``randrange`` inside it.
        """
        total = len(self.pairs)
        if self.is_uniform:
            return rng.randrange(total)
        if rng.random() < self.p_local:
            return rng.randrange(self.split)
        return self.split + rng.randrange(total - self.split)


def as_group_table(value: Any) -> GroupTable:
    """Coerce a :class:`SchemeSpec.group_pairs` result to a table.

    Custom hooks may return a ready :class:`GroupTable` or any
    sequence of ``(first, second)`` pairs (treated as uniform).
    """
    if isinstance(value, GroupTable):
        return value
    pairs = tuple(tuple(pair) for pair in value)
    return GroupTable(pairs=pairs, split=len(pairs))


@dataclass(frozen=True)
class PlacementContext:
    """What a placement policy may know when building one ToR's table.

    ``server_racks[s]`` is the rack of server ID *s* (the fabric's
    role placement map, see :meth:`repro.net.topology.Fabric.racks_of`);
    ``live`` optionally masks out failed servers — a rack needs two
    *live* servers before rack-local pairs make sense.
    """

    server_racks: Tuple[int, ...]
    num_racks: int = 1
    live: Optional[Tuple[bool, ...]] = None

    def __post_init__(self) -> None:
        if self.live is not None and len(self.live) != len(self.server_racks):
            raise ExperimentError(
                f"{len(self.live)} liveness flags for "
                f"{len(self.server_racks)} servers"
            )

    def live_ids(self) -> List[int]:
        """Every live server ID, in ID order."""
        return [
            server
            for server in range(len(self.server_racks))
            if self.live is None or self.live[server]
        ]

    # -- live-mask derivation (what §3.6 failure handling flips) -------
    def live_mask(self) -> Tuple[bool, ...]:
        """The liveness mask, expanded (``live=None`` means all live)."""
        if self.live is None:
            return (True,) * len(self.server_racks)
        return self.live

    def with_live(self, live: Sequence[bool]) -> "PlacementContext":
        """This context with the liveness mask replaced by *live*."""
        return replace(self, live=tuple(bool(flag) for flag in live))

    def mark_dead(self, server_id: int) -> "PlacementContext":
        """This context with *server_id*'s live bit cleared."""
        return self._flipped(server_id, False)

    def mark_live(self, server_id: int) -> "PlacementContext":
        """This context with *server_id*'s live bit set (recovery)."""
        return self._flipped(server_id, True)

    def _flipped(self, server_id: int, alive: bool) -> "PlacementContext":
        if not 0 <= server_id < len(self.server_racks):
            raise ExperimentError(
                f"server {server_id} outside the placement map "
                f"(0..{len(self.server_racks) - 1})"
            )
        mask = list(self.live_mask())
        mask[server_id] = alive
        return self.with_live(mask)

    def rack_members(self, rack: int) -> List[int]:
        """Live server IDs placed in *rack*, in ID order."""
        return [s for s in self.live_ids() if self.server_racks[s] == rack]


class PlacementPolicy:
    """Builds one :class:`GroupTable` per ToR from a placement map."""

    #: Registry key (``global``, ``rack-local``, ``rack-weighted``).
    name: str = ""

    def group_table(self, ctx: PlacementContext, rack: int) -> GroupTable:
        """The table ToR *rack* should install."""
        raise NotImplementedError

    def _global_table(self, ctx: PlacementContext) -> GroupTable:
        """The seed construction: every ordered pair of live servers."""
        pairs = tuple(ordered_pairs(ctx.live_ids()))
        return GroupTable(pairs=pairs, split=len(pairs))


class GlobalPlacement(PlacementPolicy):
    """The seed behaviour: every ToR installs the full global table."""

    name = "global"

    def group_table(self, ctx: PlacementContext, rack: int) -> GroupTable:
        return self._global_table(ctx)


class RackLocalPlacement(PlacementPolicy):
    """Clone within the ToR's rack; trunk-free redundancy.

    A rack with fewer than two live servers cannot host a pair, so its
    ToR falls back to the full global table (requests still complete,
    they just pay the trunk crossing the policy otherwise avoids).
    """

    name = "rack-local"

    def group_table(self, ctx: PlacementContext, rack: int) -> GroupTable:
        members = ctx.rack_members(rack)
        if len(members) < 2:
            return self._global_table(ctx)
        pairs = tuple(ordered_pairs(members))
        return GroupTable(pairs=pairs, split=len(pairs))


class RackWeightedPlacement(PlacementPolicy):
    """Rack-local with probability ``p``, global otherwise.

    The table carries both sections — rack-local pairs first, the full
    global set after — and clients mix between them, so one knob sweeps
    smoothly from ``global`` (p=0) to ``rack-local`` (p=1).  Racks
    with fewer than two live servers degrade to the global table, like
    :class:`RackLocalPlacement`.
    """

    name = "rack-weighted"

    def __init__(self, p: float = 0.5):
        if not 0.0 <= p <= 1.0:
            raise ExperimentError(
                f"placement parameter p={p!r} must be a probability in [0, 1]"
            )
        self.p = float(p)

    def group_table(self, ctx: PlacementContext, rack: int) -> GroupTable:
        members = ctx.rack_members(rack)
        if len(members) < 2 or self.p <= 0.0:
            return self._global_table(ctx)
        local = tuple(ordered_pairs(members))
        if self.p >= 1.0:
            return GroupTable(pairs=local, split=len(local))
        table = local + tuple(ordered_pairs(ctx.live_ids()))
        return GroupTable(pairs=table, split=len(local), p_local=self.p)
