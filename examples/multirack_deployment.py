#!/usr/bin/env python3
"""Multi-rack deployment with switch-ID gating (§3.7).

Topology is a plugin axis, just like the scheme: picking
``topology="two_rack"`` gives clients in rack A, servers in rack B,
joined by a trunk.  Both ToRs run the NetClone program, but the SWID
field ensures only the *client-side* ToR clones, assigns request IDs
and filters responses; the server-side ToR sees stamped packets and
falls through to plain L3 forwarding.

The same config runs on any registered fabric — try
``topology="spine_leaf"`` with ``topology_params={"racks": 3,
"spines": 2}``, or ``repro-netclone topologies`` for the list.

Run:  python examples/multirack_deployment.py
"""

from repro.experiments.common import Cluster, ClusterConfig
from repro.sim.units import ms

RATE_RPS = 80e3


def main() -> None:
    print(__doc__)
    config = ClusterConfig(
        scheme="netclone",
        topology="two_rack",
        num_servers=4,
        workers_per_server=8,
        num_clients=1,
        rate_rps=RATE_RPS,
        warmup_ns=ms(10),
        measure_ns=ms(90),
        seed=1,
    )
    cluster = Cluster(config)
    cluster.start()
    cluster.run()
    point = cluster.load_point()

    print(f"completed requests : {point.samples}")
    print(f"p50 / p99          : {point.p50_us:.1f} / {point.p99_us:.1f} us")
    print("(note the extra trunk hop vs the single-rack quickstart)")
    print()
    print("who did the NetClone work?")
    for tor in cluster.tors:
        counters = tor.counters
        print(
            f"  {tor.name}: cloned={counters.get('nc_cloned')} "
            f"filtered={counters.get('nc_filtered')} "
            f"recirculated={counters.get('recirculated')}"
        )
    print()
    client_tor, server_tor = cluster.tors
    print("tor1 (client side) stamped SWID=1; tor2's gate skipped those")
    print(f"packets, so its sequence register is untouched: "
          f"{server_tor.program.seq.peek(0)}")
    print(f"redundant responses reaching clients: "
          f"{point.extra['redundant_responses']:.0f} (both copies filtered)")


if __name__ == "__main__":
    main()
