"""Scenario runner: timed events on a live cluster + invariant report.

:func:`run_scenario` builds the scenario's cluster exactly the way the
hand-written drills did — fabric, monitors, failure handler — then
schedules every spec event on the simulator (``sim.at``; same-time
events apply in spec order), snapshots telemetry at each checkpoint,
runs the timeline, drains the event queue dry, and reduces the whole
run to a :class:`ScenarioReport`: plain data (picklable, JSON-able,
bit-comparable across worker processes) carrying the checkpoint
series, the throughput/trunk timeline, and one
:class:`~repro.scenarios.invariants.InvariantResult` per library
invariant.

The report's ``final`` snapshot is taken *after* the drain (with every
in-flight packet delivered or dropped and every pre-drawn arrival
released back to the pool), which is what the stuck-request,
conservation and packet-leak checks need; the last checkpoint
(``label="end"``) is taken at the configured horizon, which is what a
drill prints — the two are distinct on purpose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ExperimentError
from repro.experiments.common import Cluster
from repro.metrics.links import TrunkByteMonitor
from repro.scenarios.invariants import (
    InvariantResult,
    ReportView,
    compute_unreachable,
    evaluate_invariants,
)
from repro.scenarios.spec import Scenario, ScenarioEvent
from repro.sim.monitor import IntervalMonitor

__all__ = ["ScenarioReport", "ScenarioRun", "run_scenario"]


@dataclass
class ScenarioReport:
    """Structured pass/fail outcome of one scenario run (plain data)."""

    scenario: str
    seed: int
    scale: float
    scheme: str
    topology: str
    placement: str
    events: List[Dict[str, Any]]
    checkpoints: List[Dict[str, Any]]
    final: Dict[str, Any]
    timeline: Dict[str, Any]
    meta: Dict[str, Any]
    invariants: List[InvariantResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether every applicable invariant held."""
        return all(result.passed for result in self.invariants)

    @property
    def failures(self) -> List[InvariantResult]:
        return [result for result in self.invariants if not result.passed]

    def invariant(self, name: str) -> InvariantResult:
        for result in self.invariants:
            if result.name == name:
                return result
        raise ExperimentError(f"report carries no invariant {name!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "scale": self.scale,
            "scheme": self.scheme,
            "topology": self.topology,
            "placement": self.placement,
            "passed": self.passed,
            "events": [dict(event) for event in self.events],
            "checkpoints": [dict(snap) for snap in self.checkpoints],
            "final": dict(self.final),
            "timeline": dict(self.timeline),
            "meta": dict(self.meta),
            "invariants": [result.to_dict() for result in self.invariants],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioReport":
        """Rebuild a report from :meth:`to_dict` output (sweep cells,
        pinned goldens).  The redundant ``passed`` key is recomputed."""
        return cls(
            scenario=data["scenario"],
            seed=data["seed"],
            scale=data["scale"],
            scheme=data["scheme"],
            topology=data["topology"],
            placement=data["placement"],
            events=[dict(event) for event in data["events"]],
            checkpoints=[dict(snap) for snap in data["checkpoints"]],
            final=dict(data["final"]),
            timeline=dict(data["timeline"]),
            meta=dict(data["meta"]),
            invariants=[
                InvariantResult(
                    name=inv["name"],
                    applicable=inv["applicable"],
                    passed=inv["passed"],
                    violations=list(inv["violations"]),
                )
                for inv in data["invariants"]
            ],
        )

    def summary(self) -> str:
        """One line per invariant, prefixed by the overall verdict."""
        lines = [
            f"scenario {self.scenario!r}: "
            f"{'PASS' if self.passed else 'FAIL'} "
            f"(scheme={self.scheme}, topology={self.topology}, "
            f"placement={self.placement}, seed={self.seed})"
        ]
        for result in self.invariants:
            if not result.applicable:
                status = "n/a "
            else:
                status = "ok  " if result.passed else "FAIL"
            lines.append(f"  [{status}] {result.name}")
            for violation in result.violations:
                lines.append(f"         - {violation}")
        return "\n".join(lines)


@dataclass
class ScenarioRun:
    """Live handle on a finished run (not picklable — holds the cluster).

    Drills print from here: ``completions`` is the per-window
    completion monitor, ``trunks`` the per-trunk byte timeline, and
    ``end`` the horizon snapshot (what the cluster looked like when
    the configured timeline ended, before the drain).
    """

    scenario: Scenario
    cluster: Cluster
    handler: Optional[Any]
    completions: IntervalMonitor
    trunks: TrunkByteMonitor
    report: ScenarioReport

    @property
    def end(self) -> Dict[str, Any]:
        return self.report.checkpoints[-1]


class _ScenarioExecution:
    """One scenario bound to one built cluster (internal)."""

    def __init__(self, scenario: Scenario, cluster: Cluster):
        self.scenario = scenario
        self.cluster = cluster
        self.fabric = cluster.topology
        self.handler = (
            cluster.failure_handler() if scenario.needs_handler else None
        )
        self.checkpoints: List[Dict[str, Any]] = []
        self.applied: List[Dict[str, Any]] = []
        #: Live-server tracking for rack-local applicability.
        self._live = [True] * cluster.config.num_servers
        self._min_rack_live = self._rack_live_floor()
        self._check_targets()

    # ------------------------------------------------------------------
    def _check_targets(self) -> None:
        """Bounds only a built fabric can check (spines, racks, ToRs)."""
        fabric = self.fabric
        num_spines = len(getattr(fabric, "spines", ()))
        for event in self.scenario.events:
            p = event.param_dict()
            if "spine" in p and p["spine"] >= num_spines:
                raise ExperimentError(
                    f"{event.action} targets spine {p['spine']} but the "
                    f"fabric has {num_spines}"
                )
            if "rack" in p and p["rack"] >= fabric.num_racks:
                raise ExperimentError(
                    f"{event.action} targets rack {p['rack']} but the "
                    f"fabric has {fabric.num_racks}"
                )
            if "tor" in p and p["tor"] >= len(self.cluster.tors):
                raise ExperimentError(
                    f"{event.action} targets ToR {p['tor']} but the fabric "
                    f"has {len(self.cluster.tors)}"
                )

    def _rack_live_floor(self) -> int:
        """Min live-server count over racks that have servers at all."""
        per_rack: Dict[int, int] = {}
        for sid, rack in enumerate(self.cluster.server_racks):
            if self._live[sid]:
                per_rack[rack] = per_rack.get(rack, 0) + 1
            else:
                per_rack.setdefault(rack, 0)
        return min(per_rack.values()) if per_rack else 0

    def _note_liveness(self, sid: int, alive: bool) -> None:
        self._live[sid] = alive
        self._min_rack_live = min(self._min_rack_live, self._rack_live_floor())

    # ------------------------------------------------------------------
    # Event application (same-time events run in spec order: they were
    # registered with sim.at in spec order and ties break by sequence).
    # ------------------------------------------------------------------
    def apply(self, event: ScenarioEvent) -> None:
        getattr(self, f"_apply_{event.action}")(**event.param_dict())
        self.applied.append(event.to_dict())

    def _apply_kill_server(self, server: int) -> None:
        victim = self.cluster.servers[server]
        self.fabric.fail_host(victim)
        self.handler.remove_server(server)
        self._note_liveness(server, False)

    def _apply_restore_server(self, server: int) -> None:
        victim = self.cluster.servers[server]
        self.fabric.restore_host(victim)
        self.handler.restore_server(server)
        self._note_liveness(server, True)

    def _apply_withdraw_spine(self, spine: int) -> None:
        self.fabric.withdraw_spine(spine)

    def _apply_fail_spine(self, spine: int) -> None:
        self.fabric.spines[spine].fail()

    def _apply_restore_spine(self, spine: int, reinit_ns: int) -> None:
        self.fabric.restore_spine(spine, reinit_ns)

    def _apply_drain_rack(self, rack: int) -> None:
        for sid in self.handler.drain_rack(rack):
            self._note_liveness(sid, False)

    def _apply_restore_rack(self, rack: int) -> None:
        for sid in self.handler.restore_rack(rack):
            self._note_liveness(sid, True)

    def _apply_load_surge(self, factor: float, duration_ns: int) -> None:
        base_rates = [client.rate_rps for client in self.cluster.clients]
        for client in self.cluster.clients:
            client.set_rate(client.rate_rps * factor)
        self.cluster.sim.call_after(duration_ns, self._end_surge, base_rates)

    def _end_surge(self, base_rates: List[float]) -> None:
        for client, rate in zip(self.cluster.clients, base_rates):
            client.set_rate(rate)

    def _apply_push_tables(self) -> None:
        self.handler.push_tables()

    def _apply_wipe_switch(self, tor: int, down_ns: int, reinit_ns: int) -> None:
        switch = self.cluster.tors[tor]
        switch.fail()
        self.cluster.sim.call_after(down_ns, switch.recover, reinit_ns)

    # ------------------------------------------------------------------
    def snapshot(self, label: str) -> Dict[str, Any]:
        """Plain-data telemetry at the current simulated instant."""
        cluster = self.cluster
        fabric = self.fabric
        handler = self.handler
        clients = cluster.clients
        servers = cluster.servers
        client_completed = [
            client.responses_received - client.redundant_responses
            for client in clients
        ]
        link_drops = sum(
            link.drop_count for star in fabric.stars for link in star.links
        ) + sum(link.drop_count for link in fabric.trunks)
        snap: Dict[str, Any] = {
            "label": label,
            "time_ns": cluster.sim.now,
            "client_sent": [client._seq for client in clients],
            "client_completed": client_completed,
            "client_outstanding": [client.outstanding for client in clients],
            "redundant": sum(c.redundant_responses for c in clients),
            "outstanding": sum(c.outstanding for c in clients),
            "server_accepted": [
                s.counters.get("requests_accepted") for s in servers
            ],
            "server_responses": [
                s.counters.get("responses_sent") for s in servers
            ],
            "server_queue": [s.queue_len for s in servers],
            "server_busy": [s.busy_workers for s in servers],
            "clones_dropped": sum(
                s.counters.get("clones_dropped") for s in servers
            ),
            # Program drops minus duplicate-response filtering: packets
            # the pipeline dropped because their target left the address
            # table mid-rebuild (nc_unknown_server and kin) — real
            # in-network losses, unlike the intentional filter drops.
            "switch_program_drops": sum(
                sw.counters.get("dropped_by_program")
                - sw.counters.get("nc_filtered")
                for sw in cluster.switches
            ),
            "switch_drops_down": sum(
                sw.counters.get("rx_dropped_down") for sw in cluster.switches
            ),
            "switch_failures": sum(
                sw.counters.get("failures") for sw in cluster.switches
            ),
            "switch_recoveries": sum(
                sw.counters.get("recoveries") for sw in cluster.switches
            ),
            "link_drops": link_drops,
            "host_rx_drops": sum(
                host.nic.rx_dropped
                for host in (*clients, *servers, cluster.coordinator)
                if host is not None
            ),
            "trunk_tx_bytes": sum(link.tx_bytes for link in fabric.trunks),
            "rack_tx_bytes": self._rack_tx_bytes(),
            "handler_epoch": handler.epoch if handler is not None else None,
            "program_epochs": [
                getattr(program, "table_epoch", None)
                for program in cluster.programs
            ],
            "client_epochs": [
                getattr(getattr(client, "group_table", None), "epoch", None)
                for client in clients
            ],
            "seq_register": self._seq_register(),
            "active_servers": (
                list(handler.active_server_ids) if handler is not None else None
            ),
            "pool_uids": cluster.packet_pool.uid_count,
            "pool_allocated": cluster.packet_pool.allocated,
            "pool_free": cluster.packet_pool.free_count,
        }
        return snap

    def _rack_tx_bytes(self) -> List[float]:
        uplinks = getattr(self.fabric, "uplinks", None)
        if uplinks is None:
            return []
        return [
            float(sum(link.bytes_from(tor) for link in uplinks[t]))
            for t, tor in enumerate(self.fabric.tors)
        ]

    def _seq_register(self) -> Optional[int]:
        seq = getattr(self.cluster.program, "seq", None)
        if seq is None:
            return None
        return seq.peek(0)

    def take_checkpoint(self, label: str) -> None:
        self.checkpoints.append(self.snapshot(label))


def _checkpoint_schedule(scenario: Scenario) -> List[tuple]:
    """(time_ns, label) pairs; defaults to one snapshot per event time."""
    if scenario.checkpoints_ns:
        return [(t, f"checkpoint@{t}ns") for t in scenario.checkpoints_ns]
    by_time: Dict[int, List[str]] = {}
    for event in scenario.events:
        by_time.setdefault(event.time_ns, []).append(event.action)
    return [
        (t, "after " + "+".join(actions)) for t, actions in sorted(by_time.items())
    ]


def run_scenario(
    scenario: Scenario,
    scale: float = 1.0,
    seed: Optional[int] = None,
    drain_limit: Optional[int] = None,
) -> ScenarioRun:
    """Execute *scenario* end to end; returns the live run handle.

    ``scale < 1`` shrinks the offered rate (the timeline is absolute);
    ``seed`` overrides the spec's root seed; ``drain_limit`` bounds the
    post-horizon drain (fuzz harnesses set it so a livelocked run
    *reports* a stuck-request violation instead of hanging the suite).
    """
    config = scenario.config(scale=scale, seed=seed)
    cluster = Cluster(config)
    completions = IntervalMonitor(
        window_ns=scenario.report_window_ns, horizon_ns=config.measure_ns
    )
    cluster.recorder.completion_monitor = completions
    trunks = TrunkByteMonitor(
        cluster.sim,
        cluster.topology.trunks,
        scenario.report_window_ns,
        config.measure_ns,
    )
    execution = _ScenarioExecution(scenario, cluster)
    sim = cluster.sim
    for event in scenario.events:
        sim.call_at(event.time_ns, execution.apply, event)
    # Checkpoints registered after events: a same-time snapshot sees
    # the event's effect (sequence numbers break the tie in our favor).
    for time_ns, label in _checkpoint_schedule(scenario):
        sim.call_at(time_ns, execution.take_checkpoint, label)
    cluster.start()
    cluster.run()
    execution.take_checkpoint("end")

    # Drain: clients stopped at end_ns, so the queue empties — unless
    # something livelocks, which drain_limit converts into a reported
    # violation rather than a hung process.
    drain_events = sim.run(max_events=drain_limit)
    drained = sim.peek() is None
    for client in cluster.clients:
        client.flush_predrawn()  # release pre-drawn packets to the pool
    # Under REPRO_SANITIZE=1 the pool's ledger must be empty now: every
    # life acquired over the whole run (failure events included) came
    # back.  A leak fails the scenario with the acquiring call site.
    cluster.sanitize_check()

    final = execution.snapshot("settled")
    final["unreachable"] = compute_unreachable(
        cluster,
        (
            list(execution.handler.active_server_ids)
            if execution.handler is not None
            else list(range(config.num_servers))
        ),
    )

    meta = {
        "num_racks": cluster.topology.num_racks,
        "num_servers": config.num_servers,
        "client_racks": list(cluster.client_racks),
        "server_racks": list(cluster.server_racks),
        "min_rack_live": execution._min_rack_live,
        "drained": drained,
        "drain_events": drain_events,
        "has_handler": execution.handler is not None,
        "horizon_ns": config.end_ns,
        "total_ns": config.total_ns,
    }
    timeline = {
        "window_ns": scenario.report_window_ns,
        "window_starts_ms": [s * 1e3 for s in trunks.window_starts_sec()],
        "rates_per_sec": completions.rates_per_second(),
        "trunk_deltas": trunks.deltas(),
        "trunk_total": trunks.total_per_window(),
    }
    report = ScenarioReport(
        scenario=scenario.name,
        seed=config.seed,
        scale=scale,
        scheme=config.scheme,
        topology=config.topology,
        placement=config.placement,
        events=execution.applied,
        checkpoints=execution.checkpoints,
        final=final,
        timeline=timeline,
        meta=meta,
    )
    view = ReportView.from_report(report)
    report.invariants = evaluate_invariants(view, skip=scenario.skip_invariants)
    return ScenarioRun(
        scenario=scenario,
        cluster=cluster,
        handler=execution.handler,
        completions=completions,
        trunks=trunks,
        report=report,
    )
