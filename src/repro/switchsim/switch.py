"""The programmable ToR switch.

:class:`ProgrammableSwitch` owns ports (links to hosts), a plain
L2/L3 routing function, and at most one installed
:class:`SwitchProgram` — the custom data-plane logic compiled into the
pipeline.  Packets the program does not claim are forwarded by routing
alone, which is how NetClone coexists with normal traffic (§3.2).

Timing model:

* ``pipeline_latency_ns`` per pass (the paper: "hundreds of
  nanoseconds");
* ``recirc_latency_ns`` extra for a loop through a port in loopback
  mode (§3.4's recirculation);
* egress serialisation is handled by the outgoing
  :class:`~repro.net.link.Link`.

Failure model (§5.6.4): :meth:`fail` makes the switch drop everything;
:meth:`recover` brings it back after a re-initialisation delay, with
**all register state cleared** — NetClone must survive on soft state
alone, which the Figure 16 experiment demonstrates.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import PortError, SwitchError
from repro.net.link import Link
from repro.net.packet import Packet
from repro.sim.core import Simulator
from repro.sim.monitor import Counter
from repro.switchsim.pipeline import PassContext, Pipeline, PipelineAction

__all__ = ["ProgrammableSwitch", "SwitchProgram"]


class SwitchProgram:
    """Base class for custom data-plane programs."""

    #: The pipeline this program was compiled into.
    pipeline: Pipeline

    def matches(self, packet: Packet) -> bool:
        """Whether *packet* should be processed by this program."""
        raise NotImplementedError

    def apply(self, packet: Packet, ctx: PassContext, switch: "ProgrammableSwitch") -> PipelineAction:
        """Process one pipeline pass of *packet*."""
        raise NotImplementedError

    def on_register_wipe(self) -> None:
        """Hook invoked when the switch loses state (power cycle)."""


class ProgrammableSwitch:
    """A single-pipeline programmable switch with recirculation."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "tor",
        pipeline_latency_ns: int = 400,
        recirc_latency_ns: int = 700,
        num_ports: int = 64,
    ):
        if num_ports <= 0:
            raise PortError("switch needs at least one port")
        self.sim = sim
        self.name = name
        self.pipeline_latency_ns = pipeline_latency_ns
        self.recirc_latency_ns = recirc_latency_ns
        self.num_ports = num_ports
        self.ports: Dict[int, Link] = {}
        #: Destination ip → egress port, or → a per-packet selector
        #: callable (see :meth:`install_dynamic_route`).
        self.routes: Dict[int, Any] = {}
        self.program: Optional[SwitchProgram] = None
        self.counters = Counter()
        self.down = False
        # Failure generation: a recovery scheduled before a later
        # fail() must not power the switch back on (flap drills).
        self._power_epoch = 0

    # ------------------------------------------------------------------
    # Wiring (used by StarTopology)
    # ------------------------------------------------------------------
    def connect(self, port: int, link: Link) -> None:
        """Attach *link* to *port*."""
        if not 0 <= port < self.num_ports:
            raise PortError(f"port {port} out of range (0..{self.num_ports - 1})")
        if port in self.ports:
            raise PortError(f"port {port} already connected")
        self.ports[port] = link

    def install_route(self, ip: int, port: int) -> None:
        """Map destination *ip* to egress *port* (L3 route)."""
        if port not in self.ports:
            raise PortError(f"cannot route to unconnected port {port}")
        self.routes[ip] = port

    def install_dynamic_route(self, ip: int, selector: Any) -> None:
        """Map destination *ip* to a per-packet port chooser.

        *selector* is called as ``selector(packet) -> Optional[int]``
        at egress time, so multipath fabrics can pick among several
        uplinks per packet (ECMP, least-loaded, flowlet — see
        :mod:`repro.net.topology`).  Returning ``None`` or an
        unconnected port drops the packet via the ``no_route`` counter,
        exactly like a missing static route.
        """
        if not callable(selector):
            raise SwitchError("dynamic route selector must be callable")
        self.routes[ip] = selector

    def remove_route(self, ip: int) -> None:
        """Remove the route for *ip* (e.g. failed server)."""
        self.routes.pop(ip, None)

    def install_program(self, program: SwitchProgram) -> None:
        """Load *program* into the data plane."""
        if self.program is not None:
            raise SwitchError(f"{self.name} already has a program installed")
        self.program = program

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def deliver(self, packet: Packet, link: Link) -> None:
        """Entry point for packets arriving from a link."""
        if self.down:
            self.counters.incr("rx_dropped_down")
            return
        port = self._port_of_link(link)
        packet.ingress_port = port
        packet.recirculated = False
        self.counters.incr("rx")
        self.sim.schedule(self.pipeline_latency_ns, self._run_pass, packet)

    def _port_of_link(self, link: Link) -> int:
        for port, candidate in self.ports.items():
            if candidate is link:
                return port
        raise PortError(f"{self.name}: packet arrived on unknown link {link.name}")

    def _run_pass(self, packet: Packet) -> None:
        if self.down:
            self.counters.incr("dropped_down")
            return
        program = self.program
        if program is not None and program.matches(packet):
            ctx = program.pipeline.new_pass()
            action = program.apply(packet, ctx, self)
        else:
            action = PipelineAction()
        self._apply_action(packet, action)

    def _apply_action(self, packet: Packet, action: PipelineAction) -> None:
        for copy, port in action.mirrors:
            self.counters.incr("mirrored")
            self._egress(copy, port)
        for copy in action.recirculate:
            self.counters.incr("recirculated")
            self.sim.schedule(
                self.recirc_latency_ns + self.pipeline_latency_ns,
                self._run_recirculated,
                copy,
            )
        if action.drop:
            self.counters.incr("dropped_by_program")
            return
        self._egress(packet, action.egress_port)

    def _run_recirculated(self, packet: Packet) -> None:
        """A recirculated copy re-enters the pipeline as a fresh pass."""
        if self.down:
            self.counters.incr("dropped_down")
            return
        packet.recirculated = True
        self._run_pass(packet)

    def _egress(self, packet: Packet, port: Optional[int]) -> None:
        if port is None:
            port = self.routes.get(packet.dst)
            if port is not None and not isinstance(port, int):
                port = port(packet)
        if port is None:
            self.counters.incr("no_route")
            return
        link = self.ports.get(port)
        if link is None:
            self.counters.incr("no_route")
            return
        self.counters.incr("tx")
        link.send(packet, self)

    # ------------------------------------------------------------------
    # Failure handling (§5.6.4)
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Power the switch off: all traffic is dropped."""
        self.down = True
        self._power_epoch += 1
        self.counters.incr("failures")

    def recover(self, reinit_delay_ns: int = 0) -> None:
        """Power the switch back on.

        All pipeline register state is **wiped** (soft state only);
        forwarding resumes after ``reinit_delay_ns`` of port/ASIC
        re-initialisation.
        """
        program = self.program
        if program is not None:
            for register in program.pipeline.all_registers():
                register.clear()
            program.on_register_wipe()
        if reinit_delay_ns <= 0:
            self.down = False
        else:
            self.sim.schedule(reinit_delay_ns, self._finish_recovery, self._power_epoch)

    def _finish_recovery(self, epoch: int) -> None:
        # A fail() during the re-init delay bumps the epoch; the stale
        # recovery callback must not power the switch back on.
        if epoch != self._power_epoch:
            return
        self.down = False
        self.counters.incr("recoveries")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ProgrammableSwitch {self.name} ports={len(self.ports)}>"
