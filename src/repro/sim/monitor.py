"""Measurement probes for simulations.

* :class:`Counter` — named integer counters (drops, clones, ...).
* :class:`TimeSeries` — (time, value) samples with summary helpers.
* :class:`IntervalMonitor` — bins occurrences into fixed windows,
  used e.g. for the throughput-over-time plot of Figure 16.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.sim.units import SECONDS

__all__ = ["Counter", "IntervalMonitor", "TimeSeries"]


class Counter:
    """A bag of named integer counters."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        # defaultdict keeps the increment a single C-level dict op.
        self._counts: Dict[str, int] = defaultdict(int)

    def incr(self, name: str, amount: int = 1) -> None:
        """Add *amount* to counter *name* (creating it at zero)."""
        self._counts[name] += amount

    def get(self, name: str) -> int:
        """Current value of *name* (zero if never incremented)."""
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters."""
        return dict(self._counts)

    def reset(self) -> None:
        """Zero every counter."""
        self._counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self._counts!r})"


class TimeSeries:
    """An append-only series of ``(time_ns, value)`` samples."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[int] = []
        self.values: List[float] = []

    def record(self, time_ns: int, value: float) -> None:
        """Append one sample."""
        self.times.append(time_ns)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def mean(self) -> float:
        """Arithmetic mean of the recorded values (nan when empty)."""
        if not self.values:
            return float("nan")
        return float(np.mean(self.values))

    def last(self) -> float:
        """Most recent value (nan when empty)."""
        return self.values[-1] if self.values else float("nan")

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The series as ``(times, values)`` numpy arrays."""
        return np.asarray(self.times, dtype=np.int64), np.asarray(self.values)


class IntervalMonitor:
    """Counts occurrences per fixed-width time window.

    Used for throughput timelines: ``note(now)`` marks one completed
    request; ``rates_per_second()`` converts window counts to a rate.
    """

    def __init__(self, window_ns: int, horizon_ns: int):
        if window_ns <= 0 or horizon_ns <= 0:
            raise ValueError("window and horizon must be positive")
        self.window_ns = window_ns
        self.horizon_ns = horizon_ns
        self.bins = [0] * (1 + horizon_ns // window_ns)

    def note(self, time_ns: int, amount: int = 1) -> None:
        """Record *amount* occurrences at *time_ns* (clamped to horizon)."""
        index = min(time_ns // self.window_ns, len(self.bins) - 1)
        self.bins[index] += amount

    def counts(self) -> Sequence[int]:
        """Raw per-window counts."""
        return list(self.bins)

    def window_starts_sec(self) -> List[float]:
        """Start time of each window, in seconds."""
        return [i * self.window_ns / SECONDS for i in range(len(self.bins))]

    def rates_per_second(self) -> List[float]:
        """Per-window occurrence rate, in events per second."""
        scale = SECONDS / self.window_ns
        return [count * scale for count in self.bins]
