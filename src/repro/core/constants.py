"""Protocol constants for NetClone.

A UDP port is reserved for NetClone traffic so the switch can apply
custom processing to NetClone packets while forwarding everything else
through plain L3 routing (§3.2).
"""

from repro.net.addresses import ip_to_int

#: Reserved L4 port identifying NetClone packets.
NETCLONE_UDP_PORT = 9000

#: Message types (TYPE field).
MSG_REQ = 1
MSG_RESP = 2

#: Server states (STATE field).
STATE_IDLE = 0
STATE_BUSY = 1

#: CLO field values (§3.2): 0 = non-cloned request, 1 = cloned original,
#: 2 = the cloned copy.
CLO_NOT_CLONED = 0
CLO_CLONED_ORIGINAL = 1
CLO_CLONED_COPY = 2

#: Destination clients put on requests; the switch rewrites it to the
#: chosen server (clients "do not have to know server information").
VIRTUAL_SERVICE_IP = ip_to_int("10.0.1.1")

#: SWID value meaning "not yet stamped by any ToR" (§3.7 multi-rack).
SWID_UNSET = 0
