"""Topology builders: single-rack stars and multi-rack fabrics.

The paper's testbed is a single rack: one ToR switch with every host a
direct cable away.  :class:`StarTopology` wires hosts to switch ports,
assigns addresses, and installs L3 routes.  It is deliberately generic
over the switch object (anything exposing ``connect(port, link)`` and
``install_route(ip, port)``) so both the programmable switch model and
test doubles can be used.

§3.7 sketches multi-rack deployment: only ToR switches run NetClone
logic, the client-side ToR stamps its switch ID into the SWID field,
and every other NetClone switch skips packets whose SWID is set and
does not match its own ID.  The :class:`Fabric` subclasses here build
such fabrics out of per-rack stars plus inter-rack wiring:

* :class:`SingleRackFabric` — one ToR, the paper's testbed;
* :class:`TwoRackFabric` — two ToRs joined by a trunk link;
* :class:`SpineLeafFabric` — ``racks`` ToRs fully meshed to
  ``spines`` plain L3 spine switches.

A fabric is role-aware: hosts are attached as ``"server"``,
``"client"`` or ``"coordinator"`` with an index, and the fabric's
placement policy (:meth:`Fabric.rack_of`) decides which rack — and
therefore which subnet, ToR and inter-rack routes — the host gets.
Experiment code never wires fabrics by hand; it resolves them through
the topology plugin registry in :mod:`repro.experiments.topologies`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import NetworkError, PortError
from repro.net.addresses import ip_to_int
from repro.net.host import Host
from repro.net.link import Link
from repro.sim.core import Simulator

__all__ = [
    "Fabric",
    "SingleRackFabric",
    "SpineLeafFabric",
    "StarTopology",
    "TwoRackFabric",
]


class StarTopology:
    """A single-switch star: every host gets its own switch port."""

    def __init__(
        self,
        sim: Simulator,
        switch: Any,
        propagation_ns: int = 300,
        bandwidth_bps: float = 100e9,
        subnet: str = "10.0.1.0",
        max_ports: Optional[int] = None,
    ):
        self.sim = sim
        self.switch = switch
        self.propagation_ns = propagation_ns
        self.bandwidth_bps = bandwidth_bps
        self.subnet_base = ip_to_int(subnet)
        #: Ports beyond this are reserved (fabric uplinks); None: no cap.
        self.max_ports = max_ports
        self.hosts: List[Host] = []
        self.links: List[Link] = []
        self.port_of: Dict[str, int] = {}
        self._next_port = 0
        self._next_host_octet = 100

    def allocate_ip(self) -> int:
        """Next free address in the subnet (``.101``, ``.102``, ...)."""
        self._next_host_octet += 1
        if self._next_host_octet > 254:
            raise NetworkError("subnet exhausted")
        return self.subnet_base + self._next_host_octet

    def add_host(self, host: Host) -> int:
        """Cable *host* to the next switch port; returns the port index."""
        if host.name in self.port_of:
            raise PortError(f"host {host.name} already attached")
        if self.max_ports is not None and self._next_port >= self.max_ports:
            raise NetworkError(
                f"rack full: {self.max_ports} host ports in use and the "
                "remaining switch ports are reserved for fabric uplinks"
            )
        port = self._next_port
        self._next_port += 1
        link = Link(
            self.sim,
            host,
            self.switch,
            propagation_ns=self.propagation_ns,
            bandwidth_bps=self.bandwidth_bps,
            name=f"link-{host.name}",
        )
        host.attach_link(link)
        self.switch.connect(port, link)
        self.switch.install_route(host.ip, port)
        self.hosts.append(host)
        self.links.append(link)
        self.port_of[host.name] = port
        return port

    def link_of(self, host: Host) -> Link:
        """The uplink of *host*."""
        port = self.port_of.get(host.name)
        if port is None:
            raise PortError(f"host {host.name} not attached")
        return self.links[port]


# ----------------------------------------------------------------------
# Multi-rack fabrics
# ----------------------------------------------------------------------
class Fabric:
    """Base class for registry-built fabrics.

    Subclasses create switches via the injected ``make_switch(name)``
    factory (keeping this module independent of the switch model),
    wire racks together, and implement the placement policy
    :meth:`rack_of` plus the inter-rack route announcement
    :meth:`_announce`.

    Attributes driven by cluster assembly:

    * ``tors`` — the program-bearing top-of-rack switches, in rack
      order (their 1-based position is the §3.7 switch ID);
    * ``switches`` — every switch, ToRs first, then any spines;
    * ``stars`` — the per-rack :class:`StarTopology` access layer.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.tors: List[Any] = []
        self.switches: List[Any] = []
        self.stars: List[StarTopology] = []

    # -- placement -----------------------------------------------------
    def rack_of(self, role: str, index: int) -> int:
        """Which rack the *index*-th host of *role* lives in."""
        raise NotImplementedError

    # -- host attachment hooks ----------------------------------------
    def allocate_ip(self, role: str = "host", index: int = 0) -> int:
        """Pre-allocate the address a later :meth:`attach` will route."""
        return self.stars[self.rack_of(role, index)].allocate_ip()

    def attach(self, host: Host, role: str = "host", index: int = 0) -> int:
        """Cable *host* into its rack and announce it fabric-wide."""
        rack = self.rack_of(role, index)
        port = self.stars[rack].add_host(host)
        self._announce(host, rack)
        return port

    def _announce(self, host: Host, rack: int) -> None:
        """Install the inter-rack routes that reach *host* in *rack*."""

    # -- lookups -------------------------------------------------------
    def link_of(self, host: Host) -> Link:
        """The access link of *host*, whichever rack it is in."""
        for star in self.stars:
            if host.name in star.port_of:
                return star.link_of(host)
        raise PortError(f"host {host.name} not attached to any rack")

    @property
    def num_racks(self) -> int:
        """Number of racks (= ToR switches)."""
        return len(self.tors)

    def _make_rack(
        self,
        make_switch: Callable[[str], Any],
        rack: int,
        propagation_ns: int,
        bandwidth_bps: float,
        reserved_ports: int = 0,
        name: Optional[str] = None,
    ) -> Any:
        """One ToR plus its access star on the rack's own /24.

        *reserved_ports* top ports are kept back for fabric uplinks so
        host attachment cannot collide with trunk wiring.  The ToR is
        appended to ``tors`` **and** ``switches``, so subclasses only
        extend ``switches`` for non-ToR gear (e.g. spines).
        """
        tor = make_switch(name if name is not None else f"tor{rack + 1}")
        num_ports = getattr(tor, "num_ports", None)
        if num_ports is not None and num_ports - reserved_ports < 1:
            raise NetworkError("ToR has no ports left for hosts")
        self.tors.append(tor)
        self.switches.append(tor)
        self.stars.append(
            StarTopology(
                self.sim,
                tor,
                propagation_ns=propagation_ns,
                bandwidth_bps=bandwidth_bps,
                subnet=f"10.0.{rack + 1}.0",
                max_ports=None if num_ports is None else num_ports - reserved_ports,
            )
        )
        return tor


class SingleRackFabric(Fabric):
    """The paper's testbed: one ToR, every host one cable away."""

    def __init__(
        self,
        sim: Simulator,
        make_switch: Callable[[str], Any],
        propagation_ns: int = 300,
        bandwidth_bps: float = 100e9,
    ):
        super().__init__(sim)
        self._make_rack(make_switch, 0, propagation_ns, bandwidth_bps, name="tor")

    def rack_of(self, role: str, index: int) -> int:
        return 0


class TwoRackFabric(Fabric):
    """Two ToRs joined by a trunk; placement is per-role configurable.

    The §3.7 default puts clients (and the coordinator, which acts on
    their behalf) in rack 0 and servers in rack 1, so every request
    crosses the trunk and only the client-side ToR does NetClone work.
    Collapsing both roles onto one rack (``server_rack=client_rack``)
    degenerates to a single-rack star with an idle trunk — useful for
    determinism cross-checks.
    """

    def __init__(
        self,
        sim: Simulator,
        make_switch: Callable[[str], Any],
        client_rack: int = 0,
        server_rack: int = 1,
        coordinator_rack: int | None = None,
        propagation_ns: int = 300,
        bandwidth_bps: float = 100e9,
        trunk_propagation_ns: int = 1000,
        trunk_bandwidth_bps: float = 400e9,
    ):
        super().__init__(sim)
        if coordinator_rack is None:
            coordinator_rack = client_rack
        placements = (client_rack, server_rack, int(coordinator_rack))
        if not all(0 <= rack <= 1 for rack in placements):
            raise NetworkError("two-rack placement must use racks 0 and 1")
        self._racks = {
            "client": client_rack,
            "server": server_rack,
            "coordinator": int(coordinator_rack),
        }
        for rack in range(2):
            self._make_rack(
                make_switch, rack, propagation_ns, bandwidth_bps, reserved_ports=1
            )
        tor_a, tor_b = self.tors
        self.uplink_ports = [tor_a.num_ports - 1, tor_b.num_ports - 1]
        self.trunk = Link(
            sim,
            tor_a,
            tor_b,
            propagation_ns=trunk_propagation_ns,
            bandwidth_bps=trunk_bandwidth_bps,
            name="trunk",
        )
        tor_a.connect(self.uplink_ports[0], self.trunk)
        tor_b.connect(self.uplink_ports[1], self.trunk)

    def rack_of(self, role: str, index: int) -> int:
        return self._racks.get(role, 0)

    def _announce(self, host: Host, rack: int) -> None:
        other = 1 - rack
        self.tors[other].install_route(host.ip, self.uplink_ports[other])


class SpineLeafFabric(Fabric):
    """``racks`` ToRs fully meshed to ``spines`` plain L3 spines.

    Servers and clients are spread round-robin across racks
    (host ``i`` lands in rack ``i % racks``); the coordinator lives in
    rack 0.  Inter-rack traffic to a host is pinned to one spine by the
    host's address (``ip % spines``) — deterministic ECMP — so a given
    flow always takes the same path and results are reproducible.
    ToRs run the scheme's switch program (with their 1-based rack
    number as §3.7 switch ID); spines stay plain L3.
    """

    def __init__(
        self,
        sim: Simulator,
        make_switch: Callable[[str], Any],
        racks: int = 2,
        spines: int = 2,
        propagation_ns: int = 300,
        bandwidth_bps: float = 100e9,
        trunk_propagation_ns: int = 1000,
        trunk_bandwidth_bps: float = 400e9,
    ):
        super().__init__(sim)
        if racks < 1:
            raise NetworkError("spine-leaf needs at least one rack")
        if spines < 1:
            raise NetworkError("spine-leaf needs at least one spine")
        for rack in range(racks):
            self._make_rack(
                make_switch, rack, propagation_ns, bandwidth_bps, reserved_ports=spines
            )
        self.spines = [make_switch(f"spine{s + 1}") for s in range(spines)]
        self.switches.extend(self.spines)
        # ToR t's uplink to spine s sits at port (num_ports - 1 - s);
        # spine s's downlink to ToR t sits at port t.
        self._uplink_port: List[List[int]] = []
        for t, tor in enumerate(self.tors):
            ports = []
            for s, spine in enumerate(self.spines):
                if racks > spine.num_ports:
                    raise NetworkError("spine has fewer ports than racks")
                port = tor.num_ports - 1 - s
                link = Link(
                    sim,
                    tor,
                    spine,
                    propagation_ns=trunk_propagation_ns,
                    bandwidth_bps=trunk_bandwidth_bps,
                    name=f"trunk-t{t + 1}s{s + 1}",
                )
                tor.connect(port, link)
                spine.connect(t, link)
                ports.append(port)
            self._uplink_port.append(ports)

    def rack_of(self, role: str, index: int) -> int:
        if role == "coordinator":
            return 0
        return index % self.num_racks

    def _announce(self, host: Host, rack: int) -> None:
        spine = host.ip % len(self.spines)
        for s in self.spines:
            s.install_route(host.ip, rack)
        for t, tor in enumerate(self.tors):
            if t != rack:
                tor.install_route(host.ip, self._uplink_port[t][spine])
