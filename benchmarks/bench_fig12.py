"""Benchmark: regenerate Figure 12 (Memcached, 99/1 and 90/10 mixes)."""

from conftest import run_once

from repro.experiments import fig12_memcached


def bench_fig12_memcached(benchmark, bench_scale, bench_seed):
    report = run_once(
        benchmark, fig12_memcached.run, scale=bench_scale, seed=bench_seed
    )
    assert "Figure 12" in report
