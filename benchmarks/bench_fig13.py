"""Benchmark: regenerate Figure 13 (state-signal confidence)."""

from conftest import run_once

from repro.experiments import fig13_state_confidence


def bench_fig13_state_confidence(benchmark, bench_scale, bench_seed):
    report = run_once(
        benchmark, fig13_state_confidence.run, scale=bench_scale, seed=bench_seed
    )
    assert "Figure 13" in report
    assert "empty-queue" in report
