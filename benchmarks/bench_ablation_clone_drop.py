"""Ablation: the server-side stale-clone drop (§3.4).

The switch clones on *tracked* state; by the time the clone arrives
the server may be busy.  NetClone drops such clones at the server when
the queue is non-empty.  This bench disables that rule
(``netclone-noclonedrop``) and compares tail latency at mid and high
load.  Expected shape: without the drop, stale clones consume worker
time exactly when the cluster is busiest, inflating p99.
"""

from dataclasses import replace

from conftest import run_once

from repro.experiments.common import ClusterConfig, run_point
from repro.experiments.harness import capacity_rps, scaled_config
from repro.metrics.tables import format_table


def measure(scale: float, seed: int) -> str:
    base = scaled_config(ClusterConfig(seed=seed), scale)
    capacity = capacity_rps(6 * 15, base.workload.mean_service_ns)
    rows = []
    for fraction in (0.5, 0.7, 0.9):
        with_drop = run_point(
            replace(base, scheme="netclone", rate_rps=capacity * fraction)
        )
        without_drop = run_point(
            replace(base, scheme="netclone-noclonedrop", rate_rps=capacity * fraction)
        )
        rows.append(
            (
                f"{fraction * 100:.0f}%",
                f"{with_drop.p99_us:.0f}",
                f"{without_drop.p99_us:.0f}",
                f"{with_drop.extra['clones_dropped']:.0f}",
            )
        )
    report = "== Ablation: server-side stale-clone drop (p99 us) ==\n"
    report += format_table(
        ["load", "with drop", "without drop", "clones dropped"], rows
    )
    print(report)
    return report


def bench_ablation_clone_drop(benchmark, bench_scale, bench_seed):
    report = run_once(benchmark, measure, scale=bench_scale, seed=bench_seed)
    assert "with drop" in report
