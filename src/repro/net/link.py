"""Point-to-point full-duplex links.

A link connects two endpoints (anything with a ``deliver(packet,
link)`` method).  Each direction models:

* **serialisation** — back-to-back packets queue behind one another at
  the line rate (a per-direction "next free" timestamp), and
* **propagation** — a fixed flight time.

At 100 Gb/s a 128 B packet serialises in ~10 ns, so serialisation is
rarely the bottleneck in these experiments, but it is modelled so that
congestion behaves correctly if an experiment drives a link hard.

This module is the single hottest non-engine path (one ``send`` per
packet per hop), so the per-direction state lives in plain attributes
selected by endpoint identity — no ``id()``-keyed dict lookups — and
the serialisation delay is memoised per packet size (experiments use a
handful of sizes, recomputing float math per send is pure waste).
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional

from repro.errors import NetworkError
from repro.sim.core import Simulator

__all__ = ["Link"]

#: Bits per byte, named for readability in the delay arithmetic.
_BITS = 8


class Link:
    """A full-duplex cable between endpoints ``a`` and ``b``."""

    def __init__(
        self,
        sim: Simulator,
        a: Any,
        b: Any,
        propagation_ns: int = 300,
        bandwidth_bps: float = 100e9,
        name: str = "",
        loss_probability: float = 0.0,
        loss_rng: Optional[random.Random] = None,
    ):
        if propagation_ns < 0:
            raise NetworkError("propagation delay must be non-negative")
        if bandwidth_bps <= 0:
            raise NetworkError("bandwidth must be positive")
        if not 0.0 <= loss_probability < 1.0:
            raise NetworkError("loss probability must lie in [0, 1)")
        self.sim = sim
        self.a = a
        self.b = b
        self.propagation_ns = propagation_ns
        self._bandwidth_bps = bandwidth_bps
        self._ser_ns: Dict[int, int] = {}
        self.name = name or f"link({getattr(a, 'name', a)}-{getattr(b, 'name', b)})"
        #: Per-direction serialisation horizon (next time the direction
        #: is free), one plain attribute per direction.
        self._free_at_a = 0
        self._free_at_b = 0
        #: Set True to drop everything (used by failure experiments).
        self.down = False
        #: Random per-packet loss (used by the reliability tests).
        self.loss_probability = loss_probability
        self._loss_rng = loss_rng if loss_rng is not None else random.Random(0x105)
        self.tx_count = 0
        self.drop_count = 0
        #: Per-direction delivery dispatch, resolved once at wiring
        #: time: 1 = fused switch ingress (scheduled at arrival +
        #: pipeline latency), 2 = fused host RX (booked at send time),
        #: 0 = generic ``deliver`` event at arrival.
        self._mode_a, self._entry_a = self._resolve_entry(a)
        self._mode_b, self._entry_b = self._resolve_entry(b)
        #: Per-direction schedule offset from serialisation-done to the
        #: scheduled callback time: propagation, plus the destination's
        #: pipeline latency when the entry is a fused switch ingress.
        self._sched_off_a = propagation_ns + (
            a.pipeline_latency_ns if self._mode_a == 1 else 0
        )
        self._sched_off_b = propagation_ns + (
            b.pipeline_latency_ns if self._mode_b == 1 else 0
        )
        #: Ingress port numbers at each endpoint, filled in by
        #: ``ProgrammableSwitch.connect`` — the fused ingress path reads
        #: them instead of an ``id()``-keyed reverse map.
        self._port_a: Optional[int] = None
        self._port_b: Optional[int] = None
        #: Bytes clocked onto the wire per direction.  These feed
        #: congestion-aware route policies and the per-link utilization
        #: series in :mod:`repro.metrics.links`.
        self._tx_bytes_a = 0
        self._tx_bytes_b = 0

    @staticmethod
    def _resolve_entry(endpoint: Any):
        entry = getattr(endpoint, "link_ingress", None)
        if entry is not None:
            return 1, entry
        entry = getattr(endpoint, "link_rx_at", None)
        if entry is not None:
            return 2, entry
        return 0, endpoint.deliver

    @property
    def bandwidth_bps(self) -> float:
        """Line rate in bits per second."""
        return self._bandwidth_bps

    @bandwidth_bps.setter
    def bandwidth_bps(self, value: float) -> None:
        if value <= 0:
            raise NetworkError("bandwidth must be positive")
        self._bandwidth_bps = value
        self._ser_ns.clear()  # memoised delays are per line rate

    @property
    def tx_bytes(self) -> int:
        """Total bytes transmitted, both directions."""
        return self._tx_bytes_a + self._tx_bytes_b

    def serialization_ns(self, size_bytes: int) -> int:
        """Time to clock *size_bytes* onto the wire at the line rate."""
        cached = self._ser_ns.get(size_bytes)
        if cached is None:
            cached = int(round(size_bytes * _BITS / self._bandwidth_bps * 1e9))
            self._ser_ns[size_bytes] = cached
        return cached

    def backlog_ns(self, from_endpoint: Any) -> int:
        """Serialisation backlog a new packet from *from_endpoint* would
        queue behind, in nanoseconds (0 when the direction is idle).

        This is the congestion signal the ``least-loaded`` spine policy
        reads: it is exact (not sampled) and costs nothing to maintain.
        """
        if from_endpoint is self.a:
            free_at = self._free_at_a
        elif from_endpoint is self.b:
            free_at = self._free_at_b
        else:
            raise NetworkError(f"{from_endpoint!r} is not attached to {self.name}")
        backlog = free_at - self.sim.now
        return backlog if backlog > 0 else 0

    def bytes_from(self, from_endpoint: Any) -> int:
        """Bytes transmitted in the *from_endpoint* → other direction."""
        if from_endpoint is self.a:
            return self._tx_bytes_a
        if from_endpoint is self.b:
            return self._tx_bytes_b
        raise NetworkError(f"{from_endpoint!r} is not attached to {self.name}")

    def utilization(self, window_ns: int, from_endpoint: Optional[Any] = None) -> float:
        """Offered bytes over *window_ns* as a fraction of the line rate.

        Bytes are counted when a packet joins the serialisation queue,
        so this is *demand*: values above 1.0 mean the direction was
        oversubscribed and a backlog built up — exactly the saturation
        signal the trunk experiments report.  With *from_endpoint* the
        single direction is measured; without, the busier of the two
        (the link is full duplex, so each direction has the full line
        rate to itself).
        """
        if window_ns <= 0:
            raise NetworkError("utilization window must be positive")
        capacity_bits = self._bandwidth_bps * window_ns / 1e9
        if from_endpoint is not None:
            return self.bytes_from(from_endpoint) * _BITS / capacity_bits
        busiest = self._tx_bytes_a if self._tx_bytes_a > self._tx_bytes_b else self._tx_bytes_b
        return busiest * _BITS / capacity_bits

    def other_end(self, endpoint: Any) -> Any:
        """The endpoint opposite *endpoint*."""
        if endpoint is self.a:
            return self.b
        if endpoint is self.b:
            return self.a
        raise NetworkError(f"{endpoint!r} is not attached to {self.name}")

    def send(self, packet: Any, from_endpoint: Any) -> Optional[int]:
        """Transmit *packet* from one endpoint toward the other.

        Returns the delivery time, or ``None`` if the link is down (or
        lossy) and the packet was dropped.  Dropped pooled packets are
        recycled — nobody downstream will ever see them.
        """
        if from_endpoint is self.a:
            destination = self.b
            mode = self._mode_b
            entry = self._entry_b
            from_a = True
        elif from_endpoint is self.b:
            destination = self.a
            mode = self._mode_a
            entry = self._entry_a
            from_a = False
        else:
            raise NetworkError(f"{from_endpoint!r} is not attached to {self.name}")
        if self.down:
            self.drop_count += 1
            release = getattr(packet, "release", None)
            if release is not None:
                release()
            return None
        if self.loss_probability > 0.0 and self._loss_rng.random() < self.loss_probability:
            self.drop_count += 1
            release = getattr(packet, "release", None)
            if release is not None:
                release()
            return None
        size = packet.size
        ser = self._ser_ns.get(size)
        if ser is None:
            ser = int(round(size * _BITS / self._bandwidth_bps * 1e9))
            self._ser_ns[size] = ser
        now = self.sim.now
        if from_a:
            start = self._free_at_a
            if start < now:
                start = now
            done_serialising = start + ser
            self._free_at_a = done_serialising
            self._tx_bytes_a += size
        else:
            start = self._free_at_b
            if start < now:
                start = now
            done_serialising = start + ser
            self._free_at_b = done_serialising
            self._tx_bytes_b += size
        arrival = done_serialising + self.propagation_ns
        self.tx_count += 1
        if mode == 1:
            self.sim.call_at(done_serialising + (self._sched_off_b if from_a else self._sched_off_a), entry, packet, self)
        elif mode == 2:
            entry(packet, arrival)
        else:
            self.sim.call_at(arrival, entry, packet, self)
        return arrival
