"""The paper's comparison schemes, implemented as full systems.

* :mod:`random_lb` — Baseline: clients pick a random server, no cloning.
* :mod:`cclone` — C-Clone: static client-side cloning (d = 2).
* :mod:`laedge` — LÆDGE: coordinator-based dynamic cloning.
* :mod:`jsq_d` — JSQ(d): client-side power-of-d-choices.  Not imported
  here: it is the demonstration *plugin* scheme, loaded lazily through
  :data:`repro.experiments.schemes.PLUGIN_MODULES` on first registry
  lookup.
"""

from repro.baselines.cclone import CCloneClient
from repro.baselines.laedge import LaedgeClient, LaedgeCoordinator
from repro.baselines.random_lb import BaselineClient, PLAIN_RPC_PORT

__all__ = [
    "BaselineClient",
    "CCloneClient",
    "LaedgeClient",
    "LaedgeCoordinator",
    "PLAIN_RPC_PORT",
]
