"""The detlint AST rule engine.

Every claim this reproduction makes — bit-identical seed goldens,
``jobs=1`` ≡ ``jobs=N`` sweeps, golden-pinned scenario reports — rests
on determinism and resource discipline.  Goldens catch violations
*after* they land; this engine catches the hazard classes we have
actually been bitten by (unseeded global RNG draws, wall-clock reads
inside the simulation, leaked pool packets, dropped scheduler handles,
un-stamped group tables) at review time, where they originate.

Rules are plugins on the same :class:`~repro.experiments.
plugin_registry.PluginRegistry` the scheme/topology/placement/workload
axes use: a :class:`RuleSpec` names a checker factory, modules listed
in :data:`RULE_MODULES` self-register on first lookup, and adding a
rule is a zero-edit drop-in.  One AST walk per file dispatches every
enabled checker with parent and qualified-name tracking
(:class:`RuleContext`), so a new rule costs no extra parse.

Findings can be silenced two ways:

* inline, at the offending line::

      frobnicate()  # detlint: ignore[wall-clock] -- operator display only

  (``# detlint: ignore`` with no rule list silences every rule on the
  line, and ``# detlint: skip-file`` anywhere silences the file);
* via a checked-in **baseline** (:func:`load_baseline` /
  :func:`write_baseline`): legacy findings recorded there are reported
  as baselined and do not fail CI, so a new rule can land before the
  tree is fully clean.
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.experiments.plugin_registry import PluginRegistry

__all__ = [
    "DEFAULT_TARGETS",
    "Finding",
    "ImportMap",
    "RULE_MODULES",
    "RuleContext",
    "RuleSpec",
    "describe_rules",
    "filter_baselined",
    "format_findings",
    "get_rule",
    "iter_rules",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "module_for_path",
    "register_rule",
    "rule_names",
    "unregister_rule",
    "write_baseline",
]

#: Lint targets relative to the repository root: the package tree plus
#: everything that builds clusters outside it (examples, tools).
DEFAULT_TARGETS: Tuple[str, ...] = ("src/repro", "examples", "tools")

#: Modules imported lazily on registry access so self-registering rule
#: families become visible without the engine importing them eagerly.
#: Append at any time; new entries load on the next lookup.
RULE_MODULES: List[str] = [
    "repro.analysis.rules_determinism",
    "repro.analysis.rules_resources",
    "repro.analysis.rules_plugins",
]

#: Packages whose modules count as simulation hot paths for scoped
#: rules (wall-clock reads, env reads, unordered iteration).
SIM_PACKAGES: Tuple[str, ...] = (
    "repro.sim",
    "repro.net",
    "repro.core",
    "repro.scenarios",
)

_SUPPRESS_RE = re.compile(
    r"#\s*detlint:\s*ignore(?:\[(?P<rules>[^\]]*)\])?(?:\s*--\s*(?P<reason>.*))?"
)
_SKIP_FILE_RE = re.compile(r"#\s*detlint:\s*skip-file")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    #: Qualified name of the enclosing scope ("" at module level).
    scope: str = ""

    def fingerprint(self) -> Tuple[str, str, str, str]:
        """Line-number-free identity used for baseline matching.

        Lines drift with every edit above a finding; (rule, path,
        scope, message) survives unrelated churn while still retiring
        baseline entries when the flagged code itself changes.
        """
        return (self.rule, self.path, self.scope, self.message)

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )


@dataclass
class RuleSpec:
    """Declarative description of one lint rule."""

    #: Canonical rule name (what suppressions and baselines reference).
    name: str
    #: One-line description shown by ``detlint --list-rules``.
    description: str
    #: Zero-argument factory returning a fresh checker per file.  A
    #: checker exposes ``visit_<NodeType>(node, ctx)`` methods and an
    #: optional ``finish(ctx)`` hook run after the walk.
    make_checker: Callable[[], Any]
    #: "error" for certain hazards, "warning" for heuristic smells.
    severity: str = "error"
    #: Alternative lookup names.
    aliases: Tuple[str, ...] = ()
    #: Module that registered the spec (filled in by ``register_rule``).
    module: Optional[str] = None


_IMPL = PluginRegistry(
    kind="lint rule",
    spec_type=RuleSpec,
    plugin_modules=RULE_MODULES,
    factory_field="make_checker",
)


def register_rule(spec_or_factory):
    """Register a lint rule; usable as a decorator or called directly."""
    return _IMPL.register(spec_or_factory)


def unregister_rule(name: str) -> None:
    """Remove a rule (and its aliases); mainly for tests."""
    _IMPL.unregister(name)


def get_rule(name: str) -> RuleSpec:
    """The spec registered under *name* (aliases resolve)."""
    return _IMPL.get(name)


def rule_names() -> Tuple[str, ...]:
    """Canonical names of every registered rule, in registration order."""
    return _IMPL.names()


def iter_rules() -> List[RuleSpec]:
    """Every registered spec, in registration order."""
    return _IMPL.specs()


def describe_rules() -> List[str]:
    """``name — description`` lines (aliases in parentheses)."""
    return _IMPL.describe()


# ----------------------------------------------------------------------
# Import resolution shared by rule checkers
# ----------------------------------------------------------------------
class ImportMap:
    """Alias → real dotted-module map built from import statements.

    ``resolve(node)`` turns an attribute chain (``np.random.choice``)
    into its canonical dotted form (``numpy.random.choice``), or
    ``None`` when the chain is not rooted in a tracked import — local
    variables never resolve, so ``rng.random()`` on a seeded stream is
    invisible while ``random.random()`` on the module is not.
    """

    def __init__(self) -> None:
        self._aliases: Dict[str, str] = {}

    def add_import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._aliases[alias.asname or alias.name.partition(".")[0]] = (
                alias.name if alias.asname else alias.name.partition(".")[0]
            )

    def add_import_from(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:
            return  # relative imports never name stdlib/numpy modules
        for alias in node.names:
            self._aliases[alias.asname or alias.name] = (
                f"{node.module}.{alias.name}"
            )

    def resolve(self, node: ast.AST) -> Optional[str]:
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self._aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))


# ----------------------------------------------------------------------
# Per-file walk state
# ----------------------------------------------------------------------
class RuleContext:
    """What every checker sees while one file is walked.

    One context is shared by all checkers for a file; the engine keeps
    ``scope_stack`` and ``imports`` current as the walk proceeds, and
    :meth:`report` records findings against the calling checker's rule
    (the engine rebinds ``_active_spec`` before each dispatch).
    """

    def __init__(self, path: str, module: str, lines: Sequence[str]):
        self.path = path
        #: Dotted module path ("repro.sim.core", "examples.quickstart").
        self.module = module
        self.lines = list(lines)
        self.imports = ImportMap()
        #: Enclosing (name, node) scopes, innermost last.
        self.scope_stack: List[Tuple[str, ast.AST]] = []
        self._parents: Dict[int, ast.AST] = {}
        self._active_spec: Optional[RuleSpec] = None
        self.findings: List[Finding] = []

    # -- scope/parent queries ------------------------------------------
    @property
    def qualname(self) -> str:
        """Qualified name of the current scope ("" at module level)."""
        return ".".join(name for name, _ in self.scope_stack)

    @property
    def current_function(self) -> Optional[ast.AST]:
        """The innermost enclosing function def, or ``None``."""
        for _, node in reversed(self.scope_stack):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return node
        return None

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The AST parent of *node* (``None`` for the module root)."""
        return self._parents.get(id(node))

    def in_sim_package(self) -> bool:
        """Whether this module lives under a simulation hot-path package."""
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in SIM_PACKAGES
        )

    # -- reporting ------------------------------------------------------
    def report(self, node: ast.AST, message: str) -> None:
        """Record a finding for the active rule at *node*'s location."""
        spec = self._active_spec
        assert spec is not None, "report() outside a rule dispatch"
        self.findings.append(
            Finding(
                rule=spec.name,
                severity=spec.severity,
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
                scope=self.qualname,
            )
        )


def _scope_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return node.name
    if isinstance(node, ast.Lambda):
        return "<lambda>"
    return None


def _walk_file(tree: ast.Module, ctx: RuleContext, specs: Sequence[RuleSpec]) -> None:
    """One pass over *tree*, dispatching every rule's checker."""
    checkers = [(spec, spec.make_checker()) for spec in specs]
    # Parents are resolved up front so checkers that fire on an outer
    # node (e.g. a FunctionDef) can already query its children's.
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            ctx._parents[id(child)] = node
    # (spec, checker, method) per node type, resolved once per file.
    dispatch: Dict[type, List[Tuple[RuleSpec, Any, Callable]]] = {}

    def handlers(node_type: type) -> List[Tuple[RuleSpec, Any, Callable]]:
        cached = dispatch.get(node_type)
        if cached is None:
            cached = []
            for spec, checker in checkers:
                method = getattr(checker, f"visit_{node_type.__name__}", None)
                if method is not None:
                    cached.append((spec, checker, method))
            dispatch[node_type] = cached
        return cached

    def visit(node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            ctx.imports.add_import(node)
        elif isinstance(node, ast.ImportFrom):
            ctx.imports.add_import_from(node)
        for spec, _checker, method in handlers(type(node)):
            ctx._active_spec = spec
            method(node, ctx)
        ctx._active_spec = None
        scope = _scope_name(node)
        if scope is not None:
            ctx.scope_stack.append((scope, node))
        for child in ast.iter_child_nodes(node):
            visit(child)
        if scope is not None:
            ctx.scope_stack.pop()

    visit(tree)
    for spec, checker in checkers:
        finish = getattr(checker, "finish", None)
        if finish is not None:
            ctx._active_spec = spec
            finish(ctx)
            ctx._active_spec = None


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def _suppressed_rules(line: str) -> Optional[set]:
    """Rules silenced by *line*'s directive: a set, or ``None`` for all."""
    match = _SUPPRESS_RE.search(line)
    if match is None:
        return set()
    rules = match.group("rules")
    if rules is None:
        return None  # bare ignore: every rule
    return {item.strip() for item in rules.split(",") if item.strip()}


def _apply_suppressions(
    findings: List[Finding], lines: Sequence[str]
) -> List[Finding]:
    if any(_SKIP_FILE_RE.search(line) for line in lines):
        return []
    kept = []
    for finding in findings:
        if 1 <= finding.line <= len(lines):
            silenced = _suppressed_rules(lines[finding.line - 1])
            if silenced is None or finding.rule in silenced:
                continue
        kept.append(finding)
    return kept


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def module_for_path(path: str, root: Optional[str] = None) -> str:
    """Dotted module name for *path* (used for package-scoped rules).

    Files under a ``src/`` directory resolve to their import path
    (``src/repro/sim/core.py`` → ``repro.sim.core``); anything else
    resolves to its root-relative path with dots (``examples/quickstart``).
    """
    rel = os.path.relpath(path, root) if root else path
    rel = rel.replace(os.sep, "/")
    if rel.endswith(".py"):
        rel = rel[: -len(".py")]
    parts = [part for part in rel.split("/") if part not in ("", ".")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _selected_specs(rules: Optional[Sequence[str]]) -> List[RuleSpec]:
    if rules is None:
        return iter_rules()
    return [get_rule(name) for name in rules]


def lint_source(
    source: str,
    path: str = "<string>",
    module: Optional[str] = None,
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint one source string (the test-suite and single-file entry).

    *module* is the dotted module path used by package-scoped rules;
    it defaults to :func:`module_for_path` of *path*.  *rules* limits
    the run to the named rules (default: every registered rule).
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise ExperimentError(f"cannot lint {path}: {exc}") from None
    lines = source.splitlines()
    ctx = RuleContext(
        path=path,
        module=module if module is not None else module_for_path(path),
        lines=lines,
    )
    _walk_file(tree, ctx, _selected_specs(rules))
    findings = _apply_suppressions(ctx.findings, lines)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _iter_python_files(target: str) -> Iterable[str]:
    if os.path.isfile(target):
        yield target
        return
    for dirpath, dirnames, filenames in os.walk(target):
        dirnames[:] = sorted(
            name for name in dirnames
            if not name.startswith(".") and name != "__pycache__"
        )
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def lint_paths(
    targets: Optional[Sequence[str]] = None,
    root: Optional[str] = None,
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under *targets* (default: the full tree).

    *root* anchors both the default targets and the repo-relative paths
    findings carry (default: the current working directory).
    """
    base = root or os.getcwd()
    chosen = list(targets) if targets else [
        os.path.join(base, target) for target in DEFAULT_TARGETS
    ]
    findings: List[Finding] = []
    for target in chosen:
        if not os.path.exists(target):
            raise ExperimentError(f"lint target {target!r} does not exist")
        for filename in _iter_python_files(target):
            with open(filename, "r", encoding="utf-8") as fh:
                source = fh.read()
            rel = os.path.relpath(filename, base).replace(os.sep, "/")
            findings.extend(
                lint_source(
                    source,
                    path=rel,
                    module=module_for_path(filename, base),
                    rules=rules,
                )
            )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def load_baseline(path: str) -> List[Tuple[str, str, str, str]]:
    """Fingerprints recorded in the baseline file (missing file: none)."""
    if not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or "findings" not in data:
        raise ExperimentError(f"baseline {path!r} is not a detlint baseline")
    return [
        (entry["rule"], entry["path"], entry.get("scope", ""), entry["message"])
        for entry in data["findings"]
    ]


def write_baseline(findings: Sequence[Finding], path: str) -> None:
    """Record *findings* as the accepted legacy set."""
    entries = [
        {
            "rule": finding.rule,
            "path": finding.path,
            "scope": finding.scope,
            "message": finding.message,
        }
        for finding in sorted(findings, key=lambda f: f.fingerprint())
    ]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"version": 1, "findings": entries}, fh, indent=2, sort_keys=True)
        fh.write("\n")


def filter_baselined(
    findings: Sequence[Finding],
    baseline: Sequence[Tuple[str, str, str, str]],
) -> Tuple[List[Finding], int]:
    """Split *findings* into (fresh, baselined-count).

    Matching is multiset-style on :meth:`Finding.fingerprint`: two
    identical legacy findings need two baseline entries, so fixing one
    of a pair still surfaces the survivor.
    """
    budget: Dict[Tuple[str, str, str, str], int] = {}
    for fingerprint in baseline:
        budget[fingerprint] = budget.get(fingerprint, 0) + 1
    fresh: List[Finding] = []
    matched = 0
    for finding in findings:
        fingerprint = finding.fingerprint()
        if budget.get(fingerprint, 0) > 0:
            budget[fingerprint] -= 1
            matched += 1
        else:
            fresh.append(finding)
    return fresh, matched


def format_findings(findings: Sequence[Finding]) -> str:
    """One line per finding, ready to print."""
    return "\n".join(finding.format() for finding in findings)
