"""Peak-RSS guard: sketch-mode sweeps must stay O(buckets), not O(requests).

Two stages, one process, one `ru_maxrss` ceiling:

1. **fig18, sketch mode, MMPP arrivals** — a real reduced-scale trunk
   sweep through the actual harness (`--workload mmpp --metrics
   sketch`), checking every point carries a serialized sketch and no
   raw sample arrays ride back through the executor.

2. **A 100M-request MMPP sweep point at the metrics plane** — four
   worker-shaped recorders ingest ``--samples`` latency draws whose
   mean is modulated by the MMPP phase process (chunked numpy
   generation, so no stage ever materializes more than one chunk),
   then collection runs exactly as the executor does it: each worker
   ships its O(buckets) ``result_payload``, the parent merges and
   reads p50/p99/p99.9 off the merged sketch.

The guard then asserts the process-wide peak RSS stayed under
``--ceiling-mb``.  The ceiling is calibrated far above the sketch
plane's real footprint (~200 MB, dominated by one 5M-sample chunk)
and far below what any O(requests) regression costs: exact mode at
100M samples needs ~800 MB for the sample array alone, before the
collection copy.  A regression that re-grows per-request state
anywhere on the sketch path fails this loudly.

CI runs ``make rss-guard`` in the bench job; locally::

    PYTHONPATH=src python tools/rss_guard.py
    PYTHONPATH=src python tools/rss_guard.py --samples 10000000  # quick
"""

import argparse
import math
import resource
import sys
import time

import numpy as np

DEFAULT_CEILING_MB = 600
DEFAULT_SAMPLES = 100_000_000
CHUNK = 5_000_000
WORKERS = 4
MEAN_NS = 25_000.0


def _peak_rss_mb() -> float:
    """Process-wide peak RSS in MB (Linux reports ru_maxrss in KB)."""
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak_kb / 1024.0


def _stage_fig18(scale: float, jobs: int) -> str:
    """A real sketch-mode MMPP trunk sweep through the fig18 harness."""
    from repro.experiments.fig18_trunk_saturation import collect
    from repro.experiments.registry import gate_harness_axes

    # Same harness-capability gating as the CLI: a harness without the
    # workload/metrics axes makes this error, not silently run exact
    # mode and defeat the whole O(buckets) point of the guard.
    kwargs = gate_harness_axes(
        collect, "fig18", requested={"workload": "mmpp", "metrics": "sketch"}
    )
    results = collect(scale=scale, jobs=jobs, **kwargs)
    cells = [point for series in results.values() for _, point in series]
    missing = [point for point in cells if point.latency_sketch is None]
    if missing:
        raise AssertionError(
            f"{len(missing)} of {len(cells)} fig18 cells came back without "
            "a latency sketch in sketch mode"
        )
    total = sum(point.samples for point in cells)
    return f"{len(cells)} cells, {total} requests, all points sketched"


def _stage_big_point(samples: int) -> str:
    """The metrics plane of a 100M-request MMPP point, chunk-streamed."""
    import random

    from repro.metrics.latency import LatencyRecorder
    from repro.metrics.sketch import LatencySketch
    from repro.metrics.sweep import LoadPoint
    from repro.workloads.mmpp import MmppArrivals

    # The MMPP phase process modulates each chunk's latency mean the
    # same way bursts inflate queueing: chunks drawn while the phase
    # process is "high" see burst-scaled service pressure.
    phases = MmppArrivals(random.Random(7), rate_rps=1.0, burst=8.0)
    rng = np.random.default_rng(7)
    recorders = [LatencyRecorder(mode="sketch") for _ in range(WORKERS)]
    per_worker = samples // WORKERS
    ingested = 0
    for worker, recorder in enumerate(recorders):
        remaining = per_worker
        while remaining:
            n = min(CHUNK, remaining)
            burst = 8.0 if phases.next_gap() < 1_000_000_000 else 1.0
            chunk = (rng.exponential(MEAN_NS * burst, n) + 1.0).astype(
                np.int64
            )
            recorder.sketch.add_many(chunk)
            recorder._sum_ns += int(chunk.sum())
            remaining -= n
            ingested += n
    # Collection, exactly as the executor return path does it: workers
    # ship O(buckets) payloads, the parent merges and reduces.
    payloads = [recorder.result_payload() for recorder in recorders]
    payload_bytes = sum(len(payload) for payload in payloads)
    merged = LatencySketch.from_bytes(payloads[0])
    for payload in payloads[1:]:
        merged.merge(LatencySketch.from_bytes(payload))
    point = LoadPoint(
        offered_rps=0.0,
        throughput_rps=0.0,
        p50_us=merged.quantile(50) / 1000.0,
        p99_us=merged.quantile(99) / 1000.0,
        p999_us=merged.quantile(99.9) / 1000.0,
        mean_us=merged.sum / merged.count / 1000.0,
        samples=merged.count,
        latency_sketch=merged.to_bytes(),
    )
    if point.samples != ingested or ingested != per_worker * WORKERS:
        raise AssertionError(
            f"merged sketch covers {point.samples} of {ingested} samples"
        )
    for value in (point.p50_us, point.p99_us, point.p999_us):
        if not math.isfinite(value) or value <= 0:
            raise AssertionError(f"degenerate quantile {value} from merge")
    return (
        f"{point.samples} requests -> {payload_bytes} payload bytes, "
        f"p50 {point.p50_us:.1f} us, p99 {point.p99_us:.1f} us, "
        f"p99.9 {point.p999_us:.1f} us"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ceiling-mb", type=float, default=DEFAULT_CEILING_MB)
    parser.add_argument("--samples", type=int, default=DEFAULT_SAMPLES)
    parser.add_argument("--scale", type=float, default=0.1,
                        help="fig18 sweep scale (default: 0.1)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="fig18 sweep workers (default: 2)")
    args = parser.parse_args(argv)

    print(f"rss-guard: ceiling {args.ceiling_mb:.0f} MB "
          f"(baseline {_peak_rss_mb():.0f} MB)")
    for name, stage in (
        ("fig18 sketch sweep", lambda: _stage_fig18(args.scale, args.jobs)),
        (f"{args.samples}-request MMPP point",
         lambda: _stage_big_point(args.samples)),
    ):
        start = time.perf_counter()
        detail = stage()
        print(f"  {name}: {detail} "
              f"[{time.perf_counter() - start:.1f}s, "
              f"peak {_peak_rss_mb():.0f} MB]")

    peak = _peak_rss_mb()
    if peak > args.ceiling_mb:
        print(f"rss-guard: FAIL — peak RSS {peak:.0f} MB exceeds the "
              f"{args.ceiling_mb:.0f} MB ceiling (O(requests) memory is "
              "back on the sketch path)")
        return 1
    print(f"rss-guard: OK — peak RSS {peak:.0f} MB "
          f"<= {args.ceiling_mb:.0f} MB")
    return 0


if __name__ == "__main__":
    sys.exit(main())
