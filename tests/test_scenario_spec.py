"""Spec-layer validation: every malformed scenario fails at construction."""

import pytest

from helpers import tiny_scenario

from repro.errors import ExperimentError
from repro.scenarios import (
    EVENT_TYPES,
    Scenario,
    ScenarioEvent,
    event_action_names,
)
from repro.sim.units import ms


def _kill(at_ms=1.5, server=0):
    return {"at_ms": at_ms, "action": "kill_server", "server": server}


# ----------------------------------------------------------------------
# Event validation
# ----------------------------------------------------------------------
def test_unknown_action_rejected():
    with pytest.raises(ExperimentError, match="unknown event action"):
        tiny_scenario(events=[{"at_ms": 1, "action": "explode"}])


def test_missing_required_parameter_rejected():
    with pytest.raises(ExperimentError, match="missing required parameter"):
        tiny_scenario(events=[{"at_ms": 1, "action": "kill_server"}])


def test_unknown_parameter_rejected():
    with pytest.raises(ExperimentError, match="unknown parameter"):
        tiny_scenario(events=[_kill() | {"blast_radius": 3}])


def test_non_integer_index_rejected():
    with pytest.raises(ExperimentError, match="not a int"):
        tiny_scenario(
            events=[{"at_ms": 1, "action": "kill_server", "server": "zero"}]
        )


def test_precision_losing_float_rejected():
    with pytest.raises(ExperimentError, match="loses precision"):
        tiny_scenario(
            events=[{"at_ms": 1, "action": "kill_server", "server": 0.5}]
        )


def test_negative_index_rejected():
    with pytest.raises(ExperimentError, match="non-negative"):
        tiny_scenario(events=[_kill(server=-1)])


def test_event_past_horizon_rejected():
    # tiny_scenario horizon: 1 + 3 + 1 = 5 ms.
    with pytest.raises(ExperimentError, match="past the .* horizon"):
        tiny_scenario(events=[_kill(at_ms=5)])


def test_server_index_out_of_range_rejected():
    with pytest.raises(ExperimentError, match="targets server 7"):
        tiny_scenario(events=[_kill(server=7)])


def test_spine_event_needs_spine_leaf():
    with pytest.raises(ExperimentError, match="needs a spine_leaf fabric"):
        tiny_scenario(
            events=[{"at_ms": 1, "action": "withdraw_spine", "spine": 0}]
        )


def test_handler_event_needs_switch_program():
    with pytest.raises(ExperimentError, match="installs no switch program"):
        tiny_scenario(events=[_kill()], cluster={"scheme": "cclone"})


def test_load_surge_semantics():
    with pytest.raises(ExperimentError, match="factor must be positive"):
        tiny_scenario(
            events=[{"at_ms": 1, "action": "load_surge", "factor": 0.0,
                     "duration_ns": ms(1)}]
        )
    with pytest.raises(ExperimentError, match="duration_ns must be positive"):
        tiny_scenario(
            events=[{"at_ms": 1, "action": "load_surge", "factor": 2.0,
                     "duration_ns": 0}]
        )


def test_wipe_switch_semantics():
    with pytest.raises(ExperimentError, match="down_ns must be positive"):
        tiny_scenario(
            events=[{"at_ms": 1, "action": "wipe_switch", "down_ns": 0}]
        )


def test_event_time_forms_are_exclusive():
    with pytest.raises(ExperimentError, match="not both"):
        tiny_scenario(
            events=[{"at_ms": 1, "at_ns": ms(1), "action": "push_tables"}]
        )
    with pytest.raises(ExperimentError, match="missing at_ns"):
        tiny_scenario(events=[{"action": "push_tables"}])


def test_events_sorted_stably_by_time():
    scenario = tiny_scenario(
        events=[
            {"at_ms": 2, "action": "push_tables"},
            {"at_ms": 1, "action": "kill_server", "server": 0},
            {"at_ms": 1, "action": "restore_server", "server": 0},
        ]
    )
    assert [e.time_ns for e in scenario.events] == [ms(1), ms(1), ms(2)]
    # Same-time events keep their list order (kill before restore).
    assert [e.action for e in scenario.events[:2]] == [
        "kill_server", "restore_server",
    ]


# ----------------------------------------------------------------------
# Scenario-level validation
# ----------------------------------------------------------------------
def test_empty_name_rejected():
    with pytest.raises(ExperimentError, match="non-empty name"):
        tiny_scenario(name="  ")


def test_checkpoint_outside_horizon_rejected():
    with pytest.raises(ExperimentError, match="outside"):
        tiny_scenario(checkpoints_ns=[ms(6)])


def test_unknown_skip_invariant_rejected():
    with pytest.raises(ExperimentError, match="unknown invariant"):
        tiny_scenario(skip_invariants=["no-such-check"])


def test_unknown_scenario_field_rejected():
    with pytest.raises(ExperimentError, match="unknown scenario field"):
        Scenario.from_dict({"name": "x", "clutser": {}})


def test_config_scale_shrinks_rate_only():
    scenario = tiny_scenario(events=[_kill()])
    full = scenario.config()
    half = scenario.config(scale=0.5)
    assert half.rate_rps == pytest.approx(full.rate_rps * 0.5)
    # The timeline is absolute: horizon and windows never shrink.
    assert half.total_ns == full.total_ns
    assert scenario.config(seed=123).seed == 123
    with pytest.raises(ExperimentError, match="scale must be positive"):
        scenario.config(scale=-1.0)


def test_needs_handler_derived_from_events():
    assert tiny_scenario(events=[_kill()]).needs_handler
    assert not tiny_scenario(
        events=[{"at_ms": 1, "action": "wipe_switch", "down_ns": ms(1)}]
    ).needs_handler


# ----------------------------------------------------------------------
# Overrides (the sweep axis) and round-trips
# ----------------------------------------------------------------------
def test_with_overrides_revalidates():
    scenario = tiny_scenario(
        events=[{"at_ms": 1, "action": "withdraw_spine", "spine": 0}],
        cluster={
            "topology": "spine_leaf",
            "topology_params": {"racks": 2, "spines": 2},
        },
    )
    # Moving a spine scenario onto a star fabric must fail loudly.
    with pytest.raises(ExperimentError, match="needs a spine_leaf fabric"):
        scenario.with_overrides(topology="star")
    # A compatible override keeps events and drops stale fabric params.
    moved = tiny_scenario(events=[_kill()]).with_overrides(
        placement="rack-local", seed=42
    )
    assert moved.cluster["placement"] == "rack-local"
    assert moved.cluster["seed"] == 42
    assert [e.action for e in moved.events] == ["kill_server"]


def test_dict_round_trip():
    scenario = tiny_scenario(
        events=[_kill(), {"at_ms": 3, "action": "push_tables"}],
        checkpoints_ns=[ms(2)],
        skip_invariants=["rack-local-trunks-silent"],
        description="round trip",
    )
    clone = Scenario.from_dict(scenario.to_dict())
    assert clone.to_dict() == scenario.to_dict()


def test_toml_round_trip():
    text = """
name = "toml-spec"
description = "spec from TOML"

[cluster]
scheme = "netclone"
num_servers = 3
workers_per_server = 4
rate_rps = 2e5
warmup_ns = 1_000_000
measure_ns = 3_000_000
drain_ns = 1_000_000
seed = 7

[[events]]
at_ms = 1.5
action = "kill_server"
server = 0

[[events]]
at_ms = 3.0
action = "restore_server"
server = 0
"""
    scenario = Scenario.from_toml(text)
    assert scenario.name == "toml-spec"
    assert [e.action for e in scenario.events] == [
        "kill_server", "restore_server",
    ]
    assert scenario.events[0].time_ns == 1_500_000
    assert Scenario.from_dict(scenario.to_dict()).to_dict() == scenario.to_dict()


def test_invalid_toml_rejected():
    with pytest.raises(ExperimentError, match="invalid scenario TOML"):
        Scenario.from_toml("name = [unclosed")


def test_event_vocabulary_is_documented():
    # Every action carries a description and a param table; the ISSUE's
    # nine-action vocabulary (plus restore_rack) is all present.
    assert set(event_action_names()) == set(EVENT_TYPES) == {
        "kill_server", "restore_server", "withdraw_spine", "fail_spine",
        "restore_spine", "drain_rack", "restore_rack", "load_surge",
        "push_tables", "wipe_switch",
    }
    for etype in EVENT_TYPES.values():
        assert etype.description


def test_scenario_event_param_dict():
    event = ScenarioEvent(ms(1), "kill_server", (("server", 2),))
    assert event.param_dict() == {"server": 2}
    assert event.to_dict() == {
        "at_ns": ms(1), "action": "kill_server", "server": 2,
    }
