"""Plain-text table formatting for experiment output."""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["format_table"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render *rows* under *headers* with aligned columns."""
    columns = len(headers)
    text_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    for row in text_rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} does not match {columns} headers")
    widths = [len(header) for header in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in text_rows)
    return "\n".join(lines)
