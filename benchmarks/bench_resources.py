"""Benchmark: recompute the §4.1 switch resource usage."""

from conftest import run_once

from repro.experiments import table_resources


def bench_resources(benchmark, bench_scale, bench_seed):
    report = run_once(benchmark, table_resources.run, scale=bench_scale, seed=bench_seed)
    assert "stages" in report
    assert "4.7" in report or "4.5" in report
