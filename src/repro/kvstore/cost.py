"""Service-time cost models for KV operations.

These map an executed operation to the simulated service time a worker
thread spends on it.  Constants are calibrated so the six-server,
8-thread-per-server cluster saturates where Figures 11 and 12 do
(~0.6 MRPS for 99 % GET / 1 % SCAN and ~0.15 MRPS for 90 % / 10 %):

with 48 worker threads, saturation throughput = 48 / mean_service, so
the paper's two saturation points imply a GET of ~50 µs (request
handling, protocol parsing, allocation) and a SCAN of ~2.5 ms (100
objects plus iteration overhead).  Memcached is modelled marginally
cheaper on GET and costlier on SCAN, matching the small differences
between Figures 11 and 12.
"""

from __future__ import annotations

from repro.errors import KVStoreError
from repro.workloads.kv import KvOp, KvRequest

__all__ = ["KvCostModel", "MemcachedCostModel", "RedisCostModel"]


class KvCostModel:
    """Base cost model: fixed per-op cost plus per-object cost."""

    name = "generic"

    def __init__(self, get_ns: int, scan_base_ns: int, scan_per_item_ns: int, set_ns: int):
        for value in (get_ns, scan_base_ns, scan_per_item_ns, set_ns):
            if value < 0:
                raise KVStoreError("cost constants must be non-negative")
        self.get_ns = get_ns
        self.scan_base_ns = scan_base_ns
        self.scan_per_item_ns = scan_per_item_ns
        self.set_ns = set_ns

    def service_ns(self, request: KvRequest) -> int:
        """Base service time of *request* (before execution jitter)."""
        if request.op is KvOp.GET:
            return self.get_ns
        if request.op is KvOp.SCAN:
            return self.scan_base_ns + self.scan_per_item_ns * request.count
        if request.op is KvOp.SET:
            return self.set_ns
        raise KVStoreError(f"unknown op {request.op!r}")


class RedisCostModel(KvCostModel):
    """Redis-like costs (single GET ~50 µs end-to-end in the app server)."""

    name = "redis"

    def __init__(self):
        super().__init__(
            get_ns=50_000,
            scan_base_ns=150_000,
            scan_per_item_ns=24_000,
            set_ns=55_000,
        )


class MemcachedCostModel(KvCostModel):
    """Memcached-like costs (slightly cheaper GET, pricier SCAN path)."""

    name = "memcached"

    def __init__(self):
        super().__init__(
            get_ns=47_000,
            scan_base_ns=180_000,
            scan_per_item_ns=26_000,
            set_ns=50_000,
        )
