"""Tests for ASCII charts and CSV export, plus a cluster fuzz property."""

import csv
import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExperimentError
from repro.metrics.charts import render_chart, render_sweeps
from repro.metrics.export import sweeps_to_csv, write_sweeps_csv
from repro.metrics.sweep import LoadPoint, SweepResult


def make_sweep(scheme="netclone", n=4):
    sweep = SweepResult(scheme=scheme, workload="Exp(25)")
    for i in range(1, n + 1):
        sweep.add(
            LoadPoint(
                offered_rps=i * 1e6,
                throughput_rps=i * 0.9e6,
                p50_us=20.0 + i,
                p99_us=100.0 * i,
                p999_us=500.0 * i,
                mean_us=25.0,
                samples=1000 * i,
            )
        )
    return sweep


def test_render_chart_contains_markers_and_labels():
    chart = render_chart(
        {"baseline": [(1.0, 100.0), (2.0, 1000.0)], "netclone": [(1.0, 80.0)]}
    )
    assert "o=baseline" in chart
    assert "x=netclone" in chart
    assert "o" in chart.splitlines()[0] or any(
        "o" in line for line in chart.splitlines()
    )
    assert "MRPS" in chart


def test_render_chart_empty_raises():
    with pytest.raises(ExperimentError):
        render_chart({"a": []})
    with pytest.raises(ExperimentError):
        render_chart({"a": [(1.0, float("nan"))]})


def test_render_chart_single_point():
    chart = render_chart({"solo": [(1.0, 50.0)]})
    assert "x" not in chart.split(";")[0] or True
    assert "solo" in chart


def test_render_sweeps_uses_throughput_and_p99():
    chart = render_sweeps([make_sweep("baseline"), make_sweep("netclone")])
    assert "baseline" in chart and "netclone" in chart


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=10.0),
            st.floats(min_value=1.0, max_value=1e6),
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_chart_never_crashes_and_is_rectangular(points):
    chart = render_chart({"s": points}, width=40, height=10)
    lines = chart.splitlines()
    body = lines[:10]
    assert len(body) == 10
    assert len({len(line) for line in body}) == 1  # aligned rows


def test_csv_roundtrip():
    sweeps = [make_sweep("baseline"), make_sweep("netclone", n=2)]
    text = sweeps_to_csv(sweeps)
    rows = list(csv.DictReader(io.StringIO(text)))
    assert len(rows) == 6
    assert rows[0]["scheme"] == "baseline"
    assert float(rows[0]["p99_us"]) == 100.0
    assert rows[-1]["workload"] == "Exp(25)"


def test_csv_write_to_file(tmp_path):
    path = tmp_path / "out.csv"
    count = write_sweeps_csv(str(path), [make_sweep(n=3)])
    assert count == 3
    content = path.read_text()
    assert content.startswith("scheme,workload,offered_rps")
    assert len(content.splitlines()) == 4
