"""Retransmission support and TCP-style request IDs (§3.7).

UDP single-packet RPCs lose packets occasionally; RPC frameworks
retransmit.  §3.7 works through what that means for NetClone:

* a retransmitted request must keep its original request ID — a
  switch-assigned sequence number would change on every attempt, so
  IDs become client-assigned Lamport-style tuples
  ``(client_id, local_seq)`` (shared with the multi-packet extension);
* the switch may legitimately make a *different* cloning decision for
  the retransmission than for the original ("it is intentional"),
  since server states have moved on;
* the filter table interacts with retransmissions: if the response to
  a cloned original was lost *after* inserting its fingerprint, the
  retransmission's first response carries the same ID, matches the
  stale fingerprint and is dropped-and-cleared — so one extra
  retransmission round trips the request.  The client below simply
  keeps retransmitting until a response lands, which is exactly what
  a real framework's timeout loop does.

:class:`ReliableNetCloneClient` is an open-loop NetClone client with a
timeout/retransmit loop bounded by ``max_attempts``.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.apps.client import OpenLoopClient
from repro.core.constants import (
    CLO_NOT_CLONED,
    MSG_REQ,
    NETCLONE_UDP_PORT,
    VIRTUAL_SERVICE_IP,
)
from repro.core.header import NetCloneHeader
from repro.core.multipacket import client_request_id
from repro.core.program import CLO_NEVER_CLONE
from repro.errors import ExperimentError
from repro.net.packet import Packet

__all__ = ["ReliableNetCloneClient"]


class ReliableNetCloneClient(OpenLoopClient):
    """NetClone client with client-assigned IDs and retransmission."""

    #: ``build_packets`` arms the retransmit timer (live bookkeeping),
    #: so arrivals cannot be pre-drawn ahead of simulated time.
    ARRIVAL_PREDRAW = False

    def __init__(
        self,
        *args: Any,
        num_groups: int,
        num_filter_tables: int = 2,
        retransmit_timeout_ns: int = 1_000_000,
        max_attempts: int = 5,
        **kwargs: Any,
    ):
        super().__init__(*args, **kwargs)
        if num_groups < 2:
            raise ExperimentError("NetClone needs at least two groups")
        if retransmit_timeout_ns <= 0:
            raise ExperimentError("retransmit timeout must be positive")
        if max_attempts < 1:
            raise ExperimentError("need at least one attempt")
        self.num_groups = num_groups
        self.num_filter_tables = num_filter_tables
        self.retransmit_timeout_ns = retransmit_timeout_ns
        self.max_attempts = max_attempts
        self.retransmissions = 0
        self.abandoned = 0
        self._attempts: Dict[int, int] = {}
        self._requests: Dict[int, Any] = {}

    # ------------------------------------------------------------------
    def build_packets(self, request: Any) -> List[Packet]:
        seq = request.client_seq
        self._attempts[seq] = 1
        self._requests[seq] = request
        self.sim.call_after(self.retransmit_timeout_ns, self._maybe_retransmit, seq)
        return [self._packet_for(request)]

    def _packet_for(self, request: Any) -> Packet:
        header = NetCloneHeader(
            msg_type=MSG_REQ,
            req_id=client_request_id(self.client_id, request.client_seq),
            grp=self.rng.randrange(self.num_groups),
            clo=CLO_NEVER_CLONE if getattr(request, "write", False) else CLO_NOT_CLONED,
            idx=self.rng.randrange(self.num_filter_tables),
        )
        return Packet(
            src=self.ip,
            dst=VIRTUAL_SERVICE_IP,
            sport=NETCLONE_UDP_PORT,
            dport=NETCLONE_UDP_PORT,
            size=self.workload.request_size(request) + NetCloneHeader.WIRE_SIZE,
            payload=request,
            nc=header,
        )

    # ------------------------------------------------------------------
    def _maybe_retransmit(self, seq: int) -> None:
        if seq not in self._outstanding:
            self._attempts.pop(seq, None)
            self._requests.pop(seq, None)
            return
        attempts = self._attempts.get(seq, 0)
        if attempts >= self.max_attempts:
            # Give up: account the request as abandoned (it stays
            # incomplete in the recorder, which is the honest outcome).
            self.abandoned += 1
            self._outstanding.pop(seq, None)
            self._attempts.pop(seq, None)
            self._requests.pop(seq, None)
            return
        self._attempts[seq] = attempts + 1
        self.retransmissions += 1
        packet = self._packet_for(self._requests[seq])
        packet.created_at = self.sim.now
        self.send(packet)
        self.sim.call_after(self.retransmit_timeout_ns, self._maybe_retransmit, seq)

    def handle(self, packet: Packet) -> None:
        payload = packet.payload
        if payload is not None and payload.client_id == self.client_id:
            self._attempts.pop(payload.client_seq, None)
            self._requests.pop(payload.client_seq, None)
        super().handle(packet)
