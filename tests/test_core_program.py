"""Unit tests for the NetClone switch program (Algorithm 1)."""

import pytest

from repro.core import (
    CLO_CLONED_COPY,
    CLO_CLONED_ORIGINAL,
    CLO_NOT_CLONED,
    MSG_REQ,
    MSG_RESP,
    NETCLONE_UDP_PORT,
    NetCloneHeader,
    NetCloneProgram,
    STATE_BUSY,
    STATE_IDLE,
    VIRTUAL_SERVICE_IP,
)
from repro.core.program import CLO_NEVER_CLONE, SCHED_JSQ
from repro.core.racksched import NetCloneRackSchedProgram, RackSchedProgram
from repro.errors import PipelineConfigError
from repro.net.packet import Packet
from repro.sim import Simulator
from repro.switchsim import ProgrammableSwitch
from repro.switchsim.pipeline import PipelineAction

SERVER_IPS = [1001, 1002, 1003]


def make_program(**kwargs):
    kwargs.setdefault("server_ips", SERVER_IPS)
    return NetCloneProgram(**kwargs)


def make_switch():
    return ProgrammableSwitch(Simulator())


def request(grp=0, clo=CLO_NOT_CLONED, idx=0, swid=0):
    return Packet(
        src=5000,
        dst=VIRTUAL_SERVICE_IP,
        sport=NETCLONE_UDP_PORT,
        dport=NETCLONE_UDP_PORT,
        size=128,
        nc=NetCloneHeader(MSG_REQ, grp=grp, clo=clo, idx=idx, swid=swid),
    )


def response(req_id, sid, state=STATE_IDLE, clo=CLO_CLONED_ORIGINAL, idx=0):
    return Packet(
        src=SERVER_IPS[sid],
        dst=5000,
        sport=NETCLONE_UDP_PORT,
        dport=NETCLONE_UDP_PORT,
        size=128,
        nc=NetCloneHeader(MSG_RESP, req_id=req_id, sid=sid, state=state, clo=clo, idx=idx),
    )


def apply(program, switch, packet, recirculated=False):
    packet.recirculated = recirculated
    action = program.apply(packet, program.pipeline.new_pass(), switch)
    # ``None`` is the program's plain-forward fast path — equivalent to
    # an empty action, normalised here so assertions stay uniform.
    return action if action is not None else PipelineAction()


# ----------------------------------------------------------------------
# Request processing
# ----------------------------------------------------------------------
def test_request_ids_unique_and_increasing():
    program, switch = make_program(), make_switch()
    ids = []
    for _ in range(5):
        packet = request()
        apply(program, switch, packet)
        ids.append(packet.nc.req_id)
    assert ids == [1, 2, 3, 4, 5]


def test_sequence_skips_zero_on_wrap():
    program, switch = make_program(), make_switch()
    program.seq.poke(0, (1 << 32) - 1)
    packet = request()
    apply(program, switch, packet)
    assert packet.nc.req_id == 1


def test_idle_pair_is_cloned():
    program, switch = make_program(), make_switch()
    packet = request(grp=0)  # group 0 = (0, 1)
    action = apply(program, switch, packet)
    assert packet.nc.clo == CLO_CLONED_ORIGINAL
    assert packet.nc.sid == 1  # clone destined for server 1
    assert packet.dst == SERVER_IPS[0]
    assert len(action.recirculate) == 1
    assert not action.drop
    assert switch.counters.get("nc_cloned") == 1


def test_busy_first_candidate_blocks_cloning():
    program, switch = make_program(), make_switch()
    program.state_table.poke(0, STATE_BUSY)
    packet = request(grp=0)
    action = apply(program, switch, packet)
    assert packet.nc.clo == CLO_NOT_CLONED
    assert action.recirculate == []
    assert packet.dst == SERVER_IPS[0]  # still forwarded to first candidate


def test_busy_second_candidate_blocks_cloning():
    program, switch = make_program(), make_switch()
    program.shadow_table.poke(1, STATE_BUSY)
    packet = request(grp=0)
    action = apply(program, switch, packet)
    assert packet.nc.clo == CLO_NOT_CLONED
    assert action.recirculate == []


def test_cloning_disabled_never_clones():
    program, switch = make_program(cloning_enabled=False), make_switch()
    action = apply(program, switch, request(grp=0))
    assert action.recirculate == []


def test_write_requests_never_cloned():
    program, switch = make_program(), make_switch()
    packet = request(grp=0, clo=CLO_NEVER_CLONE)
    action = apply(program, switch, packet)
    assert action.recirculate == []
    assert packet.nc.clo == CLO_NOT_CLONED  # normalised on the wire


def test_unknown_group_dropped():
    program, switch = make_program(), make_switch()
    action = apply(program, switch, request(grp=9999))
    assert action.drop
    assert switch.counters.get("nc_unknown_group") == 1


def test_recirculated_clone_gets_address_and_clo2():
    program, switch = make_program(), make_switch()
    original = request(grp=0)
    action = apply(program, switch, original)
    clone = action.recirculate[0]
    clone_action = apply(program, switch, clone, recirculated=True)
    assert clone.nc.clo == CLO_CLONED_COPY
    assert clone.dst == SERVER_IPS[1]
    assert not clone_action.drop
    assert clone.nc.req_id == original.nc.req_id  # fingerprint shared


def test_group_choice_covers_all_ordered_pairs():
    program, switch = make_program(), make_switch()
    destinations = set()
    for grp in range(program.num_groups):
        packet = request(grp=grp)
        program.state_table.poke(0, STATE_BUSY)  # suppress cloning noise
        apply(program, switch, packet)
        destinations.add(packet.dst)
    assert destinations == set(SERVER_IPS)


# ----------------------------------------------------------------------
# Response processing and filtering
# ----------------------------------------------------------------------
def test_response_updates_state_and_shadow():
    program, switch = make_program(), make_switch()
    apply(program, switch, response(req_id=1, sid=2, state=STATE_BUSY))
    assert program.state_table.peek(2) == STATE_BUSY
    assert program.shadow_table.peek(2) == STATE_BUSY
    apply(program, switch, response(req_id=2, sid=2, state=STATE_IDLE))
    assert program.state_table.peek(2) == STATE_IDLE
    assert program.shadow_table.peek(2) == STATE_IDLE


def test_faster_then_slower_response_filtering():
    program, switch = make_program(), make_switch()
    faster = response(req_id=7, sid=0)
    slower = response(req_id=7, sid=1)
    action_fast = apply(program, switch, faster)
    assert not action_fast.drop
    action_slow = apply(program, switch, slower)
    assert action_slow.drop
    assert switch.counters.get("nc_filtered") == 1
    # The slot was cleared for reuse: a third response with the same id
    # (impossible in practice, but the register semantics matter) inserts.
    again = apply(program, switch, response(req_id=7, sid=2))
    assert not again.drop


def test_non_cloned_response_not_filtered():
    program, switch = make_program(), make_switch()
    first = response(req_id=3, sid=0, clo=CLO_NOT_CLONED)
    second = response(req_id=3, sid=1, clo=CLO_NOT_CLONED)
    assert not apply(program, switch, first).drop
    assert not apply(program, switch, second).drop
    assert switch.counters.get("nc_filtered") == 0


def test_filtering_disabled_passes_slower_response():
    program, switch = make_program(filtering_enabled=False), make_switch()
    assert not apply(program, switch, response(req_id=7, sid=0)).drop
    assert not apply(program, switch, response(req_id=7, sid=1)).drop


def test_hash_collision_overwrites_and_forwards_old_slower():
    """§3.5: overwrite on collision; a late slower response is forwarded."""
    program, switch = make_program(num_filter_tables=1, filter_slots=1), make_switch()
    apply(program, switch, response(req_id=10, sid=0))  # insert 10
    # A different request's faster response collides and overwrites.
    action = apply(program, switch, response(req_id=20, sid=1))
    assert not action.drop
    assert switch.counters.get("nc_fingerprint_overwrite") == 1
    # Request 10's slower response now finds 20: forwarded (rare miss).
    late = apply(program, switch, response(req_id=10, sid=2))
    assert not late.drop
    # But request 20's slower response is still correctly dropped...
    # no: slot now holds 10 again?  The overwrite semantics replace the
    # slot with the arriving id whenever it differs, so the late
    # response re-inserted 10.  Request 20's slower then overwrites again.
    slower_20 = apply(program, switch, response(req_id=20, sid=0))
    assert not slower_20.drop


def test_distinct_filter_tables_avoid_collision():
    """§3.5: same hash slot, different table index -> no interference."""
    program, switch = make_program(num_filter_tables=2, filter_slots=1), make_switch()
    apply(program, switch, response(req_id=10, sid=0, idx=0))
    action = apply(program, switch, response(req_id=20, sid=1, idx=1))
    assert not action.drop  # different table: insert, not overwrite
    assert switch.counters.get("nc_fingerprint_overwrite") == 0
    assert apply(program, switch, response(req_id=10, sid=1, idx=0)).drop
    assert apply(program, switch, response(req_id=20, sid=0, idx=1)).drop


# ----------------------------------------------------------------------
# matches() gating
# ----------------------------------------------------------------------
def test_matches_requires_netclone_port_and_header():
    program = make_program()
    assert program.matches(request())
    plain = Packet(src=1, dst=2, sport=80, dport=80, size=64)
    assert not program.matches(plain)
    wrong_port = request()
    wrong_port.dport = 1234
    assert not program.matches(wrong_port)


def test_matches_swid_gate_for_multirack():
    program = make_program(switch_id=2)
    assert program.matches(request(swid=0))  # unstamped: process
    assert program.matches(request(swid=2))  # our own stamp: process
    assert not program.matches(request(swid=1))  # another ToR's packet


def test_request_stamps_swid():
    program, switch = make_program(switch_id=5), make_switch()
    packet = request(swid=0)
    apply(program, switch, packet)
    assert packet.nc.swid == 5


# ----------------------------------------------------------------------
# RackSched integration (§3.7)
# ----------------------------------------------------------------------
def test_jsq_falls_back_to_shorter_queue():
    program, switch = make_program(scheduler=SCHED_JSQ), make_switch()
    program.state_table.poke(0, 5)  # queue length 5 at server 0
    program.shadow_table.poke(1, 2)  # queue length 2 at server 1
    packet = request(grp=0)
    action = apply(program, switch, packet)
    assert action.recirculate == []  # not both idle: no clone
    assert packet.dst == SERVER_IPS[1]  # shorter queue wins
    assert switch.counters.get("nc_jsq_second_choice") == 1


def test_jsq_ties_go_to_first_candidate():
    program, switch = make_program(scheduler=SCHED_JSQ), make_switch()
    program.state_table.poke(0, 3)
    program.shadow_table.poke(1, 3)
    packet = request(grp=0)
    apply(program, switch, packet)
    assert packet.dst == SERVER_IPS[0]


def test_netclone_racksched_still_clones_when_both_idle():
    program = NetCloneRackSchedProgram(server_ips=SERVER_IPS)
    switch = make_switch()
    action = apply(program, switch, request(grp=0))
    assert len(action.recirculate) == 1


def test_pure_racksched_never_clones():
    program = RackSchedProgram(server_ips=SERVER_IPS)
    switch = make_switch()
    action = apply(program, switch, request(grp=0))
    assert action.recirculate == []
    program.state_table.poke(0, 9)
    packet = request(grp=0)
    apply(program, switch, packet)
    assert packet.dst == SERVER_IPS[1]


# ----------------------------------------------------------------------
# Configuration and §4.1 shape
# ----------------------------------------------------------------------
def test_program_validation():
    with pytest.raises(PipelineConfigError):
        NetCloneProgram(server_ips=[1])
    with pytest.raises(PipelineConfigError):
        NetCloneProgram(server_ips=SERVER_IPS, num_filter_tables=0)
    with pytest.raises(PipelineConfigError):
        NetCloneProgram(server_ips=SERVER_IPS, scheduler="fifo")


def test_program_uses_seven_stages_with_two_filters():
    program = make_program(num_filter_tables=2)
    assert program.pipeline.stages_used == 7


def test_register_wipe_resets_soft_state_safely():
    program, switch = make_program(), make_switch()
    apply(program, switch, request())
    apply(program, switch, response(req_id=1, sid=0, state=STATE_BUSY))
    for register in program.pipeline.all_registers():
        register.clear()
    program.on_register_wipe()
    # Fresh state: sequence restarts, states read idle, cloning resumes.
    packet = request(grp=0)
    action = apply(program, switch, packet)
    assert packet.nc.req_id == 1
    assert len(action.recirculate) == 1
