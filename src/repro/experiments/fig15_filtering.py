"""Figure 15: impact of redundant response filtering (§5.6.3).

Baseline vs NetClone-without-filtering vs NetClone on Exp(25).
Expected shape: at low load the redundant responses barely matter (the
client has spare receive capacity); as load grows the un-filtered
slower responses eat the client's receive path, and NetClone without
filtering becomes *worse than the Baseline* — the result that
justifies the in-switch filter tables.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import ClusterConfig
from repro.experiments.harness import (
    capacity_rps,
    format_series,
    load_grid,
    scaled_config,
    sweep_schemes,
)
from repro.experiments.registry import register
from repro.experiments.specs import make_synthetic_spec
from repro.metrics.sweep import SweepResult

__all__ = ["collect", "run"]

SCHEMES = ("baseline", "netclone-nofilter", "netclone")

NUM_SERVERS = 6
WORKERS = 15


def collect(
    scale: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> Dict[str, SweepResult]:
    """The three curves keyed by scheme."""
    spec = make_synthetic_spec("exp", mean_us=25.0)
    config = scaled_config(
        ClusterConfig(
            workload=spec,
            topology=topology,
            placement=placement,
            num_servers=NUM_SERVERS,
            workers_per_server=WORKERS,
            seed=seed,
        ),
        scale,
    )
    capacity = capacity_rps(NUM_SERVERS * WORKERS, spec.mean_service_ns)
    loads = load_grid(capacity, scale)
    return sweep_schemes(config, SCHEMES, loads, jobs=jobs)


def run(
    scale: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> str:
    """Run Figure 15 and return the formatted report."""
    series = collect(scale, seed, jobs=jobs, topology=topology, placement=placement)
    points = series["baseline"].points
    high = points[max(0, len(points) - 3)].offered_rps
    low = series["baseline"].points[0].offered_rps
    notes = [
        f"p99 at low load: NetClone w/o filtering "
        f"{series['netclone-nofilter'].p99_at_load(low):.0f} us ~= NetClone "
        f"{series['netclone'].p99_at_load(low):.0f} us (paper: filtering barely "
        f"matters at low load)",
        f"p99 at high load: NetClone w/o filtering "
        f"{series['netclone-nofilter'].p99_at_load(high):.0f} us vs Baseline "
        f"{series['baseline'].p99_at_load(high):.0f} us vs NetClone "
        f"{series['netclone'].p99_at_load(high):.0f} us (paper: w/o filtering "
        f"worse than Baseline at high load)",
    ]
    report = format_series("Figure 15 (redundant response filtering)", series, notes)
    print(report)
    return report


@register("fig15", "ablation: redundant response filtering on/off")
def _run(
    scale: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> str:
    return run(scale, seed, jobs=jobs, topology=topology, placement=placement)
