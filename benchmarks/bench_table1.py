"""Benchmark: derive Table 1 (qualitative comparison matrix)."""

from conftest import run_once

from repro.experiments import table1_comparison


def bench_table1_comparison(benchmark, bench_scale, bench_seed):
    report = run_once(
        benchmark, table1_comparison.run, scale=bench_scale, seed=bench_seed
    )
    assert "Table 1" in report
    assert "Switch" in report
