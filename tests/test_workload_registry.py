"""Tests for the workload registry and the open-loop arrival processes
(MMPP bursts, diurnal multi-tenant waves, drifting-Zipf key churn)."""

import math
import random
import statistics

import pytest

from repro.errors import ExperimentError, WorkloadError
from repro.experiments.common import ClusterConfig, run_point
from repro.experiments.specs import DiurnalSpec, KvSpec, MmppSpec
from repro.experiments.workloads_registry import (
    canonical_workload,
    describe_workloads,
    get_workload,
    make_workload_spec,
    register_workload,
    unregister_workload,
    workload_names,
)
from repro.sim.units import ms
from repro.workloads.mmpp import DiurnalArrivals, MmppArrivals
from repro.workloads.zipf import DriftingZipfGenerator, ZipfGenerator


# ----------------------------------------------------------------------
# Registry surface
# ----------------------------------------------------------------------
def test_registry_lists_builtins():
    names = workload_names()
    for name in ("exp", "bimodal", "mmpp", "diurnal", "kv-drift", "kv-redis"):
        assert name in names
    listing = "\n".join(describe_workloads())
    assert "mmpp" in listing and "diurnal" in listing


def test_registry_aliases_and_canonical_form():
    assert get_workload("bursty") is get_workload("mmpp")
    assert canonical_workload("bursty:burst=4") == "mmpp:burst=4"
    assert canonical_workload("exponential") == "exp"
    with pytest.raises(ExperimentError):
        canonical_workload("no-such-workload")


def test_registry_rejects_unknown_params():
    with pytest.raises(ExperimentError, match="brust"):
        make_workload_spec("mmpp:brust=4")
    with pytest.raises(ExperimentError):
        make_workload_spec("diurnal:amplitude=2.0")  # out of range


def test_registry_register_unregister_round_trip():
    from repro.experiments.workloads_registry import WorkloadDef

    definition = WorkloadDef(
        name="test-only",
        description="registered by the test suite",
        make_spec=lambda params: make_workload_spec("exp", params),
    )
    register_workload(definition)
    try:
        assert "test-only" in workload_names()
        assert make_workload_spec("test-only").name == "Exp(25)"
    finally:
        unregister_workload("test-only")
    assert "test-only" not in workload_names()


def test_make_workload_spec_names():
    assert make_workload_spec("mmpp:burst=6,period_ms=0.5").name == (
        "mmpp(6x,0.1)-Exp(25)"
    )
    assert make_workload_spec("diurnal").name == "diurnal(0.5,2ms)-Exp(25)"
    assert make_workload_spec("kv-drift").name.endswith("-drift10000")
    assert make_workload_spec("exp", {"mean_us": 10}).name == "Exp(10)"


# ----------------------------------------------------------------------
# MMPP arrival process
# ----------------------------------------------------------------------
def test_mmpp_validation():
    rng = random.Random(1)
    for kwargs in (
        {"rate_rps": 0.0},
        {"burst": 1.0},
        {"high_fraction": 0.0},
        {"high_fraction": 1.0},
        {"period_s": 0.0},
    ):
        with pytest.raises(WorkloadError):
            MmppArrivals(rng, **{"rate_rps": 50_000.0, **kwargs})


def test_mmpp_long_run_rate_matches_nominal():
    process = MmppArrivals(random.Random(7), rate_rps=50_000.0, burst=8.0)
    n = 200_000
    total_ns = sum(process.next_gap() for _ in range(n))
    realized = n / (total_ns * 1e-9)
    assert realized == pytest.approx(50_000.0, rel=0.03)


def test_mmpp_is_deterministic_and_burstier_than_poisson():
    gaps_a = [
        MmppArrivals(random.Random(3), rate_rps=50_000.0).next_gap()
        for _ in range(1)
    ]
    process_a = MmppArrivals(random.Random(3), rate_rps=50_000.0)
    process_b = MmppArrivals(random.Random(3), rate_rps=50_000.0)
    gaps_a = [process_a.next_gap() for _ in range(5000)]
    gaps_b = [process_b.next_gap() for _ in range(5000)]
    assert gaps_a == gaps_b
    mean = statistics.fmean(gaps_a)
    cv2 = statistics.pvariance(gaps_a) / mean**2
    assert cv2 > 1.3  # Poisson would sit at ~1.0


def test_mmpp_set_rate_scales_gaps():
    process = MmppArrivals(random.Random(5), rate_rps=10_000.0)
    process.set_rate(100_000.0)
    n = 50_000
    total_ns = sum(process.next_gap() for _ in range(n))
    assert n / (total_ns * 1e-9) == pytest.approx(100_000.0, rel=0.05)


# ----------------------------------------------------------------------
# Diurnal arrival process
# ----------------------------------------------------------------------
def test_diurnal_rate_oscillates_around_base():
    process = DiurnalArrivals(
        random.Random(2), rate_rps=50_000.0, amplitude=0.5, period_s=2e-3
    )
    assert process.rate_at(0.0) == pytest.approx(50_000.0)
    assert process.rate_at(0.5e-3) == pytest.approx(75_000.0)  # peak
    assert process.rate_at(1.5e-3) == pytest.approx(25_000.0)  # trough
    n = 200_000
    total_ns = sum(process.next_gap() for _ in range(n))
    assert n / (total_ns * 1e-9) == pytest.approx(50_000.0, rel=0.05)


def test_diurnal_phase_staggers_tenants():
    base = DiurnalArrivals(random.Random(1), 50_000.0, phase=0.0)
    shifted = DiurnalArrivals(random.Random(1), 50_000.0, phase=0.5)
    # Half a period apart: one tenant peaks while the other troughs.
    assert base.rate_at(0.5e-3) > 50_000.0 > shifted.rate_at(0.5e-3)


def test_diurnal_spec_assigns_golden_ratio_phases():
    spec = DiurnalSpec()
    rng = random.Random(1)
    phases = {
        spec.make_arrival_process(rng, 50_000.0, client_index=i).phase
        for i in range(8)
    }
    assert len(phases) == 8  # no two tenants share a phase


# ----------------------------------------------------------------------
# Drifting Zipf
# ----------------------------------------------------------------------
def test_drifting_zipf_rotates_keyspace():
    rng_a = random.Random(4)
    rng_b = random.Random(4)
    static = ZipfGenerator(num_keys=1000, skew=0.99)
    drifting = DriftingZipfGenerator(num_keys=1000, skew=0.99, drift_period=100)
    before = [drifting.sample_at(rng_a, step) for step in range(100)]
    base = [static.sample(rng_b) for _ in range(100)]
    assert before == base  # first epoch: no rotation yet
    rng_a = random.Random(4)
    rng_b = random.Random(4)
    after = [drifting.sample_at(rng_a, 250) for _ in range(100)]
    shifted = [(static.sample(rng_b) + 2) % 1000 for _ in range(100)]
    assert after == shifted  # epoch 2: hot set rotated by 2


def test_drifting_zipf_validates_period():
    with pytest.raises(WorkloadError):
        DriftingZipfGenerator(num_keys=10, drift_period=0)


def test_kv_spec_drift_period_opts_into_drifting_generator():
    plain = KvSpec()
    drifting = KvSpec(drift_period=500)
    assert not hasattr(plain._zipf, "sample_at")
    assert not plain.name.endswith("-drift500")
    assert hasattr(drifting._zipf, "sample_at")
    assert drifting.name.endswith("-drift500")


# ----------------------------------------------------------------------
# End to end: workload strings through ClusterConfig and the CLI
# ----------------------------------------------------------------------
def _tiny_config(**overrides) -> ClusterConfig:
    base = dict(
        scheme="netclone",
        num_servers=4,
        num_clients=2,
        rate_rps=30_000,
        warmup_ns=ms(1),
        measure_ns=ms(3),
        drain_ns=ms(1),
        seed=21,
    )
    base.update(overrides)
    return ClusterConfig(**base)


def test_cluster_config_resolves_workload_strings():
    config = _tiny_config(workload="mmpp:burst=6,period_ms=0.5")
    assert config.workload.name == "mmpp(6x,0.1)-Exp(25)"
    point = run_point(config)
    assert point.samples > 0
    # Same string, same seed: bit-identical trajectories.
    again = run_point(_tiny_config(workload="mmpp:burst=6,period_ms=0.5"))
    assert again.p99_us == point.p99_us
    # A different workload string is a genuinely different trajectory
    # (burstiness itself is asserted at the process level above).
    poisson = run_point(_tiny_config(workload="exp"))
    assert poisson.offered_rps != point.offered_rps


def test_cluster_config_rejects_unknown_workload_string():
    with pytest.raises(ExperimentError):
        _tiny_config(workload="definitely-not-registered")


def test_cli_lists_workloads(capsys):
    from repro.cli import main

    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "registered workloads:" in out
    for name in ("mmpp", "diurnal", "kv-drift"):
        assert name in out


def test_cli_rejects_workload_flag_on_unaware_harness(capsys):
    from repro.cli import main

    assert main(["fig13", "--workload", "mmpp"]) == 2
    out = capsys.readouterr().out
    assert "no --workload axis" in out
