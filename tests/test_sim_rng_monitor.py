"""Tests for RNG streams, counters, time series and interval monitors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Counter, IntervalMonitor, RngRegistry, TimeSeries, splitmix64
from repro.sim.rng import stream_seed
from repro.sim.units import ms, sec, to_ms, to_sec, to_us, us


def test_splitmix64_known_range_and_determinism():
    a = splitmix64(0)
    b = splitmix64(0)
    assert a == b
    assert 0 <= a < (1 << 64)
    assert splitmix64(1) != a


def test_stream_seed_differs_by_name():
    assert stream_seed(7, "alpha") != stream_seed(7, "beta")


def test_stream_seed_differs_by_root():
    assert stream_seed(7, "alpha") != stream_seed(8, "alpha")


def test_registry_same_name_same_object():
    reg = RngRegistry(123)
    assert reg.stream("x") is reg.stream("x")
    assert reg.numpy_stream("x") is reg.numpy_stream("x")


def test_registry_reproducible_across_instances():
    values_a = [RngRegistry(9).stream("s").random() for _ in range(1)]
    values_b = [RngRegistry(9).stream("s").random() for _ in range(1)]
    assert values_a == values_b


def test_registry_streams_are_independent():
    reg = RngRegistry(5)
    first = reg.stream("a").random()
    # Drawing from stream b must not change what stream a yields next.
    reg2 = RngRegistry(5)
    _ = reg2.stream("b").random()
    first2 = reg2.stream("a").random()
    assert first == first2


def test_fork_changes_streams():
    reg = RngRegistry(5)
    child = reg.fork("child")
    assert reg.stream("a").random() != child.stream("a").random()


@given(st.integers(min_value=0, max_value=(1 << 64) - 1))
@settings(max_examples=200, deadline=None)
def test_property_splitmix_stays_in_64_bits(state):
    assert 0 <= splitmix64(state) < (1 << 64)


def test_counter_basics():
    counter = Counter()
    counter.incr("drops")
    counter.incr("drops", 2)
    assert counter.get("drops") == 3
    assert counter.get("missing") == 0
    assert counter.as_dict() == {"drops": 3}
    counter.reset()
    assert counter.get("drops") == 0


def test_timeseries_records_and_summarises():
    series = TimeSeries("queue")
    assert len(series) == 0
    assert series.mean() != series.mean()  # NaN
    series.record(10, 1.0)
    series.record(20, 3.0)
    assert len(series) == 2
    assert series.mean() == pytest.approx(2.0)
    assert series.last() == 3.0
    times, values = series.as_arrays()
    assert list(times) == [10, 20]
    assert list(values) == [1.0, 3.0]


def test_interval_monitor_bins_and_rates():
    mon = IntervalMonitor(window_ns=sec(1), horizon_ns=sec(5))
    mon.note(ms(500))
    mon.note(sec(1) + 1)
    mon.note(sec(1) + 2)
    mon.note(sec(100))  # clamped into the final bin
    counts = mon.counts()
    assert counts[0] == 1
    assert counts[1] == 2
    assert counts[-1] == 1
    rates = mon.rates_per_second()
    assert rates[1] == pytest.approx(2.0)
    assert mon.window_starts_sec()[1] == pytest.approx(1.0)


def test_interval_monitor_validation():
    with pytest.raises(ValueError):
        IntervalMonitor(window_ns=0, horizon_ns=10)


def test_unit_conversions_roundtrip():
    assert us(25) == 25_000
    assert ms(1.5) == 1_500_000
    assert sec(2) == 2_000_000_000
    assert to_us(us(7)) == pytest.approx(7.0)
    assert to_ms(ms(3)) == pytest.approx(3.0)
    assert to_sec(sec(9)) == pytest.approx(9.0)
