"""Shared client/server application layer.

The open-loop measurement client and the service models are shared by
NetClone and every baseline; only the packet-building strategy (who to
address, whether to duplicate) differs per scheme.
"""

from repro.apps.client import OpenLoopClient
from repro.apps.service import KvService, ServiceModel, SyntheticService

__all__ = ["KvService", "OpenLoopClient", "ServiceModel", "SyntheticService"]
