"""Tests for the PISA switch model: registers, tables, pipeline, switch."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    PipelineConfigError,
    PortError,
    StageAccessError,
    SwitchError,
    TableError,
)
from repro.net import Host, Link, Packet
from repro.sim import Simulator
from repro.switchsim import (
    ControlPlane,
    HashUnit,
    MatchActionTable,
    Pipeline,
    PipelineAction,
    ProgrammableSwitch,
    RegisterArray,
    ResourceModel,
    SwitchProgram,
    crc32_hash,
)


# ----------------------------------------------------------------------
# RegisterArray
# ----------------------------------------------------------------------
def test_register_read_and_rmw():
    reg = RegisterArray("r", size=4, stage=1)
    pipeline = Pipeline()
    pipeline.place_register(reg)
    ctx = pipeline.new_pass()
    old, new = ctx.reg(reg, 2, update=lambda v: v + 5)
    assert (old, new) == (0, 5)
    assert reg.peek(2) == 5


def test_register_second_access_same_pass_raises():
    pipeline = Pipeline()
    reg = pipeline.place_register(RegisterArray("state", size=8, stage=0))
    ctx = pipeline.new_pass()
    ctx.reg(reg, 0)
    with pytest.raises(StageAccessError):
        ctx.reg(reg, 1)


def test_register_ok_across_passes():
    pipeline = Pipeline()
    reg = pipeline.place_register(RegisterArray("state", size=8, stage=0))
    ctx1 = pipeline.new_pass()
    ctx1.reg(reg, 0)
    ctx2 = pipeline.new_pass()
    ctx2.reg(reg, 0)  # fresh pass token: allowed


def test_register_wrong_stage_raises():
    reg = RegisterArray("r", size=4, stage=3)
    with pytest.raises(StageAccessError):
        reg.access(0, stage=1, pass_token=1)


def test_register_index_bounds():
    reg = RegisterArray("r", size=4, stage=0)
    with pytest.raises(StageAccessError):
        reg.access(4, stage=0, pass_token=1)


def test_register_width_masks_values():
    reg = RegisterArray("r", size=1, stage=0, width_bits=8)
    reg.poke(0, 0x1FF)
    assert reg.peek(0) == 0xFF


def test_register_clear_and_sram():
    reg = RegisterArray("r", size=1024, stage=0, width_bits=32, initial=7)
    assert reg.peek(0) == 7
    reg.clear()
    assert reg.peek(1023) == 0
    assert reg.sram_bytes == 1024 * 4


def test_register_validation():
    with pytest.raises(StageAccessError):
        RegisterArray("r", size=0, stage=0)
    with pytest.raises(StageAccessError):
        RegisterArray("r", size=1, stage=-1)
    with pytest.raises(StageAccessError):
        RegisterArray("r", size=1, stage=0, width_bits=12)


# ----------------------------------------------------------------------
# MatchActionTable
# ----------------------------------------------------------------------
def test_table_install_lookup_remove():
    table = MatchActionTable("grp", stage=0)
    table.install(1, (2, 3))
    assert table.lookup(1, stage=0) == (2, 3)
    assert table.lookup(9, stage=0) is None
    assert table.miss_count == 1
    table.remove(1)
    assert 1 not in table


def test_table_wrong_stage_lookup_raises():
    table = MatchActionTable("grp", stage=2)
    with pytest.raises(StageAccessError):
        table.lookup(1, stage=0)


def test_table_capacity_enforced():
    table = MatchActionTable("t", stage=0, max_entries=1)
    table.install(1, "a")
    table.install(1, "b")  # overwrite is fine
    with pytest.raises(TableError):
        table.install(2, "c")


def test_table_remove_missing_raises():
    table = MatchActionTable("t", stage=0)
    with pytest.raises(TableError):
        table.remove(5)


# ----------------------------------------------------------------------
# Pipeline / PassContext
# ----------------------------------------------------------------------
def test_pipeline_feed_forward_enforced():
    pipeline = Pipeline()
    early = pipeline.place_register(RegisterArray("early", size=1, stage=1))
    late = pipeline.place_register(RegisterArray("late", size=1, stage=4))
    ctx = pipeline.new_pass()
    ctx.reg(late, 0)
    with pytest.raises(StageAccessError):
        ctx.reg(early, 0)


def test_pipeline_shadow_table_pattern_works():
    """The paper's trick: state in stage i, shadow copy in stage i+1."""
    pipeline = Pipeline()
    state = pipeline.place_register(RegisterArray("state", size=4, stage=1))
    shadow = pipeline.place_register(RegisterArray("shadow", size=4, stage=2))
    state.poke(0, 1)
    shadow.poke(1, 1)
    ctx = pipeline.new_pass()
    s1, _ = ctx.reg(state, 0)
    s2, _ = ctx.reg(shadow, 1)
    assert (s1, s2) == (1, 1)


def test_pipeline_stage_placement_validated():
    pipeline = Pipeline(num_stages=2)
    with pytest.raises(PipelineConfigError):
        pipeline.place_register(RegisterArray("r", size=1, stage=5))
    with pytest.raises(PipelineConfigError):
        Pipeline(num_stages=0)


def test_pipeline_stages_used():
    pipeline = Pipeline()
    assert pipeline.stages_used == 0
    pipeline.place_register(RegisterArray("r", size=1, stage=6))
    assert pipeline.stages_used == 7


def test_hash_unit_and_crc():
    unit = HashUnit("h", stage=3, buckets=128)
    idx = unit.index(12345)
    assert 0 <= idx < 128
    assert unit.invocations == 1
    assert crc32_hash(12345, 128) == idx
    with pytest.raises(PipelineConfigError):
        crc32_hash(1, 0)


@given(st.integers(min_value=0), st.integers(min_value=1, max_value=1 << 20))
@settings(max_examples=100, deadline=None)
def test_property_crc_hash_in_range(value, buckets):
    assert 0 <= crc32_hash(value, buckets) < buckets


# ----------------------------------------------------------------------
# ProgrammableSwitch forwarding
# ----------------------------------------------------------------------
class SinkHost(Host):
    def __init__(self, sim, name, ip):
        super().__init__(sim, name, ip, tx_cost_ns=0, rx_cost_ns=0)
        self.received = []

    def handle(self, packet):
        self.received.append((self.sim.now, packet))


def wire(sim, switch, host, port):
    link = Link(sim, host, switch, propagation_ns=100, bandwidth_bps=100e9)
    host.attach_link(link)
    switch.connect(port, link)
    switch.install_route(host.ip, port)
    return link


def test_switch_l3_forwarding():
    sim = Simulator()
    switch = ProgrammableSwitch(sim, pipeline_latency_ns=400)
    a = SinkHost(sim, "a", 1)
    b = SinkHost(sim, "b", 2)
    wire(sim, switch, a, 0)
    wire(sim, switch, b, 1)
    a.send(Packet(src=1, dst=2, sport=0, dport=0, size=125))
    sim.run()
    assert len(b.received) == 1
    # 10 ns serialisation + 100 ns prop + 400 ns pipeline + 10 + 100.
    assert b.received[0][0] == 620
    assert switch.counters.get("tx") == 1


def test_switch_no_route_counts():
    sim = Simulator()
    switch = ProgrammableSwitch(sim)
    a = SinkHost(sim, "a", 1)
    wire(sim, switch, a, 0)
    a.send(Packet(src=1, dst=99, sport=0, dport=0, size=64))
    sim.run()
    assert switch.counters.get("no_route") == 1


def test_switch_port_validation():
    sim = Simulator()
    switch = ProgrammableSwitch(sim, num_ports=2)
    a = SinkHost(sim, "a", 1)
    link = Link(sim, a, switch)
    with pytest.raises(PortError):
        switch.connect(5, link)
    switch.connect(1, link)
    with pytest.raises(PortError):
        switch.connect(1, link)
    with pytest.raises(PortError):
        switch.install_route(1, 0)


class DropOddProgram(SwitchProgram):
    """Test program: drops odd sport, recirculates once when asked."""

    def __init__(self):
        self.pipeline = Pipeline()
        self.seen = []

    def matches(self, packet):
        return packet.dport == 7777

    def apply(self, packet, ctx, switch):
        self.seen.append((packet.uid, packet.recirculated))
        action = PipelineAction()
        if packet.sport % 2 == 1:
            action.drop = True
        elif packet.sport == 100 and not packet.recirculated:
            clone = packet.copy()
            action.recirculate.append(clone)
        return action


def test_switch_program_drop_and_passthrough():
    sim = Simulator()
    switch = ProgrammableSwitch(sim)
    program = DropOddProgram()
    switch.install_program(program)
    a = SinkHost(sim, "a", 1)
    b = SinkHost(sim, "b", 2)
    wire(sim, switch, a, 0)
    wire(sim, switch, b, 1)
    a.send(Packet(src=1, dst=2, sport=3, dport=7777, size=64))  # dropped
    a.send(Packet(src=1, dst=2, sport=2, dport=7777, size=64))  # forwarded
    a.send(Packet(src=1, dst=2, sport=2, dport=9999, size=64))  # not matched
    sim.run()
    assert len(b.received) == 2
    assert switch.counters.get("dropped_by_program") == 1


def test_switch_recirculation_reenters_pipeline():
    sim = Simulator()
    switch = ProgrammableSwitch(sim, pipeline_latency_ns=400, recirc_latency_ns=700)
    program = DropOddProgram()
    switch.install_program(program)
    a = SinkHost(sim, "a", 1)
    b = SinkHost(sim, "b", 2)
    wire(sim, switch, a, 0)
    wire(sim, switch, b, 1)
    a.send(Packet(src=1, dst=2, sport=100, dport=7777, size=64))
    sim.run()
    # Original + recirculated copy both reach b.
    assert len(b.received) == 2
    assert [recirc for _, recirc in program.seen] == [False, True]
    assert switch.counters.get("recirculated") == 1


def test_switch_double_program_install_rejected():
    sim = Simulator()
    switch = ProgrammableSwitch(sim)
    switch.install_program(DropOddProgram())
    with pytest.raises(SwitchError):
        switch.install_program(DropOddProgram())


def test_switch_failure_drops_then_recovers_with_wiped_state():
    sim = Simulator()
    switch = ProgrammableSwitch(sim)
    program = DropOddProgram()
    reg = program.pipeline.place_register(RegisterArray("soft", size=4, stage=0))
    switch.install_program(program)
    a = SinkHost(sim, "a", 1)
    b = SinkHost(sim, "b", 2)
    wire(sim, switch, a, 0)
    wire(sim, switch, b, 1)
    reg.poke(0, 42)

    switch.fail()
    a.send(Packet(src=1, dst=2, sport=2, dport=7777, size=64))
    sim.run()
    assert b.received == []
    assert switch.counters.get("rx_dropped_down") == 1

    switch.recover(reinit_delay_ns=1_000)
    assert switch.down  # still re-initialising
    assert reg.peek(0) == 0  # soft state wiped
    sim.run()
    assert not switch.down
    a.send(Packet(src=1, dst=2, sport=2, dport=7777, size=64))
    sim.run()
    assert len(b.received) == 1


def test_control_plane_applies_after_latency_and_serialises():
    sim = Simulator()
    cp = ControlPlane(sim, op_latency_ns=1000, ops_per_second=1e6)
    applied = []
    cp.submit(applied.append, "first")
    cp.submit(applied.append, "second")
    sim.run()
    assert applied == ["first", "second"]
    assert cp.ops_applied == 2
    assert sim.now == 2000  # second op gated by the 1 us inter-op gap


def test_resource_model_accounts_pipeline():
    pipeline = Pipeline()
    pipeline.place_register(RegisterArray("f0", size=1 << 17, stage=5, width_bits=32))
    pipeline.place_register(RegisterArray("f1", size=1 << 17, stage=6, width_bits=32))
    table = pipeline.place_table(MatchActionTable("grp", stage=0))
    table.install(0, (1, 2))
    pipeline.place_hash(HashUnit("h", stage=4, buckets=1 << 17))
    report = ResourceModel().report(pipeline, filter_slots=1 << 18)
    assert report.stages_used == 7
    assert report.register_cells == 1 << 18
    assert report.register_sram_bytes == (1 << 18) * 4
    # 1.0 MiB of 22 MiB ~= 4.55 %; the paper rounds to 1.05 MB / 4.77 %.
    assert 0.04 < report.sram_fraction < 0.05
    assert report.supported_throughput_rps == pytest.approx(5.24e9, rel=0.01)
    assert any("stages" in row for row in report.rows())
