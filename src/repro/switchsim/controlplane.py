"""Switch control plane.

Control-plane operations (installing table entries, removing a failed
server) run on the switch CPU over a slow channel — §3.8 points out
they have *limited update throughput* compared to data-plane register
writes.  The model applies each operation after a configurable latency
and rate-limits them, so experiments that lean on the control plane
(server failure handling, §3.6) pay a realistic cost.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.core import Simulator
from repro.sim.units import ms

__all__ = ["ControlPlane"]


class ControlPlane:
    """Serialised, delayed application of control operations."""

    def __init__(
        self,
        sim: Simulator,
        op_latency_ns: int = ms(1),
        ops_per_second: float = 10_000.0,
    ):
        self.sim = sim
        self.op_latency_ns = op_latency_ns
        self.min_gap_ns = int(1e9 / ops_per_second) if ops_per_second > 0 else 0
        self._free_at = 0
        self.ops_applied = 0

    def submit(self, operation: Callable[..., Any], *args: Any) -> int:
        """Queue ``operation(*args)``; returns the time it will apply."""
        now = self.sim.now
        start = self._free_at if self._free_at > now else now
        apply_at = start + self.op_latency_ns
        self._free_at = start + self.min_gap_ns
        self.sim.call_at(apply_at, self._apply, operation, args)
        return apply_at

    def _apply(self, operation: Callable[..., Any], args: tuple) -> None:
        operation(*args)
        self.ops_applied += 1
