"""Group-ID construction (§3.3).

A group ID names an *ordered* pair of candidate servers.  The paper
uses 2·C(n,2) = n·(n−1) groups — every ordered pair of distinct
servers — because the switch forwards non-cloned requests to the
*first* candidate, so keeping both orders of each pair preserves the
randomness of server selection.  (With only {Srv1, Srv2} and never
{Srv2, Srv1}, all non-cloned requests would herd onto Srv1.)
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ExperimentError
from repro.switchsim.tables import MatchActionTable

__all__ = ["build_group_pairs", "install_group_table"]


def build_group_pairs(num_servers: int) -> List[Tuple[int, int]]:
    """All ordered pairs of distinct server IDs, deterministically.

    Group ID *g* maps to ``pairs[g]``.  Requires at least two servers
    (NetClone needs a pair for redundancy, §5.3.2).
    """
    if num_servers < 2:
        raise ExperimentError("NetClone requires at least two servers")
    pairs = []
    for first in range(num_servers):
        for second in range(num_servers):
            if first != second:
                pairs.append((first, second))
    return pairs


def install_group_table(table: MatchActionTable, num_servers: int) -> int:
    """Install the ordered pairs into the switch group table.

    Returns the number of groups installed (``n * (n - 1)``).
    """
    pairs = build_group_pairs(num_servers)
    for group_id, pair in enumerate(pairs):
        table.install(group_id, pair)
    return len(pairs)
