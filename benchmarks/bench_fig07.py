"""Benchmark: regenerate Figure 7 (synthetic workloads, 4 panels)."""

from conftest import run_once

from repro.experiments import fig07_synthetic


def bench_fig07_synthetic(benchmark, bench_scale, bench_seed):
    report = run_once(
        benchmark, fig07_synthetic.run, scale=bench_scale, seed=bench_seed
    )
    assert "Figure 7" in report
    assert "baseline" in report and "netclone" in report
