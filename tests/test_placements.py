"""The placement layer: policies, registry, per-ToR tables, fig19.

Covers the placement axis end to end:

* policy units — rack-local pairs never cross racks, the <2-live-server
  fallback engages, the weighted knob interpolates, and sampling is
  section-correct;
* registry plumbing — aliases, inline params, and diagnosable errors
  for typos (a bad name or knob must never silently run ``global``);
* cluster integration — per-ToR group tables, clients drawing from
  their local ToR's table, and rack-local placement zeroing trunk
  traffic on spine-leaf at equal load;
* seed bit-identity — explicit ``placement="global"`` reproduces the
  pre-PR golden values on every golden topology;
* fig19 — grid shape and jobs=1 vs jobs=4 determinism.
"""

import pytest
from helpers import assert_points_identical, tiny_config
from test_fabric_invariants import GOLDEN_CONFIGS, GOLDEN_CORE, GOLDEN_EXTRA

from repro.core.placement import (
    GlobalPlacement,
    GroupTable,
    PlacementContext,
    RackLocalPlacement,
    RackWeightedPlacement,
    as_group_table,
)
from repro.errors import ExperimentError
from repro.experiments.common import Cluster, ClusterConfig, run_point
from repro.experiments.placements import (
    PlacementSpec,
    canonical_placement,
    describe_placements,
    get_placement,
    make_placement_policy,
    parse_placement,
    placement_names,
    register_placement,
    unregister_placement,
)


# ----------------------------------------------------------------------
# Policy units
# ----------------------------------------------------------------------
#: (server_racks, num_racks) grids the invariants sweep.
CONTEXTS = [
    ((0, 0, 0), 1),
    ((0, 1, 0, 1), 2),
    ((0, 1, 2, 0, 1, 2), 3),
    ((0, 1, 2, 3, 0, 1, 2, 3), 4),
    ((0, 0, 0, 1), 2),  # lopsided: rack 1 has a single server
]


@pytest.mark.parametrize("server_racks,num_racks", CONTEXTS)
def test_rack_local_pairs_never_cross_racks(server_racks, num_racks):
    ctx = PlacementContext(server_racks=server_racks, num_racks=num_racks)
    policy = RackLocalPlacement()
    for rack in range(num_racks):
        table = policy.group_table(ctx, rack)
        members = ctx.rack_members(rack)
        if len(members) < 2:
            continue  # fallback case, asserted separately below
        for first, second in table.pairs:
            assert server_racks[first] == rack
            assert server_racks[second] == rack
            assert first != second


def test_rack_local_falls_back_to_global_when_rack_is_too_small():
    ctx = PlacementContext(server_racks=(0, 0, 0, 1), num_racks=2)
    local = RackLocalPlacement().group_table(ctx, 1)
    assert local.pairs == GlobalPlacement().group_table(ctx, 0).pairs
    assert local.is_uniform


def test_fallback_respects_liveness_not_just_placement():
    # Rack 1 has two servers but only one alive: still the fallback.
    ctx = PlacementContext(
        server_racks=(0, 0, 1, 1), num_racks=2, live=(True, True, True, False)
    )
    table = RackLocalPlacement().group_table(ctx, 1)
    assert table.pairs == tuple(
        (a, b) for a in (0, 1, 2) for b in (0, 1, 2) if a != b
    )


def test_global_placement_matches_seed_construction():
    from repro.core.groups import build_group_pairs

    ctx = PlacementContext(server_racks=(0, 1, 0, 1), num_racks=2)
    for rack in range(2):
        table = GlobalPlacement().group_table(ctx, rack)
        assert list(table.pairs) == build_group_pairs(4)
        assert table.is_uniform


def test_rack_weighted_extremes_collapse_to_the_pure_policies():
    ctx = PlacementContext(server_racks=(0, 1, 0, 1), num_racks=2)
    p0 = RackWeightedPlacement(p=0.0).group_table(ctx, 0)
    assert p0.pairs == GlobalPlacement().group_table(ctx, 0).pairs
    p1 = RackWeightedPlacement(p=1.0).group_table(ctx, 0)
    assert p1.pairs == RackLocalPlacement().group_table(ctx, 0).pairs
    mid = RackWeightedPlacement(p=0.5).group_table(ctx, 0)
    # Local section first, then the full global set.
    assert mid.split == 2
    assert mid.pairs[: mid.split] == ((0, 2), (2, 0))
    assert mid.pairs[mid.split :] == GlobalPlacement().group_table(ctx, 0).pairs
    assert not mid.is_uniform


class _ScriptedRng:
    """Replays scripted random()/randrange() values and counts calls."""

    def __init__(self, randoms=(), randranges=()):
        self.randoms = list(randoms)
        self.randranges = list(randranges)
        self.randrange_args = []

    def random(self):
        return self.randoms.pop(0)

    def randrange(self, n):
        self.randrange_args.append(n)
        return self.randranges.pop(0)


def test_uniform_tables_spend_exactly_one_randrange():
    table = GroupTable(pairs=((0, 1), (1, 0)), split=2)
    rng = _ScriptedRng(randranges=[1])
    assert table.sample(rng) == 1
    assert rng.randrange_args == [2]  # and no random() call was made


def test_sectioned_tables_mix_between_sections():
    table = GroupTable(pairs=((0, 1), (1, 0), (0, 2), (2, 0)), split=2, p_local=0.5)
    local = table.sample(_ScriptedRng(randoms=[0.4], randranges=[1]))
    assert local == 1  # below p: drawn from the local section
    rest = table.sample(_ScriptedRng(randoms=[0.9], randranges=[1]))
    assert rest == 3  # above p: offset into the fallback section


def test_group_table_validation():
    with pytest.raises(ExperimentError):
        GroupTable(pairs=((0, 1),), split=1)  # one group is not a pair space
    with pytest.raises(ExperimentError):
        GroupTable(pairs=((0, 1), (1, 0)), split=3)
    with pytest.raises(ExperimentError):
        GroupTable(pairs=((0, 1), (1, 0)), split=2, p_local=1.5)
    with pytest.raises(ExperimentError):
        RackWeightedPlacement(p=-0.1)


def test_as_group_table_coerces_plain_pair_sequences():
    table = as_group_table([(0, 1), [1, 0]])
    assert table.pairs == ((0, 1), (1, 0))
    assert table.is_uniform
    assert as_group_table(table) is table


# ----------------------------------------------------------------------
# Registry plumbing and diagnosable errors
# ----------------------------------------------------------------------
def test_builtin_placements_registered():
    assert ("global", "rack-local", "rack-weighted") == placement_names()[:3]
    assert get_placement("uniform").name == "global"
    assert get_placement("local").name == "rack-local"
    assert any("rack-local" in line for line in describe_placements())


def test_parse_and_canonical_placement():
    assert parse_placement("rack-weighted:p=0.7") == ("rack-weighted", {"p": 0.7})
    assert canonical_placement("weighted:p=0.7") == "rack-weighted:p=0.7"
    assert canonical_placement("local") == "rack-local"
    with pytest.raises(ExperimentError, match="malformed placement parameter"):
        parse_placement("rack-weighted:p")


def test_typoed_names_and_params_raise_instead_of_running_global():
    with pytest.raises(ExperimentError, match="unknown placement"):
        ClusterConfig(placement="rack-locall")
    with pytest.raises(ExperimentError, match="unknown rack-weighted placement"):
        ClusterConfig(placement="rack-weighted:prob=0.7")
    with pytest.raises(ExperimentError, match="must be a probability"):
        ClusterConfig(placement="rack-weighted:p=2")
    with pytest.raises(ExperimentError, match="unknown global placement"):
        make_placement_policy("global", {"p": 0.5})


def test_config_normalises_placement_and_merges_inline_params():
    config = tiny_config(placement="weighted:p=0.25")
    assert config.placement == "rack-weighted"
    assert config.placement_params == {"p": 0.25}
    assert tiny_config().placement == "global"


def test_placement_registry_is_open():
    spec = PlacementSpec(
        name="test-everything-rack0",
        description="test-only",
        make_policy=lambda params: RackLocalPlacement(),
    )
    register_placement(spec)
    try:
        assert get_placement("test-everything-rack0") is spec
        with pytest.raises(ExperimentError, match="already registered"):
            register_placement(spec)
    finally:
        unregister_placement("test-everything-rack0")


def test_sweep_workers_reimport_placement_plugin_modules():
    from repro.experiments.executor import SweepExecutor

    assert "repro.experiments.placements" in SweepExecutor._registered_plugin_modules()


# ----------------------------------------------------------------------
# Cluster integration
# ----------------------------------------------------------------------
def spine_leaf_config(placement, racks=2, **overrides):
    return tiny_config(
        placement=placement,
        topology="spine_leaf",
        topology_params={"racks": racks, "spines": 2},
        num_servers=4,
        **overrides,
    )


def test_cluster_installs_per_tor_rack_local_tables():
    cluster = Cluster(spine_leaf_config("rack-local"))
    assert len(cluster.group_tables) == 2
    racks = cluster.topology.racks_of("server", 4)
    for rack, (table, program) in enumerate(
        zip(cluster.group_tables, cluster.programs)
    ):
        assert program.num_groups == table.num_groups == 2
        for first, second in table.pairs:
            assert racks[first] == racks[second] == rack
        # The switch's installed table is the placement-built one.
        assert program.grp_table.entries() == dict(enumerate(table.pairs))


def test_clients_draw_from_their_local_tors_table():
    cluster = Cluster(spine_leaf_config("rack-local", num_clients=2))
    client_racks = cluster.topology.racks_of("client", 2)
    for client, rack in zip(cluster.clients, client_racks):
        assert client.group_table is cluster.group_tables[rack]
        assert client.num_groups == cluster.group_tables[rack].num_groups


def test_rack_local_zeroes_trunk_bytes_at_equal_load():
    # The fig19 acceptance shape, pinned as a fast invariant: same
    # config, same seed, same offered load — only the placement moves.
    global_point = run_point(spine_leaf_config("global"))
    local_point = run_point(spine_leaf_config("rack-local"))
    weighted_point = run_point(spine_leaf_config("rack-weighted:p=0.5"))
    assert global_point.extra["trunk_tx_bytes"] > 0
    assert local_point.extra["trunk_tx_bytes"] == 0.0
    assert (
        local_point.extra["trunk_tx_bytes"]
        < weighted_point.extra["trunk_tx_bytes"]
        < global_point.extra["trunk_tx_bytes"]
    )
    # Locality costs nothing in completed work.
    assert local_point.samples >= 0.95 * global_point.samples


def test_rack_local_on_one_rack_matches_global_bitwise():
    # With a single rack, "the client's rack" is the whole cluster:
    # the policies must be indistinguishable, RNG stream included.
    star_global = run_point(tiny_config(placement="global"))
    star_local = run_point(tiny_config(placement="rack-local"))
    assert_points_identical(star_global, star_local)


def test_scheme_group_pairs_hook_overrides_the_placement_policy():
    from repro.experiments.schemes import get_scheme

    spec = get_scheme("netclone")
    original = spec.group_pairs
    spec.group_pairs = lambda ctx, rack: [(0, 1), (1, 0)]
    try:
        cluster = Cluster(tiny_config())
        assert cluster.program.num_groups == 2
        assert cluster.group_tables[0].pairs == ((0, 1), (1, 0))
    finally:
        spec.group_pairs = original


def test_stale_client_table_falls_back_to_uniform_draws():
    # A count-only control-plane update (the legacy server-failure
    # rebuild) invalidates the cached table; draws must cover the new
    # count.
    cluster = Cluster(tiny_config())
    client = cluster.clients[0]
    assert client.group_table is not None
    client.num_groups = 2  # the legacy count-only update
    seen = {client._pick_group() for _ in range(64)}
    assert seen <= {0, 1}


# ----------------------------------------------------------------------
# Failure-aware placement: rebuilds stay placement-consistent
# ----------------------------------------------------------------------
def _failure_cluster(num_servers, racks=4, placement="rack-local", seed=3):
    from repro.sim.units import ms

    config = tiny_config(
        placement=placement,
        topology="spine_leaf",
        topology_params={"racks": racks, "spines": 2},
        num_servers=num_servers,
        num_clients=4,
        seed=seed,
    )
    cluster = Cluster(config)
    return cluster, cluster.failure_handler(op_latency_ns=ms(1))


def test_rack_local_never_crosses_racks_after_a_failure():
    from repro.sim.units import ms

    # Three servers per rack: one death leaves every rack pair-capable.
    cluster, handler = _failure_cluster(num_servers=12)
    handler.remove_server(0)
    cluster.sim.run(until=ms(2))
    racks = cluster.server_racks
    for rack, program in enumerate(cluster.programs):
        pairs = program.grp_table.entries().values()
        assert pairs  # the rack kept >= 2 live servers
        for first, second in pairs:
            assert racks[first] == racks[second] == rack
            assert 0 not in (first, second)


def test_fallback_rack_returns_to_local_after_restore():
    from repro.sim.units import ms

    # Two servers per rack: killing one drops rack 0 below a pair.
    cluster, handler = _failure_cluster(num_servers=8)
    local_pairs = dict(cluster.programs[0].grp_table.entries())
    handler.remove_server(0)
    cluster.sim.run(until=ms(2))
    # Rack 0 fell back to the global pair set over the survivors...
    fallback = list(cluster.programs[0].grp_table.entries().values())
    racks = cluster.server_racks
    assert any(racks[a] != racks[b] for a, b in fallback)
    assert all(0 not in pair for pair in fallback)
    # ...while every pair-capable rack stayed rack-local.
    for rack in (1, 2, 3):
        for first, second in cluster.programs[rack].grp_table.entries().values():
            assert racks[first] == racks[second] == rack
    restore_at = handler.restore_server(0)
    cluster.sim.run(until=restore_at + 1)
    # Recovery returns rack 0 to its assembly-time rack-local pairs.
    assert cluster.programs[0].grp_table.entries() == local_pairs


def test_rack_local_keeps_trunks_silent_across_kill_and_restore():
    # The fig16(b)/acceptance shape pinned as a fast invariant: with
    # every rack keeping >= 2 live servers, a kill -> rebuild ->
    # restore cycle under rack-local placement never touches a trunk.
    from repro.sim.units import ms

    cluster, handler = _failure_cluster(num_servers=12)
    fabric = cluster.topology
    victim = cluster.servers[0]
    cluster.sim.at(ms(1), fabric.fail_host, victim)
    cluster.sim.at(ms(1), handler.remove_server, 0)
    cluster.sim.at(ms(3), fabric.restore_host, victim)
    cluster.sim.at(ms(3), handler.restore_server, 0)
    cluster.start()
    cluster.run()
    point = cluster.load_point()
    assert point.extra["trunk_tx_bytes"] == 0.0
    assert point.samples > 0
    assert handler.epoch == 2


def test_failure_handler_rejects_programless_and_pinned_schemes():
    from repro.experiments.schemes import get_scheme

    baseline = Cluster(tiny_config(scheme="baseline"))
    with pytest.raises(ExperimentError, match="no switch program"):
        baseline.failure_handler()
    spec = get_scheme("netclone")
    original = spec.group_pairs
    spec.group_pairs = lambda ctx, rack: [(0, 1), (1, 0)]
    try:
        pinned = Cluster(tiny_config())
        with pytest.raises(ExperimentError, match="custom group construction"):
            pinned.failure_handler()
    finally:
        spec.group_pairs = original


# ----------------------------------------------------------------------
# Seed bit-identity: explicit global placement reproduces the goldens
# ----------------------------------------------------------------------
@pytest.mark.parametrize("label", sorted(GOLDEN_CONFIGS))
def test_explicit_global_placement_matches_seed_goldens(label):
    point = run_point(
        tiny_config(placement="global", **GOLDEN_CONFIGS[label])
    )
    got = (
        point.offered_rps, point.throughput_rps, point.p50_us, point.p99_us,
        point.p999_us, point.mean_us, point.samples,
    )
    assert got == GOLDEN_CORE[label]
    for key, value in GOLDEN_EXTRA[label].items():
        assert point.extra[key] == value, key


# ----------------------------------------------------------------------
# fig19 locality grid
# ----------------------------------------------------------------------
def test_fig19_rejects_rackless_topologies():
    from repro.experiments import fig19_locality as fig19

    with pytest.raises(ExperimentError, match="spine_leaf"):
        fig19.collect(topology="star")


def test_fig19_pinned_placement_and_racks_shape_the_grid():
    from repro.experiments.fig19_locality import PLACEMENTS, _placements

    assert _placements(None) == PLACEMENTS
    assert _placements("global") == ("global",)
    assert _placements("local") == ("global", "rack-local")
    assert _placements("rack-weighted:p=0.7") == ("global", "rack-weighted:p=0.7")


@pytest.mark.slow
def test_fig19_grid_parallel_matches_serial():
    from repro.experiments import fig19_locality as fig19

    serial = fig19.collect(scale=0.05, seed=3, jobs=1)
    parallel = fig19.collect(scale=0.05, seed=3, jobs=4)
    assert serial.keys() == parallel.keys()
    for key in serial:
        cells_a, cells_b = serial[key], parallel[key]
        assert [racks for racks, _ in cells_a] == [racks for racks, _ in cells_b]
        for (_, a), (_, b) in zip(cells_a, cells_b):
            assert_points_identical(a, b)


@pytest.mark.slow
def test_fig19_report_runs_and_shows_the_locality_win():
    from repro.experiments.fig19_locality import run

    report = run(scale=0.1, seed=2, jobs=4)
    assert "Figure 19" in report
    assert "rack-local" in report
    assert "rack-aware placement" in report


# ----------------------------------------------------------------------
# fig16 panel (b): server failure × placement sweep
# ----------------------------------------------------------------------
def test_fig16_server_failure_panel_rejects_rackless_topologies():
    from repro.experiments import fig16_switch_failure as fig16

    with pytest.raises(ExperimentError, match="spine_leaf"):
        fig16.collect_server_failure(topology="star")


def test_fig16_pinned_placement_shapes_the_server_failure_sweep():
    from repro.experiments.fig16_switch_failure import SF_PLACEMENTS, _sf_placements

    assert _sf_placements(None) == SF_PLACEMENTS
    assert _sf_placements("global") == ("global",)
    assert _sf_placements("local") == ("global", "rack-local")


def _assert_cells_identical(a, b):
    assert a.keys() == b.keys()
    for key in a:
        if key == "point":
            assert_points_identical(a[key], b[key])
        else:
            assert a[key] == b[key], key


@pytest.mark.slow
def test_fig16_server_failure_sweep_parallel_matches_serial():
    from repro.experiments import fig16_switch_failure as fig16

    serial = fig16.collect_server_failure(scale=0.05, seed=3, jobs=1)
    parallel = fig16.collect_server_failure(scale=0.05, seed=3, jobs=4)
    assert len(serial) == len(parallel) == len(fig16.SF_PLACEMENTS)
    for cell_a, cell_b in zip(serial, parallel):
        _assert_cells_identical(cell_a, cell_b)
    local = next(c for c in serial if c["placement"] == "rack-local")
    assert local["other_rack_tx_bytes"] == 0.0
    assert sum(local["trunk_kb"]) == 0.0
    assert local["table_epoch"] == 2
