"""Figure 9: impact of the number of worker servers.

Baseline vs NetClone on Exp(25) with 2, 4 and 6 worker servers.
Expected shape: throughput scales with the server count for both
schemes; NetClone keeps p99 at or below the Baseline's, except that
with only 2 (and sometimes 4) servers NetClone can be *worse* at very
high load — stale cloning decisions herd clones onto busy servers and
the dropped-clone processing costs show (§5.3.2).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import ClusterConfig
from repro.experiments.harness import (
    capacity_rps,
    format_series,
    load_grid,
    scaled_config,
    sweep_schemes,
)
from repro.experiments.registry import register
from repro.experiments.specs import make_synthetic_spec
from repro.metrics.sweep import SweepResult

__all__ = ["SERVER_COUNTS", "collect", "run"]

SCHEMES = ("baseline", "netclone")
SERVER_COUNTS = (2, 4, 6)
WORKERS = 15


def collect(
    scale: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> Dict[int, Dict[str, SweepResult]]:
    """Curves keyed by server count then scheme."""
    results: Dict[int, Dict[str, SweepResult]] = {}
    spec_factory = lambda: make_synthetic_spec("exp", mean_us=25.0)  # noqa: E731
    for num_servers in SERVER_COUNTS:
        spec = spec_factory()
        config = scaled_config(
            ClusterConfig(
                workload=spec,
                topology=topology,
                placement=placement,
                num_servers=num_servers,
                workers_per_server=WORKERS,
                seed=seed,
            ),
            scale,
        )
        capacity = capacity_rps(num_servers * WORKERS, spec.mean_service_ns)
        loads = load_grid(capacity, scale)
        results[num_servers] = sweep_schemes(config, SCHEMES, loads, jobs=jobs)
    return results


def run(
    scale: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> str:
    """Run Figure 9 and return the formatted report."""
    results = collect(scale, seed, jobs=jobs, topology=topology, placement=placement)
    sections = []
    tput = {
        n: results[n]["netclone"].max_throughput_mrps() for n in SERVER_COUNTS
    }
    for num_servers, series in results.items():
        notes = [
            f"NetClone({num_servers}) max throughput {tput[num_servers]:.2f} MRPS",
        ]
        sections.append(
            format_series(f"Figure 9 ({num_servers} worker servers)", series, notes)
        )
    ordering = " < ".join(f"{tput[n]:.2f}" for n in SERVER_COUNTS)
    sections.append(
        f"scalability: NetClone max throughput grows with servers: {ordering} MRPS\n"
    )
    report = "\n".join(sections)
    print(report)
    return report


@register("fig9", "impact of the number of worker servers (2/4/6)")
def _run(
    scale: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> str:
    return run(scale, seed, jobs=jobs, topology=topology, placement=placement)
