/* C implementation of the two-lane calendar-queue Simulator.
 *
 * Drop-in replacement for repro.sim.core.Simulator (the pure-Python
 * engine stays as the reference implementation and fallback).  The
 * data layout is deliberately identical at the Python level:
 *
 *   - `_tail` is a real Python list of `(time, seq, fn, args)` entry
 *     tuples kept sorted by construction (a C-side head index stands
 *     in for deque.popleft; consumed slots are None-ed out and the
 *     prefix is sliced away amortised-O(1)),
 *   - `_heap` is a real Python list maintained with heapq's invariant,
 *   - `_seq` / `now` are C int64 fields exposed as attributes.
 *
 * Keeping the lanes as genuine Python lists means the fused-delivery
 * fast paths in net/host.py and switchsim/switch.py — which inline the
 * `call_at` push against `sim._tail` / `sim._heap` — keep working
 * unchanged on either engine, and `heapq.heappush` from Python
 * interleaves correctly with C pops (the comparison order is the same
 * numeric `(time, seq)` order).
 *
 * Entry tuples are allocated from the interpreter's pooled small-tuple
 * free list, and the zero-argument `call_after` fast lane reuses the
 * empty-tuple singleton, so steady-state scheduling does no allocator
 * round-trips beyond the entry itself.
 *
 * Ordering contract (identical to the Python engine): events fire in
 * total `(time, seq)` order; seq is unique and monotone across both
 * APIs, so same-instant events are FIFO and payloads are never
 * compared.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

/* Configured once from Python via _ccore.configure(...). */
static PyObject *g_event_handle = NULL;   /* EventHandle class */
static PyObject *g_sched_error = NULL;    /* SchedulingError class */
static PyObject *g_str_cancelled = NULL;
static PyObject *g_str_sim = NULL;
static PyObject *g_str_fn = NULL;
static PyObject *g_str_args = NULL;
static PyObject *g_str_compact = NULL;    /* "COMPACT_THRESHOLD" */

typedef struct {
    PyObject_HEAD
    long long now;
    long long seq;
    long long event_count;
    long long cancelled;
    int running;
    PyObject *heap;          /* list, heapq invariant */
    PyObject *tail;          /* list, sorted; live region starts at tail_head */
    Py_ssize_t tail_head;
} SimObject;

/* ------------------------------------------------------------------ */
/* Entry helpers                                                       */
/* ------------------------------------------------------------------ */

/* Extract (time, seq) from an entry tuple.  Returns 0 on success. */
static int
entry_key(PyObject *entry, long long *time, long long *seq)
{
    PyObject *t, *s;
    if (!PyTuple_CheckExact(entry) || PyTuple_GET_SIZE(entry) != 4) {
        PyErr_SetString(PyExc_TypeError, "scheduler entry is not a 4-tuple");
        return -1;
    }
    t = PyTuple_GET_ITEM(entry, 0);
    s = PyTuple_GET_ITEM(entry, 1);
    *time = PyLong_AsLongLong(t);
    if (*time == -1 && PyErr_Occurred())
        return -1;
    *seq = PyLong_AsLongLong(s);
    if (*seq == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

/* entry a < entry b in (time, seq) order.  Returns -1 on error. */
static int
entry_lt(PyObject *a, PyObject *b)
{
    long long ta, sa, tb, sb;
    if (entry_key(a, &ta, &sa) < 0 || entry_key(b, &tb, &sb) < 0)
        return -1;
    if (ta != tb)
        return ta < tb;
    return sa < sb;
}

/* ------------------------------------------------------------------ */
/* Heap lane (heapq-compatible sift on a PyList)                       */
/* ------------------------------------------------------------------ */

static int
heap_siftdown(PyObject *heap, Py_ssize_t startpos, Py_ssize_t pos)
{
    /* heapq._siftdown: move heap[pos] toward the root. */
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    while (pos > startpos) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        PyObject *parent = PyList_GET_ITEM(heap, parentpos);
        int lt = entry_lt(newitem, parent);
        if (lt < 0) {
            Py_DECREF(newitem);
            return -1;
        }
        if (!lt)
            break;
        Py_INCREF(parent);
        PyList_SetItem(heap, pos, parent);
        pos = parentpos;
    }
    PyList_SetItem(heap, pos, newitem);
    return 0;
}

static int
heap_siftup(PyObject *heap, Py_ssize_t pos)
{
    /* heapq._siftup: move the (possibly out of place) heap[pos] down
     * to a leaf, then back up. */
    Py_ssize_t endpos = PyList_GET_SIZE(heap);
    Py_ssize_t startpos = pos;
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_ssize_t childpos = 2 * pos + 1;
    Py_INCREF(newitem);
    while (childpos < endpos) {
        Py_ssize_t rightpos = childpos + 1;
        if (rightpos < endpos) {
            int lt = entry_lt(PyList_GET_ITEM(heap, childpos),
                              PyList_GET_ITEM(heap, rightpos));
            if (lt < 0) {
                Py_DECREF(newitem);
                return -1;
            }
            if (!lt)
                childpos = rightpos;
        }
        PyObject *child = PyList_GET_ITEM(heap, childpos);
        Py_INCREF(child);
        PyList_SetItem(heap, pos, child);
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    PyList_SetItem(heap, pos, newitem);
    return heap_siftdown(heap, startpos, pos);
}

static int
heap_push(PyObject *heap, PyObject *entry)
{
    if (PyList_Append(heap, entry) < 0)
        return -1;
    return heap_siftdown(heap, 0, PyList_GET_SIZE(heap) - 1);
}

/* Pop the heap minimum.  Returns a new reference, or NULL on error.
 * The heap must be non-empty. */
static PyObject *
heap_pop(PyObject *heap)
{
    Py_ssize_t size = PyList_GET_SIZE(heap);
    PyObject *last, *min;
    last = PyList_GET_ITEM(heap, size - 1);
    Py_INCREF(last);
    if (PyList_SetSlice(heap, size - 1, size, NULL) < 0) {
        Py_DECREF(last);
        return NULL;
    }
    if (size == 1)
        return last;  /* was the only item */
    min = PyList_GET_ITEM(heap, 0);
    Py_INCREF(min);
    PyList_SetItem(heap, 0, last);  /* steals last */
    if (heap_siftup(heap, 0) < 0) {
        Py_DECREF(min);
        return NULL;
    }
    return min;
}

/* Floyd heapify in place. */
static int
heap_heapify(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    Py_ssize_t i;
    for (i = n / 2 - 1; i >= 0; i--) {
        if (heap_siftup(heap, i) < 0)
            return -1;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* Tail lane (sorted list with a C-side head index)                    */
/* ------------------------------------------------------------------ */

/* Drop the consumed [0, tail_head) prefix when it dominates, so memory
 * stays bounded and Python-side `tail[-1]` peeks never see a None.
 * Amortised O(1) per consumed entry. */
static int
tail_compact(SimObject *self)
{
    Py_ssize_t size = PyList_GET_SIZE(self->tail);
    if (self->tail_head == size) {
        if (size && PyList_SetSlice(self->tail, 0, size, NULL) < 0)
            return -1;
        self->tail_head = 0;
        return 0;
    }
    if (self->tail_head >= 64 && self->tail_head * 2 >= size) {
        if (PyList_SetSlice(self->tail, 0, self->tail_head, NULL) < 0)
            return -1;
        self->tail_head = 0;
    }
    return 0;
}

/* Pop the live tail head.  Returns a new reference; never NULL unless
 * an internal error is set.  The live region must be non-empty. */
static PyObject *
tail_pop(SimObject *self)
{
    PyObject *entry = PyList_GET_ITEM(self->tail, self->tail_head);
    Py_INCREF(entry);
    Py_INCREF(Py_None);
    PyList_SetItem(self->tail, self->tail_head, Py_None);
    self->tail_head++;
    if (tail_compact(self) < 0) {
        Py_DECREF(entry);
        return NULL;
    }
    return entry;
}

/* Push an entry back onto the tail front (horizon-crossing restore). */
static int
tail_push_front(SimObject *self, PyObject *entry)
{
    if (self->tail_head > 0) {
        self->tail_head--;
        Py_INCREF(entry);
        PyList_SetItem(self->tail, self->tail_head, entry);
        return 0;
    }
    return PyList_Insert(self->tail, 0, entry);
}

/* ------------------------------------------------------------------ */
/* Scheduling                                                          */
/* ------------------------------------------------------------------ */

/* Route a freshly-built entry to its lane.  Steals no references;
 * `time` must equal the entry's own timestamp. */
static int
lane_push(SimObject *self, PyObject *entry, long long time)
{
    Py_ssize_t size = PyList_GET_SIZE(self->tail);
    if (size > self->tail_head) {
        PyObject *last = PyList_GET_ITEM(self->tail, size - 1);
        long long last_time;
        if (!PyTuple_CheckExact(last) || PyTuple_GET_SIZE(last) != 4) {
            PyErr_SetString(PyExc_TypeError,
                            "scheduler entry is not a 4-tuple");
            return -1;
        }
        last_time = PyLong_AsLongLong(PyTuple_GET_ITEM(last, 0));
        if (last_time == -1 && PyErr_Occurred())
            return -1;
        /* seq is globally increasing, so a time tie always sorts the
         * new entry after the tail's last — time-only compare. */
        if (time >= last_time)
            return PyList_Append(self->tail, entry);
        return heap_push(self->heap, entry);
    }
    return PyList_Append(self->tail, entry);
}

/* Build the 4-tuple entry and push it.  `args` is a borrowed tuple (or
 * Py_None for handle entries); `target` is fn or the EventHandle. */
static int
schedule_entry(SimObject *self, PyObject *time_obj, long long time,
               PyObject *target, PyObject *args)
{
    long long seq = self->seq + 1;
    PyObject *entry, *seq_obj;
    self->seq = seq;
    seq_obj = PyLong_FromLongLong(seq);
    if (seq_obj == NULL)
        return -1;
    entry = PyTuple_New(4);
    if (entry == NULL) {
        Py_DECREF(seq_obj);
        return -1;
    }
    Py_INCREF(time_obj);
    PyTuple_SET_ITEM(entry, 0, time_obj);
    PyTuple_SET_ITEM(entry, 1, seq_obj);
    Py_INCREF(target);
    PyTuple_SET_ITEM(entry, 2, target);
    Py_INCREF(args);
    PyTuple_SET_ITEM(entry, 3, args);
    if (lane_push(self, entry, time) < 0) {
        Py_DECREF(entry);
        return -1;
    }
    Py_DECREF(entry);
    return 0;
}

/* Shared argument unpacking for the four scheduling methods:
 * (when, fn, *args).  Fills *time/*time_obj (new ref) and *extra
 * (new ref, the packed varargs tuple). */
static int
parse_schedule_args(PyObject *const *args, Py_ssize_t nargs,
                    const char *name, PyObject **time_obj,
                    long long *time, PyObject **fn, PyObject **extra)
{
    if (nargs < 2) {
        PyErr_Format(PyExc_TypeError,
                     "%s() requires a time and a callable", name);
        return -1;
    }
    *time = PyLong_AsLongLong(args[0]);
    if (*time == -1 && PyErr_Occurred())
        return -1;
    *time_obj = args[0];
    Py_INCREF(*time_obj);
    *fn = args[1];
    if (nargs == 2) {
        *extra = PyTuple_New(0);  /* the shared empty-tuple singleton */
    }
    else {
        Py_ssize_t i, n = nargs - 2;
        *extra = PyTuple_New(n);
        if (*extra != NULL) {
            for (i = 0; i < n; i++) {
                PyObject *a = args[2 + i];
                Py_INCREF(a);
                PyTuple_SET_ITEM(*extra, i, a);
            }
        }
    }
    if (*extra == NULL) {
        Py_CLEAR(*time_obj);
        return -1;
    }
    return 0;
}

static PyObject *
sim_call_at(SimObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *time_obj, *fn, *extra;
    long long time;
    int rc;
    if (parse_schedule_args(args, nargs, "call_at",
                            &time_obj, &time, &fn, &extra) < 0)
        return NULL;
    if (time < self->now) {
        PyErr_Format(g_sched_error,
                     "cannot schedule at t=%lld which is before now=%lld",
                     time, self->now);
        Py_DECREF(time_obj);
        Py_DECREF(extra);
        return NULL;
    }
    rc = schedule_entry(self, time_obj, time, fn, extra);
    Py_DECREF(time_obj);
    Py_DECREF(extra);
    if (rc < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
sim_call_after(SimObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *time_obj, *fn, *extra;
    long long delay, time;
    int rc;
    if (parse_schedule_args(args, nargs, "call_after",
                            &time_obj, &delay, &fn, &extra) < 0)
        return NULL;
    Py_DECREF(time_obj);  /* delay object; the entry stores now+delay */
    if (delay < 0) {
        PyErr_Format(g_sched_error, "negative delay %lld", delay);
        Py_DECREF(extra);
        return NULL;
    }
    time = self->now + delay;
    time_obj = PyLong_FromLongLong(time);
    if (time_obj == NULL) {
        Py_DECREF(extra);
        return NULL;
    }
    rc = schedule_entry(self, time_obj, time, fn, extra);
    Py_DECREF(time_obj);
    Py_DECREF(extra);
    if (rc < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* Cancellable lane: build an EventHandle and push (time, seq, handle,
 * None).  Shared by at() and schedule(). */
static PyObject *
make_handle_entry(SimObject *self, PyObject *time_obj, long long time,
                  PyObject *fn, PyObject *extra)
{
    PyObject *handle;
    int rc;
    handle = PyObject_CallFunction(g_event_handle, "OOOO",
                                   time_obj, fn, extra, (PyObject *)self);
    if (handle == NULL)
        return NULL;
    rc = schedule_entry(self, time_obj, time, handle, Py_None);
    if (rc < 0) {
        Py_DECREF(handle);
        return NULL;
    }
    return handle;
}

static PyObject *
sim_at(SimObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *time_obj, *fn, *extra, *handle;
    long long time;
    if (parse_schedule_args(args, nargs, "at",
                            &time_obj, &time, &fn, &extra) < 0)
        return NULL;
    if (time < self->now) {
        PyErr_Format(g_sched_error,
                     "cannot schedule at t=%lld which is before now=%lld",
                     time, self->now);
        Py_DECREF(time_obj);
        Py_DECREF(extra);
        return NULL;
    }
    handle = make_handle_entry(self, time_obj, time, fn, extra);
    Py_DECREF(time_obj);
    Py_DECREF(extra);
    return handle;
}

static PyObject *
sim_schedule(SimObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *time_obj, *fn, *extra, *handle;
    long long delay, time;
    if (parse_schedule_args(args, nargs, "schedule",
                            &time_obj, &delay, &fn, &extra) < 0)
        return NULL;
    Py_DECREF(time_obj);
    if (delay < 0) {
        PyErr_Format(g_sched_error, "negative delay %lld", delay);
        Py_DECREF(extra);
        return NULL;
    }
    time = self->now + delay;
    time_obj = PyLong_FromLongLong(time);
    if (time_obj == NULL) {
        Py_DECREF(extra);
        return NULL;
    }
    handle = make_handle_entry(self, time_obj, time, fn, extra);
    Py_DECREF(time_obj);
    Py_DECREF(extra);
    return handle;
}

/* ------------------------------------------------------------------ */
/* Cancellation bookkeeping                                            */
/* ------------------------------------------------------------------ */

/* entry is live iff args is not None, or the handle is not cancelled.
 * Returns 1/0, or -1 on error. */
static int
entry_live(PyObject *entry)
{
    PyObject *args = PyTuple_GET_ITEM(entry, 3);
    PyObject *flag;
    int live;
    if (args != Py_None)
        return 1;
    flag = PyObject_GetAttr(PyTuple_GET_ITEM(entry, 2), g_str_cancelled);
    if (flag == NULL)
        return -1;
    live = !PyObject_IsTrue(flag);
    Py_DECREF(flag);
    return live;
}

static PyObject *
sim_note_cancelled(SimObject *self, PyObject *Py_UNUSED(ignored))
{
    long long threshold = 64;
    Py_ssize_t pending;
    PyObject *thr;
    self->cancelled++;
    thr = PyObject_GetAttr((PyObject *)self, g_str_compact);
    if (thr == NULL)
        return NULL;
    threshold = PyLong_AsLongLong(thr);
    Py_DECREF(thr);
    if (threshold == -1 && PyErr_Occurred())
        return NULL;
    pending = PyList_GET_SIZE(self->heap)
              + PyList_GET_SIZE(self->tail) - self->tail_head;
    if (self->cancelled >= threshold
        && self->cancelled * 2 >= (long long)pending) {
        /* Compact both lanes in place (object identity preserved for
         * any Python code holding sim._tail / sim._heap). */
        PyObject *live = PyList_New(0);
        Py_ssize_t i, n;
        if (live == NULL)
            return NULL;
        n = PyList_GET_SIZE(self->heap);
        for (i = 0; i < n; i++) {
            PyObject *e = PyList_GET_ITEM(self->heap, i);
            int ok = entry_live(e);
            if (ok < 0 || (ok && PyList_Append(live, e) < 0)) {
                Py_DECREF(live);
                return NULL;
            }
        }
        if (PyList_SetSlice(self->heap, 0, n, live) < 0
            || heap_heapify(self->heap) < 0) {
            Py_DECREF(live);
            return NULL;
        }
        if (PyList_SetSlice(live, 0, PyList_GET_SIZE(live), NULL) < 0) {
            Py_DECREF(live);
            return NULL;
        }
        n = PyList_GET_SIZE(self->tail);
        for (i = self->tail_head; i < n; i++) {
            PyObject *e = PyList_GET_ITEM(self->tail, i);
            int ok = entry_live(e);
            if (ok < 0 || (ok && PyList_Append(live, e) < 0)) {
                Py_DECREF(live);
                return NULL;
            }
        }
        if (PyList_SetSlice(self->tail, 0, n, live) < 0) {
            Py_DECREF(live);
            return NULL;
        }
        self->tail_head = 0;
        Py_DECREF(live);
        self->cancelled = 0;
    }
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* Execution                                                           */
/* ------------------------------------------------------------------ */

/* Dispatch one live entry: advance the clock and invoke the callback.
 * Caller owns `entry` and keeps ownership.  Returns 0, or -1 with an
 * exception set. */
static int
dispatch(SimObject *self, PyObject *entry, long long time)
{
    PyObject *args = PyTuple_GET_ITEM(entry, 3);
    PyObject *res;
    self->now = time;
    if (args != Py_None) {
        res = PyObject_Call(PyTuple_GET_ITEM(entry, 2), args, NULL);
    }
    else {
        /* fired: a later cancel() must not count it */
        PyObject *handle = PyTuple_GET_ITEM(entry, 2);
        PyObject *fn, *hargs;
        if (PyObject_SetAttr(handle, g_str_sim, Py_None) < 0)
            return -1;
        fn = PyObject_GetAttr(handle, g_str_fn);
        if (fn == NULL)
            return -1;
        hargs = PyObject_GetAttr(handle, g_str_args);
        if (hargs == NULL) {
            Py_DECREF(fn);
            return -1;
        }
        res = PyObject_Call(fn, hargs, NULL);
        Py_DECREF(fn);
        Py_DECREF(hargs);
    }
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

/* The run loop.  Mirrors the three Python loop shapes exactly
 * (drain / horizon-only / max_events).  Returns -1 with an exception
 * set on callback error; *executed is always valid. */
static int
run_inner(SimObject *self, int has_until, long long until,
          int has_max, long long max_events, long long *executed)
{
    for (;;) {
        PyObject *entry;
        long long time, seq;
        int from_tail;
        Py_ssize_t hsize, tsize;

        if (has_max && *executed >= max_events)
            return 0;

        tsize = PyList_GET_SIZE(self->tail);
        hsize = PyList_GET_SIZE(self->heap);
        if (self->tail_head < tsize) {
            if (hsize) {
                int lt = entry_lt(PyList_GET_ITEM(self->heap, 0),
                                  PyList_GET_ITEM(self->tail, self->tail_head));
                if (lt < 0)
                    return -1;
                from_tail = !lt;
            }
            else
                from_tail = 1;
        }
        else if (hsize)
            from_tail = 0;
        else {
            if (has_until && until > self->now)
                self->now = until;
            return 0;
        }

        if (has_max) {
            /* Peek-then-pop shape: a horizon-crossing entry is left
             * in place, matching the Python max_events loop. */
            entry = from_tail ? PyList_GET_ITEM(self->tail, self->tail_head)
                              : PyList_GET_ITEM(self->heap, 0);
            Py_INCREF(entry);
            if (entry_key(entry, &time, &seq) < 0) {
                Py_DECREF(entry);
                return -1;
            }
            if (PyTuple_GET_ITEM(entry, 3) == Py_None) {
                int live = entry_live(entry);
                if (live < 0) {
                    Py_DECREF(entry);
                    return -1;
                }
                if (!live) {
                    PyObject *popped = from_tail ? tail_pop(self)
                                                 : heap_pop(self->heap);
                    Py_DECREF(entry);
                    if (popped == NULL)
                        return -1;
                    Py_DECREF(popped);
                    if (self->cancelled)
                        self->cancelled--;
                    continue;
                }
            }
            if (has_until && time > until) {
                Py_DECREF(entry);
                self->now = until;
                return 0;
            }
            {
                PyObject *popped = from_tail ? tail_pop(self)
                                             : heap_pop(self->heap);
                if (popped == NULL) {
                    Py_DECREF(entry);
                    return -1;
                }
                Py_DECREF(popped);
            }
        }
        else {
            /* Pop-first shape (drain and horizon-only loops). */
            entry = from_tail ? tail_pop(self) : heap_pop(self->heap);
            if (entry == NULL)
                return -1;
            if (entry_key(entry, &time, &seq) < 0) {
                Py_DECREF(entry);
                return -1;
            }
            if (PyTuple_GET_ITEM(entry, 3) == Py_None) {
                int live = entry_live(entry);
                if (live < 0) {
                    Py_DECREF(entry);
                    return -1;
                }
                if (!live) {
                    Py_DECREF(entry);
                    if (self->cancelled)
                        self->cancelled--;
                    continue;
                }
            }
            if (has_until && time > until) {
                /* Past the horizon: restore it for a later run(). */
                int rc = from_tail ? tail_push_front(self, entry)
                                   : heap_push(self->heap, entry);
                Py_DECREF(entry);
                if (rc < 0)
                    return -1;
                self->now = until;
                return 0;
            }
        }

        (*executed)++;
        if (dispatch(self, entry, time) < 0) {
            Py_DECREF(entry);
            return -1;
        }
        Py_DECREF(entry);
    }
}

static PyObject *
sim_run(SimObject *self, PyObject *args, PyObject *kwargs)
{
    static char *kwlist[] = {"until", "max_events", NULL};
    PyObject *until_obj = Py_None, *max_obj = Py_None;
    long long until = 0, max_events = 0, executed = 0;
    int has_until, has_max, rc;
    if (!PyArg_ParseTupleAndKeywords(args, kwargs, "|OO", kwlist,
                                     &until_obj, &max_obj))
        return NULL;
    has_until = until_obj != Py_None;
    has_max = max_obj != Py_None;
    if (has_until) {
        until = PyLong_AsLongLong(until_obj);
        if (until == -1 && PyErr_Occurred())
            return NULL;
    }
    if (has_max) {
        max_events = PyLong_AsLongLong(max_obj);
        if (max_events == -1 && PyErr_Occurred())
            return NULL;
    }
    self->running = 1;
    rc = run_inner(self, has_until, until, has_max, max_events, &executed);
    self->running = 0;
    self->event_count += executed;
    if (rc < 0)
        return NULL;
    return PyLong_FromLongLong(executed);
}

/* The earliest live entry without popping it.  Mirrors _live_head:
 * discards cancelled heads as a side effect.  Returns a borrowed
 * "which lane" decision via *from_tail and a NEW reference to the
 * entry, or NULL with no exception when drained. */
static PyObject *
live_head(SimObject *self, int *from_tail)
{
    for (;;) {
        Py_ssize_t tsize = PyList_GET_SIZE(self->tail);
        Py_ssize_t hsize = PyList_GET_SIZE(self->heap);
        PyObject *head = NULL;
        if (self->tail_head < tsize) {
            head = PyList_GET_ITEM(self->tail, self->tail_head);
            int live = entry_live(head);
            if (live < 0)
                return NULL;
            if (!live) {
                PyObject *popped = tail_pop(self);
                if (popped == NULL)
                    return NULL;
                Py_DECREF(popped);
                if (self->cancelled)
                    self->cancelled--;
                continue;
            }
        }
        if (hsize) {
            PyObject *hh = PyList_GET_ITEM(self->heap, 0);
            int live = entry_live(hh);
            if (live < 0)
                return NULL;
            if (!live) {
                PyObject *popped = heap_pop(self->heap);
                if (popped == NULL)
                    return NULL;
                Py_DECREF(popped);
                if (self->cancelled)
                    self->cancelled--;
                continue;
            }
            if (head == NULL) {
                *from_tail = 0;
                Py_INCREF(hh);
                return hh;
            }
            int lt = entry_lt(hh, head);
            if (lt < 0)
                return NULL;
            if (lt) {
                *from_tail = 0;
                Py_INCREF(hh);
                return hh;
            }
        }
        if (head == NULL)
            return NULL;  /* drained; no exception */
        *from_tail = 1;
        Py_INCREF(head);
        return head;
    }
}

static PyObject *
sim_step(SimObject *self, PyObject *Py_UNUSED(ignored))
{
    int from_tail = 0;
    long long time, seq;
    PyObject *entry = live_head(self, &from_tail);
    PyObject *popped;
    if (entry == NULL) {
        if (PyErr_Occurred())
            return NULL;
        Py_RETURN_FALSE;
    }
    popped = from_tail ? tail_pop(self) : heap_pop(self->heap);
    if (popped == NULL) {
        Py_DECREF(entry);
        return NULL;
    }
    Py_DECREF(popped);
    if (entry_key(entry, &time, &seq) < 0) {
        Py_DECREF(entry);
        return NULL;
    }
    self->event_count++;
    if (dispatch(self, entry, time) < 0) {
        Py_DECREF(entry);
        return NULL;
    }
    Py_DECREF(entry);
    Py_RETURN_TRUE;
}

static PyObject *
sim_peek(SimObject *self, PyObject *Py_UNUSED(ignored))
{
    int from_tail = 0;
    PyObject *entry = live_head(self, &from_tail);
    PyObject *time;
    if (entry == NULL) {
        if (PyErr_Occurred())
            return NULL;
        Py_RETURN_NONE;
    }
    time = PyTuple_GET_ITEM(entry, 0);
    Py_INCREF(time);
    Py_DECREF(entry);
    return time;
}

/* ------------------------------------------------------------------ */
/* Type plumbing                                                       */
/* ------------------------------------------------------------------ */

static int
sim_init(SimObject *self, PyObject *args, PyObject *kwargs)
{
    if ((args && PyTuple_GET_SIZE(args)) || (kwargs && PyDict_GET_SIZE(kwargs))) {
        PyErr_SetString(PyExc_TypeError, "Simulator() takes no arguments");
        return -1;
    }
    self->now = 0;
    self->seq = 0;
    self->event_count = 0;
    self->cancelled = 0;
    self->running = 0;
    self->tail_head = 0;
    Py_CLEAR(self->heap);
    Py_CLEAR(self->tail);
    self->heap = PyList_New(0);
    self->tail = PyList_New(0);
    if (self->heap == NULL || self->tail == NULL)
        return -1;
    return 0;
}

static int
sim_traverse(SimObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->heap);
    Py_VISIT(self->tail);
    return 0;
}

static int
sim_clear(SimObject *self)
{
    Py_CLEAR(self->heap);
    Py_CLEAR(self->tail);
    return 0;
}

static void
sim_dealloc(SimObject *self)
{
    PyObject_GC_UnTrack(self);
    sim_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
sim_repr(SimObject *self)
{
    Py_ssize_t pending = PyList_GET_SIZE(self->heap)
                         + PyList_GET_SIZE(self->tail) - self->tail_head;
    return PyUnicode_FromFormat("<Simulator now=%lld pending=%zd>",
                                self->now, pending);
}

static PyObject *
sim_get_pending(SimObject *self, void *closure)
{
    return PyLong_FromSsize_t(PyList_GET_SIZE(self->heap)
                              + PyList_GET_SIZE(self->tail)
                              - self->tail_head);
}

static PyObject *
sim_get_event_count(SimObject *self, void *closure)
{
    return PyLong_FromLongLong(self->event_count);
}

static PyMemberDef sim_members[] = {
    {"now", T_LONGLONG, offsetof(SimObject, now), 0,
     "Current simulated time in nanoseconds."},
    {"_seq", T_LONGLONG, offsetof(SimObject, seq), 0, NULL},
    {"_cancelled", T_LONGLONG, offsetof(SimObject, cancelled), 0, NULL},
    {"_event_count", T_LONGLONG, offsetof(SimObject, event_count), 0, NULL},
    {"_running", T_INT, offsetof(SimObject, running), READONLY, NULL},
    {"_heap", T_OBJECT_EX, offsetof(SimObject, heap), READONLY, NULL},
    {"_tail", T_OBJECT_EX, offsetof(SimObject, tail), READONLY, NULL},
    {NULL}
};

static PyGetSetDef sim_getset[] = {
    {"pending", (getter)sim_get_pending, NULL,
     "Number of queue entries, including lazily-cancelled ones.", NULL},
    {"event_count", (getter)sim_get_event_count, NULL,
     "Total number of events executed since construction.", NULL},
    {NULL}
};

static PyMethodDef sim_methods[] = {
    {"call_at", (PyCFunction)(void (*)(void))sim_call_at,
     METH_FASTCALL, "Schedule fn(*args) at absolute time ns (fast path)."},
    {"call_after", (PyCFunction)(void (*)(void))sim_call_after,
     METH_FASTCALL, "Schedule fn(*args) delay ns after now (fast path)."},
    {"at", (PyCFunction)(void (*)(void))sim_at,
     METH_FASTCALL, "Schedule fn(*args) at absolute time ns; cancellable."},
    {"schedule", (PyCFunction)(void (*)(void))sim_schedule,
     METH_FASTCALL, "Schedule fn(*args) delay ns after now; cancellable."},
    {"run", (PyCFunction)(void (*)(void))sim_run,
     METH_VARARGS | METH_KEYWORDS,
     "Run events until the queue drains or a limit is hit."},
    {"step", (PyCFunction)sim_step, METH_NOARGS,
     "Run the single next pending event."},
    {"peek", (PyCFunction)sim_peek, METH_NOARGS,
     "Timestamp of the next live event, or None if drained."},
    {"_note_cancelled", (PyCFunction)sim_note_cancelled, METH_NOARGS, NULL},
    {NULL}
};

static PyTypeObject SimType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ccore.Simulator",
    .tp_basicsize = sizeof(SimObject),
    .tp_itemsize = 0,
    .tp_dealloc = (destructor)sim_dealloc,
    .tp_repr = (reprfunc)sim_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC | Py_TPFLAGS_BASETYPE,
    .tp_doc = "C two-lane calendar-queue discrete-event simulator.",
    .tp_traverse = (traverseproc)sim_traverse,
    .tp_clear = (inquiry)sim_clear,
    .tp_methods = sim_methods,
    .tp_members = sim_members,
    .tp_getset = sim_getset,
    .tp_init = (initproc)sim_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* Module                                                              */
/* ------------------------------------------------------------------ */

static PyObject *
mod_configure(PyObject *module, PyObject *args)
{
    PyObject *handle_cls, *error_cls;
    if (!PyArg_ParseTuple(args, "OO", &handle_cls, &error_cls))
        return NULL;
    Py_INCREF(handle_cls);
    Py_XSETREF(g_event_handle, handle_cls);
    Py_INCREF(error_cls);
    Py_XSETREF(g_sched_error, error_cls);
    Py_RETURN_NONE;
}

static PyMethodDef mod_methods[] = {
    {"configure", mod_configure, METH_VARARGS,
     "configure(EventHandle, SchedulingError): wire the Python classes."},
    {NULL}
};

static struct PyModuleDef ccore_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._ccore",
    .m_doc = "C core for the discrete-event scheduler.",
    .m_size = -1,
    .m_methods = mod_methods,
};

PyMODINIT_FUNC
PyInit__ccore(void)
{
    PyObject *module, *threshold;
    g_str_cancelled = PyUnicode_InternFromString("cancelled");
    g_str_sim = PyUnicode_InternFromString("sim");
    g_str_fn = PyUnicode_InternFromString("fn");
    g_str_args = PyUnicode_InternFromString("args");
    g_str_compact = PyUnicode_InternFromString("COMPACT_THRESHOLD");
    if (!g_str_cancelled || !g_str_sim || !g_str_fn || !g_str_args
        || !g_str_compact)
        return NULL;
    if (PyType_Ready(&SimType) < 0)
        return NULL;
    threshold = PyLong_FromLong(64);
    if (threshold == NULL)
        return NULL;
    if (PyDict_SetItem(SimType.tp_dict, g_str_compact, threshold) < 0) {
        Py_DECREF(threshold);
        return NULL;
    }
    Py_DECREF(threshold);
    module = PyModule_Create(&ccore_module);
    if (module == NULL)
        return NULL;
    Py_INCREF(&SimType);
    if (PyModule_AddObject(module, "Simulator", (PyObject *)&SimType) < 0) {
        Py_DECREF(&SimType);
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
