"""Generator-based simulation processes.

This layers a SimPy-flavoured coroutine model over the callback engine
in :mod:`repro.sim.core`.  A *process* is a generator that yields
:class:`ProcessEvent` objects; the process resumes when the yielded
event fires, receiving the event's value via ``send`` (or the event's
exception via ``throw``).

Example::

    def worker(sim):
        yield Timeout(sim, us(5))
        print("5 microseconds elapsed at", sim.now)

    sim = Simulator()
    Process(sim, worker(sim))
    sim.run()
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import ProcessError
from repro.sim.core import Simulator

__all__ = ["AllOf", "AnyOf", "Interrupt", "Process", "ProcessEvent", "Timeout"]


class Interrupt(Exception):
    """Thrown inside a process when :meth:`Process.interrupt` is called.

    The interrupting party may attach an arbitrary ``cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class ProcessEvent:
    """An occurrence that processes can wait on.

    Events start *pending*, then either *succeed* with a value or
    *fail* with an exception.  Callbacks registered before the event
    triggers are invoked (in registration order) when it does.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_state")

    _PENDING = 0
    _SUCCEEDED = 1
    _FAILED = 2

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.callbacks: List[Callable[[ProcessEvent], None]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._state = self._PENDING

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has succeeded or failed."""
        return self._state != self._PENDING

    @property
    def ok(self) -> bool:
        """Whether the event succeeded."""
        return self._state == self._SUCCEEDED

    @property
    def value(self) -> Any:
        """The success value (or the exception for failed events)."""
        if self._state == self._FAILED:
            return self._exc
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "ProcessEvent":
        """Mark the event successful and dispatch callbacks."""
        if self._state != self._PENDING:
            raise ProcessError(f"{self!r} already triggered")
        self._state = self._SUCCEEDED
        self._value = value
        self._dispatch()
        return self

    def fail(self, exc: BaseException) -> "ProcessEvent":
        """Mark the event failed and dispatch callbacks."""
        if self._state != self._PENDING:
            raise ProcessError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise ProcessError("fail() requires an exception instance")
        self._state = self._FAILED
        self._exc = exc
        self._dispatch()
        return self

    def _dispatch(self) -> None:
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def add_callback(self, callback: Callable[["ProcessEvent"], None]) -> None:
        """Register *callback*; fires immediately if already triggered."""
        if self.triggered:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        states = {0: "pending", 1: "succeeded", 2: "failed"}
        return f"<{type(self).__name__} {states[self._state]}>"


class Timeout(ProcessEvent):
    """An event that succeeds ``delay`` nanoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: Simulator, delay: int, value: Any = None):
        super().__init__(sim)
        self.delay = delay
        sim.call_after(delay, self.succeed, value)


class Process(ProcessEvent):
    """Wraps a generator and drives it through the event loop.

    The process itself is an event: it succeeds with the generator's
    return value, or fails with the exception that escaped it, so
    processes can wait on each other simply by yielding them.
    """

    __slots__ = ("generator", "_waiting_on")

    def __init__(self, sim: Simulator, generator: Generator[ProcessEvent, Any, Any]):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise ProcessError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        self.generator = generator
        self._waiting_on: Optional[ProcessEvent] = None
        # Start on a fresh event-loop turn so construction order does not
        # leak into execution order at time zero.
        sim.call_after(0, self._resume, None, None)

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not finished yet."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process that has not started yet is allowed.
        """
        if self.triggered:
            raise ProcessError("cannot interrupt a finished process")
        target = self._waiting_on
        if target is not None:
            # Detach from the event we were waiting on; it may still
            # trigger later but must not resume us twice.
            try:
                target.callbacks.remove(self._on_event)
            except ValueError:
                pass
            self._waiting_on = None
        self.sim.call_after(0, self._resume, None, Interrupt(cause))

    # -- driving -------------------------------------------------------
    def _on_event(self, event: ProcessEvent) -> None:
        self._waiting_on = None
        if event.ok:
            self._resume(event.value, None)
        else:
            self._resume(None, event.value)

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.triggered:
            return
        try:
            if exc is not None:
                target = self.generator.throw(exc)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except Interrupt as uncaught:
            self.fail(uncaught)
            return
        except Exception as error:
            self.fail(error)
            return
        if not isinstance(target, ProcessEvent):
            self.fail(
                ProcessError(
                    f"process yielded {type(target).__name__}; expected ProcessEvent"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._on_event)


class AnyOf(ProcessEvent):
    """Succeeds when the first of *events* succeeds.

    The value is a list of ``(event, value)`` pairs for every event that
    had triggered by the time the condition fired.  Fails if any child
    fails first.
    """

    __slots__ = ("events",)

    def __init__(self, sim: Simulator, events: Iterable[ProcessEvent]):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            sim.call_after(0, self.succeed, [])
            return
        for event in self.events:
            event.add_callback(self._child_triggered)

    def _child_triggered(self, event: ProcessEvent) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        done = [(ev, ev.value) for ev in self.events if ev.triggered and ev.ok]
        self.succeed(done)


class AllOf(ProcessEvent):
    """Succeeds when every one of *events* has succeeded.

    The value is the list of child values in construction order.  Fails
    as soon as any child fails.
    """

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: Simulator, events: Iterable[ProcessEvent]):
        super().__init__(sim)
        self.events = list(events)
        self._remaining = len(self.events)
        if self._remaining == 0:
            sim.call_after(0, self.succeed, [])
            return
        for event in self.events:
            event.add_callback(self._child_triggered)

    def _child_triggered(self, event: ProcessEvent) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([ev.value for ev in self.events])
