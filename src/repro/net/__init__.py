"""Network substrate: packets, headers, links, NICs, hosts, topologies.

The model is intra-rack Ethernet/IPv4/UDP.  Addresses are stored as
integers on the hot path (see :mod:`addresses`); byte-level codecs for
the Ethernet/IPv4/UDP headers live in :mod:`headers` and are used by
tests and the tracer, not per simulated packet.
"""

from repro.net.addresses import (
    format_ip,
    format_mac,
    ip_to_int,
    mac_to_int,
)
from repro.net.headers import EthernetHeader, IPv4Header, UDPHeader
from repro.net.host import Host
from repro.net.link import Link
from repro.net.nic import Nic
from repro.net.packet import (
    PROTO_TCP,
    PROTO_UDP,
    Packet,
    PacketPool,
)
from repro.net.topology import (
    EcmpSpinePolicy,
    Fabric,
    FlowletSpinePolicy,
    LeastLoadedSpinePolicy,
    SingleRackFabric,
    SpineLeafFabric,
    SpinePolicy,
    StarTopology,
    TwoRackFabric,
    make_spine_policy,
    register_spine_policy,
    spine_policy_names,
    unregister_spine_policy,
)
from repro.net.trace import PacketTracer, TraceRecord

__all__ = [
    "EcmpSpinePolicy",
    "EthernetHeader",
    "Fabric",
    "FlowletSpinePolicy",
    "Host",
    "IPv4Header",
    "LeastLoadedSpinePolicy",
    "Link",
    "Nic",
    "PROTO_TCP",
    "PROTO_UDP",
    "Packet",
    "PacketPool",
    "PacketTracer",
    "SingleRackFabric",
    "SpineLeafFabric",
    "SpinePolicy",
    "StarTopology",
    "TwoRackFabric",
    "TraceRecord",
    "UDPHeader",
    "format_ip",
    "format_mac",
    "ip_to_int",
    "mac_to_int",
    "make_spine_policy",
    "register_spine_policy",
    "spine_policy_names",
    "unregister_spine_policy",
]
