"""Build-at-import machinery for the C scheduler core.

The extension is compiled from ``_ccore.c`` on first import (and again
whenever the source is newer than the built artifact), using the
toolchain Python itself was built with.  No build system, no installed
package: the ``.so`` lands next to the source inside the package and is
gitignored.

Design constraints:

* **Never break the simulator.**  Any failure — no compiler, read-only
  checkout, header mismatch — returns ``None`` and the pure-Python
  engine takes over silently.  ``REPRO_SIM_DEBUG=1`` prints the reason.
* **Parallel-safe.**  Sweep workers may import concurrently; each
  compiles to a private temp file and ``os.replace``s it into place
  atomically, so peers only ever see a complete artifact.
* **Opt-out.**  ``REPRO_PURE_SIM=1`` skips the C engine entirely
  (used by tests that exercise the pure-Python lanes' internals).
"""

from __future__ import annotations

import importlib
import os
import subprocess
import sys
import sysconfig
import tempfile
from pathlib import Path

__all__ = ["load_ccore"]


def _debug(message: str) -> None:
    # Build-time diagnostics toggle: runs only while the C core
    # compiles, never on a simulation path.
    if os.environ.get("REPRO_SIM_DEBUG"):  # detlint: ignore[env-read] -- build diagnostics, not a sim path
        print(f"repro.sim._ccore_build: {message}", file=sys.stderr)


def _compiler() -> list[str]:
    cc = sysconfig.get_config_var("CC") or "cc"
    # CC may carry flags ("gcc -pthread"); keep them.
    return cc.split()


def _build(source: Path, target: Path) -> bool:
    include = sysconfig.get_paths()["include"]
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=str(target.parent))
    os.close(fd)
    cmd = _compiler() + [
        "-O2",
        "-fPIC",
        "-shared",
        "-fno-strict-aliasing",
        f"-I{include}",
        str(source),
        "-o",
        tmp,
    ]
    try:
        proc = subprocess.run(
            cmd, check=False, capture_output=True, text=True, timeout=120
        )
        if proc.returncode != 0:
            _debug(f"compile failed: {proc.stderr.strip()[:2000]}")
            return False
        os.replace(tmp, target)
        return True
    except (OSError, subprocess.SubprocessError) as exc:
        _debug(f"compile error: {exc}")
        return False
    finally:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def load_ccore():
    """Import (building if needed) the ``_ccore`` module, or ``None``."""
    # Engine selection happens once at import; the chosen Simulator
    # class never re-reads the environment.
    if os.environ.get("REPRO_PURE_SIM"):  # detlint: ignore[env-read] -- one-time engine selection at import
        _debug("REPRO_PURE_SIM set; using the pure-Python engine")
        return None
    package_dir = Path(__file__).resolve().parent
    source = package_dir / "_ccore.c"
    if not source.exists():
        _debug("_ccore.c missing")
        return None
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    target = package_dir / f"_ccore{suffix}"
    try:
        stale = (
            not target.exists()
            or target.stat().st_mtime < source.stat().st_mtime
        )
    except OSError:
        stale = True
    if stale and not _build(source, target):
        return None
    try:
        return importlib.import_module("repro.sim._ccore")
    except Exception as exc:  # pragma: no cover - import oddities
        _debug(f"import failed: {exc}")
        return None
