"""Analytic queueing models.

Closed-form results used to sanity-check the simulator (the test suite
compares simulated clusters against these) and to reason about where
cloning pays off:

* M/M/1 and M/M/c (Erlang-C) waiting times,
* the latency distribution of *cloned* exponential service
  (minimum of two draws),
* the C-Clone utilisation doubling and its tipping point.
"""

from repro.analysis.queueing import (
    cclone_effective_utilisation,
    cloned_exponential_p99,
    erlang_c,
    exponential_p99,
    mm1_mean_wait,
    mmc_mean_wait,
)

__all__ = [
    "cclone_effective_utilisation",
    "cloned_exponential_p99",
    "erlang_c",
    "exponential_p99",
    "mm1_mean_wait",
    "mmc_mean_wait",
]
