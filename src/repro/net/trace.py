"""Packet tracing.

A lightweight, optional observer that components call into when a
tracer is installed.  Used by tests to assert on packet-level behaviour
and by the examples to print annotated timelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.net.addresses import format_ip

__all__ = ["PacketTracer", "TraceRecord"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    time_ns: int
    where: str
    event: str
    packet_uid: int
    detail: str = ""

    def __str__(self) -> str:
        return f"[{self.time_ns:>12} ns] {self.where:<14} {self.event:<18} pkt#{self.packet_uid} {self.detail}"


class PacketTracer:
    """Collects :class:`TraceRecord` entries, optionally bounded."""

    def __init__(self, limit: Optional[int] = None):
        self.records: List[TraceRecord] = []
        self.limit = limit

    def note(self, time_ns: int, where: str, event: str, packet: Any, detail: str = "") -> None:
        """Record one event about *packet*."""
        if self.limit is not None and len(self.records) >= self.limit:
            return
        self.records.append(
            TraceRecord(
                time_ns=time_ns,
                where=where,
                event=event,
                packet_uid=getattr(packet, "uid", -1),
                detail=detail,
            )
        )

    def events(self, event: Optional[str] = None, where: Optional[str] = None) -> List[TraceRecord]:
        """Records filtered by event type and/or location."""
        out = self.records
        if event is not None:
            out = [r for r in out if r.event == event]
        if where is not None:
            out = [r for r in out if r.where == where]
        return list(out)

    def format_packet(self, packet: Any) -> str:
        """Human-readable one-liner describing *packet*."""
        return (
            f"{format_ip(packet.src)}:{packet.sport}->"
            f"{format_ip(packet.dst)}:{packet.dport}"
        )

    def __len__(self) -> int:
        return len(self.records)
