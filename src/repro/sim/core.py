"""Core discrete-event engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Entries
are ``(time, seq, handle)`` tuples: ``time`` orders events, ``seq`` is a
monotonically increasing tie-breaker that guarantees FIFO ordering for
events scheduled at the same instant, and ``handle`` carries the
callback.  Cancellation is O(1): the handle is flagged and skipped when
popped (lazy deletion).

The callback API is deliberately minimal because it sits on the hot
path of every simulated packet.  Higher-level conveniences (generator
processes, resources) are layered on top in sibling modules.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SchedulingError

__all__ = ["EventHandle", "Simulator"]


class EventHandle:
    """A scheduled callback that can be cancelled.

    Instances are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.at`.  They are true-ish while still pending.
    """

    __slots__ = ("fn", "args", "cancelled", "time")

    def __init__(self, time: int, fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        self.cancelled = True

    def __bool__(self) -> bool:
        return not self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<EventHandle t={self.time} {name} {state}>"


class Simulator:
    """A discrete-event simulator with an integer nanosecond clock.

    Typical callback-style use::

        sim = Simulator()
        sim.schedule(1_000, print, "one microsecond later")
        sim.run()

    The engine never invents time: the clock only advances to the
    timestamp of the next scheduled event.
    """

    __slots__ = ("now", "_queue", "_seq", "_running", "_event_count")

    def __init__(self) -> None:
        #: Current simulated time in nanoseconds.
        self.now: int = 0
        self._queue: List[Tuple[int, int, EventHandle]] = []
        self._seq = 0
        self._running = False
        self._event_count = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` ns after *now*.

        ``delay`` must be non-negative; a zero delay runs after all
        events already scheduled for the current instant (FIFO).
        """
        if delay < 0:
            raise SchedulingError(f"negative delay {delay!r}")
        return self.at(self.now + delay, fn, *args)

    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run at absolute ``time`` ns."""
        if time < self.now:
            raise SchedulingError(
                f"cannot schedule at t={time} which is before now={self.now}"
            )
        handle = EventHandle(time, fn, args)
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, handle))
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue was
        empty (cancelled entries are discarded silently).
        """
        queue = self._queue
        while queue:
            time, _seq, handle = heapq.heappop(queue)
            if handle.cancelled:
                continue
            self.now = time
            self._event_count += 1
            handle.fn(*handle.args)
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains or a limit is hit.

        :param until: stop (and fast-forward the clock to ``until``)
            once the next event is strictly later than this time.
        :param max_events: stop after this many events have run.
        :returns: the number of events executed by this call.
        """
        queue = self._queue
        executed = 0
        self._running = True
        try:
            while queue:
                if max_events is not None and executed >= max_events:
                    break
                time, _seq, handle = queue[0]
                if handle.cancelled:
                    heapq.heappop(queue)
                    continue
                if until is not None and time > until:
                    self.now = until
                    break
                heapq.heappop(queue)
                self.now = time
                self._event_count += 1
                handle.fn(*handle.args)
                executed += 1
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False
        return executed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of queue entries, including lazily-cancelled ones."""
        return len(self._queue)

    @property
    def event_count(self) -> int:
        """Total number of events executed since construction."""
        return self._event_count

    def peek(self) -> Optional[int]:
        """Timestamp of the next live event, or ``None`` if drained."""
        queue = self._queue
        while queue:
            time, _seq, handle = queue[0]
            if handle.cancelled:
                heapq.heappop(queue)
                continue
            return time
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now} pending={len(self._queue)}>"
