"""Trunk byte timelines and the spine withdraw → fail → restore drill.

:class:`~repro.metrics.links.TrunkByteMonitor` turns per-link byte
counters into per-window deltas; these tests pin its accounting and
then run a scaled-down version of the fig16-style spine recovery
drill from ``examples/switch_failure_drill.py``, asserting the story
the timeline panel tells: traffic drains off a withdrawn spine within
one window, total throughput never gaps (the withdrawal is hitless),
and the trunks carry bytes again after restoration.
"""

import pytest
from helpers import tiny_config

from repro.errors import ExperimentError
from repro.experiments.common import Cluster
from repro.metrics.links import TrunkByteMonitor
from repro.net.link import Link
from repro.sim.core import Simulator
from repro.sim.monitor import IntervalMonitor
from repro.sim.units import ms, us


class _Node:
    """Minimal link endpoint (handles deliveries, drops them)."""

    name = "node"

    def deliver(self, packet, source):  # pragma: no cover - sink
        pass

    def handle(self, packet):  # pragma: no cover - sink
        pass


def test_trunk_byte_monitor_bins_deltas_per_window():
    sim = Simulator()
    a, b = _Node(), _Node()
    link = Link(sim, a, b, propagation_ns=10, bandwidth_bps=1e12, name="t")

    class _Pkt:
        size = 100
        dst = 1

    # Two sends in window 0, one in window 2, none in window 1.
    sim.at(us(1), link.send, _Pkt(), a)
    sim.at(us(2), link.send, _Pkt(), a)
    sim.at(us(25), link.send, _Pkt(), a)
    monitor = TrunkByteMonitor(sim, [link], window_ns=us(10), horizon_ns=us(40))
    sim.run(until=us(50))
    assert monitor.deltas() == {"t": [200, 0, 100, 0]}
    assert monitor.total_per_window() == [200, 0, 100, 0]
    assert len(monitor.window_starts_sec()) == 4


def test_trunk_byte_monitor_zero_fills_unreached_windows():
    sim = Simulator()
    a, b = _Node(), _Node()
    link = Link(sim, a, b, propagation_ns=10, bandwidth_bps=1e12, name="t")
    monitor = TrunkByteMonitor(sim, [link], window_ns=us(10), horizon_ns=us(100))
    sim.run(until=us(35))  # only 3 of 10 windows sampled
    assert monitor.deltas()["t"] == [0] * 10
    with pytest.raises(ExperimentError):
        TrunkByteMonitor(sim, [link], window_ns=0, horizon_ns=us(10))


def test_spine_drill_timeline_is_hitless_and_recovers():
    window = ms(1)
    horizon = ms(12)
    config = tiny_config(
        topology="spine_leaf",
        topology_params={"racks": 2, "spines": 2},
        num_servers=4,
        warmup_ns=0,
        measure_ns=horizon,
        drain_ns=ms(1),
    )
    cluster = Cluster(config)
    fabric = cluster.topology
    completions = IntervalMonitor(window_ns=window, horizon_ns=horizon)
    cluster.recorder.completion_monitor = completions
    trunks = TrunkByteMonitor(cluster.sim, fabric.trunks, window, horizon)
    cluster.sim.at(ms(3), fabric.withdraw_spine, 0)
    cluster.sim.at(ms(6), fabric.spines[0].fail)
    cluster.sim.at(ms(8), fabric.restore_spine, 0, us(100))
    cluster.start()
    cluster.run()

    deltas = trunks.deltas()
    spine0_per_window = [
        sum(deltas[name][w] for name in deltas if name.endswith("s1"))
        for w in range(trunks.num_windows)
    ]
    # Traffic rode spine 0 before the withdrawal and after restoration;
    # between them (one settling window allowed for in-flight drain)
    # its trunks go quiet — including across the power-off.
    assert all(bytes_ > 0 for bytes_ in spine0_per_window[:3])
    assert all(bytes_ == 0 for bytes_ in spine0_per_window[4:8])
    assert any(bytes_ > 0 for bytes_ in spine0_per_window[9:])
    # Hitless: no throughput gap in any window, and the register wipe
    # never produced a duplicate delivery.
    rates = completions.rates_per_second()[: horizon // window]
    assert min(rates) > 0
    assert sum(c.redundant_responses for c in cluster.clients) == 0
