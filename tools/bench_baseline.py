#!/usr/bin/env python
"""Measure, record and police the repo's performance baselines.

Two baselines are kept checked in at the repo root:

* ``BENCH_core.json`` — raw engine throughput: schedule/run cycles of
  bare fast-lane events (``Simulator.call_at``), in events/sec, plus
  the cancel-churn variant (every fourth event a cancellable that gets
  cancelled) exercising lazy deletion and compaction under the fast
  lane's feet.
* ``BENCH_fig18.json`` — end-to-end harness throughput: the fig18
  trunk-saturation grid at benchmark scale with ``fluid=0.0`` (every
  model-eligible cell solved analytically, see :mod:`repro.sim.fluid`),
  in measured points/sec.
* ``BENCH_metrics.json`` — the metrics-collection pipeline of the
  streaming metrics plane: per-worker result payloads serialized,
  merged and reduced to p50/p99/p99.9, once from exact sample arrays
  and once from mergeable latency sketches, plus the sketch ingest
  rate (mirrors ``benchmarks/bench_metrics.py``).  Records the
  sketch-over-exact wall-time speedup and payload shrink factors the
  streaming plane claims (≥5× / ≥10× at 10M samples).

Every ``--update`` also appends one timestamped record per bench to
``BENCH_history.jsonl`` (bench, commit, wall_s_p50, throughput), and
compare mode prints the delta against the last history entry — the
bench trajectory across PRs, not just the latest snapshot.

Modes::

    python tools/bench_baseline.py --update   # re-measure, rewrite both files
    python tools/bench_baseline.py            # re-measure, compare, exit 1 on
                                              # a >30% throughput regression

``REPRO_BENCH_SCALE`` (default 0.25) sets the measurement scale — the
baselines are recorded at 0.25 and compare mode refuses to compare
across scales.  ``REPRO_BENCH_ROUNDS`` (default 3) sets how many times
each measurement repeats; the p50 wall time is what's recorded, which
keeps one background-load spike from failing a run.

Throughput is hardware-bound: after moving to a different CI runner
class or workstation, refresh the files with ``--update`` in the same
change that starts exercising them there.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.sim.core import Simulator  # noqa: E402  (path bootstrap above)

#: Relative throughput drop that fails compare mode.
TOLERANCE = 0.30

#: Fast-lane events per schedule/run cycle at scale 1.0.
CORE_EVENTS = 4_000_000

#: Append-only bench trajectory (one JSON record per line).
HISTORY = "BENCH_history.jsonl"


def _measure_core(scale: float, rounds: int) -> dict:
    n = max(4, int(CORE_EVENTS * scale))
    walls = []
    churn_walls = []
    churn_executed = n - (n + 3) // 4
    for _ in range(rounds):
        sim = Simulator()
        call_at = sim.call_at
        noop = int
        start = time.perf_counter()
        for t in range(n):
            call_at(t, noop)
        executed = sim.run()
        walls.append(time.perf_counter() - start)
        assert executed == n

        # Churn variant: every fourth event goes through the
        # cancellable slow lane and is cancelled before it fires
        # (mirrors benchmarks/bench_core.py::_schedule_run_churn).
        sim = Simulator()
        call_at = sim.call_at
        at = sim.at
        start = time.perf_counter()
        for t in range(n):
            if t & 3:
                call_at(t, noop)
            else:
                at(t, noop).cancel()
        executed = sim.run()
        churn_walls.append(time.perf_counter() - start)
        assert executed == churn_executed
    wall = statistics.median(walls)
    churn_wall = statistics.median(churn_walls)
    return {
        "bench": "core",
        "scale": scale,
        "events": n,
        "rounds": rounds,
        "wall_s_p50": round(wall, 4),
        "events_per_sec": round(n / wall, 1),
        "churn_wall_s_p50": round(churn_wall, 4),
        "churn_events_per_sec": round(churn_executed / churn_wall, 1),
    }


def _measure_fig18(scale: float, seed: int, rounds: int) -> dict:
    from repro.experiments import fig18_trunk_saturation

    walls = []
    points = 0
    for _ in range(rounds):
        start = time.perf_counter()
        results = fig18_trunk_saturation.collect(scale=scale, seed=seed, fluid=0.0)
        walls.append(time.perf_counter() - start)
        points = sum(len(cells) for cells in results.values())
    wall = statistics.median(walls)
    return {
        "bench": "fig18",
        "scale": scale,
        "seed": seed,
        "fluid": 0.0,
        "points": points,
        "rounds": rounds,
        "wall_s_p50": round(wall, 2),
        "points_per_sec": round(points / wall, 4),
    }


#: Metrics-pipeline samples per round at scale 1.0 (the issue's
#: 10M-sample sweep); the default 0.25 scale measures 2.5M.
METRICS_SAMPLES = 10_000_000


def _metrics_shards(n: int, workers: int, seed: int):
    """Per-worker int64 latency shards (exponential ns, mean 25 µs);
    mirrors ``benchmarks/bench_metrics.py::_make_shards``."""
    import numpy as np

    rng = np.random.default_rng(seed)
    samples = (rng.exponential(25_000.0, n) + 1.0).astype(np.int64)
    return np.array_split(samples, workers)


def _metrics_collect_exact(shards) -> dict:
    """Mirrors ``benchmarks/bench_metrics.py::_collect_exact``."""
    import numpy as np

    from repro.metrics.latency import percentile

    payloads = [shard.tobytes() for shard in shards]
    merged = np.concatenate(
        [np.frombuffer(payload, dtype=np.int64) for payload in payloads]
    )
    return {
        "payload_bytes": sum(len(payload) for payload in payloads),
        "p50": percentile(merged, 50),
        "p99": percentile(merged, 99),
        "p999": percentile(merged, 99.9),
    }


def _metrics_collect_sketch(sketches) -> dict:
    """Mirrors ``benchmarks/bench_metrics.py::_collect_sketch``."""
    from repro.metrics.sketch import LatencySketch

    payloads = [sketch.to_bytes() for sketch in sketches]
    merged = LatencySketch.from_bytes(payloads[0])
    for payload in payloads[1:]:
        merged.merge(LatencySketch.from_bytes(payload))
    return {
        "payload_bytes": sum(len(payload) for payload in payloads),
        "p50": merged.quantile(50),
        "p99": merged.quantile(99),
        "p999": merged.quantile(99.9),
    }


#: Sketch collection finishes in well under a millisecond; running it
#: this many times per round keeps timer noise out of the recorded rate.
_METRICS_SKETCH_ITERS = 20


def _measure_metrics(scale: float, seed: int, rounds: int) -> dict:
    from repro.metrics.sketch import LatencySketch

    n = max(4, int(METRICS_SAMPLES * scale))
    shards = _metrics_shards(n, workers=4, seed=seed)
    # Backends as they exist when a point finishes: recording happens
    # during the simulation in both modes, so only collection is timed.
    sketches = []
    ingest_walls = []
    for _ in range(rounds):
        sketches = []
        start = time.perf_counter()
        for shard in shards:
            sketch = LatencySketch()
            sketch.add_many(shard)
            sketches.append(sketch)
        ingest_walls.append(time.perf_counter() - start)
    exact_walls, sketch_walls = [], []
    exact = sketch = None
    for _ in range(rounds):
        start = time.perf_counter()
        exact = _metrics_collect_exact(shards)
        exact_walls.append(time.perf_counter() - start)
        start = time.perf_counter()
        for _ in range(_METRICS_SKETCH_ITERS):
            sketch = _metrics_collect_sketch(sketches)
        sketch_walls.append((time.perf_counter() - start) / _METRICS_SKETCH_ITERS)
    exact_wall = statistics.median(exact_walls)
    sketch_wall = statistics.median(sketch_walls)
    ingest_wall = statistics.median(ingest_walls)
    for q in ("p50", "p99", "p999"):
        drift = abs(sketch[q] - exact[q]) / exact[q]
        assert drift <= 0.0101, f"sketch {q} drifted {drift:.2%} from exact"
    return {
        "bench": "metrics",
        "scale": scale,
        "samples": n,
        "workers": 4,
        "rounds": rounds,
        "wall_s_p50": round(exact_wall, 4),
        "sketch_wall_s_p50": round(sketch_wall, 6),
        "ingest_wall_s_p50": round(ingest_wall, 4),
        "sketch_collects_per_sec": round(1.0 / sketch_wall, 1),
        "exact_samples_per_sec": round(n / exact_wall, 1),
        "ingest_samples_per_sec": round(n / ingest_wall, 1),
        "collect_speedup": round(exact_wall / sketch_wall, 1),
        "exact_payload_bytes": exact["payload_bytes"],
        "sketch_payload_bytes": sketch["payload_bytes"],
        "payload_shrink": round(exact["payload_bytes"] / sketch["payload_bytes"], 1),
    }


BASELINES = (
    ("BENCH_core.json", ("events_per_sec", "churn_events_per_sec"), _measure_core),
    ("BENCH_fig18.json", ("points_per_sec",), _measure_fig18),
    (
        "BENCH_metrics.json",
        ("sketch_collects_per_sec", "exact_samples_per_sec", "ingest_samples_per_sec"),
        _measure_metrics,
    ),
)


def _compare(baseline: dict, measured: dict, rate_keys: tuple) -> list:
    """Error strings where *measured* regresses past tolerance."""
    if baseline.get("scale") != measured["scale"]:
        return [
            f"scale mismatch: baseline recorded at {baseline.get('scale')}, "
            f"measured at {measured['scale']} (set REPRO_BENCH_SCALE to match)"
        ]
    errors = []
    for rate_key in rate_keys:
        if rate_key not in baseline:
            errors.append(f"no checked-in {rate_key} (run --update)")
            continue
        old = float(baseline[rate_key])
        new = float(measured[rate_key])
        floor = old * (1.0 - TOLERANCE)
        if new < floor:
            errors.append(
                f"{rate_key} regressed {1.0 - new / old:.1%}: "
                f"{new:,.1f} vs baseline {old:,.1f} "
                f"(floor {floor:,.1f} at {TOLERANCE:.0%} tolerance)"
            )
    return errors


def _git_commit() -> str:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO, capture_output=True, text=True, check=True,
        )
        return proc.stdout.strip() or "unknown"
    except Exception:
        return "unknown"


def _history_append(measured: dict, rate_keys: tuple) -> None:
    """Append one trajectory record for *measured* to the history file."""
    record = {
        "ts": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "commit": _git_commit(),
        "bench": measured["bench"],
        "scale": measured["scale"],
        "wall_s_p50": measured["wall_s_p50"],
        "throughput": measured[rate_keys[0]],
    }
    for rate_key in rate_keys[1:]:
        record[rate_key] = measured[rate_key]
    with open(REPO / HISTORY, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record) + "\n")


def _history_last(bench: str, scale: float) -> dict | None:
    """The most recent history record for *bench* at *scale*, if any."""
    path = REPO / HISTORY
    if not path.exists():
        return None
    last = None
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if record.get("bench") == bench and record.get("scale") == scale:
            last = record
    return last


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the checked-in baselines instead of comparing "
             "(also appends a record per bench to BENCH_history.jsonl)",
    )
    parser.add_argument(
        "--scale", type=float,
        default=float(os.environ.get("REPRO_BENCH_SCALE", "0.25")),
    )
    parser.add_argument(
        "--seed", type=int,
        default=int(os.environ.get("REPRO_BENCH_SEED", "1")),
    )
    parser.add_argument(
        "--rounds", type=int,
        default=int(os.environ.get("REPRO_BENCH_ROUNDS", "3")),
    )
    parser.add_argument(
        "--out", type=Path, default=None, metavar="DIR",
        help="also write the freshly measured JSONs into DIR "
             "(CI uploads these as the run's artifact)",
    )
    args = parser.parse_args(argv)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)

    failures = []
    for filename, rate_keys, measure in BASELINES:
        path = REPO / filename
        if measure is _measure_core:
            measured = measure(args.scale, args.rounds)
        else:
            measured = measure(args.scale, args.seed, args.rounds)
        rates = ", ".join(f"{key}={measured[key]:,}" for key in rate_keys)
        print(
            f"{filename}: {rates} "
            f"(p50 wall {measured['wall_s_p50']}s over {args.rounds} rounds)"
        )
        if args.out is not None:
            (args.out / filename).write_text(json.dumps(measured, indent=2) + "\n")
        if args.update:
            path.write_text(json.dumps(measured, indent=2) + "\n")
            _history_append(measured, rate_keys)
            print(f"  wrote {path.relative_to(REPO)} (+ {HISTORY} record)")
            continue
        if not path.exists():
            failures.append(f"{filename}: no checked-in baseline (run --update)")
            continue
        baseline = json.loads(path.read_text())
        errors = _compare(baseline, measured, rate_keys)
        for error in errors:
            failures.append(f"{filename}: {error}")
        if not errors:
            primary = rate_keys[0]
            old = float(baseline[primary])
            print(f"  ok vs baseline {old:,} ({measured[primary] / old:.2f}x)")
        previous = _history_last(measured["bench"], args.scale)
        if previous and "throughput" in previous:
            prior = float(previous["throughput"])
            now = float(measured[rate_keys[0]])
            print(
                f"  history: {now:,} vs {prior:,} at "
                f"{previous.get('commit', '?')} {previous.get('ts', '?')} "
                f"({now / prior:.2f}x)"
            )

    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
