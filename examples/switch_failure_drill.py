#!/usr/bin/env python3
"""Failure drills: ToR power cycle, spine flap, server fail→restore (§3.6).

Drill 1 — the paper's Figure 16 scenario: NetClone keeps only *soft*
state in the switch — server states, the request-ID sequence, and
filter-table fingerprints.  The drill kills the ToR at t = 200 ms,
brings it back at t = 280 ms with every register wiped, and shows
(a) the throughput gap and recovery and (b) that the wipe causes no
misbehaviour: no duplicate deliveries, no stuck requests, service
simply resumes.

Drill 2 — a fig16-style *recovery timeline* on a spine-leaf fabric:
spine 0 is withdrawn (hitless route update) at t = 150 ms, powered
off at t = 250 ms, and restored at t = 350 ms.  The per-window panel
pairs client throughput with per-trunk byte counters
(:class:`repro.metrics.links.TrunkByteMonitor`): traffic drains off
the withdrawn spine's trunks onto its sibling within one window,
rides out the power-off without a throughput gap, and spreads back
after restoration.

Drill 3 — the §3.6 *server* failure path, exercised the same way the
first two drills exercise switches: on a two-rack spine-leaf running
``rack-local`` placement, a server is powered off at t = 150 ms
(access link down + ``ServerFailureHandler.remove_server``) and
restored at t = 300 ms (``restore_server``).  The control-plane
rebuild is placement-consistent — every ToR gets a fresh rack-local
group table over the live servers, stamped with a new epoch and
pushed to its rack's clients — so the trunks stay silent through the
whole fail → rebuild → restore cycle.

Run:  python examples/switch_failure_drill.py
"""

# Each drill is a catalog scenario (repro.scenarios.catalog) executed
# through the declarative runner: the timed events, checkpoints and
# invariant checks live in the spec, and this script only renders the
# per-window panels from the returned ScenarioRun.  Every run is
# gated on the invariant library — a duplicate delivery, a stuck
# request or a clone escaping its rack fails the drill loudly.

from repro.scenarios import ScenarioRun, get_scenario, run_scenario
from repro.sim.units import ms

FAIL_AT = ms(200)
RECOVER_AT = ms(280)
REINIT = ms(60)
HORIZON = ms(600)


def _enforce(run: ScenarioRun) -> None:
    """Die loudly when any applicable invariant failed."""
    if not run.report.passed:
        raise SystemExit(run.report.summary())


def tor_drill() -> None:
    """Drill 1: ToR power cycle (the paper's Figure 16)."""
    print("== Drill 1: ToR power cycle (registers wiped) ==")
    run = run_scenario(get_scenario("tor-power-cycle"))
    monitor = run.completions

    print("time(ms)  throughput(KRPS)")
    for start_s, rate in zip(monitor.window_starts_sec(), monitor.rates_per_second()):
        start_ms = start_s * 1e3
        if start_ms >= HORIZON / ms(1):
            break
        bar = "#" * int(rate / 4e3)
        marker = ""
        if FAIL_AT <= start_ms * ms(1) < FAIL_AT + ms(20):
            marker = "  <- switch stopped"
        elif RECOVER_AT + REINIT <= start_ms * ms(1) < RECOVER_AT + REINIT + ms(20):
            marker = "  <- back online (registers wiped)"
        print(f"{start_ms:7.0f}  {rate / 1e3:8.1f} {bar}{marker}")

    end = run.end
    print()
    print(f"packets dropped while down : {end['switch_drops_down']}")
    print(f"duplicate deliveries after the wipe : {end['redundant']}  (soft state only)")
    print(f"sequence register restarted at : {end['seq_register']} "
          f"(safe: earlier IDs have long completed)")
    _enforce(run)


WITHDRAW_AT = ms(150)
POWER_OFF_AT = ms(250)
RESTORE_AT = ms(350)
SPINE_HORIZON = ms(500)
WINDOW = ms(25)


def spine_drill() -> None:
    """Drill 2: withdraw → fail → restore a spine, with a trunk timeline."""
    print("== Drill 2: spine withdraw -> fail -> restore (recovery timeline) ==")
    run = run_scenario(get_scenario("spine-flap"))
    monitor = run.completions
    trunks = run.trunks

    deltas = trunks.deltas()
    spine0 = [name for name in deltas if name.endswith("s1")]
    spine1 = [name for name in deltas if name.endswith("s2")]
    print("time(ms)  tput(KRPS)  spine1_KB  spine2_KB")
    rates = monitor.rates_per_second()
    for w, start_s in enumerate(trunks.window_starts_sec()):
        start_ms = start_s * 1e3
        s0_kb = sum(deltas[name][w] for name in spine0) / 1e3
        s1_kb = sum(deltas[name][w] for name in spine1) / 1e3
        marker = ""
        if WITHDRAW_AT <= start_ms * ms(1) < WITHDRAW_AT + WINDOW:
            marker = "  <- spine 1 withdrawn (hitless)"
        elif POWER_OFF_AT <= start_ms * ms(1) < POWER_OFF_AT + WINDOW:
            marker = "  <- spine 1 powered off"
        elif RESTORE_AT <= start_ms * ms(1) < RESTORE_AT + WINDOW:
            marker = "  <- spine 1 restored"
        print(
            f"{start_ms:7.0f}  {rates[w] / 1e3:9.1f}  {s0_kb:9.1f}  {s1_kb:9.1f}{marker}"
        )
    print()
    print(f"duplicate deliveries across the flap : {run.end['redundant']}")
    print("hitless: the withdrawn spine's trunks drain within one window "
          "while total throughput holds")
    _enforce(run)


SERVER_KILL_AT = ms(150)
SERVER_RESTORE_AT = ms(300)
SERVER_HORIZON = ms(450)
SERVER_VICTIM = 0


def server_drill() -> None:
    """Drill 3: kill and restore a server under rack-local placement."""
    print("== Drill 3: server fail -> placement-aware rebuild -> restore ==")
    run = run_scenario(get_scenario("server-fail-restore"))
    monitor = run.completions
    trunks = run.trunks

    rates = monitor.rates_per_second()
    trunk_kb = trunks.total_per_window()
    print("time(ms)  tput(KRPS)  trunk_KB")
    for w, start_s in enumerate(trunks.window_starts_sec()):
        start_ms = start_s * 1e3
        marker = ""
        if SERVER_KILL_AT <= start_ms * ms(1) < SERVER_KILL_AT + WINDOW:
            marker = "  <- srv1 powered off + removed (control plane)"
        elif SERVER_RESTORE_AT <= start_ms * ms(1) < SERVER_RESTORE_AT + WINDOW:
            marker = "  <- srv1 restored (rack back to rack-local)"
        print(
            f"{start_ms:7.0f}  {rates[w] / 1e3:9.1f}  {trunk_kb[w] / 1e3:8.1f}{marker}"
        )
    end = run.end
    print()
    print(f"table epoch after fail + restore : {end['handler_epoch']} "
          f"(clients swap tables by epoch, never by size)")
    print(f"trunk bytes across the whole drill : {sum(trunk_kb)} "
          f"(rack-local rebuilds kept every clone in-rack)")
    print(f"victim requests accepted : {end['server_accepted'][SERVER_VICTIM]} "
          f"(steering stopped after the rebuild, resumed after restore)")
    _enforce(run)


def main() -> None:
    print(__doc__)
    tor_drill()
    print()
    spine_drill()
    print()
    server_drill()


if __name__ == "__main__":
    main()
