"""Byte-exact header codecs for Ethernet, IPv4 and UDP.

These are not used per simulated packet (the simulator works on the
slotted :class:`repro.net.packet.Packet`); they pin down the wire
format the system would use on a real network, and the test suite
round-trips them to prove the encodings are self-consistent.  The
IPv4 checksum is computed for real.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import CodecError

__all__ = ["EthernetHeader", "IPv4Header", "UDPHeader", "internet_checksum"]

ETHERTYPE_IPV4 = 0x0800


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones-complement checksum over *data*."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


@dataclass
class EthernetHeader:
    """14-byte Ethernet II header."""

    dst_mac: int
    src_mac: int
    ethertype: int = ETHERTYPE_IPV4

    WIRE_SIZE = 14

    def pack(self) -> bytes:
        """Encode to 14 bytes."""
        if not 0 <= self.dst_mac < (1 << 48) or not 0 <= self.src_mac < (1 << 48):
            raise CodecError("MAC address out of range")
        return (
            self.dst_mac.to_bytes(6, "big")
            + self.src_mac.to_bytes(6, "big")
            + struct.pack("!H", self.ethertype)
        )

    @classmethod
    def unpack(cls, data: bytes) -> "EthernetHeader":
        """Decode from at least 14 bytes."""
        if len(data) < cls.WIRE_SIZE:
            raise CodecError(f"Ethernet header needs 14 bytes, got {len(data)}")
        dst = int.from_bytes(data[0:6], "big")
        src = int.from_bytes(data[6:12], "big")
        (ethertype,) = struct.unpack("!H", data[12:14])
        return cls(dst_mac=dst, src_mac=src, ethertype=ethertype)


@dataclass
class IPv4Header:
    """20-byte IPv4 header (no options)."""

    src: int
    dst: int
    protocol: int
    total_length: int
    ttl: int = 64
    identification: int = 0
    dscp: int = 0

    WIRE_SIZE = 20

    def pack(self) -> bytes:
        """Encode to 20 bytes with a valid header checksum."""
        if not 0 <= self.src < (1 << 32) or not 0 <= self.dst < (1 << 32):
            raise CodecError("IPv4 address out of range")
        if not 0 <= self.total_length < (1 << 16):
            raise CodecError("IPv4 total_length out of range")
        version_ihl = (4 << 4) | 5
        without_checksum = struct.pack(
            "!BBHHHBBH4s4s",
            version_ihl,
            self.dscp << 2,
            self.total_length,
            self.identification,
            0,  # flags / fragment offset
            self.ttl,
            self.protocol,
            0,  # checksum placeholder
            self.src.to_bytes(4, "big"),
            self.dst.to_bytes(4, "big"),
        )
        checksum = internet_checksum(without_checksum)
        return without_checksum[:10] + struct.pack("!H", checksum) + without_checksum[12:]

    @classmethod
    def unpack(cls, data: bytes) -> "IPv4Header":
        """Decode from at least 20 bytes, verifying the checksum."""
        if len(data) < cls.WIRE_SIZE:
            raise CodecError(f"IPv4 header needs 20 bytes, got {len(data)}")
        header = data[:20]
        if internet_checksum(header) != 0:
            raise CodecError("IPv4 header checksum mismatch")
        version_ihl, tos, total_length, ident, _frag, ttl, protocol, _csum = struct.unpack(
            "!BBHHHBBH", header[:12]
        )
        if version_ihl >> 4 != 4:
            raise CodecError("not an IPv4 packet")
        src = int.from_bytes(header[12:16], "big")
        dst = int.from_bytes(header[16:20], "big")
        return cls(
            src=src,
            dst=dst,
            protocol=protocol,
            total_length=total_length,
            ttl=ttl,
            identification=ident,
            dscp=tos >> 2,
        )


@dataclass
class UDPHeader:
    """8-byte UDP header (checksum left zero, legal for IPv4)."""

    sport: int
    dport: int
    length: int

    WIRE_SIZE = 8

    def pack(self) -> bytes:
        """Encode to 8 bytes."""
        for port in (self.sport, self.dport):
            if not 0 <= port < (1 << 16):
                raise CodecError(f"UDP port out of range: {port}")
        if not 0 <= self.length < (1 << 16):
            raise CodecError("UDP length out of range")
        return struct.pack("!HHHH", self.sport, self.dport, self.length, 0)

    @classmethod
    def unpack(cls, data: bytes) -> "UDPHeader":
        """Decode from at least 8 bytes."""
        if len(data) < cls.WIRE_SIZE:
            raise CodecError(f"UDP header needs 8 bytes, got {len(data)}")
        sport, dport, length, _checksum = struct.unpack("!HHHH", data[:8])
        return cls(sport=sport, dport=dport, length=length)
