"""Programmable-switch (PISA) model.

Models the parts of a Tofino-class switch ASIC that shape the NetClone
design:

* a feed-forward pipeline of match-action **stages**
  (:mod:`pipeline`) — packets visit stages strictly in order, once per
  pass;
* **register arrays** (:mod:`registers`) pinned to a single stage at
  "compile" time, with at most one access per pipeline pass — the
  constraint that forces the paper's shadow state table;
* exact-match **match-action tables** (:mod:`tables`), updatable only
  from the control plane;
* **hash units** (:mod:`hashing`) computing CRC-based indices;
* a **multicast/mirror engine** and **recirculation** via loopback
  ports (:mod:`switch`) — the mechanism NetClone uses to give cloned
  packets their destination address on a second pass;
* a **resource accountant** (:mod:`resources`) reproducing the §4.1
  SRAM/stage arithmetic;
* a **control plane** (:mod:`controlplane`) for slow-path table
  updates (server add/remove, failure handling).
"""

from repro.switchsim.controlplane import ControlPlane
from repro.switchsim.hashing import HashUnit, crc32_hash
from repro.switchsim.pipeline import Pipeline, PipelineAction, Stage
from repro.switchsim.registers import RegisterArray
from repro.switchsim.resources import ResourceModel, ResourceReport
from repro.switchsim.switch import ProgrammableSwitch, SwitchProgram
from repro.switchsim.tables import MatchActionTable

__all__ = [
    "ControlPlane",
    "HashUnit",
    "MatchActionTable",
    "Pipeline",
    "PipelineAction",
    "ProgrammableSwitch",
    "RegisterArray",
    "ResourceModel",
    "ResourceReport",
    "Stage",
    "SwitchProgram",
    "crc32_hash",
]
