"""Tests for generator-based simulation processes."""

import pytest

from repro.errors import ProcessError
from repro.sim import AllOf, AnyOf, Interrupt, Process, ProcessEvent, Simulator, Timeout


def run_process(gen_fn):
    sim = Simulator()
    proc = Process(sim, gen_fn(sim))
    sim.run()
    return sim, proc


def test_timeout_advances_clock():
    def proc(sim):
        yield Timeout(sim, 500)
        assert sim.now == 500
        yield Timeout(sim, 250)
        assert sim.now == 750

    sim, p = run_process(proc)
    assert p.ok
    assert sim.now == 750


def test_process_return_value_becomes_event_value():
    def proc(sim):
        yield Timeout(sim, 1)
        return 42

    _, p = run_process(proc)
    assert p.ok
    assert p.value == 42


def test_timeout_carries_value():
    def proc(sim):
        got = yield Timeout(sim, 10, value="payload")
        assert got == "payload"

    _, p = run_process(proc)
    assert p.ok


def test_process_can_wait_on_process():
    trace = []

    def child(sim):
        yield Timeout(sim, 100)
        trace.append(("child", sim.now))
        return "done"

    def parent(sim):
        result = yield Process(sim, child(sim))
        trace.append(("parent", sim.now))
        assert result == "done"

    sim = Simulator()
    Process(sim, parent(sim))
    sim.run()
    assert trace == [("child", 100), ("parent", 100)]


def test_exception_in_process_fails_it():
    def proc(sim):
        yield Timeout(sim, 1)
        raise ValueError("boom")

    _, p = run_process(proc)
    assert p.triggered and not p.ok
    assert isinstance(p.value, ValueError)


def test_waiting_on_failed_process_reraises():
    def child(sim):
        yield Timeout(sim, 1)
        raise ValueError("inner")

    def parent(sim):
        with pytest.raises(ValueError):
            yield Process(sim, child(sim))
        return "handled"

    sim = Simulator()
    p = Process(sim, parent(sim))
    sim.run()
    assert p.ok
    assert p.value == "handled"


def test_yielding_non_event_fails_process():
    def proc(sim):
        yield 5

    _, p = run_process(proc)
    assert not p.ok
    assert isinstance(p.value, ProcessError)


def test_interrupt_wakes_sleeping_process():
    def sleeper(sim):
        try:
            yield Timeout(sim, 10_000)
        except Interrupt as intr:
            return ("interrupted", intr.cause, sim.now)
        return "slept"

    sim = Simulator()
    p = Process(sim, sleeper(sim))
    sim.schedule(100, p.interrupt, "wake up")
    sim.run()
    assert p.value == ("interrupted", "wake up", 100)


def test_interrupt_finished_process_is_error():
    def quick(sim):
        yield Timeout(sim, 1)

    sim = Simulator()
    p = Process(sim, quick(sim))
    sim.run()
    with pytest.raises(ProcessError):
        p.interrupt()


def test_uncaught_interrupt_fails_process():
    def sleeper(sim):
        yield Timeout(sim, 10_000)

    sim = Simulator()
    p = Process(sim, sleeper(sim))
    sim.schedule(5, p.interrupt)
    sim.run()
    assert not p.ok
    assert isinstance(p.value, Interrupt)


def test_event_succeed_twice_is_error():
    sim = Simulator()
    event = ProcessEvent(sim)
    event.succeed(1)
    with pytest.raises(ProcessError):
        event.succeed(2)


def test_event_fail_requires_exception():
    sim = Simulator()
    event = ProcessEvent(sim)
    with pytest.raises(ProcessError):
        event.fail("not an exception")


def test_callback_after_trigger_fires_immediately():
    sim = Simulator()
    event = ProcessEvent(sim)
    event.succeed("v")
    seen = []
    event.add_callback(lambda ev: seen.append(ev.value))
    assert seen == ["v"]


def test_anyof_fires_on_first():
    def proc(sim):
        t1 = Timeout(sim, 100, value="fast")
        t2 = Timeout(sim, 200, value="slow")
        done = yield AnyOf(sim, [t1, t2])
        assert sim.now == 100
        assert (t1, "fast") in done
        assert all(ev is not t2 for ev, _ in done)

    _, p = run_process(proc)
    assert p.ok, p.value


def test_allof_waits_for_all():
    def proc(sim):
        values = yield AllOf(sim, [Timeout(sim, 10, value=1), Timeout(sim, 30, value=2)])
        assert sim.now == 30
        assert values == [1, 2]

    _, p = run_process(proc)
    assert p.ok, p.value


def test_empty_conditions_fire_immediately():
    def proc(sim):
        yield AnyOf(sim, [])
        yield AllOf(sim, [])
        return sim.now

    _, p = run_process(proc)
    assert p.ok
    assert p.value == 0


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(ProcessError):
        Process(sim, lambda: None)


def test_many_processes_interleave_deterministically():
    trace = []

    def worker(sim, name, period):
        for _ in range(3):
            yield Timeout(sim, period)
            trace.append((sim.now, name))

    sim = Simulator()
    Process(sim, worker(sim, "a", 10))
    Process(sim, worker(sim, "b", 15))
    sim.run()
    assert trace == [
        (10, "a"),
        (15, "b"),
        (20, "a"),
        # At t=30 both fire; b's timeout was scheduled first (at t=15,
        # vs t=20 for a's), so FIFO tie-breaking runs b first.
        (30, "b"),
        (30, "a"),
        (45, "b"),
    ]
