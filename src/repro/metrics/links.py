"""Per-link utilization series.

Every :class:`~repro.net.link.Link` counts the bytes it clocks onto
the wire per direction; this module reduces those counters to a
utilization series — one :class:`LinkLoad` per link — so trunk
saturation experiments (fig18) can report how hot each inter-rack
link ran alongside the latency percentiles.  Utilization is the
busiest direction's *offered* share of the line rate over the whole
simulated window (the link is full duplex, so each direction owns the
full rate); values above 1.0 mean the direction was oversubscribed
and queued a growing backlog.

:class:`TrunkByteMonitor` turns the same counters into a *timeline*:
it samples each link's cumulative byte count at fixed window
boundaries, so fig16-style drills can plot per-trunk throughput over
time next to the request-completion rate — e.g. traffic draining off
a withdrawn spine and returning after restoration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

from repro.errors import ExperimentError
from repro.metrics.tables import format_table
from repro.net.link import Link

__all__ = [
    "LinkLoad",
    "TrunkByteMonitor",
    "collect_link_loads",
    "fluid_trunk_summary",
    "format_link_loads",
    "trunk_summary",
]


@dataclass
class LinkLoad:
    """One link's traffic totals over a finished run."""

    name: str
    tx_bytes: int
    tx_count: int
    drop_count: int
    #: Busiest-direction offered fraction of the line rate over the
    #: window (> 1.0 = oversubscribed).
    utilization: float

    def row(self) -> tuple:
        return (
            self.name,
            f"{self.tx_bytes}",
            f"{self.tx_count}",
            f"{self.drop_count}",
            f"{self.utilization:.3f}",
        )


def collect_link_loads(links: Sequence[Link], window_ns: int) -> List[LinkLoad]:
    """One :class:`LinkLoad` per link, measured over *window_ns*."""
    return [
        LinkLoad(
            name=link.name,
            tx_bytes=link.tx_bytes,
            tx_count=link.tx_count,
            drop_count=link.drop_count,
            utilization=link.utilization(window_ns),
        )
        for link in links
    ]


def format_link_loads(loads: Sequence[LinkLoad]) -> str:
    """A printable table of per-link traffic totals."""
    return format_table(
        ["link", "tx_bytes", "tx_pkts", "drops", "util"],
        [load.row() for load in loads],
    )


class TrunkByteMonitor:
    """Per-window transmitted-byte deltas for a set of links.

    Samples each link's cumulative ``tx_bytes`` at every window
    boundary up to the horizon (events self-schedule on the
    simulator), then reports per-window deltas — the trunk half of a
    recovery timeline.  Windows the run never reached report zero.
    """

    def __init__(self, sim: Any, links: Sequence[Link], window_ns: int, horizon_ns: int):
        if window_ns <= 0 or horizon_ns <= 0:
            raise ExperimentError("window and horizon must be positive")
        self.links = list(links)
        self.window_ns = window_ns
        self.num_windows = -(-horizon_ns // window_ns)  # ceil
        #: samples[w][l] = cumulative tx_bytes of link *l* at the end
        #: of window *w* (filled as the simulation reaches each edge).
        self._samples: List[List[int]] = []
        self._sim = sim
        sim.call_after(window_ns, self._tick)

    def _tick(self) -> None:
        self._samples.append([link.tx_bytes for link in self.links])
        if len(self._samples) < self.num_windows:
            self._sim.call_after(self.window_ns, self._tick)

    def window_starts_sec(self) -> List[float]:
        """Start time of each window, in seconds."""
        return [w * self.window_ns / 1e9 for w in range(self.num_windows)]

    def deltas(self) -> Dict[str, List[int]]:
        """link name → bytes clocked onto the wire per window."""
        out: Dict[str, List[int]] = {}
        for index, link in enumerate(self.links):
            previous = 0
            series: List[int] = []
            for sample in self._samples:
                series.append(sample[index] - previous)
                previous = sample[index]
            series.extend([0] * (self.num_windows - len(series)))
            out[link.name] = series
        return out

    def total_per_window(self) -> List[int]:
        """Bytes across all monitored links, per window."""
        per_link = self.deltas().values()
        return [sum(window) for window in zip(*per_link)] if per_link else []


def trunk_summary(trunks: Sequence[Link], window_ns: int) -> Dict[str, float]:
    """Reduce a fabric's trunk set to sweep-point extras.

    Always returns the same keys (zeros on trunkless fabrics such as
    the single-rack star) so load points stay field-compatible across
    topologies — determinism tests compare ``extra`` dicts key for key.
    """
    loads = collect_link_loads(trunks, window_ns)
    return {
        "trunk_util_max": max((l.utilization for l in loads), default=0.0),
        "trunk_util_mean": (
            sum(l.utilization for l in loads) / len(loads) if loads else 0.0
        ),
        "trunk_tx_bytes": float(sum(l.tx_bytes for l in loads)),
        "trunk_drops": float(sum(l.drop_count for l in loads)),
    }


def fluid_trunk_summary(
    utilisations: Sequence[float], tx_bytes: float, drops: float = 0.0
) -> Dict[str, float]:
    """:func:`trunk_summary`-shaped extras from an analytic trunk model.

    *utilisations* holds each trunk's busiest-direction offered share
    (the :attr:`LinkLoad.utilization` convention, so values above 1.0
    mean oversubscription), *tx_bytes* the expected byte total across
    all trunks and directions.  Keeping the reduction here, next to the
    packet-mode one, pins the two code paths to the same keys — the
    fluid fast path (:mod:`repro.sim.fluid`) must stay drop-in
    field-compatible with packet-mode load points.
    """
    utils = [float(u) for u in utilisations]
    return {
        "trunk_util_max": max(utils, default=0.0),
        "trunk_util_mean": sum(utils) / len(utils) if utils else 0.0,
        "trunk_tx_bytes": float(tx_bytes),
        "trunk_drops": float(drops),
    }
