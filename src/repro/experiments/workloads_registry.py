"""Workload plugin registry.

Schemes decide *what* runs, topologies *where*, placements *where
redundancy lands*; workloads decide **what the cluster is asked to
do**: the request mix each client generates, the service model each
server runs, and (new in the streaming metrics plane) the shape of the
open-loop arrival process.  A :class:`WorkloadDef` names a factory
that turns free-form parameters into a
:class:`~repro.experiments.specs.WorkloadSpec`; the registry maps
workload names (and aliases) to defs on the shared
:class:`~repro.experiments.plugin_registry.PluginRegistry`, mirroring
the scheme/topology/placement axes, so
``ClusterConfig(workload="mmpp:burst=8")`` and the CLI's
``--workload`` flag resolve through one table.

Registering a workload::

    from repro.experiments.workloads_registry import WorkloadDef, register_workload

    @register_workload
    def _my_workload() -> WorkloadDef:
        return WorkloadDef(
            name="my-workload",
            description="one line for `repro-netclone workloads`",
            make_spec=lambda params: MySpec(**params),
        )

Factories receive the inline CLI params (``--workload
mmpp:burst=8,period_ms=0.5``) and must reject unknown or out-of-range
values with a diagnosable :class:`~repro.errors.ExperimentError` — a
typo must never silently run the default workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ExperimentError
from repro.experiments.plugin_registry import (
    PluginRegistry,
    format_plugin_params,
    parse_plugin_params,
)
from repro.experiments.specs import (
    DiurnalSpec,
    KvSpec,
    MmppSpec,
    SyntheticSpec,
    WorkloadSpec,
    make_synthetic_spec,
)
from repro.workloads.distributions import FixedDistribution, LognormalDistribution

__all__ = [
    "PLUGIN_MODULES",
    "WorkloadDef",
    "canonical_workload",
    "describe_workloads",
    "format_workload",
    "get_workload",
    "iter_workloads",
    "make_workload_spec",
    "parse_workload",
    "register_workload",
    "registered_modules",
    "unregister_workload",
    "workload_names",
]

#: Modules imported lazily on registry access so self-registering
#: plugin workloads become visible without the core importing them
#: eagerly.  Append at any time; new entries load on the next lookup.
PLUGIN_MODULES: List[str] = []


@dataclass
class WorkloadDef:
    """Declarative description of one workload family."""

    #: Canonical workload name (what ``ClusterConfig.workload`` strings
    #: normalise to).
    name: str
    #: One-line description shown by ``repro-netclone workloads``.
    description: str
    #: ``params -> WorkloadSpec`` — build one spec from the merged
    #: parameter dict, validating every knob.
    make_spec: Callable[[Dict[str, Any]], WorkloadSpec]
    #: Alternative lookup names.
    aliases: Tuple[str, ...] = ()
    #: Module that registered the def (filled in by ``register_workload``).
    module: Optional[str] = None


_IMPL = PluginRegistry(
    kind="workload",
    spec_type=WorkloadDef,
    plugin_modules=PLUGIN_MODULES,
    factory_field="make_spec",
)
#: Shared with :class:`PluginRegistry` (tests reset entries here).
_loaded_plugins = _IMPL._loaded_plugins


def register_workload(spec_or_factory):
    """Register a workload; usable as a decorator or called directly.

    Accepts either a :class:`WorkloadDef` or a zero-argument factory
    returning one (the decorator form).  Duplicate names or aliases
    raise :class:`~repro.errors.ExperimentError`.
    """
    return _IMPL.register(spec_or_factory)


def unregister_workload(name: str) -> None:
    """Remove a workload (and its aliases); mainly for tests."""
    _IMPL.unregister(name)


def get_workload(name: str) -> WorkloadDef:
    """The def registered under *name* (aliases resolve)."""
    return _IMPL.get(name)


def parse_workload(value: str) -> Tuple[str, Dict[str, Any]]:
    """Split ``"name:key=val,..."`` into (canonical name, params).

    Same inline syntax as the topology/placement axes: the bare form
    (``"exp"``, or any alias) yields an empty param dict, and
    ``"mmpp:burst=8"`` parses to ``("mmpp", {"burst": 8})``.  Unknown
    workload names and malformed params raise
    :class:`~repro.errors.ExperimentError`.
    """
    name, params = parse_plugin_params(value, "workload")
    return get_workload(name).name, params


def format_workload(name: str, params: Dict[str, Any]) -> str:
    """The inverse of :func:`parse_workload` (stable param order)."""
    return format_plugin_params(name, params)


def canonical_workload(value: str) -> str:
    """*value* with the name de-aliased and params in canonical order.

    Validates as a side effect: unknown names and malformed params
    raise.  Used by the CLI so one spelling of ``"mmpp:burst=8"``
    exists everywhere.
    """
    return format_workload(*parse_workload(value))


def make_workload_spec(
    value: str, params: Optional[Dict[str, Any]] = None
) -> WorkloadSpec:
    """Resolve *value* and build its spec, validated.

    *value* is either a bare registered name (with *params* supplied
    separately) or the full inline form ``"name:key=val,..."``.
    """
    if params is None:
        name, params = parse_workload(value)
    else:
        name, params = get_workload(value).name, dict(params)
    return get_workload(name).make_spec(params)


def workload_names() -> Tuple[str, ...]:
    """Canonical names of every registered workload, in registration order."""
    return _IMPL.names()


def iter_workloads() -> List[WorkloadDef]:
    """Every registered def, in registration order."""
    return _IMPL.specs()


def describe_workloads() -> List[str]:
    """``name — description`` lines (aliases in parentheses)."""
    return _IMPL.describe()


def registered_modules() -> Tuple[str, ...]:
    """Modules that registered workloads (for sweep worker re-imports)."""
    return _IMPL.registered_modules()


# ----------------------------------------------------------------------
# Built-in workloads
# ----------------------------------------------------------------------
def _check_params(params: Dict[str, Any], known: Tuple[str, ...], workload: str) -> None:
    """Reject unknown workload knobs.

    A typoed key (``brust=8``) would otherwise be dropped and the
    experiment would silently run the workload defaults while
    reporting the parameters the user typed.
    """
    unknown = sorted(set(params) - set(known))
    if unknown:
        known_note = ", ".join(sorted(known)) if known else "(none)"
        raise ExperimentError(
            f"unknown {workload} workload parameter(s) {', '.join(unknown)}; "
            f"known: {known_note}"
        )


def _float_param(params: Dict[str, Any], key: str, default: float, workload: str) -> float:
    value = params.get(key, default)
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ExperimentError(
            f"{workload} workload parameter {key}={value!r} must be a number"
        ) from None


def _int_param(params: Dict[str, Any], key: str, default: int, workload: str) -> int:
    value = params.get(key, default)
    if not isinstance(value, int) or isinstance(value, bool):
        raise ExperimentError(
            f"{workload} workload parameter {key}={value!r} must be an integer"
        )
    return value


def _exp_spec(params: Dict[str, Any]) -> WorkloadSpec:
    _check_params(params, ("mean_us",), "exp")
    return make_synthetic_spec("exp", mean_us=_float_param(params, "mean_us", 25.0, "exp"))


def _bimodal_spec(params: Dict[str, Any]) -> WorkloadSpec:
    _check_params(params, (), "bimodal")
    return make_synthetic_spec("bimodal")


def _fixed_spec(params: Dict[str, Any]) -> WorkloadSpec:
    _check_params(params, ("mean_us",), "fixed")
    mean_us = _float_param(params, "mean_us", 25.0, "fixed")
    return SyntheticSpec(partial(FixedDistribution, mean_us))


def _lognormal_spec(params: Dict[str, Any]) -> WorkloadSpec:
    _check_params(params, ("mean_us", "sigma"), "lognormal")
    mean_us = _float_param(params, "mean_us", 25.0, "lognormal")
    sigma = _float_param(params, "sigma", 1.0, "lognormal")
    return SyntheticSpec(partial(LognormalDistribution, mean_us, sigma))


def _kv_spec(cost_model: str, params: Dict[str, Any]) -> WorkloadSpec:
    _check_params(
        params,
        ("scan_fraction", "num_keys", "zipf_skew", "scan_count", "drift_period"),
        cost_model,
    )
    return KvSpec(
        cost_model=cost_model,
        scan_fraction=_float_param(params, "scan_fraction", 0.01, cost_model),
        num_keys=_int_param(params, "num_keys", 1_000_000, cost_model),
        zipf_skew=_float_param(params, "zipf_skew", 0.99, cost_model),
        scan_count=_int_param(params, "scan_count", 100, cost_model),
        drift_period=_int_param(params, "drift_period", 0, cost_model),
    )


def _kv_drift_spec(params: Dict[str, Any]) -> WorkloadSpec:
    params = dict(params)
    params.setdefault("drift_period", 10_000)
    return _kv_spec("redis", params)


def _mmpp_spec(params: Dict[str, Any]) -> WorkloadSpec:
    _check_params(
        params, ("kind", "mean_us", "burst", "high_fraction", "period_ms"), "mmpp"
    )
    return MmppSpec(
        kind=str(params.get("kind", "exp")),
        mean_us=_float_param(params, "mean_us", 25.0, "mmpp"),
        burst=_float_param(params, "burst", 8.0, "mmpp"),
        high_fraction=_float_param(params, "high_fraction", 0.1, "mmpp"),
        period_ms=_float_param(params, "period_ms", 1.0, "mmpp"),
    )


def _diurnal_spec(params: Dict[str, Any]) -> WorkloadSpec:
    _check_params(params, ("kind", "mean_us", "amplitude", "period_ms"), "diurnal")
    return DiurnalSpec(
        kind=str(params.get("kind", "exp")),
        mean_us=_float_param(params, "mean_us", 25.0, "diurnal"),
        amplitude=_float_param(params, "amplitude", 0.5, "diurnal"),
        period_ms=_float_param(params, "period_ms", 2.0, "diurnal"),
    )


register_workload(
    WorkloadDef(
        name="exp",
        description="Poisson open loop over Exp(mean_us) service times — "
        "the seed's default synthetic workload (§5.1.2); param: mean_us",
        make_spec=_exp_spec,
        aliases=("exponential",),
        module=__name__,
    )
)

register_workload(
    WorkloadDef(
        name="bimodal",
        description="Poisson open loop over the paper's 90%-25µs / "
        "10%-250µs bimodal service mix",
        make_spec=_bimodal_spec,
        module=__name__,
    )
)

register_workload(
    WorkloadDef(
        name="fixed",
        description="Poisson open loop over deterministic service times; "
        "param: mean_us",
        make_spec=_fixed_spec,
        aliases=("deterministic",),
        module=__name__,
    )
)

register_workload(
    WorkloadDef(
        name="lognormal",
        description="Poisson open loop over heavy-tailed Lognormal service "
        "times; params: mean_us, sigma",
        make_spec=_lognormal_spec,
        module=__name__,
    )
)

register_workload(
    WorkloadDef(
        name="kv-redis",
        description="Redis-cost key-value store, Zipf keys, GET/SCAN mix "
        "(§5.5); params: scan_fraction, num_keys, zipf_skew, scan_count, "
        "drift_period",
        make_spec=partial(_kv_spec, "redis"),
        aliases=("redis", "kv"),
        module=__name__,
    )
)

register_workload(
    WorkloadDef(
        name="kv-memcached",
        description="Memcached-cost key-value store, Zipf keys, GET/SCAN "
        "mix (§5.5); params: scan_fraction, num_keys, zipf_skew, "
        "scan_count, drift_period",
        make_spec=partial(_kv_spec, "memcached"),
        aliases=("memcached",),
        module=__name__,
    )
)

register_workload(
    WorkloadDef(
        name="mmpp",
        description="Markov-modulated Poisson bursts over synthetic service "
        "times — calm/burst states, exact long-run rate; params: kind, "
        "mean_us, burst, high_fraction, period_ms",
        make_spec=_mmpp_spec,
        aliases=("bursty",),
        module=__name__,
    )
)

register_workload(
    WorkloadDef(
        name="diurnal",
        description="phase-staggered sinusoidal multi-tenant arrivals over "
        "synthetic service times; params: kind, mean_us, amplitude, "
        "period_ms",
        make_spec=_diurnal_spec,
        aliases=("multi-tenant",),
        module=__name__,
    )
)

register_workload(
    WorkloadDef(
        name="kv-drift",
        description="kv-redis with a time-drifting Zipf hot set (rotates "
        "one key per drift_period requests); params as kv-redis, "
        "drift_period defaults to 10000",
        make_spec=_kv_drift_spec,
        aliases=("drift",),
        module=__name__,
    )
)
