"""NetClone (SIGCOMM 2023) reproduction library.

A from-scratch discrete-event reproduction of *NetClone: Fast,
Scalable, and Dynamic Request Cloning for Microsecond-Scale RPCs*
(Gyuyeong Kim, SIGCOMM 2023), including the PISA switch substrate, the
NetClone data plane, client/server applications, the Baseline /
C-Clone / LÆDGE comparison schemes, the RackSched integration, and a
harness regenerating every figure of the paper's evaluation.

Quickstart::

    from repro.experiments.common import ClusterConfig, run_point

    point = run_point(ClusterConfig(scheme="netclone", rate_rps=1.0e6))
    print(point.p99_us)
"""

from repro._version import __version__
from repro.core import NetCloneClient, NetCloneHeader, NetCloneProgram, RpcServer
from repro.sim import Simulator

__all__ = [
    "NetCloneClient",
    "NetCloneHeader",
    "NetCloneProgram",
    "RpcServer",
    "Simulator",
    "__version__",
]
