"""Benchmark: regenerate Figure 19 (placement locality vs trunk pressure)."""

from conftest import run_once

from repro.experiments import fig19_locality


def bench_fig19_locality(benchmark, bench_scale, bench_seed, bench_jobs):
    report = run_once(
        benchmark,
        fig19_locality.run,
        scale=bench_scale,
        seed=bench_seed,
        jobs=bench_jobs,
    )
    assert "Figure 19" in report
    assert "rack-local" in report
