"""Command-line entry point: ``python -m repro`` / ``repro-netclone``.

Examples::

    repro-netclone --list
    repro-netclone schemes
    repro-netclone topologies
    repro-netclone placements
    repro-netclone fig7 --scale 0.25 --jobs 4
    repro-netclone run fig17 --topology spine_leaf --jobs 4
    repro-netclone fig18 --topology spine_leaf:spines=4,spine_policy=least-loaded
    repro-netclone fig19 --placement rack-weighted:p=0.7 --jobs 4
    repro-netclone fig16 resources --seed 7
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.placements import canonical_placement, describe_placements
from repro.experiments.registry import get_experiment, list_experiments
from repro.experiments.schemes import describe_schemes
from repro.experiments.topologies import canonical_topology, describe_topologies

__all__ = ["main"]

#: Pseudo-experiment ids that list a plugin registry instead of running.
_LISTINGS = {
    "schemes": ("registered schemes:", describe_schemes),
    "topologies": ("registered topologies:", describe_topologies),
    "placements": ("registered placements:", describe_placements),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-netclone",
        description="Reproduce the NetClone (SIGCOMM 2023) evaluation.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (fig7..fig19, table1, resources), or "
        "'schemes' / 'topologies' / 'placements' to list the registered "
        "plugins of one axis (an optional leading 'run' is accepted and "
        "ignored)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="shrink measurement windows/grids (e.g. 0.25 for a quick pass)",
    )
    parser.add_argument("--seed", type=int, default=1, help="root RNG seed")
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="sweep points in N parallel worker processes (0 = all CPU cores)",
    )
    parser.add_argument(
        "--topology",
        "-t",
        default=None,
        help="fabric to run on, with optional inline parameters, e.g. "
        "spine_leaf:spines=4,spine_policy=least-loaded (see "
        "'topologies'; default: each experiment's own, usually the "
        "single-rack star)",
    )
    parser.add_argument(
        "--placement",
        "-p",
        default=None,
        help="group-table placement policy, with optional inline "
        "parameters, e.g. rack-local or rack-weighted:p=0.7 (see "
        "'placements'; default: global — the paper's single global "
        "candidate-pair table)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    experiments = list(args.experiments)
    if experiments and experiments[0] == "run":
        experiments = experiments[1:]
    if args.topology is not None:
        # Fail fast (and normalise aliases) before any experiment runs;
        # inline parameters ride along in canonical key=value form.
        args.topology = canonical_topology(args.topology)
    if args.placement is not None:
        args.placement = canonical_placement(args.placement)
    if args.list or not experiments:
        print("available experiments:")
        for line in list_experiments():
            print(f"  {line}")
        print("  schemes — list registered load-balancing/cloning schemes")
        print("  topologies — list registered fabric layouts")
        print("  placements — list registered group-placement policies")
        return 0
    for experiment_id in experiments:
        listing = _LISTINGS.get(experiment_id)
        if listing is not None:
            title, describe = listing
            print(title)
            for line in describe():
                print(f"  {line}")
            continue
        harness = get_experiment(experiment_id)
        harness(
            scale=args.scale,
            seed=args.seed,
            jobs=args.jobs,
            topology=args.topology,
            placement=args.placement,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
