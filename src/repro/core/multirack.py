"""Multi-rack deployment support (§3.7) — compatibility surface.

NetClone targets a single rack, but §3.7 sketches multi-rack
deployment: only ToR switches run NetClone logic, the client-side ToR
stamps its switch ID into the SWID field, and every other NetClone
switch skips packets whose SWID is set and does not match its own ID
(the gate lives in ``NetCloneProgram.matches``).

The wiring itself now lives in the generic fabric layer
(:class:`repro.net.topology.TwoRackFabric` and friends) and multi-rack
experiments run through the topology plugin registry
(:mod:`repro.experiments.topologies`) — e.g.
``ClusterConfig(topology="two_rack")`` — so they compose with the
scheme registry, :class:`~repro.experiments.executor.SweepExecutor`
and every figure harness.  :class:`TwoRackTopology` remains as a thin
shim over the fabric for code that assembles testbeds by hand.
"""

from __future__ import annotations

from repro.net.host import Host
from repro.net.topology import StarTopology, TwoRackFabric
from repro.sim.core import Simulator
from repro.switchsim.switch import ProgrammableSwitch

__all__ = ["TwoRackTopology"]


class TwoRackTopology(TwoRackFabric):
    """Two ToR switches joined by a trunk; clients on A, servers on B.

    Thin adapter keeping the historical constructor (pre-built
    switches) and accessors on top of :class:`TwoRackFabric`.
    """

    def __init__(
        self,
        sim: Simulator,
        client_switch: ProgrammableSwitch,
        server_switch: ProgrammableSwitch,
        trunk_propagation_ns: int = 1000,
        trunk_bandwidth_bps: float = 400e9,
    ):
        provided = iter((client_switch, server_switch))
        super().__init__(
            sim,
            make_switch=lambda name: next(provided),
            trunk_propagation_ns=trunk_propagation_ns,
            trunk_bandwidth_bps=trunk_bandwidth_bps,
        )

    # -- historical accessors ------------------------------------------
    @property
    def client_switch(self) -> ProgrammableSwitch:
        return self.tors[0]

    @property
    def server_switch(self) -> ProgrammableSwitch:
        return self.tors[1]

    @property
    def client_star(self) -> StarTopology:
        return self.stars[0]

    @property
    def server_star(self) -> StarTopology:
        return self.stars[1]

    @property
    def uplink_port_a(self) -> int:
        return self.uplink_ports[0]

    @property
    def uplink_port_b(self) -> int:
        return self.uplink_ports[1]

    def add_client(self, host: Host) -> int:
        """Attach a client to rack A; rack B learns the return route."""
        return self.attach(host, "client", len(self.stars[0].hosts))

    def add_server(self, host: Host) -> int:
        """Attach a server to rack B; rack A learns the forward route."""
        return self.attach(host, "server", len(self.stars[1].hosts))
