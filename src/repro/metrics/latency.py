"""Latency recording with a measurement window.

The paper's client "measures the throughput and latency by generating
requests at a given target sending rate".  The recorder implements the
standard open-loop methodology: samples whose *send time* falls inside
``[warmup_ns, end_ns)`` count toward latency percentiles and
throughput; everything else (cold start, drain tail) is ignored.

Two storage backends share one API (``mode=`` at construction):

* ``"exact"`` (default) appends every sample to an ``array("q")`` and
  answers percentiles through :func:`percentile` — bit-identical to
  the historical recorder, O(requests) memory.
* ``"sketch"`` folds samples into a mergeable
  :class:`~repro.metrics.sketch.LatencySketch` and never stores raw
  samples — O(buckets) memory at any request count, quantiles within
  the sketch's ≤1% relative-error contract.

``percentile``/``p50_us``/``p99_us``/``p999_us``/``mean_us``/``merge``
behave identically over both backends (empty recorders answer NaN in
both modes); ``mean_us`` is exact in both (a running sum, no sample
materialisation).
"""

from __future__ import annotations

from array import array
from typing import Optional, Sequence

import numpy as np

from repro.errors import ExperimentError
from repro.metrics.sketch import LatencySketch
from repro.sim.units import SECONDS

__all__ = ["LatencyRecorder", "percentile"]


def percentile(samples: Sequence[int], q: float) -> float:
    """The *q*-th percentile of *samples* in the same unit (ns).

    Uses the "lower" interpolation so the value is an observed sample,
    matching how tail latency is usually reported.
    """
    if len(samples) == 0:
        return float("nan")
    if not 0 <= q <= 100:
        raise ExperimentError(f"percentile {q} out of range")
    return float(np.percentile(np.asarray(samples, dtype=np.int64), q, method="lower"))


class LatencyRecorder:
    """Collects request latencies inside a measurement window."""

    def __init__(
        self,
        warmup_ns: int = 0,
        end_ns: Optional[int] = None,
        mode: str = "exact",
    ):
        if warmup_ns < 0:
            raise ExperimentError("warmup must be non-negative")
        if end_ns is not None and end_ns <= warmup_ns:
            raise ExperimentError("measurement window must be non-empty")
        if mode not in ("exact", "sketch"):
            raise ExperimentError(
                f"unknown recorder mode {mode!r} (choose 'exact' or 'sketch')"
            )
        self.warmup_ns = warmup_ns
        self.end_ns = end_ns
        self.mode = mode
        #: Raw samples in exact mode; ``None`` in sketch mode (sketch
        #: mode never materialises per-request samples).
        self.latencies_ns: Optional[array] = array("q") if mode == "exact" else None
        self.sketch: Optional[LatencySketch] = (
            LatencySketch() if mode == "sketch" else None
        )
        #: Running sum of recorded latencies (exact in both modes).
        self._sum_ns = 0
        self.sent_in_window = 0
        self.completed_in_window = 0
        #: Optional IntervalMonitor fed with completion times (Fig. 16).
        self.completion_monitor = None

    # ------------------------------------------------------------------
    def _in_window(self, time_ns: int) -> bool:
        if time_ns < self.warmup_ns:
            return False
        return self.end_ns is None or time_ns < self.end_ns

    def note_sent(self, send_time_ns: int) -> None:
        """Count one request sent at *send_time_ns*."""
        # _in_window inlined: one call per request sent.
        if send_time_ns >= self.warmup_ns and (
            self.end_ns is None or send_time_ns < self.end_ns
        ):
            self.sent_in_window += 1

    def record(self, send_time_ns: int, done_time_ns: int) -> None:
        """Record a completed request (first response received).

        Throughput counts completions *occurring* inside the window (so
        a saturated system reports its service rate, not the offered
        rate); latency samples belong to requests *sent* inside the
        window (so cold-start and drain artefacts are excluded).
        """
        if done_time_ns < send_time_ns:
            raise ExperimentError("completion before send")
        if self.completion_monitor is not None:
            self.completion_monitor.note(done_time_ns)
        # _in_window inlined: two calls per completion.
        end_ns = self.end_ns
        if done_time_ns >= self.warmup_ns and (end_ns is None or done_time_ns < end_ns):
            self.completed_in_window += 1
        if send_time_ns >= self.warmup_ns and (end_ns is None or send_time_ns < end_ns):
            latency = done_time_ns - send_time_ns
            self._sum_ns += latency
            if self.latencies_ns is not None:
                self.latencies_ns.append(latency)
            else:
                self.sketch.add(latency)

    # ------------------------------------------------------------------
    @property
    def window_ns(self) -> Optional[int]:
        """Length of the measurement window, if bounded."""
        if self.end_ns is None:
            return None
        return self.end_ns - self.warmup_ns

    def throughput_rps(self) -> float:
        """Completed requests per second over the window."""
        window = self.window_ns
        if window is None or window <= 0:
            return float("nan")
        return self.completed_in_window * SECONDS / window

    def offered_rps(self) -> float:
        """Requests sent per second over the window."""
        window = self.window_ns
        if window is None or window <= 0:
            return float("nan")
        return self.sent_in_window * SECONDS / window

    # ------------------------------------------------------------------
    def percentile_ns(self, q: float) -> float:
        """The *q*-th latency percentile in ns over whichever backend.

        The one backend dispatch the ``pXX_us`` helpers share; empty
        recorders answer NaN in both modes.
        """
        if self.latencies_ns is not None:
            return percentile(self.latencies_ns, q)
        return self.sketch.quantile(q)

    def p50_us(self) -> float:
        """Median latency in microseconds."""
        return self.percentile_ns(50) / 1000.0

    def p99_us(self) -> float:
        """99th-percentile latency in microseconds."""
        return self.percentile_ns(99) / 1000.0

    def p999_us(self) -> float:
        """99.9th-percentile latency in microseconds."""
        return self.percentile_ns(99.9) / 1000.0

    def mean_us(self) -> float:
        """Mean latency in microseconds (exact in both modes)."""
        count = len(self)
        if count == 0:
            return float("nan")
        return self._sum_ns / count / 1000.0

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's samples into this one.

        Exact merges into exact, sketch merges into sketch, and a
        sketch recorder absorbs an exact one (its samples fold into
        the buckets); an exact recorder cannot absorb a sketch — the
        raw samples no longer exist.
        """
        if self.latencies_ns is not None:
            if other.latencies_ns is None:
                raise ExperimentError(
                    "cannot merge a sketch recorder into an exact one "
                    "(raw samples were never stored)"
                )
            self.latencies_ns.extend(other.latencies_ns)
        elif other.latencies_ns is not None:
            if len(other.latencies_ns):
                self.sketch.add_many(other.latencies_ns)
        else:
            self.sketch.merge(other.sketch)
        self._sum_ns += other._sum_ns
        self.sent_in_window += other.sent_in_window
        self.completed_in_window += other.completed_in_window

    def sketch_bytes(self) -> Optional[bytes]:
        """Serialized sketch (sketch mode only; ``None`` in exact mode)."""
        if self.sketch is None:
            return None
        return self.sketch.to_bytes()

    def result_payload(self) -> bytes:
        """The bytes a collection channel ships for this recorder.

        Exact mode ships the raw sample array — O(requests); sketch
        mode ships the serialized sketch — O(buckets).  (Counters ride
        separately; this is the latency payload the streaming metrics
        plane shrinks.)
        """
        if self.latencies_ns is not None:
            return self.latencies_ns.tobytes()
        return self.sketch.to_bytes()

    def __len__(self) -> int:
        if self.latencies_ns is not None:
            return len(self.latencies_ns)
        return self.sketch.count
