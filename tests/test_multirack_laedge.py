"""Tests for multi-rack deployment (§3.7) and the LÆDGE coordinator."""

import random

import pytest

from repro.apps.service import SyntheticService
from repro.baselines.laedge import LaedgeCoordinator
from repro.baselines.random_lb import PLAIN_RPC_PORT
from repro.core import (
    MSG_REQ,
    NETCLONE_UDP_PORT,
    NetCloneClient,
    NetCloneHeader,
    NetCloneProgram,
    RpcServer,
    VIRTUAL_SERVICE_IP,
)
from repro.core.multirack import TwoRackTopology
from repro.errors import ExperimentError
from repro.metrics.latency import LatencyRecorder
from repro.net import Host, Link, Packet
from repro.sim import Simulator
from repro.sim.units import ms, us
from repro.switchsim import ProgrammableSwitch
from repro.workloads import ExponentialDistribution, JitterModel, SyntheticWorkload


# ----------------------------------------------------------------------
# Multi-rack
# ----------------------------------------------------------------------
def build_two_rack(num_servers=2):
    sim = Simulator()
    client_tor = ProgrammableSwitch(sim, name="tor-a")
    server_tor = ProgrammableSwitch(sim, name="tor-b")
    fabric = TwoRackTopology(sim, client_tor, server_tor)
    rng = random.Random(5)
    jitter = JitterModel(0.0, 15.0)
    servers = []
    for index in range(num_servers):
        server = RpcServer(
            sim,
            name=f"srv{index}",
            ip=fabric.server_star.allocate_ip(),
            server_id=index,
            service=SyntheticService(),
            jitter=jitter,
            rng=random.Random(index),
            num_workers=4,
        )
        fabric.add_server(server)
        servers.append(server)
    # NetClone logic runs in BOTH ToRs; switch IDs gate who acts.
    program_a = NetCloneProgram([s.ip for s in servers], switch_id=1)
    program_b = NetCloneProgram([s.ip for s in servers], switch_id=2)
    client_tor.install_program(program_a)
    server_tor.install_program(program_b)

    recorder = LatencyRecorder(warmup_ns=0, end_ns=ms(50))
    client = NetCloneClient(
        sim=sim,
        name="client",
        ip=fabric.client_star.allocate_ip(),
        client_id=0,
        workload=SyntheticWorkload(ExponentialDistribution(10.0), rng),
        rate_rps=20_000.0,
        recorder=recorder,
        rng=rng,
        stop_at_ns=ms(5),
        num_groups=program_a.num_groups,
    )
    fabric.add_client(client)
    return sim, fabric, client, servers, program_a, program_b, recorder


def test_two_rack_requests_complete_exactly_once():
    sim, fabric, client, servers, program_a, program_b, recorder = build_two_rack()
    client.start()
    sim.run(until=ms(20))
    assert recorder.completed_in_window > 50
    assert client.redundant_responses == 0
    # All requests went through: nothing stuck anywhere.
    for server in servers:
        assert server.queue_len == 0


def test_two_rack_only_client_tor_applies_netclone():
    sim, fabric, client, servers, program_a, program_b, recorder = build_two_rack()
    client.start()
    sim.run(until=ms(20))
    # The client-side ToR assigned sequence numbers; the server-side ToR
    # never did (its SEQ register stayed at zero) because the SWID gate
    # excluded stamped packets.
    assert program_a.seq.peek(0) > 0
    assert program_b.seq.peek(0) == 0
    assert fabric.server_switch.counters.get("nc_cloned") == 0


def test_two_rack_cloning_works_across_trunk():
    sim, fabric, client, servers, program_a, program_b, recorder = build_two_rack()
    client.start()
    sim.run(until=ms(20))
    assert fabric.client_switch.counters.get("nc_cloned") > 0
    assert fabric.client_switch.counters.get("nc_filtered") > 0


# ----------------------------------------------------------------------
# LÆDGE coordinator unit behaviour
# ----------------------------------------------------------------------
class ScriptedServer(Host):
    """Server double that responds after a fixed delay."""

    def __init__(self, sim, name, ip, delay_ns):
        super().__init__(sim, name, ip, tx_cost_ns=0, rx_cost_ns=0)
        self.delay_ns = delay_ns
        self.seen = []

    def handle(self, packet):
        self.seen.append(packet)
        response = Packet(
            src=self.ip,
            dst=packet.src,
            sport=PLAIN_RPC_PORT,
            dport=PLAIN_RPC_PORT,
            size=128,
            payload=packet.payload,
            created_at=packet.created_at,
        )
        self.sim.schedule(self.delay_ns, self.send, response)


class FakeClient(Host):
    def __init__(self, sim, name, ip):
        super().__init__(sim, name, ip, tx_cost_ns=0, rx_cost_ns=0)
        self.responses = []

    def handle(self, packet):
        self.responses.append((self.sim.now, packet))


class Payload:
    def __init__(self, client_id, client_seq, write=False):
        self.client_id = client_id
        self.client_seq = client_seq
        self.write = write


def build_laedge(num_servers=3, slots=1, delay_ns=10_000):
    """Coordinator wired by a hub switch to scripted servers + client."""
    sim = Simulator()
    switch = ProgrammableSwitch(sim, name="hub")
    servers = [ScriptedServer(sim, f"s{i}", 200 + i, delay_ns) for i in range(num_servers)]
    client = FakeClient(sim, "client", 100)
    coordinator = LaedgeCoordinator(
        sim,
        "coord",
        ip=150,
        server_ips=[server.ip for server in servers],
        rng=random.Random(3),
        slots_per_server=slots,
        cpu_cost_ns=0,
    )
    for port, host in enumerate([client, coordinator] + servers):
        link = Link(sim, host, switch, propagation_ns=10, bandwidth_bps=1e15)
        host.attach_link(link)
        switch.connect(port, link)
        switch.install_route(host.ip, port)
    return sim, switch, client, coordinator, servers


def send_request(sim, client, coordinator, seq):
    packet = Packet(
        src=client.ip,
        dst=coordinator.ip,
        sport=PLAIN_RPC_PORT + 1,
        dport=PLAIN_RPC_PORT + 1,
        size=128,
        payload=Payload(0, seq),
    )
    client.send(packet)


def test_laedge_clones_when_two_idle():
    sim, switch, client, coordinator, servers = build_laedge()
    send_request(sim, client, coordinator, 1)
    sim.run()
    assert coordinator.counters.get("cloned") == 1
    touched = sum(1 for server in servers if server.seen)
    assert touched == 2
    # Exactly one response forwarded to the client, one absorbed.
    assert len(client.responses) == 1
    assert coordinator.counters.get("responses_absorbed") == 1


def test_laedge_forwards_when_one_slot_free():
    sim, switch, client, coordinator, servers = build_laedge(num_servers=2, slots=1)
    send_request(sim, client, coordinator, 1)  # clones to both servers
    sim.run(until=1_000)  # before responses return
    send_request(sim, client, coordinator, 2)  # all slots busy -> queued
    sim.run(until=2_000)
    assert coordinator.counters.get("queued") == 1
    sim.run()
    # After responses free slots, the queued request was dispatched.
    assert coordinator.counters.get("dispatched_from_queue") == 1
    assert len(client.responses) == 2


def test_laedge_writes_not_cloned():
    sim, switch, client, coordinator, servers = build_laedge()
    packet = Packet(
        src=client.ip,
        dst=coordinator.ip,
        sport=PLAIN_RPC_PORT + 1,
        dport=PLAIN_RPC_PORT + 1,
        size=128,
        payload=Payload(0, 1, write=True),
    )
    client.send(packet)
    sim.run()
    assert coordinator.counters.get("cloned") == 0
    assert coordinator.counters.get("forwarded") == 1


def test_laedge_validation():
    sim = Simulator()
    with pytest.raises(ExperimentError):
        LaedgeCoordinator(sim, "c", 1, server_ips=[2], rng=random.Random(0))
    with pytest.raises(ExperimentError):
        LaedgeCoordinator(
            sim, "c", 1, server_ips=[2, 3], rng=random.Random(0), slots_per_server=0
        )
