"""The engine fast path: ordering, compaction, and seed bit-identity.

The hot-path overhaul split scheduling into two lanes — handle-free
``call_at``/``call_after`` tuples and cancellable ``at``/``schedule``
handles — sharing one sequence counter and one calendar queue.  These
tests pin the contract that makes that safe:

* the two lanes interleave in strict FIFO order at equal timestamps;
* cancellation is lazy but bounded: compaction keeps the queue from
  accumulating dead entries under churn;
* none of it changes simulation results — tiny fig08-star and
  fig18-one-rack runs stay bit-identical to goldens captured at the
  pre-overhaul revision;
* the packet pool's uid stream and the link serialisation memo are
  deterministic and exact.
"""

from helpers import assert_points_identical, tiny_config

from repro.experiments.common import Cluster, run_point
from repro.net.link import Link
from repro.sim.core import Simulator
from repro.sim.units import ms


# ----------------------------------------------------------------------
# FIFO tie-break across both scheduling lanes
# ----------------------------------------------------------------------
def test_fast_and_cancellable_lanes_interleave_fifo():
    sim = Simulator()
    order = []
    # Alternate lanes at one timestamp: scheduling order must win.
    for i in range(20):
        if i % 2:
            sim.at(100, order.append, i)
        else:
            sim.call_at(100, order.append, i)
    sim.run()
    assert order == list(range(20))


def test_call_after_matches_schedule_at_equal_delay():
    sim = Simulator()
    order = []
    sim.call_after(5, order.append, "fast-0")
    sim.schedule(5, order.append, "slow-1")
    sim.call_after(5, order.append, "fast-2")
    sim.run()
    assert order == ["fast-0", "slow-1", "fast-2"]


def test_fast_lane_out_of_order_times_still_sort():
    sim = Simulator()
    order = []
    # Push against the monotone tail so entries spill into the heap.
    for t in (30, 10, 20, 10, 30, 5):
        sim.call_at(t, order.append, t)
    sim.run()
    assert order == [5, 10, 10, 20, 30, 30]
    assert sim.now == 30


# ----------------------------------------------------------------------
# Lazy deletion stays bounded under cancellation churn
# ----------------------------------------------------------------------
def test_compaction_bounds_cancelled_entries():
    sim = Simulator()
    survivors = []
    handles = [sim.at(1000 + i, survivors.append, i) for i in range(5000)]
    for i, handle in enumerate(handles):
        if i % 10:
            handle.cancel()
    # Compaction triggers whenever cancelled entries reach half the
    # queue; after this much churn the backlog must be a small
    # fraction of the cancellations, not proportional to them.
    pending = len(sim._heap) + len(sim._tail)
    assert pending < 2 * 500 + Simulator.COMPACT_THRESHOLD
    assert sim._cancelled <= pending
    sim.run()
    assert survivors == [i for i in range(5000) if i % 10 == 0]
    assert sim._cancelled == 0
    assert not sim._heap and not sim._tail


def test_cancel_churn_preserves_fast_lane_order():
    sim = Simulator()
    order = []
    for i in range(200):
        handle = sim.at(50, order.append, ("dead", i))
        handle.cancel()
        sim.call_at(50, order.append, ("live", i))
    sim.run()
    assert order == [("live", i) for i in range(200)]


# ----------------------------------------------------------------------
# Seed bit-identity (goldens captured at the pre-overhaul revision)
# ----------------------------------------------------------------------
#: (offered, throughput, p50, p99, p999, mean, samples) per config.
GOLDENS = {
    "fig08_star": (
        196333.33333333334, 195333.33333333334, 31.942, 131.72, 654.085,
        40.074093378607806, 589,
    ),
    "fig18_1rack": (
        203666.66666666666, 206666.66666666666, 25.94, 112.831, 178.187,
        33.548687397708676, 611,
    ),
}

GOLDEN_EXTRA = {
    "fig08_star": {"nc_cloned": 528.0, "nc_filtered": 428.0, "clones_dropped": 100.0},
    "fig18_1rack": {"nc_cloned": 637.0, "nc_filtered": 533.0, "clones_dropped": 104.0},
}


def _golden_config(label):
    if label == "fig08_star":
        return tiny_config(seed=11)
    return tiny_config(
        topology="spine_leaf", topology_params={"racks": 1, "spines": 2}
    )


def test_fig08_star_bit_identical_to_seed():
    point = run_point(_golden_config("fig08_star"))
    got = (
        point.offered_rps, point.throughput_rps, point.p50_us, point.p99_us,
        point.p999_us, point.mean_us, point.samples,
    )
    assert got == GOLDENS["fig08_star"]
    for key, value in GOLDEN_EXTRA["fig08_star"].items():
        assert point.extra[key] == value, key


def test_fig18_one_rack_bit_identical_to_seed():
    point = run_point(_golden_config("fig18_1rack"))
    got = (
        point.offered_rps, point.throughput_rps, point.p50_us, point.p99_us,
        point.p999_us, point.mean_us, point.samples,
    )
    assert got == GOLDENS["fig18_1rack"]
    for key, value in GOLDEN_EXTRA["fig18_1rack"].items():
        assert point.extra[key] == value, key


# ----------------------------------------------------------------------
# Packet-pool uid streams are a per-cluster deterministic sequence
# ----------------------------------------------------------------------
def test_identical_runs_produce_identical_uid_streams():
    def run_one():
        cluster = Cluster(tiny_config())
        cluster.start()
        cluster.run()
        pool = cluster.packet_pool
        return cluster.load_point(), (pool._next_uid, pool.allocated, pool.released)

    point_a, uids_a = run_one()
    point_b, uids_b = run_one()
    # Same seed, fresh pool: the uid counter lands on the same value
    # and the free list recycled the same number of lives.
    assert uids_a == uids_b
    assert uids_a[1] < uids_a[0] - 1  # recycling actually happened
    assert_points_identical(point_a, point_b)


# ----------------------------------------------------------------------
# Link serialisation memo: cached == computed, invalidated on retune
# ----------------------------------------------------------------------
class _Sink:
    """Bare link endpoint (generic deliver path)."""

    name = "sink"

    def deliver(self, packet, from_a):
        pass


def test_serialization_memo_matches_direct_computation():
    sim = Simulator()
    # The fig18 grid's line rates (trunks) plus the edge default, over
    # the packet sizes the workloads actually emit.
    for gbps in (0.5, 0.7, 1.0, 2.0, 100.0):
        link = Link(sim, _Sink(), _Sink(), bandwidth_bps=gbps * 1e9)
        for size in (64, 128, 256, 1024, 1500):
            direct = int(round(size * 8 / (gbps * 1e9) * 1e9))
            assert link.serialization_ns(size) == direct
            # Second call is the cached path; must be byte-identical.
            assert link.serialization_ns(size) == direct
            assert link._ser_ns[size] == direct


def test_serialization_memo_invalidated_by_bandwidth_change():
    sim = Simulator()
    link = Link(sim, _Sink(), _Sink(), bandwidth_bps=1e9)
    before = link.serialization_ns(1500)
    link.bandwidth_bps = 2e9
    assert not link._ser_ns  # memo dropped with the old line rate
    after = link.serialization_ns(1500)
    assert after == int(round(1500 * 8 / 2e9 * 1e9))
    assert after != before
