#!/usr/bin/env python3
"""Quickstart: run NetClone against the random baseline in two minutes.

Builds the paper's single-rack testbed (one programmable ToR, two
clients, six 15-thread worker servers), offers 1.4 MRPS of Exp(25 µs)
RPCs with 1 % execution jitter, and prints the tail latency of the
Baseline (random forwarding, no cloning) versus NetClone — plus the
switch's own view of what it did (clones issued, slower responses
filtered).

Run:  python examples/quickstart.py
"""

from repro.experiments.common import Cluster, ClusterConfig
from repro.sim.units import ms


def run_scheme(scheme: str) -> None:
    config = ClusterConfig(
        scheme=scheme,
        rate_rps=1.4e6,
        warmup_ns=ms(5),
        measure_ns=ms(25),
        drain_ns=ms(5),
        seed=7,
    )
    cluster = Cluster(config)
    cluster.start()
    cluster.run()
    point = cluster.load_point()

    print(f"--- {scheme} ---")
    print(f"  offered load : {point.offered_rps / 1e6:6.2f} MRPS")
    print(f"  throughput   : {point.throughput_mrps:6.2f} MRPS")
    print(f"  median       : {point.p50_us:6.1f} us")
    print(f"  99th pct     : {point.p99_us:6.1f} us")
    print(f"  99.9th pct   : {point.p999_us:6.1f} us")
    if scheme == "netclone":
        counters = cluster.switch.counters
        print(f"  clones issued by the switch   : {counters.get('nc_cloned')}")
        print(f"  slower responses filtered     : {counters.get('nc_filtered')}")
        dropped = sum(s.counters.get("clones_dropped") for s in cluster.servers)
        print(f"  stale clones dropped at hosts : {dropped}")
        redundant = sum(c.redundant_responses for c in cluster.clients)
        print(f"  redundant responses at client : {redundant} (filtering works)")
    print()


def main() -> None:
    print(__doc__)
    run_scheme("baseline")
    run_scheme("netclone")
    print("NetClone trades a few percent of cloning work for a lower tail;")
    print("try scheme='cclone' or 'laedge' in this file to see why static")
    print("and coordinator-based cloning fall short (Figures 7 and 8).")


if __name__ == "__main__":
    main()
