"""Host NIC / network-stack model.

The testbed in the paper uses VMA kernel-bypass networking, where each
packet still costs on the order of a microsecond of CPU in the send and
receive paths.  That per-packet cost is what makes redundant slower
responses harmful (§5.6.3 / Figure 15), so we model it explicitly:

* the TX path is a single resource — consecutive sends queue behind a
  per-packet ``tx_cost_ns``;
* the RX path is likewise a single resource with ``rx_cost_ns``; an
  optional bounded RX queue drops packets on overflow, as a real
  userspace poll loop would when its ring fills.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import NetworkError
from repro.sim.core import Simulator

__all__ = ["Nic"]


class Nic:
    """Serialising send/receive stack of one host."""

    def __init__(
        self,
        sim: Simulator,
        tx_cost_ns: int = 700,
        rx_cost_ns: int = 700,
        rx_queue_limit: int = 4096,
    ):
        if tx_cost_ns < 0 or rx_cost_ns < 0:
            raise NetworkError("per-packet costs must be non-negative")
        if rx_queue_limit <= 0:
            raise NetworkError("rx_queue_limit must be positive")
        self.sim = sim
        self.tx_cost_ns = tx_cost_ns
        self.rx_cost_ns = rx_cost_ns
        self.rx_queue_limit = rx_queue_limit
        self._tx_free_at = 0
        self._rx_free_at = 0
        self.tx_count = 0
        self.rx_count = 0
        self.rx_dropped = 0

    # ------------------------------------------------------------------
    def tx(self, packet: Any, emit: Callable[[Any], None]) -> int:
        """Pass *packet* through the send path, then call ``emit(packet)``.

        Returns the time at which the packet leaves the host.
        """
        now = self.sim.now
        start = self._tx_free_at if self._tx_free_at > now else now
        done = start + self.tx_cost_ns
        self._tx_free_at = done
        self.tx_count += 1
        if done == now:
            emit(packet)
        else:
            self.sim.call_at(done, emit, packet)
        return done

    def rx(self, packet: Any, handler: Callable[[Any], None]) -> bool:
        """Pass *packet* through the receive path, then ``handler(packet)``.

        Returns ``False`` (and counts a drop) when the modelled RX queue
        is full — i.e. when the backlog of not-yet-processed packets
        exceeds ``rx_queue_limit``.
        """
        now = self.sim.now
        start = self._rx_free_at if self._rx_free_at > now else now
        if self.rx_cost_ns > 0:
            backlog = (start - now) // self.rx_cost_ns
            if backlog >= self.rx_queue_limit:
                self.rx_dropped += 1
                release = getattr(packet, "release", None)
                if release is not None:
                    release()
                return False
        done = start + self.rx_cost_ns
        self._rx_free_at = done
        self.rx_count += 1
        if done == now:
            handler(packet)
        else:
            self.sim.call_at(done, handler, packet)
        return True

    @property
    def rx_backlog_ns(self) -> int:
        """How far ahead of *now* the RX path is currently booked."""
        backlog = self._rx_free_at - self.sim.now
        return backlog if backlog > 0 else 0
