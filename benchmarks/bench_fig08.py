"""Benchmark: regenerate Figure 8 (C-Clone vs LAEDGE vs NetClone)."""

from conftest import run_once

from repro.experiments import fig08_comparison


def bench_fig08_comparison(benchmark, bench_scale, bench_seed):
    report = run_once(
        benchmark, fig08_comparison.run, scale=bench_scale, seed=bench_seed
    )
    assert "Figure 8" in report
    assert "laedge" in report
