"""Tests for the pcap writer and packet tracer."""

import io
import struct

import pytest

from repro.core import MSG_REQ, NetCloneHeader
from repro.errors import CodecError
from repro.net import Packet, PacketTracer
from repro.net.headers import EthernetHeader, IPv4Header, UDPHeader
from repro.net.pcap import PcapWriter


def nc_packet():
    return Packet(
        src=0x0A000165,
        dst=0x0A000166,
        sport=9000,
        dport=9000,
        size=128,
        nc=NetCloneHeader(MSG_REQ, req_id=7, grp=3),
    )


def test_pcap_global_header():
    buffer = io.BytesIO()
    PcapWriter(buffer)
    header = buffer.getvalue()
    assert len(header) == 24
    magic, major, minor = struct.unpack("<IHH", header[:8])
    assert magic == 0xA1B23C4D  # nanosecond pcap
    assert (major, minor) == (2, 4)


def test_pcap_record_roundtrips_headers():
    buffer = io.BytesIO()
    writer = PcapWriter(buffer)
    packet = nc_packet()
    writer.write(1_500_000_007, packet)
    assert writer.packets_written == 1

    data = buffer.getvalue()[24:]
    seconds, nanos, caplen, origlen = struct.unpack("<IIII", data[:16])
    assert (seconds, nanos) == (1, 500_000_007)
    assert caplen == origlen
    frame = data[16 : 16 + caplen]

    eth = EthernetHeader.unpack(frame)
    assert eth.ethertype == 0x0800
    ip = IPv4Header.unpack(frame[14:])
    assert ip.src == packet.src and ip.dst == packet.dst
    udp = UDPHeader.unpack(frame[34:])
    assert udp.sport == 9000 and udp.dport == 9000
    nc = NetCloneHeader.unpack(frame[42:])
    assert nc.req_id == 7 and nc.grp == 3


def test_pcap_frame_length_matches_packet_size():
    writer = PcapWriter(io.BytesIO())
    packet = nc_packet()
    frame = writer.frame_bytes(packet)
    assert len(frame) == packet.size


def test_pcap_plain_packet_no_netclone_header():
    writer = PcapWriter(io.BytesIO())
    frame = writer.frame_bytes(Packet(src=1, dst=2, sport=80, dport=81, size=100))
    udp = UDPHeader.unpack(frame[34:])
    assert udp.length == 8 + (100 - 42)


def test_pcap_negative_time_rejected():
    writer = PcapWriter(io.BytesIO())
    with pytest.raises(CodecError):
        writer.write(-1, nc_packet())


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
def test_tracer_records_and_filters():
    tracer = PacketTracer()
    packet = nc_packet()
    tracer.note(10, "switch", "rx", packet)
    tracer.note(20, "switch", "cloned", packet, detail="to srv2")
    tracer.note(30, "srv1", "rx", packet)
    assert len(tracer) == 3
    assert len(tracer.events(event="rx")) == 2
    assert len(tracer.events(where="switch")) == 2
    assert len(tracer.events(event="rx", where="srv1")) == 1
    line = str(tracer.records[1])
    assert "cloned" in line and "to srv2" in line


def test_tracer_limit_bounds_memory():
    tracer = PacketTracer(limit=2)
    packet = nc_packet()
    for i in range(5):
        tracer.note(i, "x", "y", packet)
    assert len(tracer) == 2


def test_tracer_format_packet():
    tracer = PacketTracer()
    text = tracer.format_packet(nc_packet())
    assert "10.0.1.101:9000" in text
