"""C-Clone: static client-based cloning (§2.2, Vulimiri et al.).

The client always sends ``d`` copies of every request to ``d``
distinct, randomly chosen servers and accepts the faster response.
Cloning is load-agnostic: the duplicates multiply server load by *d*
(dividing saturation throughput by the same factor) and every
response traverses the client's receive path (multiplying its
per-packet processing), which is exactly the overhead the paper's
Figure 7/8 curves show for ``d = 2``.

The paper evaluates ``d = 2``; the ``cclone-d3`` / ``cclone-d4``
variants registered here extend the baseline to deeper static
redundancy (a ROADMAP scenario-coverage item) — useful for showing
that more aggressive load-agnostic cloning saturates even earlier
while NetClone's load-aware cloning keeps full throughput.  They are
plugin schemes: registered purely through the scheme registry, with
zero edits to cluster assembly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.apps.client import OpenLoopClient
from repro.baselines.random_lb import PLAIN_RPC_PORT
from repro.errors import ExperimentError
from repro.experiments.schemes import SchemeContext, SchemeSpec, register_scheme
from repro.net.packet import Packet

__all__ = ["CCloneClient"]


class CCloneClient(OpenLoopClient):
    """Open-loop client that duplicates every request to *d* servers."""

    def __init__(self, *args: Any, server_ips: Sequence[int], d: int = 2, **kwargs: Any):
        super().__init__(*args, **kwargs)
        if d < 2:
            raise ExperimentError("C-Clone needs d >= 2 (d = 1 is the Baseline)")
        if len(server_ips) < d:
            raise ExperimentError(
                f"C-Clone(d={d}) needs at least {d} servers, got {len(server_ips)}"
            )
        self.server_ips = list(server_ips)
        self.d = d

    def build_packets(self, request: Any) -> List[Packet]:
        destinations = self.rng.sample(self.server_ips, self.d)
        size = self.workload.request_size(request)
        return [
            self._new_packet(
                src=self.ip,
                dst=destination,
                sport=PLAIN_RPC_PORT,
                dport=PLAIN_RPC_PORT,
                size=size,
                payload=request,
            )
            for destination in destinations
        ]


def _cclone_d_client(d: int):
    def make(ctx: SchemeContext, common: Dict[str, Any]) -> CCloneClient:
        return CCloneClient(server_ips=ctx.server_ips, d=d, **common)

    return make


for _d in (3, 4):
    register_scheme(
        SchemeSpec(
            name=f"cclone-d{_d}",
            description=f"static client-side cloning, d = {_d}",
            make_client=_cclone_d_client(_d),
            module=__name__,
        )
    )
del _d
