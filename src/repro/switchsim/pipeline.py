"""Feed-forward match-action pipeline.

A PISA pipeline is a fixed sequence of stages; a packet traverses them
strictly in order, once per pass, at line rate.  The model enforces
that order at runtime through :class:`PassContext`:

* programs must *enter* a stage before touching its tables/registers,
  and may never re-enter an earlier stage within the same pass;
* register accesses additionally go through the per-pass token check
  in :class:`~repro.switchsim.registers.RegisterArray`.

The outcome of a pass is a :class:`PipelineAction`: forward (via L3
route or an explicit port), drop, plus any number of copies to
recirculate or mirror — the two cloning primitives §3.4 discusses
(NetClone uses multicast + recirculation).
"""

from __future__ import annotations

from itertools import count
from typing import Any, Callable, List, Optional, Tuple
from zlib import crc32

from repro.errors import PipelineConfigError, StageAccessError
from repro.switchsim.hashing import HashUnit
from repro.switchsim.registers import RegisterArray
from repro.switchsim.tables import MatchActionTable

__all__ = ["PassContext", "Pipeline", "PipelineAction", "Stage", "StaticPassPlan"]

_pass_tokens = count(1)


class PipelineAction:
    """What the pipeline decided to do with a packet."""

    __slots__ = ("drop", "egress_port", "recirculate", "mirrors")

    def __init__(self) -> None:
        #: Drop the packet (no forwarding at all).
        self.drop = False
        #: Explicit egress port; ``None`` means "use the L3 route".
        self.egress_port: Optional[int] = None
        #: Packet copies to send around through a loopback port.
        self.recirculate: List[Any] = []
        #: Packet copies to emit directly, as ``(packet, port)`` pairs.
        self.mirrors: List[Tuple[Any, Optional[int]]] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.drop:
            return "<PipelineAction drop>"
        return (
            f"<PipelineAction egress={self.egress_port} "
            f"recirc={len(self.recirculate)} mirrors={len(self.mirrors)}>"
        )


class Stage:
    """One match-action stage: a home for tables, registers and hashes."""

    def __init__(self, index: int):
        self.index = index
        self.tables: List[MatchActionTable] = []
        self.registers: List[RegisterArray] = []
        self.hash_units: List[HashUnit] = []


class PassContext:
    """Tracks a single packet's trip through the pipeline.

    All stateful access happens through this object so that stage
    ordering and the one-access-per-pass register rule are enforced.
    """

    __slots__ = ("pipeline", "token", "stage", "_num_stages")

    def __init__(self, pipeline: "Pipeline"):
        self.pipeline = pipeline
        self.token = next(_pass_tokens)
        self.stage = -1
        self._num_stages = pipeline.num_stages

    def enter_stage(self, index: int) -> None:
        """Advance to stage *index*; going backwards is impossible."""
        if index < self.stage:
            raise StageAccessError(
                f"pipeline is feed-forward: cannot enter stage {index} "
                f"after stage {self.stage}"
            )
        if index >= self.pipeline.num_stages:
            raise StageAccessError(
                f"stage {index} out of range (pipeline has {self.pipeline.num_stages})"
            )
        self.stage = index

    # -- convenience wrappers -------------------------------------------
    def reg(
        self,
        register: RegisterArray,
        index: int,
        update: Optional[Callable[[int], int]] = None,
    ) -> Tuple[int, int]:
        """Enter the register's stage and perform its single access."""
        # enter_stage and RegisterArray.access inlined — two calls per
        # register access on the hottest switch-model path.  The
        # stage-equality check disappears: ``stage`` is read off the
        # register itself.
        stage = register.stage
        if stage < self.stage:
            raise StageAccessError(
                f"pipeline is feed-forward: cannot enter stage {stage} "
                f"after stage {self.stage}"
            )
        if stage >= self._num_stages:
            raise StageAccessError(
                f"stage {stage} out of range (pipeline has {self.pipeline.num_stages})"
            )
        self.stage = stage
        token = self.token
        if not 0 <= index < register.size:
            raise StageAccessError(
                f"index {index} out of range for register {register.name!r} "
                f"(size {register.size})"
            )
        if token == register._last_pass_token:
            raise StageAccessError(
                f"register {register.name!r} accessed twice in one pipeline pass"
            )
        register._last_pass_token = token
        register.access_count += 1
        old = register.cells[index]
        new = old
        if update is not None:
            new = update(old) & register._mask
            register.cells[index] = new
        return old, new

    def reg_set(self, register: RegisterArray, index: int, value: int) -> Tuple[int, int]:
        """Enter the register's stage and overwrite cell *index*.

        Same stage/one-access-per-pass rules as :meth:`reg`, without a
        per-call update callable.
        """
        stage = register.stage
        if stage < self.stage:
            raise StageAccessError(
                f"pipeline is feed-forward: cannot enter stage {stage} "
                f"after stage {self.stage}"
            )
        if stage >= self._num_stages:
            raise StageAccessError(
                f"stage {stage} out of range (pipeline has {self.pipeline.num_stages})"
            )
        self.stage = stage
        token = self.token
        if not 0 <= index < register.size:
            raise StageAccessError(
                f"index {index} out of range for register {register.name!r} "
                f"(size {register.size})"
            )
        if token == register._last_pass_token:
            raise StageAccessError(
                f"register {register.name!r} accessed twice in one pipeline pass"
            )
        register._last_pass_token = token
        register.access_count += 1
        old = register.cells[index]
        new = value & register._mask
        register.cells[index] = new
        return old, new

    def reg_swap(self, register: RegisterArray, index: int, value: int) -> int:
        """Enter the register's stage and compare-and-swap cell *index*.

        The fingerprint-filter ALU op (clear on match, else insert);
        see :meth:`RegisterArray.filter_swap`.  Returns the old value.
        """
        stage = register.stage
        if stage < self.stage:
            raise StageAccessError(
                f"pipeline is feed-forward: cannot enter stage {stage} "
                f"after stage {self.stage}"
            )
        if stage >= self._num_stages:
            raise StageAccessError(
                f"stage {stage} out of range (pipeline has {self.pipeline.num_stages})"
            )
        self.stage = stage
        token = self.token
        if not 0 <= index < register.size:
            raise StageAccessError(
                f"index {index} out of range for register {register.name!r} "
                f"(size {register.size})"
            )
        if token == register._last_pass_token:
            raise StageAccessError(
                f"register {register.name!r} accessed twice in one pipeline pass"
            )
        register._last_pass_token = token
        register.access_count += 1
        cells = register.cells
        old = cells[index]
        cells[index] = 0 if old == value else value & register._mask
        return old

    def table(self, table: MatchActionTable, key: int) -> Any:
        """Enter the table's stage and look *key* up."""
        # enter_stage and MatchActionTable.lookup inlined; the
        # stage-equality check disappears because ``stage`` is read off
        # the table itself.
        stage = table.stage
        if stage < self.stage:
            raise StageAccessError(
                f"pipeline is feed-forward: cannot enter stage {stage} "
                f"after stage {self.stage}"
            )
        if stage >= self._num_stages:
            raise StageAccessError(
                f"stage {stage} out of range (pipeline has {self.pipeline.num_stages})"
            )
        self.stage = stage
        table.lookup_count += 1
        value = table._entries.get(key)
        if value is None:
            table.miss_count += 1
        return value

    def hash(self, unit: HashUnit, value: int) -> int:
        """Enter the hash unit's stage and hash *value*."""
        stage = unit.stage
        if stage < self.stage:
            raise StageAccessError(
                f"pipeline is feed-forward: cannot enter stage {stage} "
                f"after stage {self.stage}"
            )
        if stage >= self._num_stages:
            raise StageAccessError(
                f"stage {stage} out of range (pipeline has {self.pipeline.num_stages})"
            )
        self.stage = stage
        unit.invocations += 1
        return crc32(
            (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
        ) % unit.buckets


class StaticPassPlan:
    """A compile-time-verified fixed access order for one pass shape.

    Produced by :meth:`Pipeline.compile_plan`.  Holding one of these is
    the licence to skip the per-packet :class:`PassContext` checks: the
    plan's access sequence has already been proven feed-forward (stages
    non-decreasing), in-range, placed in this pipeline, and
    once-per-register — everything the dynamic checks would verify on
    every single packet.  Programs with fixed access sequences (the
    NetClone request/clone/response passes) compile their plans once at
    install time and run index-based fast lanes over the register
    file's flat store instead.
    """

    __slots__ = ("pipeline", "steps")

    def __init__(self, pipeline: "Pipeline", steps: Tuple[Any, ...]):
        self.pipeline = pipeline
        self.steps = steps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ",".join(getattr(s, "name", "?") for s in self.steps)
        return f"<StaticPassPlan [{names}]>"


class Pipeline:
    """A fixed array of stages plus the objects allocated to them."""

    #: Stage count of a Tofino-class ingress pipeline.
    DEFAULT_NUM_STAGES = 12

    def __init__(self, num_stages: int = DEFAULT_NUM_STAGES):
        if num_stages <= 0:
            raise PipelineConfigError("pipeline needs at least one stage")
        self.num_stages = num_stages
        self.stages = [Stage(i) for i in range(num_stages)]

    # -- compile-time allocation ----------------------------------------
    def _stage_for(self, obj_stage: int, what: str, name: str) -> Stage:
        if not 0 <= obj_stage < self.num_stages:
            raise PipelineConfigError(
                f"{what} {name!r} wants stage {obj_stage}, "
                f"pipeline has stages 0..{self.num_stages - 1}"
            )
        return self.stages[obj_stage]

    def place_register(self, register: RegisterArray) -> RegisterArray:
        """Allocate *register* to its stage (compile-time placement)."""
        self._stage_for(register.stage, "register", register.name).registers.append(register)
        return register

    def place_table(self, table: MatchActionTable) -> MatchActionTable:
        """Allocate *table* to its stage."""
        self._stage_for(table.stage, "table", table.name).tables.append(table)
        return table

    def place_hash(self, unit: HashUnit) -> HashUnit:
        """Allocate *unit* to its stage."""
        self._stage_for(unit.stage, "hash unit", unit.name).hash_units.append(unit)
        return unit

    # -- compile-time verification --------------------------------------
    def compile_plan(self, steps) -> StaticPassPlan:
        """Verify a fixed per-pass access order and return its plan.

        *steps* is the ordered sequence of pipeline objects (registers,
        tables, hash units) one pass shape touches.  Raises
        :class:`PipelineConfigError` unless every step is placed in
        this pipeline, stages are non-decreasing (feed-forward) and no
        register is accessed more than once — the same invariants
        :class:`PassContext` enforces per packet, proven once here.
        """
        stage = -1
        seen_registers = set()
        for obj in steps:
            obj_stage = obj.stage
            if not 0 <= obj_stage < self.num_stages:
                raise PipelineConfigError(
                    f"plan step {obj.name!r} wants stage {obj_stage}, "
                    f"pipeline has stages 0..{self.num_stages - 1}"
                )
            if obj_stage < stage:
                raise PipelineConfigError(
                    f"plan is not feed-forward: {obj.name!r} in stage "
                    f"{obj_stage} follows an access in stage {stage}"
                )
            stage = obj_stage
            home = self.stages[obj_stage]
            if isinstance(obj, RegisterArray):
                if id(obj) in seen_registers:
                    raise PipelineConfigError(
                        f"register {obj.name!r} accessed twice in one plan"
                    )
                seen_registers.add(id(obj))
                if obj not in home.registers:
                    raise PipelineConfigError(
                        f"register {obj.name!r} is not placed in this pipeline"
                    )
            elif isinstance(obj, MatchActionTable):
                if obj not in home.tables:
                    raise PipelineConfigError(
                        f"table {obj.name!r} is not placed in this pipeline"
                    )
            elif isinstance(obj, HashUnit):
                if obj not in home.hash_units:
                    raise PipelineConfigError(
                        f"hash unit {obj.name!r} is not placed in this pipeline"
                    )
            else:
                raise PipelineConfigError(
                    f"unknown plan step {obj!r}"
                )
        return StaticPassPlan(self, tuple(steps))

    # -- run-time --------------------------------------------------------
    def new_pass(self) -> PassContext:
        """Begin one packet's traversal."""
        return PassContext(self)

    @property
    def stages_used(self) -> int:
        """Highest occupied stage + 1 (the paper reports 7 for NetClone)."""
        used = 0
        for stage in self.stages:
            if stage.tables or stage.registers or stage.hash_units:
                used = stage.index + 1
        return used

    def all_registers(self) -> List[RegisterArray]:
        """Every placed register array."""
        return [reg for stage in self.stages for reg in stage.registers]

    def all_tables(self) -> List[MatchActionTable]:
        """Every placed match-action table."""
        return [table for stage in self.stages for table in stage.tables]

    def all_hash_units(self) -> List[HashUnit]:
        """Every placed hash unit."""
        return [unit for stage in self.stages for unit in stage.hash_units]
