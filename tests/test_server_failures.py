"""Tests for §3.6 server-failure handling via the control plane."""

import pytest

from repro.core.failures import ServerFailureHandler
from repro.errors import ExperimentError
from repro.experiments.common import Cluster, ClusterConfig
from repro.sim.units import ms
from repro.switchsim import ControlPlane


def build(num_servers=4, rate=0.3e6):
    config = ClusterConfig(
        scheme="netclone",
        num_servers=num_servers,
        rate_rps=rate,
        warmup_ns=0,
        measure_ns=ms(30),
        drain_ns=ms(5),
        seed=6,
    )
    cluster = Cluster(config)
    control_plane = ControlPlane(cluster.sim, op_latency_ns=ms(1))
    handler = ServerFailureHandler(
        cluster.program, control_plane, clients=cluster.clients
    )
    return cluster, handler


def test_removal_rebuilds_tables_and_groups():
    cluster, handler = build(num_servers=4)
    program = cluster.program
    assert program.num_groups == 12  # 4*3
    handler.remove_server(2)
    cluster.sim.run(until=ms(2))
    assert program.num_groups == 6  # 3*2 survivors
    assert handler.active_server_ids == [0, 1, 3]
    # Every group now maps to surviving IDs only.
    for pair in program.grp_table.entries().values():
        assert 2 not in pair
    # Clients learned the new group count.
    for client in cluster.clients:
        assert client.num_groups == 6
    # The dead server's address is gone.
    assert 2 not in program.addr_table


def test_traffic_continues_after_removal():
    cluster, handler = build(num_servers=4)
    dead = cluster.servers[1]
    # Kill the server brutally: its uplink swallows everything.
    cluster.sim.at(ms(5), lambda: setattr(cluster.topology.link_of(dead), "down", True))
    cluster.sim.at(ms(5), handler.remove_server, 1)
    cluster.start()
    cluster.run()
    point = cluster.load_point()
    # Some requests were lost in the window between failure and the
    # control-plane update, but the system kept serving afterwards.
    sent = cluster.recorder.sent_in_window
    assert point.samples > 0.9 * sent * (ms(30) - ms(6)) / ms(30)
    # The dead server stopped receiving after the update applied.
    accepted_before = dead.counters.get("requests_accepted")
    assert accepted_before < sent


def test_cannot_remove_unknown_or_below_pair():
    cluster, handler = build(num_servers=3)
    with pytest.raises(ExperimentError):
        handler.remove_server(9)
    handler.remove_server(0)
    cluster.sim.run(until=ms(2))
    with pytest.raises(ExperimentError):
        handler.remove_server(1)  # would leave a single server


def test_removal_applies_after_control_plane_latency():
    cluster, handler = build(num_servers=4)
    apply_at = handler.remove_server(3)
    assert apply_at >= ms(1)  # the slow path is really slow
    # Before the op lands the data plane still has the old tables.
    assert cluster.program.num_groups == 12
    cluster.sim.run(until=apply_at + 1)
    assert cluster.program.num_groups == 6
