"""Benchmark: regenerate Figure 15 (response-filtering ablation)."""

from conftest import run_once

from repro.experiments import fig15_filtering


def bench_fig15_filtering(benchmark, bench_scale, bench_seed):
    report = run_once(
        benchmark, fig15_filtering.run, scale=bench_scale, seed=bench_seed
    )
    assert "Figure 15" in report
    assert "netclone-nofilter" in report
