"""Figure 14: low service-time variability, p = 0.001 (§5.6.2).

Same two panels as Figure 7 (a)/(b) but with a 10× smaller jitter
probability.  Expected shape: the same trends, with NetClone's
improvement over the Baseline slightly smaller — cloning's benefit
comes from masking variability, so less variability means less to
mask.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import ClusterConfig
from repro.experiments.harness import (
    capacity_rps,
    format_series,
    load_grid,
    scaled_config,
    sweep_schemes,
)
from repro.experiments.registry import register
from repro.experiments.specs import make_synthetic_spec
from repro.metrics.sweep import SweepResult

__all__ = ["collect", "run"]

SCHEMES = ("baseline", "cclone", "netclone")
JITTER_P = 0.001

PANELS = {
    "a-Exp(25)": ("exp", 25.0, None),
    "b-Bimodal(90-25,10-250)": ("bimodal", None, ((0.9, 25.0), (0.1, 250.0))),
}

NUM_SERVERS = 6
WORKERS = 15


def collect(
    scale: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> Dict[str, Dict[str, SweepResult]]:
    """Both panels' curves with p = 0.001."""
    results: Dict[str, Dict[str, SweepResult]] = {}
    for panel, (kind, mean_us, modes) in PANELS.items():
        spec = make_synthetic_spec(kind, mean_us=mean_us or 25.0, modes=modes)
        config = scaled_config(
            ClusterConfig(
                workload=spec,
                topology=topology,
                placement=placement,
                num_servers=NUM_SERVERS,
                workers_per_server=WORKERS,
                jitter_p=JITTER_P,
                seed=seed,
            ),
            scale,
        )
        capacity = capacity_rps(NUM_SERVERS * WORKERS, spec.mean_service_ns)
        loads = load_grid(capacity, scale)
        results[panel] = sweep_schemes(config, SCHEMES, loads, jobs=jobs)
    return results


def run(
    scale: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> str:
    """Run Figure 14 and return the formatted report."""
    sections = []
    for panel, series in collect(scale, seed, jobs=jobs, topology=topology, placement=placement).items():
        base = series["baseline"]
        netclone = series["netclone"]
        low = base.points[0].offered_rps
        notes = [
            f"p99 at lowest load: Baseline {base.p99_at_load(low):.0f} us, "
            f"NetClone {netclone.p99_at_load(low):.0f} us "
            f"(paper: NetClone still lower, smaller margin than Fig. 7)",
        ]
        sections.append(format_series(f"Figure 14 ({panel}, p=0.001)", series, notes))
    report = "\n".join(sections)
    print(report)
    return report


@register("fig14", "low service-time variability (p=0.001)")
def _run(
    scale: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
) -> str:
    return run(scale, seed, jobs=jobs, topology=topology, placement=placement)
