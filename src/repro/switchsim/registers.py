"""Stage-pinned register arrays.

On a PISA ASIC each register array lives in the SRAM of exactly one
match-action stage, chosen at compile time, and a packet can perform at
most **one** stateful ALU operation on it per pipeline pass.  Reading
the server-state array twice for two candidate servers is therefore
impossible — the reason NetClone keeps a *shadow* copy in a later
stage (§3.4).

:class:`RegisterArray` enforces both constraints at runtime:

* construction binds the array to a stage index; access from any other
  stage raises :class:`~repro.errors.StageAccessError`;
* the pipeline stamps each pass with a token; a second access under
  the same token raises too.

A read-modify-write made through :meth:`access` counts as the single
allowed operation, matching the hardware's stateful ALU.

:class:`RegisterFile` models the other half of the SRAM story: all of
one program's register arrays live in a single flat backing store —
one ``array('q')`` per program, like the contiguous SRAM banks the
compiler carves stage memory out of.  A file-backed array's ``cells``
is a zero-copy :class:`memoryview` slice of that store, so the
per-cell data-plane API is unchanged while index-based fast lanes
(see :meth:`~repro.switchsim.pipeline.Pipeline.compile_plan`) can
address the whole file through flat ``base + index`` offsets, and
bulk control-plane operations (wipes, snapshots) run vectorised over
a numpy view of the same memory.
"""

from __future__ import annotations

from array import array
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from repro.errors import StageAccessError

__all__ = ["RegisterArray", "RegisterFile"]


class RegisterFile:
    """A shared flat backing store for a program's register arrays.

    Usage: construct one file, create every :class:`RegisterArray`
    with ``file=the_file``, then :meth:`freeze` it.  Freezing lays all
    attached arrays out back-to-back in one ``array('q')`` and hands
    each a zero-copy ``memoryview`` slice; afterwards no further
    arrays can attach (the exported buffers pin the allocation, just
    like a compiled pipeline pins its SRAM map).
    """

    def __init__(self) -> None:
        self._attached: List["RegisterArray"] = []
        self._initials: List[int] = []
        self._total = 0
        #: The flat backing store (``None`` until frozen).
        self.data: Optional[array] = None

    def attach(self, register: "RegisterArray", initial: int) -> int:
        """Reserve *register*'s cells; returns its base offset."""
        if self.data is not None:
            raise StageAccessError(
                f"register file is frozen; cannot attach {register.name!r}"
            )
        base = self._total
        self._attached.append(register)
        self._initials.append(initial)
        self._total += register.size
        return base

    def freeze(self) -> None:
        """Materialise the flat store and wire every attached array."""
        if self.data is not None:
            return
        data = array("q", bytes(8 * self._total))
        view = np.frombuffer(data, dtype=np.int64)
        for register, initial in zip(self._attached, self._initials):
            if initial:
                view[register.base : register.base + register.size] = initial
        self.data = data
        flat = memoryview(data)
        for register in self._attached:
            register.cells = flat[register.base : register.base + register.size]

    def as_numpy(self) -> np.ndarray:
        """Zero-copy int64 view of the whole file (control plane only)."""
        if self.data is None:
            raise StageAccessError("register file is not frozen yet")
        return np.frombuffer(self.data, dtype=np.int64)

    @property
    def size(self) -> int:
        """Total cells reserved across all attached arrays."""
        return self._total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "frozen" if self.data is not None else "open"
        return f"<RegisterFile {len(self._attached)} arrays {self._total} cells {state}>"


class RegisterArray:
    """A fixed-size array of integer cells bound to one pipeline stage."""

    def __init__(
        self,
        name: str,
        size: int,
        stage: int,
        width_bits: int = 32,
        initial: int = 0,
        file: Optional[RegisterFile] = None,
    ):
        if size <= 0:
            raise StageAccessError(f"register array {name!r} needs positive size")
        if stage < 0:
            raise StageAccessError(f"register array {name!r} needs a valid stage")
        if width_bits not in (1, 8, 16, 32, 64):
            raise StageAccessError(f"unsupported register width {width_bits}")
        self.name = name
        self.size = size
        self.stage = stage
        self.width_bits = width_bits
        self._mask = (1 << width_bits) - 1
        self.file = file
        if file is None:
            #: Standalone array: a private list of cells.
            self.base = 0
            self.cells: Union[List[int], memoryview] = [initial & self._mask] * size
        else:
            #: File-backed: cells become a memoryview slice of the
            #: file's flat store once the file is frozen.
            self.base = file.attach(self, initial & self._mask)
            self.cells = None  # type: ignore[assignment]
        self._last_pass_token: Optional[int] = None
        self.access_count = 0

    # ------------------------------------------------------------------
    def _check(self, index: int, stage: int, pass_token: Optional[int]) -> None:
        if not 0 <= index < self.size:
            raise StageAccessError(
                f"index {index} out of range for register {self.name!r} (size {self.size})"
            )
        if stage != self.stage:
            raise StageAccessError(
                f"register {self.name!r} is allocated to stage {self.stage}, "
                f"accessed from stage {stage}"
            )
        if pass_token is not None and pass_token == self._last_pass_token:
            raise StageAccessError(
                f"register {self.name!r} accessed twice in one pipeline pass"
            )
        self._last_pass_token = pass_token
        self.access_count += 1

    def access(
        self,
        index: int,
        stage: int,
        pass_token: Optional[int],
        update: Optional[Callable[[int], int]] = None,
    ) -> Tuple[int, int]:
        """The single stateful operation of a pass on this array.

        Reads cell *index*; if *update* is given the cell is rewritten
        with ``update(old)`` in the same operation (read-modify-write).
        Returns ``(old_value, new_value)``.
        """
        # Checks inlined from _check: this runs once per register per
        # pipeline pass, the hottest switch-model path.
        if not 0 <= index < self.size:
            raise StageAccessError(
                f"index {index} out of range for register {self.name!r} (size {self.size})"
            )
        if stage != self.stage:
            raise StageAccessError(
                f"register {self.name!r} is allocated to stage {self.stage}, "
                f"accessed from stage {stage}"
            )
        if pass_token is not None and pass_token == self._last_pass_token:
            raise StageAccessError(
                f"register {self.name!r} accessed twice in one pipeline pass"
            )
        self._last_pass_token = pass_token
        self.access_count += 1
        old = self.cells[index]
        new = old
        if update is not None:
            new = update(old) & self._mask
            self.cells[index] = new
        return old, new

    def write(
        self,
        index: int,
        stage: int,
        pass_token: Optional[int],
        value: int,
    ) -> Tuple[int, int]:
        """Unconditional overwrite as the single stateful op of a pass.

        Equivalent to ``access(..., update=lambda _old: value)`` without
        allocating or calling the update callable — the response path
        writes two state registers per packet, which makes that cost
        measurable.  Returns ``(old_value, new_value)``.
        """
        if not 0 <= index < self.size:
            raise StageAccessError(
                f"index {index} out of range for register {self.name!r} (size {self.size})"
            )
        if stage != self.stage:
            raise StageAccessError(
                f"register {self.name!r} is allocated to stage {self.stage}, "
                f"accessed from stage {stage}"
            )
        if pass_token is not None and pass_token == self._last_pass_token:
            raise StageAccessError(
                f"register {self.name!r} accessed twice in one pipeline pass"
            )
        self._last_pass_token = pass_token
        self.access_count += 1
        old = self.cells[index]
        new = value & self._mask
        self.cells[index] = new
        return old, new

    def filter_swap(
        self,
        index: int,
        stage: int,
        pass_token: Optional[int],
        value: int,
    ) -> int:
        """The fingerprint-filter ALU op: clear on match, else insert.

        A single stateful compare-and-swap — ``cell = 0`` if the cell
        already holds *value* (the mate response passed first), else
        ``cell = value``.  Returns the old cell value.  Equivalent to
        ``access(..., update=lambda old: 0 if old == value else value)``
        without allocating a closure per response packet.
        """
        if not 0 <= index < self.size:
            raise StageAccessError(
                f"index {index} out of range for register {self.name!r} (size {self.size})"
            )
        if stage != self.stage:
            raise StageAccessError(
                f"register {self.name!r} is allocated to stage {self.stage}, "
                f"accessed from stage {stage}"
            )
        if pass_token is not None and pass_token == self._last_pass_token:
            raise StageAccessError(
                f"register {self.name!r} accessed twice in one pipeline pass"
            )
        self._last_pass_token = pass_token
        self.access_count += 1
        cells = self.cells
        old = cells[index]
        cells[index] = 0 if old == value else value & self._mask
        return old

    # -- control-plane access (no pass/stage constraints) ---------------
    def peek(self, index: int) -> int:
        """Control-plane read, exempt from data-plane constraints."""
        return self.cells[index]

    def poke(self, index: int, value: int) -> None:
        """Control-plane write, exempt from data-plane constraints."""
        self.cells[index] = value & self._mask

    def clear(self, value: int = 0) -> None:
        """Control-plane reset of every cell (e.g. after power cycle)."""
        masked = value & self._mask
        if self.file is not None and self.file.data is not None:
            # Vectorised wipe over the file's numpy view of the same
            # memory — power-cycle drills reset 2^17-slot filter
            # tables, which a Python loop makes measurably slow.
            view = np.frombuffer(self.file.data, dtype=np.int64)
            view[self.base : self.base + self.size] = masked
            return
        for i in range(self.size):
            self.cells[i] = masked

    @property
    def sram_bytes(self) -> int:
        """SRAM footprint of this array in bytes."""
        return self.size * self.width_bits // 8

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RegisterArray {self.name} size={self.size} stage={self.stage} "
            f"width={self.width_bits}b>"
        )
