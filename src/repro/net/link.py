"""Point-to-point full-duplex links.

A link connects two endpoints (anything with a ``deliver(packet,
link)`` method).  Each direction models:

* **serialisation** — back-to-back packets queue behind one another at
  the line rate (a per-direction "next free" timestamp), and
* **propagation** — a fixed flight time.

At 100 Gb/s a 128 B packet serialises in ~10 ns, so serialisation is
rarely the bottleneck in these experiments, but it is modelled so that
congestion behaves correctly if an experiment drives a link hard.
"""

from __future__ import annotations

import random
from typing import Any, Optional

from repro.errors import NetworkError
from repro.sim.core import Simulator

__all__ = ["Link"]

#: Bits per byte, named for readability in the delay arithmetic.
_BITS = 8


class Link:
    """A full-duplex cable between endpoints ``a`` and ``b``."""

    def __init__(
        self,
        sim: Simulator,
        a: Any,
        b: Any,
        propagation_ns: int = 300,
        bandwidth_bps: float = 100e9,
        name: str = "",
        loss_probability: float = 0.0,
        loss_rng: Optional[random.Random] = None,
    ):
        if propagation_ns < 0:
            raise NetworkError("propagation delay must be non-negative")
        if bandwidth_bps <= 0:
            raise NetworkError("bandwidth must be positive")
        if not 0.0 <= loss_probability < 1.0:
            raise NetworkError("loss probability must lie in [0, 1)")
        self.sim = sim
        self.a = a
        self.b = b
        self.propagation_ns = propagation_ns
        self.bandwidth_bps = bandwidth_bps
        self.name = name or f"link({getattr(a, 'name', a)}-{getattr(b, 'name', b)})"
        self._free_at = {id(a): 0, id(b): 0}
        #: Set True to drop everything (used by failure experiments).
        self.down = False
        #: Random per-packet loss (used by the reliability tests).
        self.loss_probability = loss_probability
        self._loss_rng = loss_rng if loss_rng is not None else random.Random(0x105)
        self.tx_count = 0
        self.drop_count = 0

    def serialization_ns(self, size_bytes: int) -> int:
        """Time to clock *size_bytes* onto the wire at the line rate."""
        return int(round(size_bytes * _BITS / self.bandwidth_bps * 1e9))

    def other_end(self, endpoint: Any) -> Any:
        """The endpoint opposite *endpoint*."""
        if endpoint is self.a:
            return self.b
        if endpoint is self.b:
            return self.a
        raise NetworkError(f"{endpoint!r} is not attached to {self.name}")

    def send(self, packet: Any, from_endpoint: Any) -> Optional[int]:
        """Transmit *packet* from one endpoint toward the other.

        Returns the delivery time, or ``None`` if the link is down and
        the packet was dropped.
        """
        destination = self.other_end(from_endpoint)
        if self.down:
            self.drop_count += 1
            return None
        if self.loss_probability > 0.0 and self._loss_rng.random() < self.loss_probability:
            self.drop_count += 1
            return None
        key = id(from_endpoint)
        now = self.sim.now
        start = self._free_at[key]
        if start < now:
            start = now
        done_serialising = start + self.serialization_ns(packet.size)
        self._free_at[key] = done_serialising
        arrival = done_serialising + self.propagation_ns
        self.tx_count += 1
        self.sim.at(arrival, destination.deliver, packet, self)
        return arrival
