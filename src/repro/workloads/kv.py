"""Key-value workloads (§5.5).

Clients issue read requests against a replicated key-value store:
``GET`` reads a single object, ``SCAN`` reads 100 objects.  Keys follow
a Zipf-0.99 popularity over 1 M objects with 16-byte keys and 64-byte
values.  The GET/SCAN mix is the experiment knob (99/1 and 90/10 in
the paper).  Writes exist in the op enum for completeness — NetClone
does not clone them (replication protocols own write coordination) and
the workloads used in the evaluation are read-only.
"""

from __future__ import annotations

import enum
import random

from repro.errors import WorkloadError
from repro.workloads.zipf import ZipfGenerator

__all__ = ["KvOp", "KvRequest", "KvWorkload"]


class KvOp(enum.Enum):
    """Key-value operation types."""

    GET = "get"
    SCAN = "scan"
    SET = "set"


class KvRequest:
    """Payload of one key-value request."""

    __slots__ = ("client_id", "client_seq", "op", "key", "count", "write")

    def __init__(self, client_id: int, client_seq: int, op: KvOp, key: int, count: int = 1):
        self.client_id = client_id
        self.client_seq = client_seq
        self.op = op
        self.key = key
        self.count = count
        self.write = op is KvOp.SET

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KvRequest c{self.client_id}#{self.client_seq} {self.op.value} k{self.key} n{self.count}>"


class KvWorkload:
    """Factory of :class:`KvRequest` payloads for one client."""

    #: 16-byte keys and 64-byte values plus protocol framing.
    KEY_SIZE = 16
    VALUE_SIZE = 64
    REQUEST_OVERHEAD = 64

    def __init__(
        self,
        rng: random.Random,
        num_keys: int = 1_000_000,
        zipf_skew: float = 0.99,
        scan_fraction: float = 0.01,
        scan_count: int = 100,
        zipf: ZipfGenerator = None,
        deterministic_mix: bool = True,
    ):
        if not 0.0 <= scan_fraction <= 1.0:
            raise WorkloadError("scan_fraction must lie in [0, 1]")
        if scan_count <= 0:
            raise WorkloadError("scan_count must be positive")
        self.rng = rng
        self.scan_fraction = scan_fraction
        self.scan_count = scan_count
        # With an X%-SCAN mix the 99th percentile sits exactly at the
        # GET/SCAN boundary, so sampling noise in the realised mix can
        # flip which side p99 lands on for *every* scheme alike (a
        # realised share of 1.01% puts p99 at the SCAN value no matter
        # how good the system is, making the metric meaningless).  The
        # default therefore paces SCANs deterministically with a period
        # of round(1/fraction)+1, keeping the realised share strictly
        # below the percentile boundary — which is the regime the
        # paper's boundary-sensitive headline numbers (e.g. the 22.6x
        # of Figure 11a) live in.
        self.deterministic_mix = deterministic_mix and scan_fraction > 0.0
        # An 8 % relative margin keeps the realised share a few samples
        # clear of the boundary even for windows of a few thousand
        # requests.
        self._scan_period = (
            max(2, int(1.08 / scan_fraction) + 1) if scan_fraction > 0.0 else 0
        )
        self._request_counter = 0
        # The Zipf CDF over 1M keys costs ~8 MB to build; allow sharing
        # one generator across the clients of an experiment.
        self.zipf = zipf if zipf is not None else ZipfGenerator(num_keys, zipf_skew)
        # Drifting generators key the rank→key rotation on the request
        # ordinal (see DriftingZipfGenerator.sample_at); plain Zipf
        # ignores time.
        self._drifting = hasattr(self.zipf, "sample_at")
        get_pct = round((1.0 - scan_fraction) * 100)
        self.name = f"{get_pct:g}%-GET,{100 - get_pct:g}%-SCAN"

    def _is_scan(self) -> bool:
        if self.deterministic_mix:
            self._request_counter += 1
            return self._request_counter % self._scan_period == 0
        return self.rng.random() < self.scan_fraction

    def make_request(self, client_id: int, client_seq: int) -> KvRequest:
        """Draw one request payload."""
        if self._drifting:
            key = self.zipf.sample_at(self.rng, client_seq)
        else:
            key = self.zipf.sample(self.rng)
        if self._is_scan():
            return KvRequest(client_id, client_seq, KvOp.SCAN, key, self.scan_count)
        return KvRequest(client_id, client_seq, KvOp.GET, key, 1)

    def request_size(self, request: KvRequest) -> int:
        """Wire size of a request packet."""
        return self.REQUEST_OVERHEAD + self.KEY_SIZE

    def response_size(self, request: KvRequest) -> int:
        """Wire size of a response packet.

        SCAN responses are truncated to one MTU-ish packet in the
        paper's single-packet-message model; we keep responses single
        packets too and cap the size accordingly.
        """
        payload = self.VALUE_SIZE * min(request.count, 16)
        return self.REQUEST_OVERHEAD + payload
