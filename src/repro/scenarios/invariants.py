"""Reusable invariant checks for chaos scenarios.

Every invariant is a pure function over the *report data* a scenario
run produced — the checkpoint snapshots, the post-drain final
snapshot, and the run metadata — never over live simulation objects.
That buys three things: invariants evaluate identically in worker
processes (the sweep bridge ships reports, not clusters), a pinned
golden report can be re-checked offline, and tests can seed a
violation by editing one number in a real report and assert the exact
message that fires.

The library (see :data:`INVARIANTS`):

``no-duplicate-deliveries``   in-network response filtering held: no
                              client ever saw a second response for a
                              completed request (schemes with filtering)
``no-stuck-requests``         the event queue drained, every server
                              queue is empty, no worker is busy, and —
                              absent packet drops and shed clones —
                              nothing is still outstanding at a client
``epoch-monotone``            group-table epochs never move backwards,
                              on any ToR or client, and every client
                              ends on its own ToR's epoch
``rack-local-trunks-silent``  under ``rack-local`` placement (with
                              every rack keeping ≥ 2 live servers) the
                              inter-rack trunks carried zero bytes
``fabric-reachability``       after the dust settles every client can
                              reach every live server (links up, ToRs
                              up, a live spine path where needed)
``conservation-of-completions``  per client: sent = completed +
                              outstanding; per server: accepted =
                              answered; globally: completions never
                              exceed server responses

Applicability is decided per scenario (``applies``), so e.g. the
duplicate check silently skips client-side dedup schemes and the
rack-local check skips scenarios that legally fall back to global
pairs.  A scenario spec can additionally opt out by name
(``skip_invariants``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Tuple

__all__ = [
    "FILTERING_SCHEMES",
    "INVARIANTS",
    "Invariant",
    "InvariantResult",
    "compute_unreachable",
    "evaluate_invariants",
    "invariant_names",
]

#: Schemes whose in-network response filtering guarantees exactly-once
#: delivery to the client (client-side dedup schemes — cclone,
#: netclone-nofilter — legitimately count redundant responses).
FILTERING_SCHEMES = frozenset(
    {"baseline", "netclone", "racksched", "netclone-racksched"}
)


@dataclass
class InvariantResult:
    """Outcome of one invariant over one scenario run."""

    name: str
    applicable: bool
    passed: bool
    violations: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "applicable": self.applicable,
            "passed": self.passed,
            "violations": list(self.violations),
        }


@dataclass(frozen=True)
class Invariant:
    """One named check: ``applies`` gates it, ``check`` lists violations."""

    name: str
    description: str
    applies: Callable[["ReportView"], bool]
    check: Callable[["ReportView"], List[str]]


class ReportView:
    """Read-side adapter the invariants evaluate against.

    Wraps the plain-data pieces of a scenario report (checkpoints,
    final snapshot, metadata) with the couple of accessors every
    invariant needs.  Constructed by :func:`evaluate_invariants`; tests
    build one directly from a (possibly tampered) report dict.
    """

    def __init__(
        self,
        scheme: str,
        placement: str,
        checkpoints: List[Mapping[str, Any]],
        final: Mapping[str, Any],
        meta: Mapping[str, Any],
    ):
        self.scheme = scheme
        self.placement = placement
        self.checkpoints = list(checkpoints)
        self.final = final
        self.meta = meta

    @classmethod
    def from_report(cls, report: Any) -> "ReportView":
        return cls(
            scheme=report.scheme,
            placement=report.placement,
            checkpoints=report.checkpoints,
            final=report.final,
            meta=report.meta,
        )

    # -- helpers -------------------------------------------------------
    def series(self) -> List[Mapping[str, Any]]:
        """Checkpoints in time order, final snapshot last."""
        return self.checkpoints + [self.final]

    def stamp(self, snap: Mapping[str, Any]) -> str:
        return f"t={snap['time_ns']}ns ({snap.get('label', '?')})"


# ----------------------------------------------------------------------
# Checks
# ----------------------------------------------------------------------
def _applies_always(view: ReportView) -> bool:
    return True


def _check_no_duplicates(view: ReportView) -> List[str]:
    violations = []
    for snap in view.series():
        if snap["redundant"] > 0:
            violations.append(
                f"{snap['redundant']} duplicate deliveries by "
                f"{view.stamp(snap)}: a client received a second response "
                "for an already-completed request despite in-network "
                "filtering"
            )
            break
    return violations


def _check_no_stuck(view: ReportView) -> List[str]:
    violations = []
    if not view.meta.get("drained", True):
        violations.append(
            "event queue never drained after the horizon "
            f"({view.meta.get('drain_events', '?')} post-horizon events ran "
            "without emptying it) — scheduler deadlock or livelock"
        )
    final = view.final
    for sid, depth in enumerate(final["server_queue"]):
        if depth != 0:
            violations.append(
                f"srv{sid + 1} still holds {depth} queued request(s) after "
                "the run drained"
            )
    for sid, busy in enumerate(final["server_busy"]):
        if busy != 0:
            violations.append(
                f"srv{sid + 1} still reports {busy} busy worker(s) after "
                "the run drained"
            )
    # The loss budget: besides link/NIC/powered-off-switch drops, the
    # pipeline itself drops packets whose target server left the
    # address table mid-rebuild (switch_program_drops), and a shed
    # clone both removes one copy of its own request and leaves a stale
    # fingerprint in the approximate response filter that can falsely
    # eat a later request's first response (request ids are
    # pool-recycled, exactly like real NetClone's finite id space).
    # Real deployments absorb all of these via client retransmission,
    # which the simulator deliberately does not model; a lost request
    # with a zero budget is therefore genuinely stuck.
    drops = (
        final["switch_drops_down"]
        + final["link_drops"]
        + final.get("host_rx_drops", 0)
        + final.get("switch_program_drops", 0)
        + final.get("clones_dropped", 0)
    )
    if drops == 0 and final["outstanding"] != 0:
        violations.append(
            f"{final['outstanding']} request(s) never completed although "
            "no packet was dropped and no clone was shed anywhere — they "
            "are stuck, not lost"
        )
    return violations


def _applies_epochs(view: ReportView) -> bool:
    return bool(view.final.get("program_epochs"))


def _check_epoch_monotone(view: ReportView) -> List[str]:
    violations = []
    series = view.series()
    num_programs = len(view.final.get("program_epochs", ()))
    for rack in range(num_programs):
        last = None
        for snap in series:
            epoch = snap["program_epochs"][rack]
            if epoch is None:
                continue
            if last is not None and epoch < last:
                violations.append(
                    f"ToR {rack} group-table epoch went backwards "
                    f"({last} -> {epoch}) by {view.stamp(snap)}"
                )
            last = epoch
    last_handler = None
    for snap in series:
        epoch = snap.get("handler_epoch")
        if epoch is None:
            continue
        if last_handler is not None and epoch < last_handler:
            violations.append(
                f"control-plane epoch went backwards ({last_handler} -> "
                f"{epoch}) by {view.stamp(snap)}"
            )
        last_handler = epoch
        for client, cepoch in enumerate(snap.get("client_epochs", ())):
            if cepoch is not None and cepoch > epoch:
                violations.append(
                    f"client{client + 1} carries table epoch {cepoch} ahead "
                    f"of the control plane's {epoch} at {view.stamp(snap)}"
                )
    # After the last rebuild lands, every client must sit on its own
    # ToR's table — a client left on a stale epoch samples dead pairs.
    final = view.final
    if last_handler is not None and last_handler > 0:
        client_racks = view.meta.get("client_racks", ())
        for client, cepoch in enumerate(final.get("client_epochs", ())):
            if cepoch is None:
                continue
            rack = client_racks[client] if client < len(client_racks) else 0
            tor_epoch = final["program_epochs"][rack]
            if tor_epoch is not None and cepoch != tor_epoch:
                violations.append(
                    f"client{client + 1} ended on table epoch {cepoch} but "
                    f"its ToR {rack} is at {tor_epoch} — stale table "
                    "survived the last rebuild"
                )
    return violations


def _applies_rack_local(view: ReportView) -> bool:
    return (
        view.placement == "rack-local"
        and view.meta.get("num_racks", 1) > 1
        and view.meta.get("min_rack_live", 2) >= 2
    )


def _check_rack_local_silent(view: ReportView) -> List[str]:
    for snap in view.series():
        if snap["trunk_tx_bytes"] > 0:
            return [
                f"{snap['trunk_tx_bytes']} bytes crossed the inter-rack "
                f"trunks by {view.stamp(snap)} under rack-local placement "
                "with every rack holding >= 2 live servers — a clone "
                "escaped its rack"
            ]
    return []


def _applies_reachability(view: ReportView) -> bool:
    return "unreachable" in view.final


def _check_reachability(view: ReportView) -> List[str]:
    return [
        f"no path from {pair[0]} to live server {pair[1]}: {pair[2]}"
        for pair in view.final["unreachable"]
    ]


def _check_conservation(view: ReportView) -> List[str]:
    violations = []
    final = view.final
    for client, sent in enumerate(final["client_sent"]):
        completed = final["client_completed"][client]
        outstanding = final["client_outstanding"][client]
        if sent != completed + outstanding:
            violations.append(
                f"client{client + 1} conservation broken: sent {sent} != "
                f"completed {completed} + outstanding {outstanding}"
            )
    for sid, accepted in enumerate(final["server_accepted"]):
        answered = final["server_responses"][sid]
        if accepted != answered:
            violations.append(
                f"srv{sid + 1} accepted {accepted} request(s) but answered "
                f"{answered}"
            )
    total_completed = sum(final["client_completed"]) + final["redundant"]
    total_responses = sum(final["server_responses"])
    if total_completed > total_responses:
        violations.append(
            f"clients saw {total_completed} response(s) (completions + "
            f"duplicates) but servers only sent {total_responses}"
        )
    return violations


INVARIANTS: Dict[str, Invariant] = {
    inv.name: inv
    for inv in (
        Invariant(
            "no-duplicate-deliveries",
            "in-network filtering delivered every response exactly once",
            applies=lambda v: v.scheme in FILTERING_SCHEMES,
            check=_check_no_duplicates,
        ),
        Invariant(
            "no-stuck-requests",
            "queues drained, workers idle, nothing outstanding sans drops",
            applies=_applies_always,
            check=_check_no_stuck,
        ),
        Invariant(
            "epoch-monotone",
            "group-table epochs only move forward, clients end current",
            applies=_applies_epochs,
            check=_check_epoch_monotone,
        ),
        Invariant(
            "rack-local-trunks-silent",
            "rack-local placement kept every clone off the trunks",
            applies=_applies_rack_local,
            check=_check_rack_local_silent,
        ),
        Invariant(
            "fabric-reachability",
            "every client can reach every live server after recovery",
            applies=_applies_reachability,
            check=_check_reachability,
        ),
        Invariant(
            "conservation-of-completions",
            "sent = completed + outstanding; accepted = answered",
            applies=_applies_always,
            check=_check_conservation,
        ),
    )
}


def invariant_names() -> Tuple[str, ...]:
    """Registered invariant names, in library order."""
    return tuple(INVARIANTS)


def evaluate_invariants(
    view: ReportView, skip: Tuple[str, ...] = ()
) -> List[InvariantResult]:
    """Run every registered invariant against *view*.

    Skipped or inapplicable invariants report ``applicable=False`` and
    pass vacuously, so a report always carries one result per library
    entry — the sweep bridge can pivot on names without existence
    checks.
    """
    results = []
    for invariant in INVARIANTS.values():
        if invariant.name in skip or not invariant.applies(view):
            results.append(InvariantResult(invariant.name, False, True))
            continue
        violations = invariant.check(view)
        results.append(
            InvariantResult(invariant.name, True, not violations, violations)
        )
    return results


# ----------------------------------------------------------------------
# Structural reachability (computed by the runner into the final
# snapshot; checked data-side by ``fabric-reachability``).
# ----------------------------------------------------------------------
def compute_unreachable(cluster: Any, live_ids: List[int]) -> List[List[str]]:
    """Client → live-server pairs with no working path, with reasons.

    A structural walk of the fabric (no probe traffic): both access
    links must be up, both ToRs forwarding, and a cross-rack pair needs
    a live path between the racks — an up trunk on two-rack fabrics, at
    least one active *and* powered spine on spine-leaf.  Runs after the
    drain, when every restore has landed, so any hole is a real one.
    """
    fabric = cluster.topology
    problems: List[List[str]] = []
    spine_path_ok, spine_reason = _spine_path(fabric)
    for client in cluster.clients:
        client_rack = _rack_of(cluster, "client", client.client_id)
        client_link = fabric.link_of(client)
        for sid in live_ids:
            server = cluster.servers[sid]
            reason = None
            server_rack = cluster.server_racks[sid]
            if getattr(client_link, "down", False):
                reason = f"{client.name}'s access link is down"
            elif getattr(fabric.link_of(server), "down", False):
                reason = f"{server.name}'s access link is down"
            elif getattr(fabric.tors[client_rack], "down", False):
                reason = f"ToR {client_rack} is powered off"
            elif getattr(fabric.tors[server_rack], "down", False):
                reason = f"ToR {server_rack} is powered off"
            elif client_rack != server_rack:
                trunk_down = _trunk_down(fabric)
                if trunk_down:
                    reason = trunk_down
                elif spine_path_ok is False:
                    reason = spine_reason
            if reason is not None:
                problems.append([client.name, server.name, reason])
    return problems


def _rack_of(cluster: Any, role: str, index: int) -> int:
    if role == "client":
        racks = cluster.client_racks
        return racks[index] if index < len(racks) else 0
    return cluster.server_racks[index]


def _spine_path(fabric: Any) -> Tuple[Any, str]:
    """(usable, reason) for the spine layer; usable=None if no spines."""
    spines = getattr(fabric, "spines", None)
    if not spines:
        return None, ""
    active = getattr(fabric, "active_spines", lambda: [])()
    usable = [s for s in active if not getattr(spines[s], "down", False)]
    if usable:
        return True, ""
    return False, (
        f"no usable spine: active={list(active)}, "
        f"powered={[s for s in range(len(spines)) if not spines[s].down]}"
    )


def _trunk_down(fabric: Any) -> str:
    """Non-empty reason when a trunk-style fabric lost its trunk."""
    if getattr(fabric, "spines", None):
        return ""
    trunks = list(getattr(fabric, "trunks", ()))
    if trunks and all(getattr(t, "down", False) for t in trunks):
        return "every inter-rack trunk is down"
    return ""
