#!/usr/bin/env python3
"""Tail-at-scale for a replicated key-value store (the §5.5 scenario).

A microservice fans requests out to a Redis-like replicated store:
99 % GETs (~50 µs) with 1 % SCANs (~2.5 ms) hiding in the mix.  The
99th-percentile sits exactly at the GET/SCAN boundary, so anything
that delays even 1 % of GETs — execution jitter, head-of-line blocking
behind a SCAN — blows the tail up by an order of magnitude.

This example measures Baseline, C-Clone and NetClone at a low and a
moderate operating point and prints the p99 improvement, reproducing
the mechanism behind the paper's 22.6× Figure 11 headline.

Run:  python examples/kv_tail_at_scale.py
"""

from repro.experiments.common import ClusterConfig, run_point
from repro.experiments.specs import KvSpec
from repro.sim.units import ms


def main() -> None:
    print(__doc__)
    spec = KvSpec(cost_model="redis", scan_fraction=0.01, num_keys=200_000)
    capacity = 6 * 8 / (spec.mean_service_ns / 1e9)
    print(f"cluster capacity ~ {capacity / 1e6:.2f} MRPS "
          f"(48 workers x {spec.mean_service_ns / 1e3:.0f} us mean service)\n")

    header = f"{'scheme':<10} {'load':<8} {'tput MRPS':>10} {'p50 us':>8} {'p99 us':>9}"
    for fraction in (0.15, 0.5):
        print(f"== offered load {fraction * 100:.0f}% of capacity ==")
        print(header)
        p99 = {}
        for scheme in ("baseline", "cclone", "netclone"):
            point = run_point(
                ClusterConfig(
                    scheme=scheme,
                    workload=spec,
                    workers_per_server=8,
                    rate_rps=capacity * fraction,
                    warmup_ns=ms(5),
                    measure_ns=ms(30),
                    drain_ns=ms(10),
                    seed=11,
                )
            )
            p99[scheme] = point.p99_us
            print(
                f"{scheme:<10} {fraction * 100:>5.0f}%  {point.throughput_mrps:>10.3f} "
                f"{point.p50_us:>8.1f} {point.p99_us:>9.1f}"
            )
        improvement = p99["baseline"] / p99["netclone"]
        print(f"-> NetClone p99 improvement over Baseline: {improvement:.1f}x\n")

    print("At low load the boundary effect dominates (jittered GETs masked by")
    print("cloning); as load rises queues build, cloning throttles itself, and")
    print("the improvement narrows — exactly the Figure 11 shape.")


if __name__ == "__main__":
    main()
