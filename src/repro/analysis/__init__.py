"""Analysis plane: analytic queueing models and the detlint engine.

Two halves share this package:

* **Queueing models** (:mod:`repro.analysis.queueing`) — closed-form
  results the test suite checks simulated clusters against: M/M/1 and
  M/M/c (Erlang-C) waiting times, the latency distribution of cloned
  exponential service, the C-Clone utilisation doubling.
* **Static analysis** (:mod:`repro.analysis.core` plus the
  ``rules_*`` modules) — the detlint AST rule engine behind
  ``repro-netclone lint`` / ``tools/detlint.py`` / ``make lint``:
  determinism, resource-safety and plugin-hygiene rules registered as
  plugins on the shared registry machinery, with inline
  ``# detlint: ignore[rule]`` suppressions and a checked-in baseline.

The runtime twin of the static half (packet ledgers, RNG draw
accounting behind ``REPRO_SANITIZE=1``) lives in
:mod:`repro.sim.sanitize`.
"""

from repro.analysis.core import (
    DEFAULT_TARGETS,
    Finding,
    RuleSpec,
    describe_rules,
    filter_baselined,
    format_findings,
    get_rule,
    iter_rules,
    lint_paths,
    lint_source,
    load_baseline,
    register_rule,
    rule_names,
    unregister_rule,
    write_baseline,
)
from repro.analysis.queueing import (
    cclone_effective_utilisation,
    cloned_exponential_p99,
    erlang_c,
    exponential_p99,
    mm1_mean_wait,
    mmc_mean_wait,
)

__all__ = [
    "DEFAULT_TARGETS",
    "Finding",
    "RuleSpec",
    "cclone_effective_utilisation",
    "cloned_exponential_p99",
    "describe_rules",
    "erlang_c",
    "exponential_p99",
    "filter_baselined",
    "format_findings",
    "get_rule",
    "iter_rules",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "mm1_mean_wait",
    "mmc_mean_wait",
    "register_rule",
    "rule_names",
    "unregister_rule",
    "write_baseline",
]
