"""In-memory key-value store substrate (Redis- and Memcached-like)."""

from repro.kvstore.cost import KvCostModel, MemcachedCostModel, RedisCostModel
from repro.kvstore.store import KeyValueStore

__all__ = [
    "KeyValueStore",
    "KvCostModel",
    "MemcachedCostModel",
    "RedisCostModel",
]
