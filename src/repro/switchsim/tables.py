"""Exact-match match-action tables.

Match-action tables differ from register arrays in two ways that
matter to the model: their entries are installed by the **control
plane** (slow, not line-rate — §3.8 contrasts this with data-plane
register updates), and a packet may *look up* a table only in the
stage the table occupies.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import StageAccessError, TableError

__all__ = ["MatchActionTable"]


class MatchActionTable:
    """An exact-match table mapping integer keys to action data."""

    def __init__(self, name: str, stage: int, max_entries: int = 65536):
        if stage < 0:
            raise TableError(f"table {name!r} needs a valid stage")
        if max_entries <= 0:
            raise TableError(f"table {name!r} needs positive capacity")
        self.name = name
        self.stage = stage
        self.max_entries = max_entries
        self._entries: Dict[int, Any] = {}
        self.lookup_count = 0
        self.miss_count = 0
        #: Number of control-plane updates applied (instrumentation).
        self.update_count = 0

    # -- data plane ------------------------------------------------------
    def lookup(self, key: int, stage: int) -> Optional[Any]:
        """Data-plane lookup from *stage*; returns action data or ``None``."""
        if stage != self.stage:
            raise StageAccessError(
                f"table {self.name!r} lives in stage {self.stage}, "
                f"looked up from stage {stage}"
            )
        self.lookup_count += 1
        value = self._entries.get(key)
        if value is None:
            self.miss_count += 1
        return value

    # -- control plane ----------------------------------------------------
    def install(self, key: int, value: Any) -> None:
        """Install or overwrite one entry (control-plane operation)."""
        if key not in self._entries and len(self._entries) >= self.max_entries:
            raise TableError(f"table {self.name!r} full ({self.max_entries} entries)")
        self._entries[key] = value
        self.update_count += 1

    def remove(self, key: int) -> None:
        """Remove one entry; missing keys are an error (operator bug)."""
        if key not in self._entries:
            raise TableError(f"table {self.name!r} has no entry for key {key}")
        del self._entries[key]
        self.update_count += 1

    def entries(self) -> Dict[int, Any]:
        """Snapshot of the installed entries."""
        return dict(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MatchActionTable {self.name} stage={self.stage} entries={len(self)}>"
