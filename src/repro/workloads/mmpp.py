"""Open-loop arrival modulation: MMPP bursts and diurnal waves.

The seed's :class:`~repro.apps.client.OpenLoopClient` draws plain
exponential inter-arrival gaps — a homogeneous Poisson process.  Real
datacenter request streams are burstier: traffic arrives in on/off
waves (incast bursts, batch jobs) and follows slow daily cycles whose
phase differs per tenant.  This module provides drop-in gap generators
for both, consumed through the client's ``arrival_process`` hook:

* :class:`MmppArrivals` — a two-state Markov-modulated Poisson
  process.  The stream alternates between a calm state and a burst
  state whose instantaneous rate is ``burst``× higher; state sojourns
  are exponential.  Rate multipliers are normalised so the long-run
  average rate equals the nominal rate exactly, which keeps offered
  load (the sweep axis) comparable with the Poisson baseline.
* :class:`DiurnalArrivals` — a sinusoidally rate-modulated Poisson
  process, λ(t) = base·(1 + A·sin(2π(t/P + phase))).  Different
  clients get different phases (see
  :class:`~repro.experiments.specs.DiurnalSpec`), modelling tenants
  whose peaks don't align.

Both generators keep an **internal clock** advanced by every gap they
emit.  Because the client consumes gaps in order and each gap extends
simulated time by exactly that amount, the internal clock tracks
simulation time even when gaps are pre-drawn ahead of it
(``ARRIVAL_PREDRAW``) — state sojourns and sine phases land at the
right sim instants regardless of when the draws happen.
"""

from __future__ import annotations

import math
import random

from repro.errors import WorkloadError

__all__ = ["DiurnalArrivals", "MmppArrivals"]


class MmppArrivals:
    """Two-state MMPP gap generator for one open-loop client.

    :param rng: the client's arrival RNG stream.
    :param rate_rps: nominal (long-run average) request rate.
    :param burst: instantaneous-rate ratio burst-state / calm-state
        (> 1); ``burst=8`` means bursts run eight times hotter than
        calm stretches.
    :param high_fraction: long-run fraction of time spent in the burst
        state, in (0, 1).
    :param period_s: mean length of one calm+burst cycle in seconds —
        the burstiness timescale.
    """

    __slots__ = (
        "burst",
        "high_fraction",
        "period_s",
        "rate_rps",
        "rng",
        "_high",
        "_mult_high",
        "_mult_low",
        "_sojourn_high_s",
        "_sojourn_left_s",
        "_sojourn_low_s",
    )

    def __init__(
        self,
        rng: random.Random,
        rate_rps: float,
        burst: float = 8.0,
        high_fraction: float = 0.1,
        period_s: float = 1e-3,
    ):
        if rate_rps <= 0:
            raise WorkloadError("rate_rps must be positive")
        if burst <= 1.0:
            raise WorkloadError("burst must exceed 1 (use Poisson otherwise)")
        if not 0.0 < high_fraction < 1.0:
            raise WorkloadError("high_fraction must lie in (0, 1)")
        if period_s <= 0:
            raise WorkloadError("period_s must be positive")
        self.rng = rng
        self.rate_rps = rate_rps
        self.burst = burst
        self.high_fraction = high_fraction
        self.period_s = period_s
        # Normalise so f·m_high + (1-f)·m_low = 1: the long-run rate is
        # exactly the nominal rate whatever burst/high_fraction say.
        self._mult_low = 1.0 / (high_fraction * burst + (1.0 - high_fraction))
        self._mult_high = burst * self._mult_low
        self._sojourn_high_s = period_s * high_fraction
        self._sojourn_low_s = period_s * (1.0 - high_fraction)
        self._high = False
        self._sojourn_left_s = rng.expovariate(1.0) * self._sojourn_low_s

    def set_rate(self, rate_rps: float) -> None:
        """Retarget the nominal rate (state machine keeps its phase)."""
        if rate_rps <= 0:
            raise WorkloadError("rate_rps must be positive")
        self.rate_rps = rate_rps

    def next_gap(self) -> int:
        """Inter-arrival gap to the next request, integer ns ≥ 1.

        Exact simulation by competing exponentials: a candidate arrival
        is drawn at the current state's instantaneous rate; if it lands
        beyond the state's residual sojourn, time advances to the
        switch and the candidate is redrawn in the new state — valid
        because the Poisson arrival in each state is memoryless.
        """
        rng = self.rng
        gap_s = 0.0
        while True:
            rate = self.rate_rps * (self._mult_high if self._high else self._mult_low)
            candidate_s = rng.expovariate(1.0) / rate
            if candidate_s <= self._sojourn_left_s:
                self._sojourn_left_s -= candidate_s
                gap_s += candidate_s
                return int(gap_s * 1e9) + 1
            gap_s += self._sojourn_left_s
            self._high = not self._high
            mean = self._sojourn_high_s if self._high else self._sojourn_low_s
            self._sojourn_left_s = rng.expovariate(1.0) * mean


class DiurnalArrivals:
    """Sinusoidally modulated Poisson gap generator.

    λ(t) = ``rate_rps``·(1 + ``amplitude``·sin(2π(t/``period_s`` +
    ``phase``))), where *t* is the generator's internal clock.  Each
    gap is drawn exponentially at the rate in force when it starts —
    exact for rates that vary slowly against the mean gap, which holds
    whenever ``period_s`` spans many arrivals (the intended regime;
    amplitudes near 1 with per-gap-scale periods would need thinning).

    The sine integrates to zero over a full period, so the long-run
    average rate equals the nominal rate.
    """

    __slots__ = ("amplitude", "period_s", "phase", "rate_rps", "rng", "_clock_s")

    def __init__(
        self,
        rng: random.Random,
        rate_rps: float,
        amplitude: float = 0.5,
        period_s: float = 2e-3,
        phase: float = 0.0,
    ):
        if rate_rps <= 0:
            raise WorkloadError("rate_rps must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise WorkloadError("amplitude must lie in [0, 1)")
        if period_s <= 0:
            raise WorkloadError("period_s must be positive")
        self.rng = rng
        self.rate_rps = rate_rps
        self.amplitude = amplitude
        self.period_s = period_s
        self.phase = phase % 1.0
        self._clock_s = 0.0

    def set_rate(self, rate_rps: float) -> None:
        """Retarget the nominal rate (the wave keeps its phase)."""
        if rate_rps <= 0:
            raise WorkloadError("rate_rps must be positive")
        self.rate_rps = rate_rps

    def rate_at(self, t_s: float) -> float:
        """Instantaneous rate at internal-clock time *t_s*."""
        wave = math.sin(2.0 * math.pi * (t_s / self.period_s + self.phase))
        return self.rate_rps * (1.0 + self.amplitude * wave)

    def next_gap(self) -> int:
        """Inter-arrival gap to the next request, integer ns ≥ 1."""
        gap_s = self.rng.expovariate(1.0) / self.rate_at(self._clock_s)
        self._clock_s += gap_s
        return int(gap_s * 1e9) + 1
