"""Topology plugin registry, multi-rack fabrics, and their composition
with the scheme registry / parallel sweep engine.

Covers the registry round-trip, fabric wiring and placement, per-ToR
program installation with SWID gating, multi-rack determinism
(serial vs parallel, star vs degenerate two-rack), the fig17 harness,
and the CLI surface (``topologies`` subcommand, ``--topology``).
"""

import pytest
from helpers import assert_points_identical, tiny_config

from repro.cli import main
from repro.errors import ExperimentError, NetworkError
from repro.experiments.common import Cluster, ClusterConfig, run_point, run_sweep
from repro.experiments.topologies import (
    TopologySpec,
    describe_topologies,
    get_topology,
    register_topology,
    topology_names,
    unregister_topology,
)
from repro.net.host import Host
from repro.net.packet import Packet
from repro.net.topology import SingleRackFabric, SpineLeafFabric, TwoRackFabric
from repro.sim.core import Simulator
from repro.sim.units import ms
from repro.switchsim.switch import ProgrammableSwitch


# ----------------------------------------------------------------------
# Registry round-trip
# ----------------------------------------------------------------------
def test_builtin_topologies_registered():
    names = topology_names()
    for expected in ("star", "two_rack", "spine_leaf"):
        assert expected in names
    assert any("spine_leaf" in line for line in describe_topologies())


def test_aliases_resolve_and_normalise_in_config():
    assert get_topology("spine-leaf").name == "spine_leaf"
    assert get_topology("2rack").name == "two_rack"
    assert ClusterConfig(topology="clos").topology == "spine_leaf"


def test_unknown_topology_raises_with_known_names():
    with pytest.raises(ExperimentError, match="star"):
        get_topology("nope")
    with pytest.raises(ExperimentError):
        ClusterConfig(topology="nope")


def test_register_lookup_unregister_round_trip():
    @register_topology
    def _tmp_topology() -> TopologySpec:
        return TopologySpec(
            name="tmp-test-fabric",
            description="temporary",
            aliases=("tmp-fabric-alias",),
            make_fabric=lambda ctx: SingleRackFabric(ctx.sim, ctx.make_switch),
        )

    try:
        assert get_topology("tmp-fabric-alias").name == "tmp-test-fabric"
        # End-to-end through the generic Cluster with zero common.py edits.
        point = run_point(tiny_config(topology="tmp-test-fabric"))
        assert point.samples > 0
        with pytest.raises(ExperimentError, match="already registered"):
            register_topology(
                TopologySpec(
                    name="tmp-test-fabric",
                    description="dup",
                    make_fabric=lambda ctx: None,
                )
            )
    finally:
        unregister_topology("tmp-test-fabric")
    with pytest.raises(ExperimentError):
        get_topology("tmp-test-fabric")
    with pytest.raises(ExperimentError):
        unregister_topology("tmp-test-fabric")


def test_register_rejects_non_spec_factory():
    with pytest.raises(ExperimentError, match="TopologySpec"):
        register_topology(lambda: 42)


# ----------------------------------------------------------------------
# Fabric wiring
# ----------------------------------------------------------------------
def make_switch_factory(sim):
    return lambda name: ProgrammableSwitch(sim, name=name)


def test_two_rack_fabric_places_roles_and_routes():
    sim = Simulator()
    fabric = TwoRackFabric(sim, make_switch_factory(sim))
    assert [tor.name for tor in fabric.tors] == ["tor1", "tor2"]
    server = Host(sim, "s1", fabric.allocate_ip("server", 0))
    client = Host(sim, "c1", fabric.allocate_ip("client", 0))
    fabric.attach(server, "server", 0)
    fabric.attach(client, "client", 0)
    # Server lives on rack 1's subnet, client on rack 0's.
    assert (server.ip >> 8) & 0xFF == 2
    assert (client.ip >> 8) & 0xFF == 1
    # Cross-rack routes point at the trunk ports.
    assert fabric.tors[0].routes[server.ip] == fabric.uplink_ports[0]
    assert fabric.tors[1].routes[client.ip] == fabric.uplink_ports[1]
    assert fabric.link_of(server) is fabric.stars[1].link_of(server)


def test_two_rack_fabric_rejects_bad_placement():
    sim = Simulator()
    with pytest.raises(NetworkError):
        TwoRackFabric(sim, make_switch_factory(sim), server_rack=2)
    with pytest.raises(NetworkError):
        TwoRackFabric(sim, make_switch_factory(sim), coordinator_rack=5)


def test_rack_full_raises_clear_error_not_port_collision():
    sim = Simulator()
    make_switch = lambda name: ProgrammableSwitch(sim, name=name, num_ports=3)
    fabric = TwoRackFabric(sim, make_switch)  # trunk takes port 2 of each ToR
    for index in range(2):
        host = Host(sim, f"c{index}", fabric.allocate_ip("client", index))
        fabric.attach(host, "client", index)
    overflow = Host(sim, "c2", fabric.allocate_ip("client", 2))
    with pytest.raises(NetworkError, match="rack full"):
        fabric.attach(overflow, "client", 2)


def test_config_topology_none_means_star():
    assert ClusterConfig(topology=None).topology == "star"


def test_spine_leaf_fabric_round_robin_and_ecmp_routes():
    sim = Simulator()
    fabric = SpineLeafFabric(sim, make_switch_factory(sim), racks=3, spines=2)
    assert fabric.num_racks == 3 and len(fabric.spines) == 2
    assert fabric.rack_of("server", 0) == 0
    assert fabric.rack_of("server", 4) == 1
    assert fabric.rack_of("coordinator", 5) == 0
    host = Host(sim, "h", fabric.allocate_ip("server", 1))
    fabric.attach(host, "server", 1)
    # Every spine knows the way down; remote ToRs steer through the
    # spine policy, which defaults to ECMP pinning one spine by ip.
    for spine in fabric.spines:
        assert spine.routes[host.ip] == 1
    chosen = host.ip % 2
    probe = Packet(src=1, dst=host.ip, sport=1, dport=1, size=64)
    for t in (0, 2):
        selector = fabric.tors[t].routes[host.ip]
        assert callable(selector)
        assert selector(probe) == fabric._uplink_port[t][chosen]
    # The local ToR routes directly, not via a spine.
    assert fabric.tors[1].routes[host.ip] < fabric.tors[1].num_ports - 2


def test_spine_leaf_fabric_validation():
    sim = Simulator()
    with pytest.raises(NetworkError):
        SpineLeafFabric(sim, make_switch_factory(sim), racks=0)
    with pytest.raises(NetworkError):
        SpineLeafFabric(sim, make_switch_factory(sim), spines=0)


# ----------------------------------------------------------------------
# Cluster composition: per-ToR programs + SWID gating
# ----------------------------------------------------------------------
def test_cluster_installs_one_program_per_tor_with_rack_swid():
    cluster = Cluster(tiny_config(topology="spine_leaf",
                                  topology_params={"racks": 2, "spines": 1}))
    assert len(cluster.tors) == 2
    assert len(cluster.programs) == 2
    assert [p.switch_id for p in cluster.programs] == [1, 2]
    assert cluster.program is cluster.programs[0]
    assert cluster.switch is cluster.tors[0]
    # Spines carry no program: plain L3.
    spines = [s for s in cluster.switches if s not in cluster.tors]
    assert spines and all(s.program is None for s in spines)


def test_two_rack_only_client_tor_does_netclone_work():
    cluster = Cluster(tiny_config(topology="two_rack"))
    cluster.start()
    cluster.run()
    client_program, server_program = cluster.programs
    # The client-side ToR assigned sequence numbers; the server-side
    # ToR never did, because the SWID gate excluded stamped packets.
    assert client_program.seq.peek(0) > 0
    assert server_program.seq.peek(0) == 0
    assert cluster.tors[0].counters.get("nc_cloned") > 0
    assert cluster.tors[1].counters.get("nc_cloned") == 0
    point = cluster.load_point()
    assert point.extra["redundant_responses"] == 0
    assert point.extra["nc_filtered"] > 0


def test_multirack_clients_see_no_redundant_responses_on_spine_leaf():
    point = run_point(
        tiny_config(topology="spine_leaf",
                    topology_params={"racks": 3, "spines": 2})
    )
    assert point.samples > 0
    assert point.extra["nc_cloned"] > 0
    assert point.extra["redundant_responses"] == 0


def test_laedge_coordinator_composes_with_two_rack():
    point = run_point(tiny_config(scheme="laedge", topology="two_rack"))
    assert point.samples > 0
    assert "coordinator_queue" in point.extra


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_star_matches_two_rack_with_one_rack_degenerate():
    star = run_point(tiny_config())
    degenerate = run_point(
        tiny_config(topology="two_rack",
                    topology_params={"client_rack": 0, "server_rack": 0})
    )
    assert_points_identical(star, degenerate)


def test_star_matches_single_rack_spine_leaf():
    star = run_point(tiny_config())
    one_rack = run_point(
        tiny_config(topology="spine_leaf",
                    topology_params={"racks": 1, "spines": 1})
    )
    assert_points_identical(star, one_rack)


@pytest.mark.slow
@pytest.mark.parametrize("topology", ["two_rack", "spine_leaf"])
def test_multirack_sweep_parallel_matches_serial(topology):
    loads = [0.1e6, 0.15e6, 0.2e6]
    serial = run_sweep(tiny_config(topology=topology), loads)
    parallel = run_sweep(tiny_config(topology=topology), loads, jobs=4)
    assert len(serial.points) == len(parallel.points) == len(loads)
    for a, b in zip(serial.points, parallel.points):
        assert_points_identical(a, b)


def test_run_sweep_topology_override():
    result = run_sweep(tiny_config(), [0.1e6], topology="two-rack")
    assert result.points[0].samples > 0


# ----------------------------------------------------------------------
# bounded-random plugin × topology axis
# ----------------------------------------------------------------------
def test_bounded_random_registered_and_visible():
    from repro.experiments.schemes import describe_schemes, get_scheme

    assert get_scheme("bounded_random").name == "bounded-random"  # alias
    assert any("bounded-random" in line for line in describe_schemes())


def test_bounded_random_respects_bound_with_retries():
    import random
    from types import SimpleNamespace

    from repro.baselines.bounded_random import BoundedRandomClient
    from repro.metrics.latency import LatencyRecorder

    class FakeWorkload:
        def make_request(self, client_id, seq):
            return SimpleNamespace(client_id=client_id, client_seq=seq)

        def request_size(self, request):
            return 100

    sim = Simulator()
    workload = FakeWorkload()
    client = BoundedRandomClient(
        sim,
        "c1",
        1,
        client_id=0,
        workload=workload,
        rate_rps=1e6,
        recorder=LatencyRecorder(warmup_ns=0, end_ns=10**9),
        rng=random.Random(1),
        server_ips=[10, 11],
        bound=1,
        max_retries=8,
    )
    # With bound=1 and generous retries, the first two requests must
    # land on distinct servers (the second draw re-rolls off the busy
    # one with probability 1 - 0.5^8).
    destinations = set()
    for seq in (1, 2):
        client._seq = seq
        destinations.add(client.build_packets(workload.make_request(0, seq))[0].dst)
    assert destinations == {10, 11}
    assert sum(client._outstanding_at.values()) == 2

    with pytest.raises(ExperimentError):
        BoundedRandomClient(
            sim, "c2", 2, client_id=1, workload=workload, rate_rps=1e6,
            recorder=LatencyRecorder(warmup_ns=0, end_ns=10**9),
            rng=random.Random(2), server_ips=[10], bound=0,
        )


def test_bounded_random_runs_on_two_rack_fabric():
    # Second zero-edit plugin path, exercised on the new topology axis.
    result = run_sweep(
        tiny_config(scheme="bounded-random", topology="two_rack"), [0.1e6, 0.2e6]
    )
    assert result.scheme == "bounded-random"
    assert all(point.samples > 0 for point in result.points)


# ----------------------------------------------------------------------
# fig17 harness + CLI surface
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_cli_run_fig17_spine_leaf_parallel(capsys):
    # The acceptance path: `repro run fig17 --topology spine_leaf --jobs 4`.
    assert main(
        ["run", "fig17", "--topology", "spine_leaf", "--jobs", "4",
         "--scale", "0.05"]
    ) == 0
    out = capsys.readouterr().out
    assert "Figure 17 (spine_leaf)" in out
    assert "netclone" in out


def test_cli_topologies_subcommand(capsys):
    assert main(["topologies"]) == 0
    out = capsys.readouterr().out
    assert "star" in out and "two_rack" in out and "spine_leaf" in out


def test_cli_list_mentions_topologies_and_fig17(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "topologies" in out
    assert "fig17" in out


def test_cli_rejects_unknown_topology():
    with pytest.raises(ExperimentError, match="unknown topology"):
        main(["fig17", "--topology", "moebius-strip"])


# ----------------------------------------------------------------------
# No bespoke wiring left: the compat shim delegates to the fabric
# ----------------------------------------------------------------------
def test_two_rack_topology_shim_is_fabric_backed():
    from repro.core.multirack import TwoRackTopology

    sim = Simulator()
    a = ProgrammableSwitch(sim, name="tor-a")
    b = ProgrammableSwitch(sim, name="tor-b")
    fabric = TwoRackTopology(sim, a, b)
    assert isinstance(fabric, TwoRackFabric)
    assert fabric.client_switch is a and fabric.server_switch is b
    server = Host(sim, "s1", fabric.server_star.allocate_ip())
    port = fabric.add_server(server)
    assert fabric.server_star.port_of["s1"] == port
    assert a.routes[server.ip] == fabric.uplink_port_a


# ----------------------------------------------------------------------
# Express trunk forwarding across a spine fail/restore cycle
# ----------------------------------------------------------------------
class _Sink(Host):
    """A host that records everything delivered to it."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = []

    def handle(self, packet):
        self.received.append(packet)


def test_express_path_declines_reenable_after_fail_restore():
    """``fail()`` clears the precomputed trunk hop; ``restore_spine``
    must *not* re-arm it (the express promise is "never fails
    mid-run", broken once it did) — and routing must stay correct
    through the whole cycle on the evented path."""
    sim = Simulator()
    fabric = SpineLeafFabric(
        sim, make_switch_factory(sim), racks=2, spines=2, express_spines=True
    )
    # The opt-in armed every (plain, programless) spine.
    assert all(spine._express_ok for spine in fabric.spines)

    server = _Sink(sim, "srv", fabric.allocate_ip("server", 0))
    fabric.attach(server, "server", 0)  # rack 0
    client = _Sink(sim, "cli", fabric.allocate_ip("client", 1))
    fabric.attach(client, "client", 1)  # rack 1 — crosses the trunks

    chosen = server.ip % 2  # ECMP pins the destination to this spine

    def cross(expect_total):
        client.send(Packet(src=client.ip, dst=server.ip, sport=1, dport=1, size=64))
        sim.run()
        assert len(server.received) == expect_total
        assert server.received[-1].dst == server.ip

    cross(1)  # express hop live

    fabric.withdraw_spine(chosen, fail=True)
    assert not fabric.spines[chosen]._express_ok
    cross(2)  # rerouted around the failed spine, still delivered

    fabric.restore_spine(chosen)
    assert fabric.spine_is_active(chosen)
    # Restoration declines to re-arm express: once a spine has failed
    # mid-run the booking-order promise is gone for good.
    assert not fabric.spines[chosen]._express_ok
    # The sibling never failed and keeps its express lane.
    assert fabric.spines[1 - chosen]._express_ok
    cross(3)  # back through the restored spine on the evented path

    # ECMP steers via the restored spine again (active set is full).
    assert fabric.active_spines() == [0, 1]
