"""The paper's comparison schemes, implemented as full systems.

* :mod:`random_lb` — Baseline: clients pick a random server, no cloning.
* :mod:`cclone` — C-Clone: static client-side cloning (d = 2).
* :mod:`laedge` — LÆDGE: coordinator-based dynamic cloning.
"""

from repro.baselines.cclone import CCloneClient
from repro.baselines.laedge import LaedgeClient, LaedgeCoordinator
from repro.baselines.random_lb import BaselineClient, PLAIN_RPC_PORT

__all__ = [
    "BaselineClient",
    "CCloneClient",
    "LaedgeClient",
    "LaedgeCoordinator",
    "PLAIN_RPC_PORT",
]
