"""Experiment harnesses: one module per paper figure/table.

Each module exposes a ``run(scale=1.0, seed=..., jobs=1,
topology=None)`` function returning a structured result and prints
the same rows/series the paper reports.  The registry maps experiment
IDs (``fig7``, ``fig13``, ``table1``, ...) to those entry points;
``python -m repro <id>`` runs one, ``--jobs N`` fans the sweep points
out over worker processes, and ``--topology NAME`` re-runs it on any
registered fabric.

Cluster assembly is generic over **three** plugin axes that compose
freely:

* **scheme** (:mod:`repro.experiments.schemes`) — what runs: the
  client class, the switch program, an optional coordinator;
* **topology** (:mod:`repro.experiments.topologies`) — what it runs
  on: single-rack star, two-rack trunk, spine-leaf Clos, or any
  registered fabric.  The scheme's switch program is installed once
  per ToR with that rack's §3.7 switch ID, so ToR-only cloning works
  on every fabric;
* **placement** (:mod:`repro.experiments.placements`) — where request
  redundancy lands: which candidate server pairs each ToR's §3.3
  group table holds (``global``, ``rack-local``,
  ``rack-weighted:p=…``), selected via ``ClusterConfig.placement`` /
  ``--placement``.

Adding a scheme
---------------
Schemes are plugins — no edits to :mod:`repro.experiments.common`:

1. Write a client class (subclass
   :class:`~repro.apps.client.OpenLoopClient`) in your own module.
2. Declare and register a spec::

       from repro.experiments.schemes import SchemeSpec, register_scheme

       @register_scheme
       def _my_scheme() -> SchemeSpec:
           return SchemeSpec(
               name="my-scheme",
               description="shown by `repro-netclone schemes`",
               make_client=lambda ctx, common: MyClient(
                   server_ips=ctx.server_ips, **common
               ),
           )

3. Ensure the module is imported (add it to
   :data:`repro.experiments.schemes.PLUGIN_MODULES`, or import it from
   your driver script) and run
   ``run_sweep(ClusterConfig(scheme="my-scheme"), loads)``.

Optional ``SchemeSpec`` hooks add a switch program (``make_program``;
called once per ToR with ``ctx.switch_id`` set to the rack's §3.7
switch ID), a coordinator host (``make_coordinator``),
NetClone-speaking servers (``netclone_mode``) and post-assembly
tweaks (``post_build``).  :mod:`repro.baselines.jsq_d` and
:mod:`repro.baselines.bounded_random` are complete examples.

Adding a topology
-----------------
Topologies are plugins too.  Implement a fabric (subclass
:class:`repro.net.topology.Fabric`: per-rack stars plus inter-rack
wiring and a role→rack placement policy), then register it::

    from repro.experiments.topologies import TopologySpec, register_topology

    @register_topology
    def _my_fabric() -> TopologySpec:
        return TopologySpec(
            name="my-fabric",
            description="shown by `repro-netclone topologies`",
            make_fabric=lambda ctx: MyFabric(ctx.sim, ctx.make_switch),
        )

and run ``ClusterConfig(scheme=..., topology="my-fabric")`` — every
registered scheme, sweep and figure harness picks it up unchanged.
Fabric knobs travel in ``ClusterConfig.topology_params`` (e.g.
``{"racks": 3, "spines": 2}`` for ``spine_leaf``).

Adding a placement
------------------
Placement policies are plugins on the same machinery.  Implement a
policy (subclass :class:`repro.core.placement.PlacementPolicy`:
reduce a rack→server map to one
:class:`~repro.core.placement.GroupTable` per ToR), then register it::

    from repro.experiments.placements import PlacementSpec, register_placement

    @register_placement
    def _my_placement() -> PlacementSpec:
        return PlacementSpec(
            name="my-placement",
            description="shown by `repro-netclone placements`",
            make_policy=lambda params: MyPolicy(**params),
        )

and run ``ClusterConfig(scheme="netclone", placement="my-placement")``.
Factories must reject unknown parameters — a typo must never silently
fall back to ``global``.
"""

from repro.experiments.placements import (
    PlacementSpec,
    describe_placements,
    get_placement,
    placement_names,
    register_placement,
)
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.schemes import (
    SchemeSpec,
    describe_schemes,
    get_scheme,
    register_scheme,
    scheme_names,
)
from repro.experiments.topologies import (
    TopologySpec,
    describe_topologies,
    get_topology,
    register_topology,
    topology_names,
)
from repro.experiments.workloads_registry import (
    WorkloadDef,
    describe_workloads,
    get_workload,
    register_workload,
    workload_names,
)

__all__ = [
    "EXPERIMENTS",
    "PlacementSpec",
    "SchemeSpec",
    "TopologySpec",
    "WorkloadDef",
    "describe_placements",
    "describe_schemes",
    "describe_topologies",
    "describe_workloads",
    "get_experiment",
    "get_placement",
    "get_scheme",
    "get_topology",
    "get_workload",
    "list_experiments",
    "placement_names",
    "register_placement",
    "register_scheme",
    "register_topology",
    "register_workload",
    "scheme_names",
    "topology_names",
    "workload_names",
]
