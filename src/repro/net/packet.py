"""The in-simulator packet representation.

A :class:`Packet` is a slotted object rather than real bytes: the hot
path copies and inspects fields millions of times per experiment, so we
keep it as lean as possible.  Byte-exact encodings of the protocol
headers exist in :mod:`repro.net.headers` (and
:mod:`repro.core.header` for the NetClone header) and are exercised by
the test suite to show the wire format is well defined.

Switch-internal metadata (ingress port, recirculation flag, multicast
group) also lives here, mirroring how PISA attaches per-packet metadata
alongside the parsed header vector.
"""

from __future__ import annotations

from itertools import count
from typing import Any, Optional

__all__ = ["PROTO_TCP", "PROTO_UDP", "Packet"]

#: IANA protocol number for UDP.
PROTO_UDP = 17
#: IANA protocol number for TCP.
PROTO_TCP = 6

_packet_uid = count(1)


class Packet:
    """One simulated datagram.

    :param src: source IPv4 address (integer form).
    :param dst: destination IPv4 address (integer form).
    :param sport: source L4 port.
    :param dport: destination L4 port.
    :param size: total on-wire size in bytes (used for serialisation
        delay).
    :param payload: opaque application payload object.
    :param nc: optional NetClone header (``repro.core.header.
        NetCloneHeader``); ``None`` for normal traffic.
    :param proto: L4 protocol number, UDP by default.
    """

    __slots__ = (
        "uid",
        "src",
        "dst",
        "sport",
        "dport",
        "proto",
        "size",
        "payload",
        "nc",
        "ingress_port",
        "recirculated",
        "created_at",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        sport: int,
        dport: int,
        size: int,
        payload: Any = None,
        nc: Optional[Any] = None,
        proto: int = PROTO_UDP,
        created_at: int = 0,
    ):
        self.uid = next(_packet_uid)
        self.src = src
        self.dst = dst
        self.sport = sport
        self.dport = dport
        self.proto = proto
        self.size = size
        self.payload = payload
        self.nc = nc
        #: Switch metadata: port the packet entered on (set by the switch).
        self.ingress_port: int = -1
        #: Switch metadata: whether this pass is a recirculated one.
        self.recirculated: bool = False
        #: Simulated time the packet object was created (client send time).
        self.created_at = created_at

    def copy(self) -> "Packet":
        """A field-by-field copy with a fresh uid and clean switch metadata.

        The NetClone header is copied too (it is mutable); the payload
        is shared, matching how a hardware clone duplicates bytes but
        our simulator treats the payload as opaque.
        """
        clone = Packet(
            self.src,
            self.dst,
            self.sport,
            self.dport,
            self.size,
            payload=self.payload,
            nc=self.nc.copy() if self.nc is not None else None,
            proto=self.proto,
            created_at=self.created_at,
        )
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.net.addresses import format_ip

        kind = "nc" if self.nc is not None else "plain"
        return (
            f"<Packet #{self.uid} {kind} {format_ip(self.src)}:{self.sport} -> "
            f"{format_ip(self.dst)}:{self.dport} {self.size}B>"
        )
