"""Multi-packet messages and client-assigned request IDs (§3.7).

The base NetClone design assumes single-packet requests and responses
(90 % of microservice RPCs fit in one packet).  Section 3.7 sketches
how to go further, and this module implements that sketch:

* **Client-assigned request IDs** — multi-packet requests (and TCP
  retransmissions) need every packet of a request to share one ID, so
  the ID cannot be switch-assigned per packet.  Clients build it like
  a Lamport clock: ``(client_id << 24) | local_seq``.
* **Cloned-request table** — once the first fragment of a request is
  cloned, *every* later fragment must be cloned regardless of system
  load.  A register array keyed by a hash of the request ID remembers
  in-flight cloned requests; fragments that hit it are cloned
  unconditionally, and the first response fragment clears it.
* **Ordered filter tables** — responses may also be multi-packet; the
  server assigns filter-table index *k* to response fragment *k*, so
  each fragment is filtered independently in its own table.

Request affinity needs no new machinery: fragments reuse the group ID
chosen by the client, so the non-cloned path lands on the same first
candidate.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.apps.client import OpenLoopClient
from repro.core.constants import (
    CLO_CLONED_COPY,
    CLO_CLONED_ORIGINAL,
    CLO_NOT_CLONED,
    MSG_REQ,
    MSG_RESP,
    NETCLONE_UDP_PORT,
    STATE_IDLE,
    SWID_UNSET,
    VIRTUAL_SERVICE_IP,
)
from repro.core.header import NetCloneHeader
from repro.core.program import CLO_NEVER_CLONE, NetCloneProgram
from repro.core.server import RpcServer
from repro.errors import ExperimentError, PipelineConfigError
from repro.net.packet import Packet
from repro.switchsim.hashing import HashUnit
from repro.switchsim.pipeline import PassContext, PipelineAction
from repro.switchsim.registers import RegisterArray
from repro.switchsim.switch import ProgrammableSwitch

__all__ = ["Fragment", "MultiPacketClient", "MultiPacketProgram", "MultiPacketServer"]

_CLIENT_SEQ_BITS = 24
_CLIENT_SEQ_MASK = (1 << _CLIENT_SEQ_BITS) - 1


def client_request_id(client_id: int, local_seq: int) -> int:
    """Lamport-style request ID: (client, per-client sequence)."""
    if client_id < 0 or client_id >= (1 << (32 - _CLIENT_SEQ_BITS)):
        raise ExperimentError("client_id out of range for client-assigned IDs")
    return ((client_id + 1) << _CLIENT_SEQ_BITS) | (local_seq & _CLIENT_SEQ_MASK)


class Fragment:
    """One fragment of a multi-packet request or response."""

    __slots__ = ("inner", "index", "count", "client_id", "client_seq", "write")

    def __init__(self, inner: Any, index: int, count: int):
        self.inner = inner
        self.index = index
        self.count = count
        # Mirror the routing-relevant payload fields so hosts can treat
        # fragments uniformly with whole payloads.
        self.client_id = inner.client_id
        self.client_seq = inner.client_seq
        self.write = getattr(inner, "write", False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Fragment {self.index + 1}/{self.count} of c{self.client_id}#{self.client_seq}>"


class MultiPacketProgram(NetCloneProgram):
    """NetClone with the §3.7 multi-packet extensions."""

    STAGE_FLOW_HASH = 0
    STAGE_CLONED_REQ = 3  # alongside AddrT; accessed after the states

    def __init__(
        self,
        server_ips: Sequence[int],
        cloned_table_slots: int = 1 << 12,
        **kwargs: Any,
    ):
        kwargs.setdefault("num_filter_tables", 4)  # ordered tables for frags
        super().__init__(server_ips, **kwargs)
        self.flow_hash = self.pipeline.place_hash(
            HashUnit("FlowHash", stage=self.STAGE_FLOW_HASH, buckets=cloned_table_slots)
        )
        self.cloned_request_table = self.pipeline.place_register(
            RegisterArray(
                "ClonedReqT",
                size=cloned_table_slots,
                stage=self.STAGE_CLONED_REQ,
                width_bits=32,
            )
        )

    # ------------------------------------------------------------------
    def _apply_request(
        self, packet: Packet, ctx: PassContext, switch: ProgrammableSwitch
    ) -> PipelineAction:
        action = PipelineAction()
        nc = packet.nc
        if nc.swid == SWID_UNSET:
            nc.swid = self.switch_id
        if nc.req_id == 0:
            # Clients must pre-assign IDs in multi-packet mode.
            switch.counters.incr("nc_missing_client_id")
            action.drop = True
            return action

        flow_slot = ctx.hash(self.flow_hash, nc.req_id)

        pair = ctx.table(self.grp_table, nc.grp)
        if pair is None:
            switch.counters.incr("nc_unknown_group")
            action.drop = True
            return action
        srv1, srv2 = pair

        state1, _ = ctx.reg(self.state_table, srv1)
        state2, _ = ctx.reg(self.shadow_table, srv2)

        payload = packet.payload
        first_fragment = not isinstance(payload, Fragment) or payload.index == 0

        req_id = nc.req_id
        if first_fragment:
            fresh_clone = (
                self.cloning_enabled
                and nc.clo != CLO_NEVER_CLONE
                and state1 == STATE_IDLE
                and state2 == STATE_IDLE
            )
            # One RMW: record the in-flight clone marker (or clear any
            # stale entry left by a lost response).
            ctx.reg(
                self.cloned_request_table,
                flow_slot,
                update=(
                    (lambda _v: req_id)
                    if fresh_clone
                    else (lambda v: 0 if v == req_id else v)
                ),
            )
            should_clone = fresh_clone
        else:
            old, _new = ctx.reg(self.cloned_request_table, flow_slot)
            should_clone = old == req_id
            if should_clone:
                switch.counters.incr("nc_follow_on_fragment_cloned")

        if should_clone:
            nc.clo = CLO_CLONED_ORIGINAL
            nc.sid = srv2
            action.recirculate.append(packet.copy())
            switch.counters.incr("nc_cloned")
        elif nc.clo == CLO_NEVER_CLONE:
            nc.clo = CLO_NOT_CLONED

        address = ctx.table(self.addr_table, srv1)
        if address is None:
            switch.counters.incr("nc_unknown_server")
            action.drop = True
            return action
        packet.dst = address
        return action

    def _apply_response(
        self, packet: Packet, ctx: PassContext, switch: ProgrammableSwitch
    ) -> PipelineAction:
        # Reimplements the base response path (rather than delegating)
        # because the cloned-request clear lives in stage 3 and must be
        # visited *between* the shadow table (stage 2) and the filter
        # hash (stage 4): the pipeline is feed-forward.
        action = PipelineAction()
        nc = packet.nc
        payload = packet.payload
        reported_state = nc.state
        req_id = nc.req_id

        flow_slot = ctx.hash(self.flow_hash, req_id)
        ctx.reg(self.state_table, nc.sid, update=lambda _old: reported_state)
        ctx.reg(self.shadow_table, nc.sid, update=lambda _old: reported_state)

        if nc.clo != CLO_NOT_CLONED and (
            not isinstance(payload, Fragment) or payload.index == 0
        ):
            # First response fragment retires the in-flight clone marker.
            ctx.reg(
                self.cloned_request_table,
                flow_slot,
                update=lambda value: 0 if value == req_id else value,
            )

        if nc.clo == CLO_NOT_CLONED or not self.filtering_enabled:
            return action

        slot = ctx.hash(self.hash_unit, req_id)
        filter_table = self.filters[nc.idx % len(self.filters)]
        old, _new = ctx.reg(
            filter_table,
            slot,
            update=lambda value: 0 if value == req_id else req_id,
        )
        if old == req_id:
            switch.counters.incr("nc_filtered")
            action.drop = True
        else:
            if old != 0:
                switch.counters.incr("nc_fingerprint_overwrite")
            switch.counters.incr("nc_fingerprint_insert")
        return action


class MultiPacketClient(OpenLoopClient):
    """Client that splits each request into fragments.

    Response reassembly mirrors the request side: a request completes
    when all of its response fragments have arrived (the latency is
    that of the last fragment).
    """

    def __init__(
        self,
        *args: Any,
        num_groups: int,
        frags_per_request: int = 2,
        num_filter_tables: int = 4,
        **kwargs: Any,
    ):
        super().__init__(*args, **kwargs)
        if frags_per_request < 1:
            raise ExperimentError("need at least one fragment per request")
        if num_groups < 2:
            raise ExperimentError("NetClone needs at least two groups")
        self.num_groups = num_groups
        self.frags_per_request = frags_per_request
        self.num_filter_tables = num_filter_tables
        self._rx_fragments: Dict[Tuple[int, int], set] = {}

    def build_packets(self, request: Any) -> List[Packet]:
        req_id = client_request_id(self.client_id, request.client_seq)
        grp = self.rng.randrange(self.num_groups)
        packets = []
        per_fragment_size = max(
            64, self.workload.request_size(request) // self.frags_per_request
        )
        for index in range(self.frags_per_request):
            header = NetCloneHeader(
                msg_type=MSG_REQ,
                req_id=req_id,
                grp=grp,
                clo=CLO_NEVER_CLONE if getattr(request, "write", False) else CLO_NOT_CLONED,
                idx=0,
            )
            packets.append(
                Packet(
                    src=self.ip,
                    dst=VIRTUAL_SERVICE_IP,
                    sport=NETCLONE_UDP_PORT,
                    dport=NETCLONE_UDP_PORT,
                    size=per_fragment_size + NetCloneHeader.WIRE_SIZE,
                    payload=Fragment(request, index, self.frags_per_request),
                    nc=header,
                )
            )
        return packets

    def handle(self, packet: Packet) -> None:
        payload = packet.payload
        if payload is None or payload.client_id != self.client_id:
            return
        if not isinstance(payload, Fragment):
            super().handle(packet)
            return
        key = (payload.client_id, payload.client_seq)
        got = self._rx_fragments.setdefault(key, set())
        if payload.index in got:
            self.redundant_responses += 1
            return
        got.add(payload.index)
        if len(got) == payload.count:
            del self._rx_fragments[key]
            # Complete: account it through the single-packet path.
            inner_packet = Packet(
                src=packet.src,
                dst=packet.dst,
                sport=packet.sport,
                dport=packet.dport,
                size=packet.size,
                payload=payload.inner,
                created_at=packet.created_at,
            )
            super().handle(inner_packet)


class MultiPacketServer(RpcServer):
    """Server that reassembles fragments and fragments its responses."""

    def __init__(self, *args: Any, response_frags: int = 2, **kwargs: Any):
        super().__init__(*args, **kwargs)
        if response_frags < 1:
            raise ExperimentError("need at least one response fragment")
        self.response_frags = response_frags
        self._rx_fragments: Dict[Tuple[int, int, int], set] = {}
        self._dropped_clones: Dict[Tuple[int, int, int], bool] = {}

    def handle(self, packet: Packet) -> None:
        payload = packet.payload
        nc = packet.nc
        if not isinstance(payload, Fragment) or (nc is not None and nc.msg_type != MSG_REQ):
            super().handle(packet)
            return
        key = (payload.client_id, payload.client_seq, nc.clo if nc else 0)
        if (
            self.netclone_mode
            and self.drop_stale_clones
            and nc is not None
            and nc.clo == CLO_CLONED_COPY
        ):
            if key in self._dropped_clones:
                self.counters.incr("clones_dropped")
                return
            if payload.index == 0 and self.queue:
                # Stale clone: drop this and all its later fragments so
                # no half-reassembled clone lingers.
                self._dropped_clones[key] = True
                if len(self._dropped_clones) > 4096:
                    self._dropped_clones.pop(next(iter(self._dropped_clones)))
                self.counters.incr("clones_dropped")
                return
        got = self._rx_fragments.setdefault(key, set())
        got.add(payload.index)
        if len(got) < payload.count:
            return
        del self._rx_fragments[key]
        # Whole request present: hand the inner payload to the normal
        # path, remembering the fragment context for the response.
        inner_packet = Packet(
            src=packet.src,
            dst=packet.dst,
            sport=packet.sport,
            dport=packet.dport,
            size=packet.size,
            payload=payload.inner,
            nc=nc,
            created_at=packet.created_at,
        )
        self.counters.incr("requests_reassembled")
        super().handle(inner_packet)

    def _respond(self, request: Packet) -> None:
        if request.nc is None or self.response_frags == 1:
            super()._respond(request)
            return
        queue_len = len(self.queue)
        self.state_samples_total += 1
        if queue_len == 0:
            self.state_samples_zero += 1
        size = max(64, self.service.response_size(request.payload) // self.response_frags)
        for index in range(self.response_frags):
            nc = request.nc.copy()
            nc.msg_type = MSG_RESP
            nc.sid = self.server_id
            nc.state = min(queue_len, 255)
            nc.idx = index  # ordered filter table per fragment (§3.7)
            self.counters.incr("responses_sent" if index == 0 else "response_fragments")
            self.send(
                Packet(
                    src=self.ip,
                    dst=request.src,
                    sport=NETCLONE_UDP_PORT,
                    dport=NETCLONE_UDP_PORT,
                    size=size,
                    payload=Fragment(request.payload, index, self.response_frags),
                    nc=nc,
                    created_at=request.created_at,
                )
            )
