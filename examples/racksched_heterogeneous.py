#!/usr/bin/env python3
"""NetClone + RackSched on an imbalanced cluster (§3.7 / Figure 10).

Three servers have 15 worker threads and three have 8 — the kind of
heterogeneity real racks accumulate.  Plain NetClone forwards
non-cloned requests to a random first candidate, so the weak servers
overload first; with the RackSched integration the switch falls back
to join-the-shortest-queue between the two candidates whenever it
cannot clone, absorbing the imbalance.

Run:  python examples/racksched_heterogeneous.py
"""

from repro.experiments.common import Cluster, ClusterConfig
from repro.sim.units import ms

WORKERS = (15, 15, 15, 8, 8, 8)


def run_scheme(scheme: str) -> None:
    capacity = sum(WORKERS) / 25e-6
    config = ClusterConfig(
        scheme=scheme,
        workers_per_server=WORKERS,
        rate_rps=capacity * 0.75,
        warmup_ns=ms(5),
        measure_ns=ms(25),
        drain_ns=ms(5),
        seed=23,
    )
    cluster = Cluster(config)
    cluster.start()
    cluster.run()
    point = cluster.load_point()
    accepted = [server.counters.get("requests_accepted") for server in cluster.servers]
    print(f"--- {scheme} ---")
    print(f"  throughput : {point.throughput_mrps:.2f} MRPS")
    print(f"  p99        : {point.p99_us:.1f} us")
    print(f"  per-server accepted requests ({'/'.join(map(str, WORKERS))} threads):")
    print(f"    {accepted}")
    jsq = cluster.switch.counters.get("nc_jsq_second_choice")
    if jsq:
        print(f"  JSQ second-choice decisions : {jsq}")
    print()


def main() -> None:
    print(__doc__)
    for scheme in ("baseline", "netclone", "netclone-racksched"):
        run_scheme(scheme)
    print("The JSQ fallback shifts load toward the 15-thread servers, cutting")
    print("the tail on heterogeneous racks — the Figure 10 (b)/(d) result.")


if __name__ == "__main__":
    main()
