"""Opt-in runtime sanitizers (``REPRO_SANITIZE=1``).

The static rules in :mod:`repro.analysis` catch hazards visible in the
source; this module catches the two that are not — a packet acquired on
one path and leaked on another the AST cannot prove reachable, and a
component silently drawing from a sibling's RNG stream (which shifts
every later draw without failing anything until a golden diffs).

Two sanitizers, both zero-cost when off because the plain classes are
used instead:

* :class:`SanitizingPacketPool` — a :class:`~repro.net.packet.PacketPool`
  whose acquire/release flow feeds a :class:`PacketLedger`.  Every
  ``acquire`` records the packet with the call site that drew it; the
  free list retires entries as packets come back.  At drain, entries
  still open are leaks, reported with the site that acquired them.
* :class:`SanitizingRngRegistry` — a
  :class:`~repro.sim.rng.RngRegistry` whose scalar streams count their
  draws (``random()`` and ``getrandbits()``, the two primitives every
  derived method bottoms out in).  Two runs of the same seed must
  produce identical per-stream counts; :func:`diff_draw_counts` names
  the streams that diverged.  Numpy streams are not counted — they are
  used for batch analysis off the hot path, not scheduling.

Wiring: :class:`~repro.experiments.common.Cluster` swaps in the
sanitizing classes when :func:`enabled` is true, and both
``run_point`` and the scenario runner call ``cluster.sanitize_check()``
after the drain, so a leak fails the run with the acquiring site in the
message instead of vanishing into the free list's accounting.

The ledger reports whatever is outstanding when the simulation stops:
a drain window too short for the last in-flight requests to complete
shows those packets as leaks.  That is the run being truncated, not a
pool bug — keep ``drain_ns`` at its default few milliseconds.
"""

from __future__ import annotations

import hashlib
import os
import random
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.packet import Packet, PacketPool
from repro.sim.rng import RngRegistry, stream_seed

__all__ = [
    "CountingRandom",
    "PacketLedger",
    "SanitizerError",
    "SanitizerReport",
    "SanitizingPacketPool",
    "SanitizingRngRegistry",
    "diff_draw_counts",
    "enabled",
]


class SanitizerError(RuntimeError):
    """A sanitizer found a violation at drain time."""


def enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` asks for sanitized runs.

    Read per cluster build (not per event), so a test harness can flip
    the variable between experiments.
    """
    return bool(os.environ.get("REPRO_SANITIZE"))  # detlint: ignore[env-read] -- sanitizer opt-in gate, read once per cluster build


# ----------------------------------------------------------------------
# Packet ledger
# ----------------------------------------------------------------------
_OWN_FILES = ("sanitize.py", "packet.py")


def _call_site() -> str:
    """``file:line`` of the nearest frame outside the pool machinery."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if not filename.endswith(_OWN_FILES):
            return f"{os.path.basename(filename)}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


class PacketLedger:
    """Open-entry accounting of packet lives.

    Keyed by object identity: a recycled object re-enters the ledger on
    its next acquire, so one slot tracks one *live* at a time and the
    ledger's size is the number of packets currently out of the pool.
    """

    __slots__ = ("outstanding", "acquired", "retired", "foreign_releases")

    def __init__(self) -> None:
        #: id(packet) -> (uid, acquiring call site).
        self.outstanding: Dict[int, Tuple[int, str]] = {}
        self.acquired = 0
        self.retired = 0
        #: Releases of packets this ledger never admitted (a packet
        #: from another pool, or acquired before sanitizing started).
        self.foreign_releases = 0

    def admit(self, packet: Packet) -> None:
        self.acquired += 1
        self.outstanding[id(packet)] = (packet.uid, _call_site())  # detlint: ignore[unordered-iteration] -- identity key is the point; leaks() sorts by uid before reporting

    def retire(self, packet: Packet) -> None:
        if self.outstanding.pop(id(packet), None) is None:
            self.foreign_releases += 1
        else:
            self.retired += 1

    def leaks(self) -> List[Tuple[int, str]]:
        """Open entries as ``(uid, site)``, oldest life first."""
        return sorted(self.outstanding.values())


class _LedgerList(list):
    """The sanitizing pool's free list: appends retire ledger entries.

    ``Packet.release()`` appends straight to ``pool._free`` (the hot
    path deliberately skips a method call), so interception has to live
    on the list itself — the release code stays untouched and therefore
    exactly what production runs.
    """

    __slots__ = ("ledger",)

    def __init__(self, ledger: PacketLedger):
        super().__init__()
        self.ledger = ledger

    def append(self, packet: Packet) -> None:
        self.ledger.retire(packet)
        super().append(packet)


class SanitizingPacketPool(PacketPool):
    """A :class:`PacketPool` that admits every acquire to a ledger."""

    __slots__ = ("ledger",)

    def __init__(self) -> None:
        super().__init__()
        self.ledger = PacketLedger()
        self._free = _LedgerList(self.ledger)

    def acquire(self, *args, **kwargs) -> Packet:
        packet = super().acquire(*args, **kwargs)
        self.ledger.admit(packet)
        return packet


# ----------------------------------------------------------------------
# RNG draw accounting
# ----------------------------------------------------------------------
class CountingRandom(random.Random):
    """A ``random.Random`` that counts primitive draws.

    Every public method (``expovariate``, ``gauss``, ``shuffle``,
    ``choice``, ...) bottoms out in ``random()`` or ``getrandbits()``,
    so counting these two covers the whole API without shadowing it.
    """

    def __init__(self, seed: Optional[int] = None):
        super().__init__(seed)
        self.draws = 0

    def random(self) -> float:
        self.draws += 1
        return super().random()

    def getrandbits(self, k: int) -> int:
        self.draws += 1
        return super().getrandbits(k)


class SanitizingRngRegistry(RngRegistry):
    """An :class:`RngRegistry` whose scalar streams count their draws."""

    def stream(self, name: str) -> random.Random:
        rng = self._streams.get(name)
        if rng is None:
            rng = CountingRandom(stream_seed(self.root_seed, name))
            self._streams[name] = rng
        return rng

    def draw_counts(self) -> Dict[str, int]:
        """Draws so far per stream, in stream-name order."""
        return {
            name: getattr(rng, "draws", 0)
            for name, rng in sorted(self._streams.items())
        }


def diff_draw_counts(
    first: Dict[str, int], second: Dict[str, int]
) -> List[str]:
    """Streams whose draw counts differ between two same-seed runs.

    A non-empty result means some component's consumption of
    randomness depended on something other than the seed — exactly the
    divergence that turns into an unexplainable golden diff later.
    """
    divergent = []
    for name in sorted(set(first) | set(second)):
        if first.get(name, 0) != second.get(name, 0):
            divergent.append(name)
    return divergent


# ----------------------------------------------------------------------
# Drain-time report
# ----------------------------------------------------------------------
@dataclass
class SanitizerReport:
    """What the sanitizers saw over one run."""

    packet_leaks: List[Tuple[int, str]]
    acquired: int
    retired: int
    foreign_releases: int
    draw_counts: Dict[str, int]

    @property
    def clean(self) -> bool:
        return not self.packet_leaks

    @property
    def draw_digest(self) -> str:
        """Stable digest of the per-stream draw counts.

        Equal seeds must give equal digests; comparing digests across
        runs (or across ``jobs=1`` vs ``jobs=N`` workers) is the cheap
        form of :func:`diff_draw_counts`.
        """
        blob = ";".join(
            f"{name}={count}" for name, count in sorted(self.draw_counts.items())
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def format(self) -> str:
        lines = [
            f"sanitizer: {self.acquired} acquired, {self.retired} released, "
            f"{len(self.packet_leaks)} leaked, "
            f"{self.foreign_releases} foreign releases; "
            f"rng draws digest {self.draw_digest} "
            f"({len(self.draw_counts)} streams)"
        ]
        for uid, site in self.packet_leaks[:20]:
            lines.append(f"  leaked packet uid={uid} acquired at {site}")
        if len(self.packet_leaks) > 20:
            lines.append(f"  ... and {len(self.packet_leaks) - 20} more")
        return "\n".join(lines)


def build_report(
    pool: SanitizingPacketPool, rngs: RngRegistry
) -> SanitizerReport:
    """Reduce the ledgers to a :class:`SanitizerReport`."""
    ledger = pool.ledger
    draw_counts = (
        rngs.draw_counts() if isinstance(rngs, SanitizingRngRegistry) else {}
    )
    return SanitizerReport(
        packet_leaks=ledger.leaks(),
        acquired=ledger.acquired,
        retired=ledger.retired,
        foreign_releases=ledger.foreign_releases,
        draw_counts=draw_counts,
    )
