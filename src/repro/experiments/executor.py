"""Parallel sweep engine.

Every figure reproduction reduces to a batch of independent
``run_point`` calls — one fresh simulator per (scheme, offered-load)
pair.  :class:`SweepExecutor` fans such a batch out over a
``concurrent.futures`` process pool (``jobs`` workers) while keeping
the results in submission order, so parallel sweeps are bit-identical
to serial ones: each point builds its own
:class:`~repro.sim.rng.RngRegistry` from the config seed, and nothing
is shared between points.

The executor degrades gracefully: ``jobs=1`` (the default) never
spawns processes, unpicklable configs (e.g. ad-hoc specs holding
closures) fall back to the serial path with a logged warning, and a
pool that cannot be created (restricted environments) does the same.
"""

from __future__ import annotations

import logging
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.sim.rng import stream_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.common import ClusterConfig
    from repro.metrics.sweep import LoadPoint

__all__ = ["SweepExecutor", "point_seed", "resolve_executor"]

_LOG = logging.getLogger(__name__)


def point_seed(root_seed: int, label: str) -> int:
    """Deterministic per-point seed derived from *root_seed*.

    Uses the same SplitMix64 stream derivation as
    :class:`~repro.sim.rng.RngRegistry`, so replicated runs (e.g. ten
    repetitions of one operating point) get independent-looking but
    reproducible seeds regardless of execution order.
    """
    return stream_seed(root_seed, f"sweep-point:{label}")


def _run_point(config: "ClusterConfig") -> "LoadPoint":
    # Top-level wrapper: picklable by reference for pool workers, and
    # the late import keeps executor.py importable before common.py.
    from repro.experiments.common import run_point

    return run_point(config)


def _worker_init(plugin_modules: Tuple[str, ...]) -> None:
    """Pool initializer: make plugin schemes visible in the worker.

    With the ``fork`` start method the worker inherits the parent's
    registry; with ``spawn``/``forkserver`` it starts clean, so re-import
    whichever modules registered schemes in the parent.  Modules that
    cannot be imported (e.g. schemes registered from ``__main__``) are
    skipped — the lookup error then surfaces per point.
    """
    import importlib

    for module in plugin_modules:
        try:
            importlib.import_module(module)
        except Exception:  # pragma: no cover - depends on start method
            _LOG.debug("sweep worker could not import plugin %s", module)


class SweepExecutor:
    """Runs batches of independent cluster measurements.

    :param jobs: worker processes; 1 means in-process serial execution
        and values < 1 mean "all CPUs".
    :param plugin_modules: modules to import in each worker before any
        point runs (defaults to every module that registered a scheme).
    """

    def __init__(self, jobs: int = 1, plugin_modules: Optional[Sequence[str]] = None):
        if jobs < 1:
            jobs = os.cpu_count() or 1
        self.jobs = jobs
        self._plugin_modules = (
            tuple(plugin_modules) if plugin_modules is not None else None
        )

    # ------------------------------------------------------------------
    def run_points(
        self, configs: Sequence["ClusterConfig"], reseed: bool = False
    ) -> List["LoadPoint"]:
        """Measure every config; results keep the input order.

        With ``reseed=True`` each config's seed is replaced by a
        deterministic per-index derivation of it (for replicated runs
        of otherwise identical configs).
        """
        configs = list(configs)
        if reseed:
            from dataclasses import replace

            configs = [
                replace(config, seed=point_seed(config.seed, str(index)))
                for index, config in enumerate(configs)
            ]
        if self.jobs <= 1 or len(configs) <= 1:
            return [_run_point(config) for config in configs]
        if not self._picklable(configs):
            return [_run_point(config) for config in configs]
        try:
            return self._run_pool(configs)
        except BrokenProcessPool as exc:
            # A worker died (OOM, spawn-side import failure).
            _LOG.warning("process pool failed (%s); sweeping serially", exc)
            return [_run_point(config) for config in configs]
        except OSError as exc:
            # Worker-raised exceptions carry a _RemoteTraceback cause;
            # those are simulation errors (e.g. a scheme reading a
            # missing file) and propagate unchanged — re-running the
            # batch serially would only reproduce them slower.  A bare
            # OSError is pool infrastructure (fork denied, rlimits).
            if type(exc.__cause__).__name__ == "_RemoteTraceback":
                raise
            _LOG.warning("process pool unavailable (%s); sweeping serially", exc)
            return [_run_point(config) for config in configs]

    # ------------------------------------------------------------------
    def _run_pool(self, configs: List["ClusterConfig"]) -> List["LoadPoint"]:
        from repro.experiments.schemes import registered_modules

        plugins = self._plugin_modules
        if plugins is None:
            plugins = registered_modules()
        workers = min(self.jobs, len(configs))
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_worker_init, initargs=(plugins,)
        ) as pool:
            return list(pool.map(_run_point, configs))

    def _picklable(self, configs: List["ClusterConfig"]) -> bool:
        try:
            pickle.dumps(configs)
            return True
        except Exception as exc:
            _LOG.warning(
                "sweep configs are not picklable (%s); sweeping serially", exc
            )
            return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SweepExecutor jobs={self.jobs}>"


def resolve_executor(
    executor: Optional[SweepExecutor], jobs: Optional[int]
) -> SweepExecutor:
    """*executor* if given, else a fresh one for *jobs* (default serial)."""
    if executor is not None:
        return executor
    return SweepExecutor(jobs=1 if jobs is None else jobs)
