"""Command-line entry point: ``python -m repro`` / ``repro-netclone``.

Examples::

    repro-netclone --list
    repro-netclone fig7 --scale 0.25
    repro-netclone fig16 resources --seed 7
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.registry import get_experiment, list_experiments

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-netclone",
        description="Reproduce the NetClone (SIGCOMM 2023) evaluation.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (fig7..fig16, table1, resources)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="shrink measurement windows/grids (e.g. 0.25 for a quick pass)",
    )
    parser.add_argument("--seed", type=int, default=1, help="root RNG seed")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.list or not args.experiments:
        print("available experiments:")
        for line in list_experiments():
            print(f"  {line}")
        return 0
    for experiment_id in args.experiments:
        harness = get_experiment(experiment_id)
        harness(scale=args.scale, seed=args.seed)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
