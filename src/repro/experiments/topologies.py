"""Topology plugin registry.

Schemes decide *what* runs on the fabric; topologies decide what the
fabric *is*.  A :class:`TopologySpec` names a fabric builder that,
given a build context (simulator + :class:`ClusterConfig`), produces
the switches, links, routes and host-attachment hooks of one fabric
(see :class:`repro.net.topology.Fabric`).  The registry maps topology
names (and aliases) to specs, mirroring the scheme registry in
:mod:`repro.experiments.schemes`, so
:class:`~repro.experiments.common.Cluster` composes any registered
scheme with any registered topology — the §3.7 SWID gate makes the
scheme's switch program safe to install per ToR.

Registering a topology::

    from repro.experiments.topologies import TopologySpec, register_topology

    @register_topology
    def _my_fabric() -> TopologySpec:
        return TopologySpec(
            name="my-fabric",
            description="one line for `repro-netclone topologies`",
            make_fabric=lambda ctx: MyFabric(ctx.sim, ctx.make_switch),
        )

Builders read free-form knobs from ``ctx.config.topology_params``
(e.g. ``spine_leaf`` honours ``racks`` and ``spines``).  Plugin
modules listed in :data:`PLUGIN_MODULES` are imported lazily on first
lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.experiments.plugin_registry import PluginRegistry
from repro.net.topology import Fabric, SingleRackFabric, SpineLeafFabric, TwoRackFabric

__all__ = [
    "PLUGIN_MODULES",
    "TopologyContext",
    "TopologySpec",
    "describe_topologies",
    "get_topology",
    "iter_topologies",
    "register_topology",
    "registered_modules",
    "topology_names",
    "unregister_topology",
]

#: Modules imported lazily on registry access so self-registering
#: plugin topologies become visible without the core importing them
#: eagerly.  Append at any time; new entries load on the next lookup.
PLUGIN_MODULES: List[str] = []


@dataclass
class TopologyContext:
    """Build-time state handed to every :class:`TopologySpec` builder.

    ``make_switch(name)`` builds a switch with the config's pipeline
    timing, so fabric builders never import the switch model.
    """

    sim: Any
    config: Any

    @property
    def params(self) -> Dict[str, Any]:
        """The config's free-form ``topology_params``."""
        return dict(getattr(self.config, "topology_params", None) or {})

    def make_switch(self, name: str):
        from repro.switchsim.switch import ProgrammableSwitch

        return ProgrammableSwitch(
            self.sim,
            name=name,
            pipeline_latency_ns=self.config.switch_pipeline_ns,
            recirc_latency_ns=self.config.switch_recirc_ns,
        )


@dataclass
class TopologySpec:
    """Declarative description of one fabric layout."""

    #: Canonical topology name (what ``ClusterConfig.topology`` normalises to).
    name: str
    #: One-line description shown by ``repro-netclone topologies``.
    description: str
    #: ``ctx -> Fabric`` — build the switches/links/routes of one fabric.
    make_fabric: Callable[[TopologyContext], Fabric]
    #: Alternative lookup names.
    aliases: Tuple[str, ...] = ()
    #: Module that registered the spec (filled in by ``register_topology``).
    module: Optional[str] = None


_IMPL = PluginRegistry(
    kind="topology",
    spec_type=TopologySpec,
    plugin_modules=PLUGIN_MODULES,
    factory_field="make_fabric",
)
#: Shared with :class:`PluginRegistry` (tests reset entries here).
_loaded_plugins = _IMPL._loaded_plugins


def register_topology(spec_or_factory):
    """Register a topology; usable as a decorator or called directly.

    Accepts either a :class:`TopologySpec` or a zero-argument factory
    returning one (the decorator form).  Duplicate names or aliases
    raise :class:`~repro.errors.ExperimentError`.
    """
    return _IMPL.register(spec_or_factory)


def unregister_topology(name: str) -> None:
    """Remove a topology (and its aliases); mainly for tests."""
    _IMPL.unregister(name)


def get_topology(name: str) -> TopologySpec:
    """The spec registered under *name* (aliases resolve)."""
    return _IMPL.get(name)


def topology_names() -> Tuple[str, ...]:
    """Canonical names of every registered topology, in registration order."""
    return _IMPL.names()


def iter_topologies() -> List[TopologySpec]:
    """Every registered spec, in registration order."""
    return _IMPL.specs()


def describe_topologies() -> List[str]:
    """``name — description`` lines (aliases in parentheses)."""
    return _IMPL.describe()


def registered_modules() -> Tuple[str, ...]:
    """Modules that registered topologies (for sweep worker re-imports)."""
    return _IMPL.registered_modules()


# ----------------------------------------------------------------------
# Built-in fabrics
# ----------------------------------------------------------------------
def _star_fabric(ctx: TopologyContext) -> Fabric:
    return SingleRackFabric(ctx.sim, ctx.make_switch)


def _two_rack_fabric(ctx: TopologyContext) -> Fabric:
    params = ctx.params
    return TwoRackFabric(
        ctx.sim,
        ctx.make_switch,
        client_rack=int(params.get("client_rack", 0)),
        server_rack=int(params.get("server_rack", 1)),
        coordinator_rack=params.get("coordinator_rack"),
        trunk_propagation_ns=int(params.get("trunk_propagation_ns", 1000)),
        trunk_bandwidth_bps=float(params.get("trunk_bandwidth_bps", 400e9)),
    )


def _spine_leaf_fabric(ctx: TopologyContext) -> Fabric:
    params = ctx.params
    return SpineLeafFabric(
        ctx.sim,
        ctx.make_switch,
        racks=int(params.get("racks", 2)),
        spines=int(params.get("spines", 2)),
        trunk_propagation_ns=int(params.get("trunk_propagation_ns", 1000)),
        trunk_bandwidth_bps=float(params.get("trunk_bandwidth_bps", 400e9)),
    )


register_topology(
    TopologySpec(
        name="star",
        description="single rack: one ToR, every host a cable away (§5.1.1)",
        make_fabric=_star_fabric,
        aliases=("single-rack", "1rack"),
        module=__name__,
    )
)

register_topology(
    TopologySpec(
        name="two_rack",
        description="client rack + server rack joined by a trunk (§3.7)",
        make_fabric=_two_rack_fabric,
        aliases=("two-rack", "2rack"),
        module=__name__,
    )
)

register_topology(
    TopologySpec(
        name="spine_leaf",
        description="racks×spines Clos fabric; params: racks, spines (§3.7)",
        make_fabric=_spine_leaf_fabric,
        aliases=("spine-leaf", "clos"),
        module=__name__,
    )
)
