"""Command-line entry point: ``python -m repro`` / ``repro-netclone``.

Examples::

    repro-netclone --list
    repro-netclone schemes
    repro-netclone topologies
    repro-netclone placements
    repro-netclone workloads
    repro-netclone scenarios
    repro-netclone fig7 --scale 0.25 --jobs 4
    repro-netclone run fig17 --topology spine_leaf --jobs 4
    repro-netclone fig18 --topology spine_leaf:spines=4,spine_policy=least-loaded
    repro-netclone fig19 --placement rack-weighted:p=0.7 --jobs 4
    repro-netclone fig7 --workload mmpp:burst=8 --metrics sketch --jobs 4
    repro-netclone fig16 resources --seed 7
    repro-netclone run-scenario kill-during-rebuild --report-dir reports/
    repro-netclone run-scenario all --jobs 4 --scale 0.25
    repro-netclone lint
    repro-netclone lint src/repro/sim --findings-json findings.json
    repro-netclone lint --list-rules
    repro-netclone lint --update-baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

from repro.errors import ExperimentError
from repro.experiments.placements import canonical_placement, describe_placements
from repro.experiments.registry import (
    UNREQUESTED,
    gate_harness_axes,
    get_experiment,
    list_experiments,
)
from repro.experiments.schemes import describe_schemes
from repro.experiments.topologies import canonical_topology, describe_topologies
from repro.experiments.workloads_registry import canonical_workload, describe_workloads

__all__ = ["main"]

#: Pseudo-experiment ids that list a plugin registry instead of running.
_LISTINGS = {
    "schemes": ("registered schemes:", describe_schemes),
    "topologies": ("registered topologies:", describe_topologies),
    "placements": ("registered placements:", describe_placements),
    "workloads": ("registered workloads:", describe_workloads),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-netclone",
        description="Reproduce the NetClone (SIGCOMM 2023) evaluation.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (fig7..fig19, table1, resources), "
        "'schemes' / 'topologies' / 'placements' / 'scenarios' to list "
        "the registered plugins of one axis, or 'run-scenario' followed "
        "by catalog names, TOML spec paths or 'all' (an optional leading "
        "'run' is accepted and ignored)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="shrink measurement windows/grids (e.g. 0.25 for a quick pass)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="root RNG seed (default: 1 for experiments; run-scenario "
        "keeps each scenario's own pinned seed unless overridden)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="sweep points in N parallel worker processes (0 = all CPU cores)",
    )
    parser.add_argument(
        "--topology",
        "-t",
        default=None,
        help="fabric to run on, with optional inline parameters, e.g. "
        "spine_leaf:spines=4,spine_policy=least-loaded (see "
        "'topologies'; default: each experiment's own, usually the "
        "single-rack star)",
    )
    parser.add_argument(
        "--placement",
        "-p",
        default=None,
        help="group-table placement policy, with optional inline "
        "parameters, e.g. rack-local or rack-weighted:p=0.7 (see "
        "'placements'; default: global — the paper's single global "
        "candidate-pair table)",
    )
    parser.add_argument(
        "--workload",
        "-w",
        default=None,
        help="registered workload, with optional inline parameters, e.g. "
        "mmpp:burst=8,period_ms=0.5 or kv-drift (see 'workloads'; only "
        "harnesses with a workload axis accept it — others error out; "
        "default: each experiment's own)",
    )
    parser.add_argument(
        "--metrics",
        choices=("exact", "sketch"),
        default=None,
        help="latency backend: 'exact' keeps every sample (bit-identical "
        "to the seed), 'sketch' streams samples into mergeable "
        "O(buckets) quantile sketches — the only mode that survives "
        "100M+-request sweeps (harnesses without a metrics axis error "
        "out; default: exact)",
    )
    parser.add_argument(
        "--report-dir",
        default=None,
        help="run-scenario only: write each ScenarioReport as "
        "<name>.json into this directory (created if missing)",
    )
    lint = parser.add_argument_group(
        "lint options", "only meaningful with the 'lint' subcommand"
    )
    lint.add_argument(
        "--baseline",
        default="detlint-baseline.json",
        help="baseline file of accepted legacy findings "
        "(default: detlint-baseline.json; missing file = empty baseline)",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file with the current findings and exit",
    )
    lint.add_argument(
        "--findings-json",
        default=None,
        metavar="FILE",
        help="also write every finding (with its baselined flag) as JSON",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered lint rules and exit",
    )
    return parser


def _run_lint(targets: List[str], args: argparse.Namespace) -> int:
    """``lint`` subcommand: the detlint rule engine over the tree.

    Positional arguments after ``lint`` are files or directories
    (default: the full ``src/repro`` + ``examples`` + ``tools`` tree,
    anchored at the current directory).  Exit code 1 on any finding not
    covered by the baseline, whatever its severity.
    """
    from repro.analysis import (
        describe_rules,
        filter_baselined,
        format_findings,
        lint_paths,
        load_baseline,
        write_baseline,
    )

    if args.list_rules:
        print("registered lint rules:")
        for line in describe_rules():
            print(f"  {line}")
        return 0
    try:
        findings = lint_paths(targets or None)
    except ExperimentError as exc:
        print(f"lint: {exc}")
        return 2
    if args.update_baseline:
        write_baseline(findings, args.baseline)
        print(f"recorded {len(findings)} finding(s) in {args.baseline}")
        return 0
    fresh, baselined = filter_baselined(findings, load_baseline(args.baseline))
    if args.findings_json:
        fresh_ids = {id(finding) for finding in fresh}
        payload = {
            "new": len(fresh),
            "baselined": baselined,
            "findings": [
                {
                    "rule": finding.rule,
                    "severity": finding.severity,
                    "path": finding.path,
                    "line": finding.line,
                    "col": finding.col,
                    "scope": finding.scope,
                    "message": finding.message,
                    "baselined": id(finding) not in fresh_ids,
                }
                for finding in findings
            ],
        }
        with open(args.findings_json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if fresh:
        print(format_findings(fresh))
    suffix = f" ({baselined} baselined)" if baselined else ""
    if fresh:
        print(f"lint: {len(fresh)} new finding(s){suffix}")
        return 1
    print(f"lint: clean{suffix}")
    return 0


def _run_scenarios(names: List[str], args: argparse.Namespace) -> int:
    """``run-scenario`` subcommand: run catalog entries / TOML specs.

    Scenario × overrides cells run through the sweep bridge (so
    ``--jobs N`` parallelises them, bit-identically to serial); every
    report prints its invariant summary, optionally lands as JSON in
    ``--report-dir``, and any failed invariant makes the exit code 1.
    """
    from repro.scenarios import Scenario, catalog, get_scenario
    from repro.scenarios.runner import ScenarioReport
    from repro.scenarios.sweep import run_scenario_grid

    if not names:
        print("run-scenario needs catalog names, TOML paths, or 'all'")
        return 2
    scenarios: List[Scenario] = []
    for name in names:
        if name == "all":
            scenarios.extend(catalog())
        elif name.endswith(".toml"):
            scenarios.append(Scenario.from_toml_file(name))
        else:
            scenarios.append(get_scenario(name))
    report_dicts: List[Dict[str, Any]] = run_scenario_grid(
        scenarios,
        schemes=None,
        topologies=[args.topology] if args.topology else None,
        placements=[args.placement] if args.placement else None,
        scale=args.scale,
        seed=args.seed,
        jobs=args.jobs,
    )
    if args.report_dir:
        os.makedirs(args.report_dir, exist_ok=True)
    failed = 0
    for data in report_dicts:
        report = ScenarioReport.from_dict(data)
        print(report.summary())
        if not report.passed:
            failed += 1
        if args.report_dir:
            path = os.path.join(args.report_dir, f"{report.scenario}.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(data, fh, indent=2, sort_keys=True)
                fh.write("\n")
    if failed:
        print(f"{failed} of {len(report_dicts)} scenario(s) FAILED")
        return 1
    print(f"all {len(report_dicts)} scenario(s) passed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    experiments = list(args.experiments)
    if experiments and experiments[0] == "run":
        experiments = experiments[1:]
    if experiments and experiments[0] == "run-scenario":
        return _run_scenarios(experiments[1:], args)
    if experiments and experiments[0] == "lint":
        return _run_lint(experiments[1:], args)
    if args.topology is not None:
        # Fail fast (and normalise aliases) before any experiment runs;
        # inline parameters ride along in canonical key=value form.
        args.topology = canonical_topology(args.topology)
    if args.placement is not None:
        args.placement = canonical_placement(args.placement)
    if args.workload is not None:
        args.workload = canonical_workload(args.workload)
    if args.list or not experiments:
        print("available experiments:")
        for line in list_experiments():
            print(f"  {line}")
        print("  schemes — list registered load-balancing/cloning schemes")
        print("  topologies — list registered fabric layouts")
        print("  placements — list registered group-placement policies")
        print("  workloads — list registered workload generators")
        print("  scenarios — list the chaos-scenario catalog")
        print("  run-scenario — run catalog scenarios / TOML specs with "
              "invariant checks")
        print("  lint — run the detlint determinism/resource rules "
              "(see also --list-rules)")
        return 0
    for experiment_id in experiments:
        if experiment_id == "scenarios":
            # Imported lazily: the scenarios package pulls the whole
            # cluster stack, which plain listings should not pay for.
            from repro.scenarios.catalog import describe_catalog

            print("chaos-scenario catalog:")
            for line in describe_catalog():
                print(f"  {line}")
            continue
        listing = _LISTINGS.get(experiment_id)
        if listing is not None:
            title, describe = listing
            print(title)
            for line in describe():
                print(f"  {line}")
            continue
        harness = get_experiment(experiment_id)
        kwargs: Dict[str, Any] = dict(
            scale=args.scale,
            seed=1 if args.seed is None else args.seed,
            jobs=args.jobs,
            topology=args.topology,
            placement=args.placement,
        )
        # Newer axes (--workload, --metrics) are opt-in per harness:
        # passed only where the signature declares them, and asking an
        # unaware harness for one is an error, not a silent ignore.
        try:
            kwargs.update(
                gate_harness_axes(
                    harness,
                    experiment_id,
                    requested={
                        "workload": (
                            UNREQUESTED if args.workload is None else args.workload
                        ),
                        "metrics": (
                            UNREQUESTED if args.metrics is None else args.metrics
                        ),
                    },
                    defaults={"workload": None, "metrics": "exact"},
                )
            )
        except ExperimentError as exc:
            print(exc)
            return 2
        harness(**kwargs)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
