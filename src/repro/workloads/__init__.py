"""Workload generation: service-time distributions, jitter, Zipf, KV mixes."""

from repro.workloads.distributions import (
    BimodalDistribution,
    ExponentialDistribution,
    FixedDistribution,
    JitterModel,
    LognormalDistribution,
    ServiceDistribution,
)
from repro.workloads.kv import KvOp, KvRequest, KvWorkload
from repro.workloads.mmpp import DiurnalArrivals, MmppArrivals
from repro.workloads.synthetic import RpcRequest, SyntheticWorkload
from repro.workloads.zipf import DriftingZipfGenerator, ZipfGenerator

__all__ = [
    "BimodalDistribution",
    "DiurnalArrivals",
    "DriftingZipfGenerator",
    "ExponentialDistribution",
    "FixedDistribution",
    "JitterModel",
    "KvOp",
    "KvRequest",
    "KvWorkload",
    "LognormalDistribution",
    "MmppArrivals",
    "RpcRequest",
    "ServiceDistribution",
    "SyntheticWorkload",
    "ZipfGenerator",
]
