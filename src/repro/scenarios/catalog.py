"""Built-in chaos-scenario catalog.

The three hand-written failure drills (``examples/switch_failure_drill
.py``) expressed as declarative specs, plus compound scenarios that
compose the same §3.6 vocabulary into harder stories: rolling spine
maintenance, cascading server failures across racks, a kill racing an
in-flight control-plane rebuild, a load surge riding through a table
push, and a whole-rack drain.

Every entry is written as the plain-dict form :meth:`Scenario.from_dict`
accepts — the same shape a TOML spec file parses to — so the catalog
doubles as the spec-format reference.  ``repro-netclone scenarios``
lists it; ``repro-netclone run-scenario <name>`` runs one entry through
:func:`repro.scenarios.runner.run_scenario` with the invariant library
enforced.

The first three entries are pinned to the drill constants (timings,
rates, seeds, report windows): the drill script runs *these* specs, so
its output is byte-identical to the historical hand-rolled version.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.errors import ExperimentError
from repro.scenarios.spec import Scenario
from repro.sim.units import ms

__all__ = [
    "CATALOG_SPECS",
    "catalog",
    "catalog_names",
    "describe_catalog",
    "get_scenario",
]


def _drill_cluster(**overrides: Any) -> Dict[str, Any]:
    """The drills' shared cluster shape (seed 5, 120 kRPS, no warmup)."""
    cluster: Dict[str, Any] = {
        "scheme": "netclone",
        "rate_rps": 120e3,
        "warmup_ns": 0,
        "drain_ns": ms(20),
        "seed": 5,
    }
    cluster.update(overrides)
    return cluster


#: name -> plain-dict spec (the :meth:`Scenario.from_dict` shape).
CATALOG_SPECS: Dict[str, Dict[str, Any]] = {
    # -- Drill 1: the paper's Figure 16 ToR power cycle ----------------
    "tor-power-cycle": {
        "name": "tor-power-cycle",
        "description": (
            "ToR powered off at 200 ms, back at 280 ms with every "
            "register wiped (soft state only): throughput gap, clean "
            "recovery, no duplicate deliveries"
        ),
        "cluster": _drill_cluster(measure_ns=ms(600)),
        "report_window_ns": ms(20),
        "events": [
            {
                "at_ms": 200,
                "action": "wipe_switch",
                "down_ns": ms(80),
                "reinit_ns": ms(60),
            },
        ],
    },
    # -- Drill 2: spine withdraw -> fail -> restore --------------------
    "spine-flap": {
        "name": "spine-flap",
        "description": (
            "spine 0 withdrawn (hitless) at 150 ms, powered off at "
            "250 ms, restored at 350 ms: traffic drains onto the "
            "sibling spine within one window and spreads back"
        ),
        "cluster": _drill_cluster(
            topology="spine_leaf",
            topology_params={"racks": 2, "spines": 2},
            measure_ns=ms(500),
        ),
        "events": [
            {"at_ms": 150, "action": "withdraw_spine", "spine": 0},
            {"at_ms": 250, "action": "fail_spine", "spine": 0},
            {"at_ms": 350, "action": "restore_spine", "spine": 0,
             "reinit_ns": ms(10)},
        ],
    },
    # -- Drill 3: server fail -> placement-aware rebuild -> restore ----
    "server-fail-restore": {
        "name": "server-fail-restore",
        "description": (
            "server 0 powered off + control-plane removed at 150 ms, "
            "restored at 300 ms under rack-local placement: every "
            "rebuild keeps clones in-rack, trunks stay silent"
        ),
        "cluster": _drill_cluster(
            topology="spine_leaf",
            topology_params={"racks": 2, "spines": 2},
            placement="rack-local",
            num_servers=6,
            measure_ns=ms(450),
        ),
        "events": [
            {"at_ms": 150, "action": "kill_server", "server": 0},
            {"at_ms": 300, "action": "restore_server", "server": 0},
        ],
    },
    # -- Compound: rolling spine maintenance ---------------------------
    "rolling-spine-maintenance": {
        "name": "rolling-spine-maintenance",
        "description": (
            "three spines withdrawn and restored one after another "
            "(hitless rolling upgrade): throughput holds and no "
            "request is ever stuck or duplicated"
        ),
        "cluster": _drill_cluster(
            topology="spine_leaf",
            topology_params={"racks": 2, "spines": 3},
            measure_ns=ms(450),
            seed=7,
        ),
        "events": [
            {"at_ms": 100, "action": "withdraw_spine", "spine": 0},
            {"at_ms": 180, "action": "restore_spine", "spine": 0,
             "reinit_ns": ms(5)},
            {"at_ms": 200, "action": "withdraw_spine", "spine": 1},
            {"at_ms": 280, "action": "restore_spine", "spine": 1,
             "reinit_ns": ms(5)},
            {"at_ms": 300, "action": "withdraw_spine", "spine": 2},
            {"at_ms": 380, "action": "restore_spine", "spine": 2,
             "reinit_ns": ms(5)},
        ],
    },
    # -- Compound: cascading server failures across racks --------------
    "cascading-server-failures": {
        "name": "cascading-server-failures",
        "description": (
            "two servers in different racks die 40 ms apart and come "
            "back staggered; every rack keeps >= 3 live servers, so "
            "rack-local placement must keep the trunks silent "
            "throughout the cascade"
        ),
        "cluster": _drill_cluster(
            topology="spine_leaf",
            topology_params={"racks": 2, "spines": 2},
            placement="rack-local",
            num_servers=8,
            measure_ns=ms(450),
            seed=11,
        ),
        "events": [
            {"at_ms": 120, "action": "kill_server", "server": 0},
            {"at_ms": 160, "action": "kill_server", "server": 3},
            {"at_ms": 260, "action": "restore_server", "server": 0},
            {"at_ms": 300, "action": "restore_server", "server": 3},
        ],
    },
    # -- Compound: a second kill racing the first rebuild --------------
    "kill-during-rebuild": {
        "name": "kill-during-rebuild",
        "description": (
            "servers 0 and 2 (same rack) die 0.4 ms apart — inside the "
            "1 ms control-plane latency, so the second removal races "
            "the first rebuild; the rack legally falls back to global "
            "pairs until both restores land, then a rolling table push "
            "re-asserts the final epoch"
        ),
        "cluster": _drill_cluster(
            topology="spine_leaf",
            topology_params={"racks": 2, "spines": 2},
            placement="rack-local",
            num_servers=6,
            measure_ns=ms(450),
            seed=13,
        ),
        "events": [
            {"at_ms": 150, "action": "kill_server", "server": 0},
            {"at_ms": 150.4, "action": "kill_server", "server": 2},
            {"at_ms": 280, "action": "restore_server", "server": 2},
            {"at_ms": 300, "action": "restore_server", "server": 0},
            {"at_ms": 360, "action": "push_tables"},
        ],
    },
    # -- Compound: load surge riding through a table push --------------
    "load-surge": {
        "name": "load-surge",
        "description": (
            "every client's offered rate triples for 100 ms while a "
            "rolling table push lands mid-surge: pre-drawn arrivals "
            "are flushed twice and the epoch swap stays atomic under "
            "pressure"
        ),
        "cluster": _drill_cluster(
            rate_rps=100e3,
            measure_ns=ms(400),
            seed=17,
        ),
        "events": [
            {"at_ms": 150, "action": "load_surge", "factor": 3.0,
             "duration_ns": ms(100)},
            {"at_ms": 200, "action": "push_tables"},
        ],
    },
    # -- Compound: whole-rack drain and restore ------------------------
    "rack-drain": {
        "name": "rack-drain",
        "description": (
            "rack 1 hitlessly drained at 150 ms (servers stay powered, "
            "steering stops) and restored at 300 ms: no drops, no "
            "stuck requests, epochs move forward only"
        ),
        "cluster": _drill_cluster(
            topology="spine_leaf",
            topology_params={"racks": 2, "spines": 2},
            num_servers=6,
            measure_ns=ms(450),
            seed=19,
        ),
        "events": [
            {"at_ms": 150, "action": "drain_rack", "rack": 1},
            {"at_ms": 300, "action": "restore_rack", "rack": 1},
        ],
    },
}


def catalog_names() -> Tuple[str, ...]:
    """Catalog entries in definition order (drills first)."""
    return tuple(CATALOG_SPECS)


def get_scenario(name: str) -> Scenario:
    """Build (and validate) one catalog scenario by name."""
    spec = CATALOG_SPECS.get(name)
    if spec is None:
        known = ", ".join(catalog_names())
        raise ExperimentError(f"unknown scenario {name!r}; known: {known}")
    return Scenario.from_dict(spec)


def catalog() -> List[Scenario]:
    """Every catalog scenario, built and validated."""
    return [get_scenario(name) for name in catalog_names()]


def describe_catalog() -> List[str]:
    """``name — description`` lines for the CLI listing."""
    lines = []
    for name, spec in CATALOG_SPECS.items():
        description = " ".join(str(spec.get("description", "")).split())
        lines.append(f"{name} — {description}")
    return lines
