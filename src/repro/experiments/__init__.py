"""Experiment harnesses: one module per paper figure/table.

Each module exposes a ``run(scale=1.0, seed=..., jobs=1)`` function
returning a structured result and prints the same rows/series the
paper reports.  The registry maps experiment IDs (``fig7``, ``fig13``,
``table1``, ...) to those entry points; ``python -m repro <id>`` runs
one, and ``--jobs N`` fans the sweep points out over worker processes.

Adding a scheme
---------------
Schemes are plugins — no edits to :mod:`repro.experiments.common`:

1. Write a client class (subclass
   :class:`~repro.apps.client.OpenLoopClient`) in your own module.
2. Declare and register a spec::

       from repro.experiments.schemes import SchemeSpec, register_scheme

       @register_scheme
       def _my_scheme() -> SchemeSpec:
           return SchemeSpec(
               name="my-scheme",
               description="shown by `repro-netclone schemes`",
               make_client=lambda ctx, common: MyClient(
                   server_ips=ctx.server_ips, **common
               ),
           )

3. Ensure the module is imported (add it to
   :data:`repro.experiments.schemes.PLUGIN_MODULES`, or import it from
   your driver script) and run
   ``run_sweep(ClusterConfig(scheme="my-scheme"), loads)``.

Optional ``SchemeSpec`` hooks add a switch program (``make_program``),
a coordinator host (``make_coordinator``), NetClone-speaking servers
(``netclone_mode``) and post-assembly tweaks (``post_build``).
:mod:`repro.baselines.jsq_d` is a complete ~30-line example.
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.schemes import (
    SchemeSpec,
    describe_schemes,
    get_scheme,
    register_scheme,
    scheme_names,
)

__all__ = [
    "EXPERIMENTS",
    "SchemeSpec",
    "describe_schemes",
    "get_experiment",
    "get_scheme",
    "list_experiments",
    "register_scheme",
    "scheme_names",
]
