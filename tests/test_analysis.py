"""Validate the simulator against closed-form queueing theory.

These tests build small clusters out of the real simulator components
and compare measured means against M/M/1 / M/M/c formulas — pinning
down the event engine, the Poisson arrival process, and the server
model against ground truth.
"""

import math
import random

import pytest

from repro.analysis import (
    cclone_effective_utilisation,
    cloned_exponential_p99,
    erlang_c,
    exponential_p99,
    mm1_mean_wait,
    mmc_mean_wait,
)
from repro.apps.service import SyntheticService
from repro.core import RpcServer
from repro.errors import ExperimentError
from repro.net import Host, Link, Packet
from repro.sim import Simulator
from repro.sim.units import ms, us
from repro.workloads import JitterModel, RpcRequest


# ----------------------------------------------------------------------
# Formula self-checks
# ----------------------------------------------------------------------
def test_mm1_known_value():
    # rho = 0.5: Wq = 0.5 / (mu - lambda) = 0.5 / 1 = 0.5 time units.
    assert mm1_mean_wait(1.0, 2.0) == pytest.approx(0.5)


def test_erlang_c_single_server_equals_rho():
    assert erlang_c(1, 0.7) == pytest.approx(0.7)


def test_erlang_c_bounds_and_monotonicity():
    assert erlang_c(10, 0.0) == 0.0
    low = erlang_c(10, 5.0)
    high = erlang_c(10, 9.0)
    assert 0 < low < high < 1


def test_mmc_reduces_to_mm1():
    assert mmc_mean_wait(1, 1.0, 2.0) == pytest.approx(mm1_mean_wait(1.0, 2.0))


def test_exponential_p99_ln100():
    assert exponential_p99(25.0) == pytest.approx(25.0 * math.log(100))


def test_cloned_p99_halves():
    assert cloned_exponential_p99(25.0) == pytest.approx(exponential_p99(25.0) / 2)


def test_cclone_utilisation_doubles():
    assert cclone_effective_utilisation(0.3) == pytest.approx(0.6)


def test_validation():
    with pytest.raises(ExperimentError):
        mm1_mean_wait(2.0, 1.0)
    with pytest.raises(ExperimentError):
        erlang_c(0, 0.5)
    with pytest.raises(ExperimentError):
        erlang_c(2, 2.0)
    with pytest.raises(ExperimentError):
        exponential_p99(-1.0)
    with pytest.raises(ExperimentError):
        exponential_p99(1.0, q=1.5)
    with pytest.raises(ExperimentError):
        cclone_effective_utilisation(-1)


# ----------------------------------------------------------------------
# Simulator vs theory
# ----------------------------------------------------------------------
class MeasuringClient(Host):
    """Poisson generator + sojourn-time measurement, no stack costs."""

    def __init__(self, sim, server_ip, rate_rps, mean_service_us, horizon_ns, seed=9):
        super().__init__(sim, "client", 1, tx_cost_ns=0, rx_cost_ns=0)
        self.server_ip = server_ip
        self.rate = rate_rps
        self.mean_service_ns = mean_service_us * 1000.0
        self.horizon_ns = horizon_ns
        self.rng = random.Random(seed)
        self.sojourn_times = []
        self._seq = 0

    def start(self):
        self.sim.schedule(self._gap(), self._send)

    def _gap(self):
        return int(self.rng.expovariate(1.0) * 1e9 / self.rate) + 1

    def _send(self):
        if self.sim.now >= self.horizon_ns:
            return
        self._seq += 1
        service = int(self.rng.expovariate(1.0 / self.mean_service_ns)) + 1
        payload = RpcRequest(client_id=0, client_seq=self._seq, service_ns=service)
        self.send(
            Packet(
                src=self.ip,
                dst=self.server_ip,
                sport=7000,
                dport=7000,
                size=64,
                payload=payload,
                created_at=self.sim.now,
            )
        )
        self.sim.schedule(self._gap(), self._send)

    def handle(self, packet):
        self.sojourn_times.append(self.sim.now - packet.created_at)


def simulate_mmc(num_workers, utilisation, mean_service_us=25.0, horizon_ms=400):
    sim = Simulator()
    server = RpcServer(
        sim,
        name="srv",
        ip=2,
        server_id=0,
        service=SyntheticService(),
        jitter=JitterModel(0.0, 15.0),
        rng=random.Random(1),
        num_workers=num_workers,
        netclone_mode=False,
        tx_cost_ns=0,
        rx_cost_ns=0,
    )
    rate = utilisation * num_workers / (mean_service_us * 1e-6)
    client = MeasuringClient(sim, server.ip, rate, mean_service_us, ms(horizon_ms))
    link = Link(sim, client, server, propagation_ns=0, bandwidth_bps=1e15)
    client.attach_link(link)
    server.attach_link(link)
    client.start()
    sim.run()
    return client.sojourn_times


@pytest.mark.parametrize("utilisation", [0.3, 0.6])
def test_simulated_mm1_matches_theory(utilisation):
    mean_service_us = 25.0
    sojourns = simulate_mmc(1, utilisation)
    assert len(sojourns) > 3000
    measured_mean_us = sum(sojourns) / len(sojourns) / 1000.0
    mu = 1.0 / mean_service_us  # per us
    lam = utilisation * mu
    expected_us = mm1_mean_wait(lam, mu) + mean_service_us
    assert measured_mean_us == pytest.approx(expected_us, rel=0.12)


def test_simulated_mmc_matches_theory():
    mean_service_us = 25.0
    workers, utilisation = 4, 0.7
    sojourns = simulate_mmc(workers, utilisation)
    measured_mean_us = sum(sojourns) / len(sojourns) / 1000.0
    mu = 1.0 / mean_service_us
    lam = utilisation * workers * mu
    expected_us = mmc_mean_wait(workers, lam, mu) + mean_service_us
    assert measured_mean_us == pytest.approx(expected_us, rel=0.12)


def test_simulated_service_p99_matches_exponential():
    sojourns = sorted(simulate_mmc(8, 0.05))  # almost no queueing
    p99_us = sojourns[int(0.99 * len(sojourns))] / 1000.0
    assert p99_us == pytest.approx(exponential_p99(25.0), rel=0.15)
