"""Topology builders: single-rack stars and multi-rack fabrics.

The paper's testbed is a single rack: one ToR switch with every host a
direct cable away.  :class:`StarTopology` wires hosts to switch ports,
assigns addresses, and installs L3 routes.  It is deliberately generic
over the switch object (anything exposing ``connect(port, link)`` and
``install_route(ip, port)``) so both the programmable switch model and
test doubles can be used.

§3.7 sketches multi-rack deployment: only ToR switches run NetClone
logic, the client-side ToR stamps its switch ID into the SWID field,
and every other NetClone switch skips packets whose SWID is set and
does not match its own ID.  The :class:`Fabric` subclasses here build
such fabrics out of per-rack stars plus inter-rack wiring:

* :class:`SingleRackFabric` — one ToR, the paper's testbed;
* :class:`TwoRackFabric` — two ToRs joined by a trunk link;
* :class:`SpineLeafFabric` — ``racks`` ToRs fully meshed to
  ``spines`` plain L3 spine switches.

A fabric is role-aware: hosts are attached as ``"server"``,
``"client"`` or ``"coordinator"`` with an index, and the fabric's
placement policy (:meth:`Fabric.rack_of`) decides which rack — and
therefore which subnet, ToR and inter-rack routes — the host gets.
Experiment code never wires fabrics by hand; it resolves them through
the topology plugin registry in :mod:`repro.experiments.topologies`.

Spine selection on :class:`SpineLeafFabric` is a pluggable
:class:`SpinePolicy`: ``ecmp`` pins each destination ip to one spine
(a pure function of the address — bit-identical to the original
static routes), ``least-loaded`` reads the exact serialisation
backlog of each candidate uplink (:meth:`Link.backlog_ns`) and takes
the shallowest, and ``flowlet`` keeps a flow on its spine until an
idle gap lets it re-pick without reordering.  Policies see only the
*active* spines, so :meth:`SpineLeafFabric.withdraw_spine` /
:meth:`SpineLeafFabric.restore_spine` give failure drills dynamic
route updates: withdrawn spines stop receiving new traffic
immediately while in-flight packets still drain.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import NetworkError, PortError
from repro.net.addresses import ip_to_int
from repro.net.host import Host
from repro.net.link import Link
from repro.sim.core import Simulator

__all__ = [
    "EcmpSpinePolicy",
    "Fabric",
    "FlowletSpinePolicy",
    "LeastLoadedSpinePolicy",
    "SingleRackFabric",
    "SpineLeafFabric",
    "SpinePolicy",
    "StarTopology",
    "TwoRackFabric",
    "make_spine_policy",
    "register_spine_policy",
    "spine_policy_names",
    "unregister_spine_policy",
]


class StarTopology:
    """A single-switch star: every host gets its own switch port."""

    def __init__(
        self,
        sim: Simulator,
        switch: Any,
        propagation_ns: int = 300,
        bandwidth_bps: float = 100e9,
        subnet: str = "10.0.1.0",
        max_ports: Optional[int] = None,
    ):
        self.sim = sim
        self.switch = switch
        self.propagation_ns = propagation_ns
        self.bandwidth_bps = bandwidth_bps
        self.subnet_base = ip_to_int(subnet)
        #: Ports beyond this are reserved (fabric uplinks); None: no cap.
        self.max_ports = max_ports
        self.hosts: List[Host] = []
        self.links: List[Link] = []
        self.port_of: Dict[str, int] = {}
        self._next_port = 0
        self._next_host_octet = 100

    def allocate_ip(self) -> int:
        """Next free address in the subnet (``.101``, ``.102``, ...)."""
        self._next_host_octet += 1
        if self._next_host_octet > 254:
            raise NetworkError("subnet exhausted")
        return self.subnet_base + self._next_host_octet

    def add_host(self, host: Host) -> int:
        """Cable *host* to the next switch port; returns the port index."""
        if host.name in self.port_of:
            raise PortError(f"host {host.name} already attached")
        if self.max_ports is not None and self._next_port >= self.max_ports:
            raise NetworkError(
                f"rack full: {self.max_ports} host ports in use and the "
                "remaining switch ports are reserved for fabric uplinks"
            )
        port = self._next_port
        self._next_port += 1
        link = Link(
            self.sim,
            host,
            self.switch,
            propagation_ns=self.propagation_ns,
            bandwidth_bps=self.bandwidth_bps,
            name=f"link-{host.name}",
        )
        host.attach_link(link)
        self.switch.connect(port, link)
        self.switch.install_route(host.ip, port)
        self.hosts.append(host)
        self.links.append(link)
        self.port_of[host.name] = port
        return port

    def link_of(self, host: Host) -> Link:
        """The uplink of *host*."""
        port = self.port_of.get(host.name)
        if port is None:
            raise PortError(f"host {host.name} not attached")
        return self.links[port]


# ----------------------------------------------------------------------
# Spine selection policies
# ----------------------------------------------------------------------
class SpinePolicy:
    """Picks the uplink spine for one inter-rack packet at a ToR.

    A policy is owned by one :class:`SpineLeafFabric` and consulted at
    egress time on every remote ToR; it must return the index of an
    *active* spine.  Selection costs no simulated time (the decision
    models a match-action lookup already inside the pipeline pass).
    """

    #: Registry key (``ecmp``, ``least-loaded``, ``flowlet``).
    name: str = ""

    def __init__(self, fabric: "SpineLeafFabric", **params: Any):
        self.fabric = fabric

    def select(self, tor: int, packet: Any) -> int:
        """Index of the spine *packet* should take out of ToR *tor*."""
        raise NotImplementedError


class EcmpSpinePolicy(SpinePolicy):
    """Deterministic ECMP: a pure function of the destination address.

    With every spine active this reproduces the original static routes
    (``ip % spines``) bit-for-bit; after a withdrawal the same modulo
    re-maps over the surviving spines, so recovery needs no state.
    """

    name = "ecmp"

    def select(self, tor: int, packet: Any) -> int:
        active = self.fabric.active_spines()
        return active[packet.dst % len(active)]


class LeastLoadedSpinePolicy(SpinePolicy):
    """Congestion-aware: take the uplink with the shallowest backlog.

    The ECMP choice anchors the search and wins ties, so an idle
    fabric behaves exactly like ``ecmp`` and the policy only deviates
    when a trunk actually queues — the near-source congestion
    signaling that deterministic ECMP lacks.
    """

    name = "least-loaded"

    def select(self, tor: int, packet: Any) -> int:
        fabric = self.fabric
        active = fabric.active_spines()
        count = len(active)
        anchor = packet.dst % count
        best = active[anchor]
        best_key: Tuple[int, int] = (fabric.uplink_backlog_ns(tor, best), 0)
        for offset in range(1, count):
            spine = active[(anchor + offset) % count]
            key = (fabric.uplink_backlog_ns(tor, spine), offset)
            if key < best_key:
                best, best_key = spine, key
        return best


class FlowletSpinePolicy(LeastLoadedSpinePolicy):
    """Least-loaded at flowlet granularity.

    A (ToR, src, dst) flow sticks to its spine while packets keep
    coming; after an idle gap of ``flowlet_gap_ns`` the next packet
    re-picks via the least-loaded rule.  Re-picking only across idle
    gaps is what lets real fabrics rebalance without reordering.
    """

    name = "flowlet"

    def __init__(self, fabric: "SpineLeafFabric", **params: Any):
        super().__init__(fabric, **params)
        self.gap_ns = int(params.get("flowlet_gap_ns", 100_000))
        if self.gap_ns < 0:
            raise NetworkError("flowlet gap must be non-negative")
        #: (tor, src, dst) -> [spine, last packet time].
        self._flows: Dict[Tuple[int, int, int], List[int]] = {}

    def select(self, tor: int, packet: Any) -> int:
        now = self.fabric.sim.now
        key = (tor, packet.src, packet.dst)
        entry = self._flows.get(key)
        if (
            entry is not None
            and now - entry[1] <= self.gap_ns
            and self.fabric.spine_is_active(entry[0])
        ):
            entry[1] = now
            return entry[0]
        spine = super().select(tor, packet)
        self._flows[key] = [spine, now]
        return spine


#: Policy name → class; extend via :func:`register_spine_policy`.
SPINE_POLICIES: Dict[str, Any] = {}

#: Modules that registered policies — shipped to sweep worker
#: processes (spawn/forkserver start clean) so plugin policies resolve
#: under ``jobs > 1`` exactly like plugin schemes and topologies.
_POLICY_MODULES: Dict[str, None] = {}


def register_spine_policy(cls):
    """Register a :class:`SpinePolicy` subclass under its ``name``.

    Usable as a decorator.  Once registered, the policy is reachable
    from every layer above (``topology_params={"spine_policy": ...}``,
    ``--topology spine_leaf:spine_policy=...``) with zero further
    edits.  Duplicate names raise.
    """
    name = getattr(cls, "name", "")
    if not name:
        raise NetworkError("spine policy classes need a non-empty `name`")
    if name in SPINE_POLICIES:
        raise NetworkError(f"spine policy {name!r} already registered")
    SPINE_POLICIES[name] = cls
    module = getattr(cls, "__module__", None)
    if module:
        _POLICY_MODULES[module] = None
    return cls


def unregister_spine_policy(name: str) -> None:
    """Remove a policy registration (mainly for tests)."""
    if name not in SPINE_POLICIES:
        raise NetworkError(f"spine policy {name!r} is not registered")
    del SPINE_POLICIES[name]


for _cls in (EcmpSpinePolicy, LeastLoadedSpinePolicy, FlowletSpinePolicy):
    register_spine_policy(_cls)
del _cls


def spine_policy_names() -> Tuple[str, ...]:
    """Registered spine-policy names."""
    return tuple(SPINE_POLICIES)


def spine_policy_modules() -> Tuple[str, ...]:
    """Modules that registered policies (for sweep worker re-imports)."""
    return tuple(_POLICY_MODULES)


def make_spine_policy(name: str, fabric: "SpineLeafFabric", **params: Any) -> SpinePolicy:
    """Instantiate the policy registered under *name* for *fabric*."""
    try:
        cls = SPINE_POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(SPINE_POLICIES))
        raise NetworkError(f"unknown spine policy {name!r}; known: {known}") from None
    return cls(fabric, **params)


# ----------------------------------------------------------------------
# Multi-rack fabrics
# ----------------------------------------------------------------------
class Fabric:
    """Base class for registry-built fabrics.

    Subclasses create switches via the injected ``make_switch(name)``
    factory (keeping this module independent of the switch model),
    wire racks together, and implement the placement policy
    :meth:`rack_of` plus the inter-rack route announcement
    :meth:`_announce`.

    Attributes driven by cluster assembly:

    * ``tors`` — the program-bearing top-of-rack switches, in rack
      order (their 1-based position is the §3.7 switch ID);
    * ``switches`` — every switch, ToRs first, then any spines;
    * ``stars`` — the per-rack :class:`StarTopology` access layer;
    * ``trunks`` — every inter-rack link (empty on a single rack), the
      set the per-link utilization metrics report on.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.tors: List[Any] = []
        self.switches: List[Any] = []
        self.stars: List[StarTopology] = []
        self.trunks: List[Link] = []

    # -- placement -----------------------------------------------------
    def rack_of(self, role: str, index: int) -> int:
        """Which rack the *index*-th host of *role* lives in."""
        raise NotImplementedError

    def racks_of(self, role: str, count: int) -> List[int]:
        """Rack of each of the first *count* hosts of *role*.

        The rack→host placement map the layers above consult: placement
        policies build rack-aware group tables from
        ``racks_of("server", n)``, and clients are handed the group
        table of ``racks_of("client", n)[i]``'s ToR.
        """
        return [self.rack_of(role, index) for index in range(count)]

    # -- host attachment hooks ----------------------------------------
    def allocate_ip(self, role: str = "host", index: int = 0) -> int:
        """Pre-allocate the address a later :meth:`attach` will route."""
        return self.stars[self.rack_of(role, index)].allocate_ip()

    def attach(self, host: Host, role: str = "host", index: int = 0) -> int:
        """Cable *host* into its rack and announce it fabric-wide."""
        rack = self.rack_of(role, index)
        port = self.stars[rack].add_host(host)
        self._announce(host, rack)
        return port

    def _announce(self, host: Host, rack: int) -> None:
        """Install the inter-rack routes that reach *host* in *rack*."""

    # -- lookups -------------------------------------------------------
    def link_of(self, host: Host) -> Link:
        """The access link of *host*, whichever rack it is in."""
        for star in self.stars:
            if host.name in star.port_of:
                return star.link_of(host)
        raise PortError(f"host {host.name} not attached to any rack")

    # -- host failure drills -------------------------------------------
    def fail_host(self, host: Host) -> None:
        """Power off *host*: its access link drops everything both ways.

        The data-plane half of a §3.6 server failure; pair it with
        :meth:`~repro.core.failures.ServerFailureHandler.remove_server`
        for the control-plane rebuild that stops traffic being steered
        at the dead host.
        """
        self.link_of(host).down = True

    def restore_host(self, host: Host) -> None:
        """Bring *host*'s access link back up (recovery drills)."""
        self.link_of(host).down = False

    @property
    def num_racks(self) -> int:
        """Number of racks (= ToR switches)."""
        return len(self.tors)

    def _make_rack(
        self,
        make_switch: Callable[[str], Any],
        rack: int,
        propagation_ns: int,
        bandwidth_bps: float,
        reserved_ports: int = 0,
        name: Optional[str] = None,
    ) -> Any:
        """One ToR plus its access star on the rack's own /24.

        *reserved_ports* top ports are kept back for fabric uplinks so
        host attachment cannot collide with trunk wiring.  The ToR is
        appended to ``tors`` **and** ``switches``, so subclasses only
        extend ``switches`` for non-ToR gear (e.g. spines).
        """
        tor = make_switch(name if name is not None else f"tor{rack + 1}")
        num_ports = getattr(tor, "num_ports", None)
        if num_ports is not None and num_ports - reserved_ports < 1:
            raise NetworkError("ToR has no ports left for hosts")
        self.tors.append(tor)
        self.switches.append(tor)
        self.stars.append(
            StarTopology(
                self.sim,
                tor,
                propagation_ns=propagation_ns,
                bandwidth_bps=bandwidth_bps,
                subnet=f"10.0.{rack + 1}.0",
                max_ports=None if num_ports is None else num_ports - reserved_ports,
            )
        )
        return tor


class SingleRackFabric(Fabric):
    """The paper's testbed: one ToR, every host one cable away."""

    def __init__(
        self,
        sim: Simulator,
        make_switch: Callable[[str], Any],
        propagation_ns: int = 300,
        bandwidth_bps: float = 100e9,
    ):
        super().__init__(sim)
        self._make_rack(make_switch, 0, propagation_ns, bandwidth_bps, name="tor")

    def rack_of(self, role: str, index: int) -> int:
        return 0


class TwoRackFabric(Fabric):
    """Two ToRs joined by a trunk; placement is per-role configurable.

    The §3.7 default puts clients (and the coordinator, which acts on
    their behalf) in rack 0 and servers in rack 1, so every request
    crosses the trunk and only the client-side ToR does NetClone work.
    Collapsing both roles onto one rack (``server_rack=client_rack``)
    degenerates to a single-rack star with an idle trunk — useful for
    determinism cross-checks.
    """

    def __init__(
        self,
        sim: Simulator,
        make_switch: Callable[[str], Any],
        client_rack: int = 0,
        server_rack: int = 1,
        coordinator_rack: int | None = None,
        propagation_ns: int = 300,
        bandwidth_bps: float = 100e9,
        trunk_propagation_ns: int = 1000,
        trunk_bandwidth_bps: float = 400e9,
    ):
        super().__init__(sim)
        if coordinator_rack is None:
            coordinator_rack = client_rack
        placements = (client_rack, server_rack, int(coordinator_rack))
        if not all(0 <= rack <= 1 for rack in placements):
            raise NetworkError("two-rack placement must use racks 0 and 1")
        self._racks = {
            "client": client_rack,
            "server": server_rack,
            "coordinator": int(coordinator_rack),
        }
        for rack in range(2):
            self._make_rack(
                make_switch, rack, propagation_ns, bandwidth_bps, reserved_ports=1
            )
        tor_a, tor_b = self.tors
        self.uplink_ports = [tor_a.num_ports - 1, tor_b.num_ports - 1]
        self.trunk = Link(
            sim,
            tor_a,
            tor_b,
            propagation_ns=trunk_propagation_ns,
            bandwidth_bps=trunk_bandwidth_bps,
            name="trunk",
        )
        tor_a.connect(self.uplink_ports[0], self.trunk)
        tor_b.connect(self.uplink_ports[1], self.trunk)
        self.trunks.append(self.trunk)

    def rack_of(self, role: str, index: int) -> int:
        return self._racks.get(role, 0)

    def _announce(self, host: Host, rack: int) -> None:
        other = 1 - rack
        self.tors[other].install_route(host.ip, self.uplink_ports[other])


class SpineLeafFabric(Fabric):
    """``racks`` ToRs fully meshed to ``spines`` plain L3 spines.

    Servers and clients are spread round-robin across racks
    (host ``i`` lands in rack ``i % racks``); the coordinator lives in
    rack 0.  Inter-rack traffic picks its spine through the fabric's
    :class:`SpinePolicy` (``spine_policy``): the default ``ecmp`` pins
    each destination to ``ip % spines`` — bit-identical to static
    routing — while ``least-loaded`` and ``flowlet`` read uplink
    backlog at egress time.  ToRs run the scheme's switch program
    (with their 1-based rack number as §3.7 switch ID); spines stay
    plain L3.

    Spines can be withdrawn and restored at runtime
    (:meth:`withdraw_spine` / :meth:`restore_spine`), which every
    policy honours on the next packet — the dynamic route updates that
    spine-failure and trunk-flap drills need.
    """

    def __init__(
        self,
        sim: Simulator,
        make_switch: Callable[[str], Any],
        racks: int = 2,
        spines: int = 2,
        propagation_ns: int = 300,
        bandwidth_bps: float = 100e9,
        trunk_propagation_ns: int = 1000,
        trunk_bandwidth_bps: float = 400e9,
        spine_policy: str = "ecmp",
        flowlet_gap_ns: int = 100_000,
        express_spines: bool = False,
    ):
        super().__init__(sim)
        if racks < 1:
            raise NetworkError("spine-leaf needs at least one rack")
        if spines < 1:
            raise NetworkError("spine-leaf needs at least one spine")
        for rack in range(racks):
            self._make_rack(
                make_switch, rack, propagation_ns, bandwidth_bps, reserved_ports=spines
            )
        self.spines = [make_switch(f"spine{s + 1}") for s in range(spines)]
        self.switches.extend(self.spines)
        # ToR t's uplink to spine s sits at port (num_ports - 1 - s);
        # spine s's downlink to ToR t sits at port t.
        self._uplink_port: List[List[int]] = []
        #: Uplink links, indexed ``uplinks[tor][spine]``.
        self.uplinks: List[List[Link]] = []
        for t, tor in enumerate(self.tors):
            ports = []
            links = []
            for s, spine in enumerate(self.spines):
                if racks > spine.num_ports:
                    raise NetworkError("spine has fewer ports than racks")
                port = tor.num_ports - 1 - s
                link = Link(
                    sim,
                    tor,
                    spine,
                    propagation_ns=trunk_propagation_ns,
                    bandwidth_bps=trunk_bandwidth_bps,
                    name=f"trunk-t{t + 1}s{s + 1}",
                )
                tor.connect(port, link)
                spine.connect(t, link)
                ports.append(port)
                links.append(link)
                self.trunks.append(link)
            self._uplink_port.append(ports)
            self.uplinks.append(links)
        self._spine_up = [True] * spines
        #: Cached active-spine indices: policies read this per packet,
        #: so it is rebuilt only on withdraw/restore, not per call.
        self._active_cache = list(range(spines))
        #: Per-spine withdrawal generation; a delayed restore callback
        #: from an older generation must not re-activate the spine.
        self._spine_epoch = [0] * spines
        self.policy = make_spine_policy(
            spine_policy, self, flowlet_gap_ns=flowlet_gap_ns
        )
        self._selectors = [self._make_selector(t) for t in range(racks)]
        # Express forwarding is an experiment-level promise that no
        # spine fails mid-run; it is sound only with two racks, where
        # each spine egress direction has a single upstream trunk (so
        # booking order equals pass-time order — see
        # ``ProgrammableSwitch._egress``).  ``fail()`` still clears the
        # flag should a drill break the promise.
        if express_spines and racks == 2:
            for spine in self.spines:
                if spine.program is None:
                    spine._express_ok = True

    def rack_of(self, role: str, index: int) -> int:
        if role == "coordinator":
            return 0
        return index % self.num_racks

    def _announce(self, host: Host, rack: int) -> None:
        for s in self.spines:
            s.install_route(host.ip, rack)
        for t, tor in enumerate(self.tors):
            if t != rack:
                tor.install_dynamic_route(host.ip, self._selectors[t])

    def _make_selector(self, tor: int) -> Callable[[Any], int]:
        """The per-packet uplink chooser installed on ToR *tor*."""

        def select(packet: Any) -> int:
            return self._uplink_port[tor][self.policy.select(tor, packet)]

        return select

    # -- policy support ------------------------------------------------
    def active_spines(self) -> List[int]:
        """Indices of spines currently accepting new traffic.

        Returns the fabric's cached list (rebuilt on withdraw/restore,
        read per packet by the policies) — callers must not mutate it.
        """
        return self._active_cache

    def spine_is_active(self, spine: int) -> bool:
        """Whether *spine* is currently accepting new traffic."""
        return 0 <= spine < len(self._spine_up) and self._spine_up[spine]

    def uplink_backlog_ns(self, tor: int, spine: int) -> int:
        """Serialisation backlog on ToR *tor*'s uplink to *spine*."""
        return self.uplinks[tor][spine].backlog_ns(self.tors[tor])

    # -- failure drills ------------------------------------------------
    def withdraw_spine(self, spine: int, fail: bool = False) -> None:
        """Stop steering new traffic through *spine*.

        Route withdrawal is hitless: packets already on the wire (or
        queued at the spine) still drain.  With ``fail=True`` the spine
        switch is also powered off, so those in-flight packets become
        the drop window the drill measures.  Withdrawing the last
        active spine raises (the fabric would partition).
        """
        if not 0 <= spine < len(self.spines):
            raise NetworkError(f"no spine {spine} in a {len(self.spines)}-spine fabric")
        if self._spine_up[spine] and len(self.active_spines()) == 1:
            raise NetworkError("cannot withdraw the last active spine")
        self._spine_up[spine] = False
        self._spine_epoch[spine] += 1
        self._rebuild_active_cache()
        if fail:
            self.spines[spine].fail()

    def restore_spine(self, spine: int, reinit_delay_ns: int = 0) -> None:
        """Steer traffic through *spine* again (recovering it if failed).

        With a re-initialisation delay the routes come back only once
        the switch is forwarding again, so restoration never opens a
        second drop window.
        """
        if not 0 <= spine < len(self.spines):
            raise NetworkError(f"no spine {spine} in a {len(self.spines)}-spine fabric")
        switch = self.spines[spine]
        if getattr(switch, "down", False):
            switch.recover(reinit_delay_ns)
        if reinit_delay_ns > 0:
            self.sim.call_after(
                reinit_delay_ns, self._mark_spine_up, spine, self._spine_epoch[spine]
            )
        else:
            self._mark_spine_up(spine, self._spine_epoch[spine])

    def _mark_spine_up(self, spine: int, epoch: int) -> None:
        # A flap drill may withdraw again while a delayed restore is
        # pending; the stale callback (older epoch) must not win.
        if epoch != self._spine_epoch[spine]:
            return
        self._spine_up[spine] = True
        self._rebuild_active_cache()

    def _rebuild_active_cache(self) -> None:
        self._active_cache = [s for s, up in enumerate(self._spine_up) if up]
