# Developer/CI entry points.  PYTHONPATH=src because the package is
# run from the source tree (no install step in the container).

PY := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python

.PHONY: test smoke bench bench-compare bench-update drill scenarios profile rss-guard lint lint-baseline

test:  ## full tier-1 suite (what the roadmap's verify line runs)
	$(PY) -m pytest -x -q

smoke:  ## fast tier: skips tests marked slow (multi-rack sweeps, wide pools)
	$(PY) -m pytest -x -q -m "not slow"

drill:  ## failure drills (with their historical output) + full chaos catalog, invariants enforced
	$(PY) examples/switch_failure_drill.py
	$(PY) -m repro run-scenario all

scenarios:  ## chaos-scenario catalog only (see `repro-netclone scenarios` for the list)
	$(PY) -m repro run-scenario all

bench:  ## pytest-benchmark harnesses at reduced scale (REPRO_BENCH_SCALE=0.25)
	$(PY) -m pytest benchmarks -q -o python_files="bench_*.py" -o python_functions="bench_*"

bench-compare:  ## re-measure BENCH_*.json workloads; fail on a >30% regression; print delta vs BENCH_history.jsonl
	$(PY) tools/bench_baseline.py

bench-update:  ## rewrite the checked-in BENCH_*.json baselines (+ append to BENCH_history.jsonl)
	$(PY) tools/bench_baseline.py --update

profile:  ## cProfile the bench workloads; top-20 cumulative per target
	$(PY) tools/profile_hotpath.py

rss-guard:  ## sketch-mode fig18 sweep + 100M-request MMPP point under a peak-RSS ceiling
	$(PY) tools/rss_guard.py

lint:  ## detlint determinism/resource rules over src/repro, examples and tools; fails on any non-baselined finding
	$(PY) tools/detlint.py --findings-json detlint-findings.json

lint-baseline:  ## rewrite detlint-baseline.json with the current findings (accepting them as legacy)
	$(PY) tools/detlint.py --update-baseline
