"""ASCII charts for throughput-latency curves.

The paper's figures are log-scale tail-latency curves; this renders
the same series as terminal charts so `repro-netclone fig7` output can
be eyeballed against the paper without a plotting stack.  Pure
text — no matplotlib dependency.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.metrics.sweep import SweepResult

__all__ = ["render_chart", "render_sweeps"]

_MARKERS = "ox+*#@%&"


def _log_position(value: float, low: float, high: float, size: int) -> int:
    span = math.log(high) - math.log(low)
    if span <= 0:
        return 0
    fraction = (math.log(value) - math.log(low)) / span
    return max(0, min(size - 1, int(round(fraction * (size - 1)))))


def _linear_position(value: float, low: float, high: float, size: int) -> int:
    span = high - low
    if span <= 0:
        return 0
    fraction = (value - low) / span
    return max(0, min(size - 1, int(round(fraction * (size - 1)))))


def render_chart(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "throughput (MRPS)",
    y_label: str = "p99 (us, log)",
) -> str:
    """Render ``label -> [(x, y), ...]`` as a log-y scatter chart."""
    points = [
        (x, y) for curve in series.values() for x, y in curve if y > 0 and y == y
    ]
    if not points:
        raise ExperimentError("nothing to chart")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if y_low == y_high:
        y_high = y_low * 1.1 + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (label, curve) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in curve:
            if y <= 0 or y != y:
                continue
            col = _linear_position(x, x_low, x_high, width)
            row = height - 1 - _log_position(y, y_low, y_high, height)
            grid[row][col] = marker

    lines = []
    top_label = f"{y_high:,.0f}"
    bottom_label = f"{y_low:,.0f}"
    gutter = max(len(top_label), len(bottom_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(gutter)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * width)
    lines.append(
        " " * gutter
        + f" {x_low:.2f}".ljust(width // 2)
        + f"{x_high:.2f} {x_label}".rjust(width // 2)
    )
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={label}" for i, label in enumerate(series)
    )
    lines.append(" " * gutter + f" {y_label};  {legend}")
    return "\n".join(lines)


def render_sweeps(sweeps: Sequence[SweepResult], **kwargs) -> str:
    """Chart a group of sweep results (one marker per scheme)."""
    series = {
        sweep.scheme: [(p.throughput_mrps, p.p99_us) for p in sweep.points]
        for sweep in sweeps
    }
    return render_chart(series, **kwargs)
