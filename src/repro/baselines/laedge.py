"""LÆDGE: coordinator-based dynamic cloning (Primorac et al., NSDI'21).

The state-of-the-art comparison scheme (§2.2, §5.3.1).  A CPU-based
coordinator sits between clients and servers:

* a request finding **two or more idle servers** is cloned to two
  randomly chosen idle servers;
* with **at least one server below its slot limit** it is forwarded,
  un-cloned, to the least-loaded server;
* otherwise it is **queued** in the coordinator and dispatched when a
  response frees a slot (guaranteeing dispatched-to-idle semantics).

Responses flow back through the coordinator (it must observe
completions to manage its queue and server bookkeeping), which
forwards the first response of each request to the client and absorbs
redundant ones.  Every packet through the coordinator costs CPU —
that per-packet cost, modelled by the host NIC costs, is what caps
LÆDGE's throughput in Figure 8 and adds the microseconds of latency
overhead §2.2 criticises.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Deque, Dict, List, Sequence, Tuple

from repro.apps.client import OpenLoopClient
from repro.baselines.random_lb import PLAIN_RPC_PORT
from repro.errors import ExperimentError
from repro.net.host import Host
from repro.net.packet import Packet
from repro.sim.core import Simulator
from repro.sim.monitor import Counter

__all__ = ["LAEDGE_PORT", "LaedgeClient", "LaedgeCoordinator"]

#: UDP port for client<->coordinator traffic.
LAEDGE_PORT = 7100


class LaedgeClient(OpenLoopClient):
    """Open-loop client that addresses every request to the coordinator."""

    def __init__(self, *args: Any, coordinator_ip: int, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.coordinator_ip = coordinator_ip

    def build_packets(self, request: Any) -> List[Packet]:
        return [
            self._new_packet(
                src=self.ip,
                dst=self.coordinator_ip,
                sport=LAEDGE_PORT,
                dport=LAEDGE_PORT,
                size=self.workload.request_size(request),
                payload=request,
            )
        ]


class LaedgeCoordinator(Host):
    """The cloning coordinator.

    ``slots_per_server`` bounds how many requests may be outstanding
    at one server before the coordinator queues; 1 reproduces strict
    dispatch-one-at-a-time LÆDGE, while the default of the server
    worker-thread count is the generous reading that lets LÆDGE use
    multi-threaded servers.  The coordinator is the bottleneck either
    way, which is the point of Figure 8.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        ip: int,
        server_ips: Sequence[int],
        rng: random.Random,
        slots_per_server: int = 15,
        cpu_cost_ns: int = 600,
    ):
        super().__init__(
            sim,
            name,
            ip,
            tx_cost_ns=cpu_cost_ns,
            rx_cost_ns=cpu_cost_ns,
            rx_queue_limit=65536,
        )
        if len(server_ips) < 2:
            raise ExperimentError("LÆDGE needs at least two servers")
        if slots_per_server <= 0:
            raise ExperimentError("slots_per_server must be positive")
        self.server_ips = list(server_ips)
        self.rng = rng
        self.slots_per_server = slots_per_server
        self.outstanding: Dict[int, int] = {ip_: 0 for ip_ in self.server_ips}
        self.pending: Deque[Packet] = deque()
        #: key -> [client_ip, expected_responses, received_responses]
        self._inflight: Dict[Tuple[int, int], List[int]] = {}
        self.counters = Counter()

    # ------------------------------------------------------------------
    def handle(self, packet: Packet) -> None:
        payload = packet.payload
        if payload is None:
            return
        if packet.src in self.outstanding:
            self._handle_response(packet)
        else:
            self._handle_request(packet)

    # -- request path ----------------------------------------------------
    def _handle_request(self, packet: Packet) -> None:
        key = (packet.payload.client_id, packet.payload.client_seq)
        self.counters.incr("requests")
        idle = [ip_ for ip_, used in self.outstanding.items() if used == 0]
        if len(idle) >= 2 and not getattr(packet.payload, "write", False):
            targets = self.rng.sample(idle, 2)
            self._inflight[key] = [packet.src, 2, 0]
            self.counters.incr("cloned")
            for target in targets:
                self._dispatch(packet, target)
            return
        below_limit = [
            ip_ for ip_, used in self.outstanding.items() if used < self.slots_per_server
        ]
        if below_limit:
            target = min(below_limit, key=lambda ip_: self.outstanding[ip_])
            self._inflight[key] = [packet.src, 1, 0]
            self.counters.incr("forwarded")
            self._dispatch(packet, target)
            return
        self.counters.incr("queued")
        self.pending.append(packet)

    def _dispatch(self, packet: Packet, server_ip: int) -> None:
        self.outstanding[server_ip] += 1
        self.send(
            Packet(
                src=self.ip,
                dst=server_ip,
                sport=PLAIN_RPC_PORT,
                dport=PLAIN_RPC_PORT,
                size=packet.size,
                payload=packet.payload,
                created_at=packet.created_at,
            )
        )

    # -- response path -----------------------------------------------------
    def _handle_response(self, packet: Packet) -> None:
        server_ip = packet.src
        if self.outstanding.get(server_ip, 0) > 0:
            self.outstanding[server_ip] -= 1
        key = (packet.payload.client_id, packet.payload.client_seq)
        entry = self._inflight.get(key)
        if entry is None:
            self.counters.incr("responses_unmatched")
        else:
            client_ip, expected, received = entry
            received += 1
            entry[2] = received
            if received >= expected:
                del self._inflight[key]
            if received == 1:
                self.counters.incr("responses_forwarded")
                self.send(
                    Packet(
                        src=self.ip,
                        dst=client_ip,
                        sport=LAEDGE_PORT,
                        dport=LAEDGE_PORT,
                        size=packet.size,
                        payload=packet.payload,
                        created_at=packet.created_at,
                    )
                )
            else:
                self.counters.incr("responses_absorbed")
        self._drain_queue()

    def _drain_queue(self) -> None:
        """Dispatch buffered requests while capacity exists."""
        while self.pending:
            below = [
                ip_
                for ip_, used in self.outstanding.items()
                if used < self.slots_per_server
            ]
            if not below:
                return
            target = min(below, key=lambda ip_: self.outstanding[ip_])
            queued = self.pending.popleft()
            key = (queued.payload.client_id, queued.payload.client_seq)
            self._inflight[key] = [queued.src, 1, 0]
            self.counters.incr("dispatched_from_queue")
            self._dispatch(queued, target)

    @property
    def queue_len(self) -> int:
        """Requests currently buffered in the coordinator."""
        return len(self.pending)
