"""Benchmark: regenerate Figure 10 (RackSched integration, 4 panels)."""

from conftest import run_once

from repro.experiments import fig10_racksched


def bench_fig10_racksched(benchmark, bench_scale, bench_seed):
    report = run_once(
        benchmark, fig10_racksched.run, scale=bench_scale, seed=bench_seed
    )
    assert "Figure 10" in report
    assert "netclone-racksched" in report
