"""Server-failure handling (§3.6).

When a worker server dies, performance degrades until the operator
(or a health monitor) removes it: "The switch control plane can
quickly remove the failed server from the list of potential
destination servers by updating relevant tables (e.g., the group table
and the address table) in the switch data plane and the number of
groups on the client side."

:class:`ServerFailureHandler` implements exactly that flow on top of
the :class:`~repro.switchsim.controlplane.ControlPlane`:

1. rebuild the group table over the surviving servers (ordered pairs,
   so the §3.3 randomness argument still holds);
2. point every group at surviving addresses (the address table keeps
   its surviving entries; the dead server's entry is removed);
3. tell clients the new group count, so they stop drawing dead groups.

Until the control-plane update lands, requests whose group includes
the dead server are lost — the transient degradation the paper
describes.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.groups import build_group_pairs
from repro.core.program import NetCloneProgram
from repro.errors import ExperimentError
from repro.switchsim.controlplane import ControlPlane

__all__ = ["ServerFailureHandler"]


class ServerFailureHandler:
    """Removes failed servers from a running NetClone deployment."""

    def __init__(
        self,
        program: NetCloneProgram,
        control_plane: ControlPlane,
        clients: Sequence[object] = (),
    ):
        self.program = program
        self.control_plane = control_plane
        self.clients = list(clients)
        # server_id -> ip for the servers currently in rotation.
        self.active = dict(self.program.addr_table.entries())

    # ------------------------------------------------------------------
    def remove_server(self, server_id: int) -> int:
        """Schedule removal of *server_id*; returns the apply time (ns).

        The rebuild is submitted as one control-plane operation: table
        updates on a real switch are batched by the agent, and what
        matters for the model is the (slow) control-plane latency
        before any of it takes effect.
        """
        if server_id not in self.active:
            raise ExperimentError(f"server {server_id} is not in rotation")
        if len(self.active) <= 2:
            raise ExperimentError("cannot drop below two servers (cloning needs a pair)")
        del self.active[server_id]
        return self.control_plane.submit(self._apply_removal, server_id)

    def _apply_removal(self, server_id: int) -> None:
        program = self.program
        survivors: List[int] = sorted(self.active)
        # Remap group IDs onto ordered pairs of survivors.  Group IDs
        # are dense (clients draw uniformly from [0, num_groups)), so
        # the table is rebuilt rather than punched with holes.
        pairs = build_group_pairs(len(survivors))
        for group_id in list(program.grp_table.entries()):
            program.grp_table.remove(group_id)
        for group_id, (first, second) in enumerate(pairs):
            program.grp_table.install(
                group_id, (survivors[first], survivors[second])
            )
        program.num_groups = len(pairs)
        program.addr_table.remove(server_id)
        for client in self.clients:
            if hasattr(client, "num_groups"):
                client.num_groups = len(pairs)

    @property
    def active_server_ids(self) -> List[int]:
        """Server IDs still in rotation."""
        return sorted(self.active)
