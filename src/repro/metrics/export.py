"""CSV export of experiment series.

Each sweep becomes rows of a plain CSV so results can be re-plotted
with any external tool; the schema is stable and covered by tests.
"""

from __future__ import annotations

import csv
import io
from typing import Sequence

from repro.metrics.sweep import SweepResult

__all__ = ["sweeps_to_csv", "write_sweeps_csv"]

_FIELDS = [
    "scheme",
    "workload",
    "offered_rps",
    "throughput_rps",
    "p50_us",
    "p99_us",
    "p999_us",
    "mean_us",
    "samples",
]


def sweeps_to_csv(sweeps: Sequence[SweepResult]) -> str:
    """Serialise *sweeps* to CSV text (header + one row per point)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_FIELDS)
    for sweep in sweeps:
        for point in sweep.points:
            writer.writerow(
                [
                    sweep.scheme,
                    sweep.workload,
                    f"{point.offered_rps:.1f}",
                    f"{point.throughput_rps:.1f}",
                    f"{point.p50_us:.3f}",
                    f"{point.p99_us:.3f}",
                    f"{point.p999_us:.3f}",
                    f"{point.mean_us:.3f}",
                    point.samples,
                ]
            )
    return buffer.getvalue()


def write_sweeps_csv(path: str, sweeps: Sequence[SweepResult]) -> int:
    """Write *sweeps* to *path*; returns the number of data rows."""
    text = sweeps_to_csv(sweeps)
    with open(path, "w", newline="") as handle:
        handle.write(text)
    return sum(len(sweep.points) for sweep in sweeps)
