"""Service models: what a worker thread actually does per request.

A :class:`ServiceModel` maps a request payload to (a) the base service
time the worker occupies and (b) the executed result / response size.
Synthetic dummy RPCs spin for a client-specified duration (§5.1.2);
KV services execute the operation against a real in-memory store and
charge the cost model's time (§5.5).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import WorkloadError
from repro.kvstore.cost import KvCostModel
from repro.kvstore.store import KeyValueStore
from repro.workloads.kv import KvOp, KvRequest
from repro.workloads.synthetic import RpcRequest

__all__ = ["KvService", "ServiceModel", "SyntheticService"]


class ServiceModel:
    """Base class for per-server request execution."""

    #: True when ``base_service_ns`` is exactly ``payload.service_ns``
    #: and ``execute`` is a no-op — lets the server's per-request hot
    #: path skip two method dispatches.
    trivial_spin = False

    #: Payload-independent response size in bytes, or ``None`` when
    #: :meth:`response_size` actually depends on the payload.  Lets the
    #: server skip one method dispatch per response.
    fixed_response_size: Optional[int] = None

    def base_service_ns(self, payload: Any) -> int:
        """Base service time of *payload* (before execution jitter)."""
        raise NotImplementedError

    def execute(self, payload: Any) -> Optional[Any]:
        """Actually perform the operation; returns a result summary."""
        raise NotImplementedError

    def response_size(self, payload: Any) -> int:
        """Wire size of the response carrying the result."""
        raise NotImplementedError


class SyntheticService(ServiceModel):
    """Dummy RPC: spin for the duration carried in the request."""

    RESPONSE_SIZE = 128
    trivial_spin = True
    fixed_response_size = RESPONSE_SIZE

    def base_service_ns(self, payload: RpcRequest) -> int:
        return payload.service_ns

    def execute(self, payload: RpcRequest) -> None:
        return None

    def response_size(self, payload: RpcRequest) -> int:
        return self.RESPONSE_SIZE


class KvService(ServiceModel):
    """Key-value service: executes GET/SCAN/SET on a local replica."""

    RESPONSE_OVERHEAD = 64

    def __init__(self, store: KeyValueStore, cost_model: KvCostModel):
        self.store = store
        self.cost_model = cost_model

    def base_service_ns(self, payload: KvRequest) -> int:
        return self.cost_model.service_ns(payload)

    def execute(self, payload: KvRequest) -> Any:
        if payload.op is KvOp.GET:
            return self.store.get(payload.key)
        if payload.op is KvOp.SCAN:
            values = self.store.scan(payload.key, payload.count)
            # Responses are single packets; summarise like a real server
            # would when the client asked for a digest-style scan.
            return len(values)
        if payload.op is KvOp.SET:
            self.store.set(payload.key, b"\x00" * self.store.VALUE_BYTES)
            return True
        raise WorkloadError(f"unknown op {payload.op!r}")

    def response_size(self, payload: KvRequest) -> int:
        values = min(payload.count, 16) if payload.op is KvOp.SCAN else 1
        return self.RESPONSE_OVERHEAD + values * self.store.VALUE_BYTES
