"""Runner + sweep bridge: report shape, determinism, pinned golden.

The golden report (``tests/data/scenario_golden_tiny.json``) pins a
full ``ScenarioReport.to_dict()`` for a tiny kill/restore scenario,
the same way the fig18 goldens pin LoadPoints: any engine change that
shifts a single counter, checkpoint, or violation shows up as a diff
against the checked-in JSON.  Regenerate (deliberately!) with::

    PYTHONPATH=src python tests/data/regen_scenario_golden.py
"""

import json
import os

import pytest

from helpers import tiny_scenario

from repro.errors import ExperimentError
from repro.scenarios import (
    ScenarioReport,
    catalog,
    catalog_names,
    get_scenario,
    invariant_names,
    run_scenario,
    run_scenario_grid,
    scenario_grid,
)
from repro.sim.units import ms

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")


def _kill_restore(name="runner-tiny", **fields):
    return tiny_scenario(
        name=name,
        events=[
            {"at_ms": 1.5, "action": "kill_server", "server": 0},
            {"at_ms": 3.0, "action": "restore_server", "server": 0},
        ],
        **fields,
    )


# ----------------------------------------------------------------------
# Report shape
# ----------------------------------------------------------------------
def test_report_shape_and_checkpoints():
    run = run_scenario(_kill_restore())
    report = run.report
    assert report.scenario == "runner-tiny"
    assert report.seed == 7 and report.scheme == "netclone"
    # Default schedule: one checkpoint per distinct event time + "end".
    labels = [snap["label"] for snap in report.checkpoints]
    assert labels == ["after kill_server", "after restore_server", "end"]
    assert [snap["time_ns"] for snap in report.checkpoints[:2]] == [
        ms(1.5), ms(3),
    ]
    # Same-time checkpoints see the event's effect: server 0 is gone.
    assert 0 not in report.checkpoints[0]["active_servers"]
    assert 0 in report.checkpoints[1]["active_servers"]
    # Events come back in applied order with resolved times.
    assert [e["action"] for e in report.events] == [
        "kill_server", "restore_server",
    ]
    assert run.end is report.checkpoints[-1]
    # The "end" checkpoint is the drill-facing one: taken when the
    # configured timeline (horizon + drain window) finishes.
    assert run.end["time_ns"] == run.cluster.config.total_ns


def test_final_snapshot_drained_and_leak_free():
    report = run_scenario(_kill_restore()).report
    final = report.final
    assert final["label"] == "settled"
    assert report.meta["drained"]
    # Post-drain: queues empty, workers idle...
    assert set(final["server_queue"]) == {0}
    assert set(final["server_busy"]) == {0}
    # ...anything still outstanding is explained by real packet drops
    # (requests in flight to the killed server's dead access link)...
    drops = (
        final["switch_drops_down"] + final["link_drops"]
        + final["host_rx_drops"]
    )
    assert final["outstanding"] == 0 or drops > 0
    # ...every pooled packet is back on the free list...
    assert final["pool_free"] == final["pool_allocated"]
    # ...and the structural reachability walk found no holes.
    assert final["unreachable"] == []
    assert report.passed, report.summary()


def test_lossless_run_leaves_nothing_outstanding():
    report = run_scenario(
        tiny_scenario(
            name="lossless",
            events=[{"at_ms": 2, "action": "push_tables"}],
        )
    ).report
    final = report.final
    assert final["outstanding"] == 0
    assert final["switch_drops_down"] + final["link_drops"] == 0
    assert final["pool_free"] == final["pool_allocated"]
    assert report.passed, report.summary()


def test_meta_records_liveness_floor():
    report = run_scenario(_kill_restore()).report
    meta = report.meta
    assert meta["num_servers"] == 3 and meta["num_racks"] == 1
    # One of three servers died mid-run on the single rack.
    assert meta["min_rack_live"] == 2
    assert meta["has_handler"]


def test_explicit_checkpoint_schedule():
    scenario = _kill_restore(checkpoints_ns=[ms(1), ms(2)])
    report = run_scenario(scenario).report
    labels = [snap["label"] for snap in report.checkpoints]
    assert labels == [
        f"checkpoint@{ms(1)}ns", f"checkpoint@{ms(2)}ns", "end",
    ]


def test_bounded_drain_reports_instead_of_hanging():
    # A surge whose end-callback lands past the configured timeline
    # leaves one event in the queue at the horizon.  An unbounded drain
    # runs it; drain_limit=0 must instead surface a clean stuck-request
    # violation — not a hang, not a crash.
    scenario = tiny_scenario(
        name="surge-tail",
        events=[{"at_ms": 4.5, "action": "load_surge", "factor": 2.0,
                 "duration_ns": ms(2)}],
    )
    assert run_scenario(scenario).report.meta["drained"]
    report = run_scenario(scenario, drain_limit=0).report
    assert not report.meta["drained"]
    stuck = report.invariant("no-stuck-requests")
    assert not stuck.passed
    assert any("never drained" in v for v in stuck.violations)
    # Even the truncated run releases every pooled packet.
    assert report.final["pool_free"] == report.final["pool_allocated"]


# ----------------------------------------------------------------------
# Determinism + golden
# ----------------------------------------------------------------------
def test_same_spec_same_seed_bit_identical():
    first = run_scenario(_kill_restore()).report.to_dict()
    second = run_scenario(_kill_restore()).report.to_dict()
    assert first == second


def test_seed_override_reaches_the_cluster():
    report = run_scenario(_kill_restore(), seed=99).report
    assert report.seed == 99
    base = run_scenario(_kill_restore()).report
    assert base.seed == 7
    assert report.final["client_sent"] != base.final["client_sent"]


def test_golden_report_pinned():
    with open(os.path.join(DATA_DIR, "scenario_golden_tiny.json")) as fh:
        golden = json.load(fh)
    got = run_scenario(_kill_restore(name="golden-tiny")).report.to_dict()
    # json round-trip normalises tuples to lists before comparing.
    assert json.loads(json.dumps(got, sort_keys=True)) == golden


def test_report_dict_round_trip():
    report = run_scenario(_kill_restore()).report
    data = report.to_dict()
    clone = ScenarioReport.from_dict(data)
    assert clone.to_dict() == data
    assert clone.passed == report.passed
    assert [r.name for r in clone.invariants] == list(invariant_names())


# ----------------------------------------------------------------------
# Sweep bridge (scenario as a fourth sweep axis)
# ----------------------------------------------------------------------
def test_grid_expansion_and_strictness():
    spine = tiny_scenario(
        name="spiny",
        events=[{"at_ms": 1, "action": "withdraw_spine", "spine": 0}],
        cluster={
            "topology": "spine_leaf",
            "topology_params": {"racks": 2, "spines": 2},
        },
    )
    with pytest.raises(ExperimentError, match="needs a spine_leaf fabric"):
        scenario_grid([spine], topologies=["star"])
    cells = scenario_grid([spine], topologies=["star", None], strict=False)
    assert "skipped" in cells[0] and "spec" in cells[1]


def test_grid_serial_runs_and_keeps_order():
    results = run_scenario_grid(
        [_kill_restore("grid-a"), _kill_restore("grid-b")], jobs=1
    )
    assert [r["scenario"] for r in results] == ["grid-a", "grid-b"]
    assert all(r["passed"] for r in results)


@pytest.mark.slow
def test_grid_parallel_bit_identical_to_serial():
    scenarios = [
        _kill_restore("det-a"),
        _kill_restore("det-b", cluster={"seed": 9}),
    ]
    serial = run_scenario_grid(scenarios, jobs=1)
    parallel = run_scenario_grid(scenarios, jobs=4)
    assert serial == parallel


# ----------------------------------------------------------------------
# Catalog
# ----------------------------------------------------------------------
def test_catalog_is_substantial_and_valid():
    names = catalog_names()
    assert len(names) >= 6
    # The three rewritten drills lead the catalog...
    assert names[:3] == (
        "tor-power-cycle", "spine-flap", "server-fail-restore",
    )
    # ...and the compound kill-during-rebuild race is present.
    assert "kill-during-rebuild" in names
    race = get_scenario("kill-during-rebuild")
    kills = [e for e in race.events if e.action == "kill_server"]
    assert len(kills) >= 2
    # Both kills land inside one control-plane latency (1 ms).
    assert kills[1].time_ns - kills[0].time_ns < 1_000_000
    # Every entry builds and validates.
    assert [s.name for s in catalog()] == list(names)


def test_catalog_unknown_name():
    with pytest.raises(ExperimentError, match="unknown scenario"):
        get_scenario("does-not-exist")
