"""The NetClone client.

NetClone clients do not know server addresses (§3.3): each request is
addressed to a virtual service IP with a randomly chosen *group ID*
(picking the candidate pair) and a randomly chosen *filter-table
index*; the switch does the rest.  Both the request and its responses
carry the reserved NetClone UDP port so the ToR applies the custom
logic in both directions.

Group IDs are drawn from the client's **local ToR's** group table
(:class:`~repro.core.placement.GroupTable`): on a multi-rack fabric
each ToR may install a different, placement-aware pair set, and the
table also carries the sampling rule (uniform, or a rack-local /
global probability mix).  The legacy ``num_groups`` form — a uniform
draw over a dense group-ID space — remains for hand-assembled
testbeds and for control-plane updates that shrink the group count
after a server failure.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.apps.client import OpenLoopClient
from repro.core.constants import (
    CLO_NOT_CLONED,
    MSG_REQ,
    NETCLONE_UDP_PORT,
    VIRTUAL_SERVICE_IP,
)
from repro.core.header import NetCloneHeader
from repro.core.placement import GroupTable
from repro.core.program import CLO_NEVER_CLONE
from repro.errors import ExperimentError
from repro.net.packet import Packet

__all__ = ["NetCloneClient"]


class NetCloneClient(OpenLoopClient):
    """Open-loop client speaking the NetClone protocol."""

    def __init__(
        self,
        *args: Any,
        num_groups: Optional[int] = None,
        group_table: Optional[GroupTable] = None,
        num_filter_tables: int = 2,
        **kwargs: Any,
    ):
        super().__init__(*args, **kwargs)
        if group_table is not None:
            if num_groups is not None and num_groups != group_table.num_groups:
                raise ExperimentError(
                    f"num_groups={num_groups} conflicts with the "
                    f"{group_table.num_groups}-group table"
                )
            num_groups = group_table.num_groups
        if num_groups is None:
            raise ExperimentError(
                "NetClone clients need a group_table or a num_groups count"
            )
        if num_groups < 2:
            raise ExperimentError("NetClone needs at least two groups (two servers)")
        if num_filter_tables < 1:
            raise ExperimentError("need at least one filter table")
        self._group_table: Optional[GroupTable] = None
        self._table_epoch: Optional[int] = None
        self._num_groups = num_groups
        if group_table is not None:
            self.install_group_table(group_table)
        self.num_filter_tables = num_filter_tables

    # -- control-plane table swap --------------------------------------
    def install_group_table(self, table: GroupTable) -> None:
        """Atomically swap in a (control-plane pushed) group table.

        Table, group count and epoch move together, so the client can
        never draw from a table the switch no longer holds.  This is
        the update :class:`~repro.core.failures.ServerFailureHandler`
        pushes after a §3.6 rebuild.
        """
        if not isinstance(table, GroupTable):
            raise ExperimentError(
                f"expected a GroupTable, got {type(table).__name__}"
            )
        self._group_table = table
        self._num_groups = table.num_groups
        self._table_epoch = table.epoch
        # Pre-drawn arrivals hold group IDs sampled from the old table.
        self._flush_arrivals()

    @property
    def group_table(self) -> Optional[GroupTable]:
        """The local ToR's table this client currently samples from."""
        return self._group_table

    @group_table.setter
    def group_table(self, table: Optional[GroupTable]) -> None:
        if table is None:
            self._group_table = None
            self._table_epoch = None
        else:
            self.install_group_table(table)

    @property
    def num_groups(self) -> int:
        """Dense group-ID space size the client draws from."""
        return self._num_groups

    @num_groups.setter
    def num_groups(self, value: int) -> None:
        # The legacy count-only control-plane update: the switch now
        # holds a dense *uniform* table of this size, so whatever table
        # the client cached is stale — even when the count happens to
        # match (the epoch mismatch below is what _pick_group checks).
        self._num_groups = int(value)
        self._table_epoch = None
        # Pre-drawn arrivals may reference groups past the new count.
        self._flush_arrivals()

    def _pick_group(self) -> int:
        """One group ID from the local ToR's table.

        The cached table is used only while its epoch matches the one
        recorded at install time: a count-only control-plane update
        (e.g. a legacy server-failure rebuild) clears the recorded
        epoch, and the draw falls back to the uniform rule over the
        updated count — the switch-side legacy rebuild always installs
        a dense uniform table.  Size alone is *not* trusted: a rebuilt
        table with a coincidentally equal group count must not keep
        the client sampling dead pairs.
        """
        table = self._group_table
        if table is not None and table.epoch == self._table_epoch:
            return table.sample(self.rng)
        return self.rng.randrange(self._num_groups)

    def build_packets(self, request: Any) -> List[Packet]:
        header = NetCloneHeader(
            msg_type=MSG_REQ,
            req_id=0,  # assigned by the switch
            grp=self._pick_group(),
            sid=0,
            state=0,
            clo=CLO_NEVER_CLONE if getattr(request, "write", False) else CLO_NOT_CLONED,
            idx=self.rng.randrange(self.num_filter_tables),
            swid=0,
        )
        size = self.workload.request_size(request) + NetCloneHeader.WIRE_SIZE
        pool = self.packet_pool
        if pool is not None:
            packet = pool.acquire(
                self.ip, VIRTUAL_SERVICE_IP, NETCLONE_UDP_PORT, NETCLONE_UDP_PORT,
                size, request, header,
            )
        else:
            packet = Packet(
                src=self.ip,
                dst=VIRTUAL_SERVICE_IP,
                sport=NETCLONE_UDP_PORT,
                dport=NETCLONE_UDP_PORT,
                size=size,
                payload=request,
                nc=header,
            )
        return [packet]
