"""Fluid-mode (analytic) evaluation of trunk-saturation sweep cells.

Deep-saturation cells are the most expensive points of the fig18 grid
— millions of per-packet events spent confirming that an oversubscribed
trunk queues a linearly growing backlog — yet they are exactly the
cells a deterministic fluid model predicts best: routing is static
(ECMP pins every destination to one spine), demand is an open-loop
Poisson stream whose fluid limit is a constant byte rate per trunk
direction, and the dominant latency term is ``(utilisation - 1) * t``
backlog growth, not stochastic fine structure.

:func:`plan` builds the cluster **assembly** for one
:class:`~repro.experiments.common.ClusterConfig` (switches, tables,
addresses — the simulation is never started), derives every per-trunk
per-direction offered byte rate by flow conservation, and predicts the
hot-trunk utilisation.  :meth:`FluidPlan.point` then composes the full
:class:`~repro.metrics.sweep.LoadPoint` analytically:

* **trunk series** — exact expected byte accounting per direction
  (requests pinned to ``dst % spines``, responses pinned to the
  client's spine, cloned copies included at the self-consistent clone
  rate), reduced through
  :func:`repro.metrics.links.fluid_trunk_summary`;
* **server queueing** — per-server M/G/c: Erlang-C wait probability,
  Allen-Cunneen mean-wait correction for the paper's jittered service
  law (``Exp(mean)`` base times a two-point jitter factor), with the
  NetClone clone fraction solved as a fixed point of the idle-state
  gate ``P(both candidates idle)``;
* **latency percentiles** — the response-time law is composed on a
  numpy grid: a deterministic per-class path delay (NIC costs and
  M/D/1-style NIC/trunk standing waits included), an Erlang wait atom
  plus exponential tail, and the service × jitter mixture integrated
  over a stratified base-service quantile grid.  Cloned completions
  take the elementwise product of the two branches' survival curves
  *conditioned on the shared base draw* — the paper's "clones share
  the base duration, only jitter and queueing differ" structure;
* **saturation dynamics** — directions past :data:`SATURATION_UTIL`
  contribute a backlog shift growing as ``(u - 1) * t``; percentiles,
  throughput and the recorded-sample count integrate over send times,
  with completions truncated at the simulation horizon exactly like
  the packet-mode recorder.

Accuracy contract
-----------------

Fluid numbers are *model* numbers: deterministic, seed-independent,
and carrying a ``"fluid": 1.0`` marker in ``LoadPoint.extra``.  On
**sub-saturation** cells (predicted hot-trunk utilisation below 1.0)
they agree with packet mode within :data:`ACCURACY_CONTRACT` — relative
bounds verified by ``tests/test_fluid_mode.py`` against live packet
runs of the fig18 ECMP cells.  Saturated cells are dominated by the
deterministic backlog term, but their packet-mode numbers depend on
fine-grained drain/horizon effects, so only the trunk byte series is
held to a bound there; percentiles are indicative.  ``p999`` and the
``nc_*`` / ``state_samples_*`` diagnostic extras are indicative
everywhere (documented, not bounded).  For the dynamic policies the
per-trunk *layout* keys (``trunk_util_max`` / ``trunk_util_mean``) are
indicative too — see :data:`LAYOUT_CONTRACT_POLICIES` — while latency,
throughput and byte totals keep their bounds.  Configurations the
model does not cover at all (coordinator schemes, KV workloads,
failure drills, non-spine-leaf fabrics) are rejected by :func:`plan`
and must stay in packet mode.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.queueing import erlang_c
from repro.errors import ExperimentError
from repro.metrics.links import fluid_trunk_summary
from repro.metrics.sweep import LoadPoint

__all__ = [
    "ACCURACY_CONTRACT",
    "FluidPlan",
    "LAYOUT_CONTRACT_POLICIES",
    "LL_SPILL_UTIL",
    "SATURATION_UTIL",
    "SPREAD_SPINE_POLICIES",
    "STATIC_SPINE_POLICIES",
    "SUPPORTED_SCHEMES",
    "evaluate",
    "plan",
]

#: Schemes the analytic model covers (client → switch → M/G/c server →
#: response, optional switch cloning + filtering).  Coordinator-based
#: and JSQ-fallback schemes are not modelled.
SUPPORTED_SCHEMES = ("baseline", "netclone")

#: Spine policies with statically predictable routing: ECMP pins every
#: destination, and ``flowlet`` anchors on ECMP and never re-picks
#: under the sweep's continuous per-destination flows (no idle gaps),
#: so both produce the ECMP byte layout.
STATIC_SPINE_POLICIES = ("ecmp", "flowlet")

#: Policies modelled as ECMP-anchored until a direction saturates,
#: then spilling the excess across sibling trunks (water-filling) —
#: the fluid limit of backlog-driven spreading.
SPREAD_SPINE_POLICIES = ("least-loaded",)

#: Utilisation at which a trunk direction switches from a stationary
#: M/D/1-style standing wait to a linearly growing backlog.
SATURATION_UTIL = 0.97

#: Spill threshold of the least-loaded water-fill: the policy reacts
#: to instantaneous backlog, so it starts diverting well below hard
#: saturation — packet mode shows the hot trunk equalising at ~0.7
#: offered share while siblings absorb the rest.
LL_SPILL_UTIL = 0.65

#: Relative agreement bounds vs. packet mode on sub-saturation cells
#: (see the module docstring; enforced by ``tests/test_fluid_mode.py``).
#: ``trunk_tx_bytes`` is a flow-conservation quantity; the latency
#: percentiles carry the queueing-model error.
ACCURACY_CONTRACT: Dict[str, float] = {
    "offered_rps": 0.02,
    "throughput_rps": 0.05,
    "p50_us": 0.10,
    "mean_us": 0.15,
    "p99_us": 0.30,
    "trunk_util_max": 0.10,
    "trunk_util_mean": 0.10,
    "trunk_tx_bytes": 0.10,
}

#: The trunk *layout* keys are only bounded for the statically routed
#: policies.  Dynamic policies place the same total bytes, but where
#: they land depends on simulated backlog feedback (``least-loaded``)
#: or on which spine each flow's *first* packet happened to see as
#: least loaded during the warmup transient (``flowlet`` — flows then
#: pin to that choice for the whole run).  Latency, throughput and
#: byte totals stay bounded for every eligible policy; the utilisation
#: spread is indicative for everything but pure ECMP.
LAYOUT_CONTRACT_POLICIES = ("ecmp",)

#: Calibration constants, fitted once against packet-mode runs of the
#: fig18 ECMP cells at scale 0.25 (see ``tests/test_fluid_mode.py``,
#: which re-verifies the fit live).
#:
#: The clone gate reads *tracked* queue state — piggybacked, hence
#: stale and biased toward post-completion snapshots — so the idle
#: probability it sees is higher than the PASTA occupancy.  The gate
#: fixed point uses ``q0 = 1 - _GATE_KAPPA * ErlangC * rho``; packet
#: mode measures a clone fraction of ~0.29 and an empty-queue fraction
#: of ~0.53 at the sweep's operating point, which pins kappa.
_GATE_KAPPA = 0.65
#: Stale-drop probability per cloned copy: the clone arrives a few
#: microseconds after the gate read, so ``p_stale`` tracks ``1 - q0``
#: softened by the same snapshot bias (packet mode: ~0.36-0.42).
_STALE_KAPPA = 0.78
#: Wait-probability multiplier for the cloned population (requests
#: routed because *both* candidates reported idle queues).
_CLONED_WAIT_FACTOR = 0.25
#: Allen-Cunneen overestimates the M/G/c wait when the service SCV
#: comes from rare huge jobs (the 1%-of-15x jitter); this scales the
#: conditional wait down to the measured operating point.
_MGC_WAIT_SCALE = 0.6
#: NIC queues are fed by network-smoothed (sub-Poisson) arrivals —
#: e.g. the client RX NIC drains a trunk that serialises slower than
#: the NIC receives — so the M/D/1 standing wait is scaled down.
_NIC_WAIT_SCALE = 0.3
#: Same smoothing argument for trunk standing waits below saturation.
_TRUNK_WAIT_SCALE = 0.7

_TIME_POINTS = 4096
_SEND_POINTS = 33
_THROUGHPUT_POINTS = 65
#: Stationary trunk waits are capped at this many packet times (the
#: knee region just under saturation never reaches stationarity inside
#: a finite measurement window).
_STANDING_WAIT_CAP_PKTS = 50.0

_BITS = 8


# ----------------------------------------------------------------------
# Quantile grids and survival kernels
# ----------------------------------------------------------------------
def _base_service_grid(mean_ns: float) -> Tuple[np.ndarray, np.ndarray]:
    """Stratified quantile midpoints + weights of the Exp(mean) base.

    A uniform body plus a log-spaced tail out to the 1-1e-5 quantile,
    so the jitter-amplified service tail (which owns p999) is sampled
    instead of truncated.
    """
    body = np.linspace(0.0, 0.98, 81)
    tail = 1.0 - np.logspace(math.log10(0.02), -5.0, 41)
    edges = np.unique(np.concatenate([body, tail]))
    mids = (edges[:-1] + edges[1:]) / 2.0
    weights = np.diff(edges)
    weights = weights / weights.sum()
    return -mean_ns * np.log1p(-mids), weights


def _exec_survival(
    x: np.ndarray,
    base: np.ndarray,
    jitter_p: float,
    jitter_factor: float,
    p_wait: float,
    wait_mean: float,
) -> np.ndarray:
    """``P(W + B*J > x | B = base)`` on an outer ``(base, x)`` grid.

    ``W`` is the Erlang atom-plus-exponential wait (``P(W > t) =
    p_wait * exp(-t / wait_mean)``), ``J`` the two-point jitter factor.
    """
    out = np.zeros((base.size, x.size))
    for prob, factor in ((1.0 - jitter_p, 1.0), (jitter_p, jitter_factor)):
        if prob <= 0.0:
            continue
        arg = x[None, :] - (base * factor)[:, None]
        if p_wait <= 0.0 or wait_mean <= 0.0:
            surv = (arg < 0.0).astype(float)
        else:
            surv = np.where(
                arg < 0.0, 1.0, p_wait * np.exp(-np.maximum(arg, 0.0) / wait_mean)
            )
        out += prob * surv
    return out


def _water_fill(levels: np.ndarray, spill_at: float) -> np.ndarray:
    """Backlog-driven spreading: excess above *spill_at* joins the
    least-loaded siblings (equal capacities), preserving the total."""
    levels = np.asarray(levels, dtype=float)
    excess = float(np.clip(levels - spill_at, 0.0, None).sum())
    if excess <= 0.0:
        return levels.copy()
    base = np.minimum(levels, spill_at)
    order = np.argsort(base)
    filled = base[order].copy()
    # Raise the lowest levels first until the excess is absorbed (or
    # everything sits at spill_at, after which the remainder spreads
    # evenly — the fully saturated fabric).
    for i in range(filled.size):
        width = filled.size - i if i == filled.size - 1 else 1
        step = (filled[i + 1] if i + 1 < filled.size else spill_at) - filled[i]
        room = step * (i + 1)
        if room >= excess:
            filled[: i + 1] += excess / (i + 1)
            excess = 0.0
            break
        filled[: i + 1] += step
        excess -= room
    if excess > 0.0:
        filled += excess / filled.size
    out = np.empty_like(filled)
    out[order] = filled
    return out


# ----------------------------------------------------------------------
# Eligibility
# ----------------------------------------------------------------------
def _ineligible_reason(config: Any) -> Optional[str]:
    from repro.experiments.specs import SyntheticSpec

    if config.topology != "spine_leaf":
        return f"topology {config.topology!r} has no trunk grid (need spine_leaf)"
    policy = str(config.topology_params.get("spine_policy", "ecmp"))
    if policy not in STATIC_SPINE_POLICIES + SPREAD_SPINE_POLICIES:
        return f"spine policy {policy!r} is not modelled"
    if config.scheme not in SUPPORTED_SCHEMES:
        return f"scheme {config.scheme!r} is not modelled"
    workload = config.workload
    if not isinstance(workload, SyntheticSpec) or not workload.name.startswith("Exp("):
        return (
            f"workload {getattr(workload, 'name', workload)!r} is not the "
            "exponential dummy-RPC model"
        )
    return None


# ----------------------------------------------------------------------
# The per-cell analytic model
# ----------------------------------------------------------------------
class _CellModel:
    """Flow, queueing and latency model of one sweep cell."""

    def __init__(self, config: Any):
        from repro.experiments.common import Cluster

        self.config = config
        cluster = Cluster(config)  # assembly only; never started
        fabric = cluster.topology
        self.policy = str(config.topology_params.get("spine_policy", "ecmp"))
        self.spread = self.policy in SPREAD_SPINE_POLICIES
        self.num_racks = fabric.num_racks
        self.num_spines = len(fabric.spines)
        self.rate = float(config.rate_rps)
        self.end_ns = float(config.end_ns)
        self.warmup_ns = float(config.warmup_ns)
        self.total_ns = float(config.total_ns)
        self.window_ns = self.end_ns - self.warmup_ns

        self.clients = [(c.ip, fabric.rack_of("client", i), c.rate_rps)
                        for i, c in enumerate(cluster.clients)]
        self.servers = [(s.ip, fabric.rack_of("server", i), s.num_workers)
                        for i, s in enumerate(cluster.servers)]
        self.workers = cluster.servers[0].num_workers
        self.num_servers = len(self.servers)
        self.trunk_names = [
            [fabric.uplinks[t][s].name for s in range(self.num_spines)]
            for t in range(self.num_racks)
        ]
        self.trunk_bw = float(fabric.uplinks[0][0].bandwidth_bps)
        self.trunk_prop = float(fabric.uplinks[0][0].propagation_ns)
        star = fabric.stars[0]
        self.acc_bw = float(star.bandwidth_bps)
        self.acc_prop = float(star.propagation_ns)
        self.pipe_ns = float(config.switch_pipeline_ns)
        self.recirc_ns = float(config.switch_recirc_ns)

        self.netclone = cluster.scheme_spec.netclone_mode
        workload = config.workload.make_workload(__import__("random").Random(0))
        probe = config.workload.make_workload(__import__("random").Random(0))
        request = probe.make_request(0, 1)
        self.req_size = float(workload.request_size(request))
        if self.netclone:
            from repro.core.header import NetCloneHeader

            self.req_size += NetCloneHeader.WIRE_SIZE
        self.resp_size = float(cluster.servers[0].service.fixed_response_size)

        self.mean_base_ns = float(config.workload.mean_service_ns)
        self.jitter_p = float(config.jitter_p)
        self.jitter_factor = float(config.jitter_factor)
        ej = 1.0 - self.jitter_p + self.jitter_p * self.jitter_factor
        ej2 = 1.0 - self.jitter_p + self.jitter_p * self.jitter_factor ** 2
        self.mean_exec_ns = self.mean_base_ns * ej
        self.exec_scv = 2.0 * ej2 / (ej * ej) - 1.0

        # Scheme marginals: request destination / clone-pair joint.
        if self.netclone:
            self.pair_joint = [
                self._pair_joint(cluster.group_tables[rack])
                for rack in range(self.num_racks)
            ]
        else:
            self.pair_joint = None

        self._solve_clone_gate()
        self._accumulate_flows()
        self._direction_waits()

    # -- scheme marginals ------------------------------------------------
    def _pair_joint(self, table: Any) -> List[Tuple[int, int, float]]:
        """(first, second, probability) triples of one ToR's table."""
        pairs = table.pairs
        n = len(pairs)
        if table.is_uniform:
            weights = [1.0 / n] * n
        else:
            pref, fall = table.split, n - table.split
            weights = [table.p_local / pref] * pref + [
                (1.0 - table.p_local) / fall
            ] * fall
        return [(p[0], p[1], w) for p, w in zip(pairs, weights)]

    # -- NetClone clone-gate fixed point ---------------------------------
    def _solve_clone_gate(self) -> None:
        """Self-consistent clone fraction / stale-drop / server load."""
        lam_orig = self.rate / self.num_servers / 1e9  # per-server, per ns
        c = self.workers
        mu = 1.0 / self.mean_exec_ns
        f = 0.0
        p_stale = 0.0
        q0 = 1.0
        for _ in range(200):
            executed = f * (1.0 - p_stale) if self.netclone else 0.0
            lam = lam_orig * (1.0 + executed)
            a = min(lam / mu, c * 0.995)
            ec = erlang_c(c, a)
            rho = a / c
            q0 = max(0.0, 1.0 - _GATE_KAPPA * ec * rho)
            if not self.netclone:
                f_new, stale_new = 0.0, 0.0
            else:
                f_new = q0 * q0
                stale_new = min(1.0, _STALE_KAPPA * (1.0 - q0))
            if abs(f_new - f) < 1e-9 and abs(stale_new - p_stale) < 1e-9:
                f, p_stale = f_new, stale_new
                break
            f = 0.5 * f + 0.5 * f_new
            p_stale = 0.5 * p_stale + 0.5 * stale_new
        self.clone_fraction = f
        self.p_stale = p_stale
        self.q_empty = q0
        executed = f * (1.0 - p_stale) if self.netclone else 0.0
        self.lam_server = lam_orig * (1.0 + executed)
        # Waits are taken at the *original* load: the clone gate is
        # admission control — clones are only created when the pool
        # reported idle capacity, so they soak up slack rather than
        # build queues, and the open-loop M/G/c at the clone-inflated
        # load would wildly overestimate (packet mode: NetClone's mean
        # latency sits within a few percent of Baseline's despite ~20%
        # extra executed load).
        a = min(lam_orig / mu, c * 0.995)
        self.p_wait = erlang_c(c, a)
        drain = c * mu - lam_orig
        if drain <= 0.0:
            drain = c * mu * 0.005
        # Allen-Cunneen M/G/c conditional wait, scaled to the measured
        # operating point (see _MGC_WAIT_SCALE).
        self.wait_mean = _MGC_WAIT_SCALE * (1.0 + self.exec_scv) / (2.0 * drain)
        # Population split: both halves of a cloned pair were gated on
        # idle state, so their wait probability shrinks; the uncloned
        # population absorbs the difference (total wait mass conserved).
        if self.netclone and f > 0.0:
            arrivals = 1.0 + f * (1.0 - p_stale)
            phi = f * (2.0 - p_stale) / arrivals
            self.p_wait_cloned = self.p_wait * _CLONED_WAIT_FACTOR
            rest = (1.0 - phi * _CLONED_WAIT_FACTOR) / max(1e-9, 1.0 - phi)
            self.p_wait_uncloned = min(1.0, self.p_wait * rest)
        else:
            self.p_wait_cloned = self.p_wait
            self.p_wait_uncloned = self.p_wait

    # -- flow conservation ----------------------------------------------
    def _spine_of(self, ip: int) -> int:
        return ip % self.num_spines

    def _accumulate_flows(self) -> None:
        """Expected per-direction byte/packet rates (per second)."""
        shape = (self.num_racks, self.num_spines)
        self.up_bytes = np.zeros(shape)
        self.up_pkts = np.zeros(shape)
        self.down_bytes = np.zeros(shape)
        self.down_pkts = np.zeros(shape)
        #: (dst_rack, spine) → source racks feeding that down direction.
        self._down_feeders: Dict[Tuple[int, int], set] = {}
        f, p_stale = self.clone_fraction, self.p_stale
        # Responses of requests sent within roughly one mean latency of
        # the horizon leave after the trunk-stats capture; the byte
        # totals apply that boundary correction.
        lag = self._rough_latency_ns()
        self.resp_boundary = max(0.0, (self.end_ns - lag) / self.end_ns)
        for ip_c, rack_c, rate_c in self.clients:
            spine_c = self._spine_of(ip_c)
            for sid, weight in self._orig_marginal(rack_c):
                ip_s, rack_s, _ = self.servers[sid]
                if rack_s != rack_c:
                    self._cross(rack_c, rack_s, self._spine_of(ip_s),
                                rate_c * weight, self.req_size)
                    self._cross(rack_s, rack_c, spine_c,
                                rate_c * weight * self.resp_boundary,
                                self.resp_size)
            if self.netclone and f > 0.0:
                for _sid1, sid2, weight in self.pair_joint[rack_c]:
                    ip_s, rack_s, _ = self.servers[sid2]
                    if rack_s != rack_c:
                        self._cross(rack_c, rack_s, self._spine_of(ip_s),
                                    rate_c * f * weight, self.req_size)
                        self._cross(rack_s, rack_c, spine_c,
                                    rate_c * f * (1.0 - p_stale) * weight
                                    * self.resp_boundary,
                                    self.resp_size)

    def _orig_marginal(self, rack_c: int) -> List[Tuple[int, float]]:
        """(server id, probability) of the *original* request."""
        if not self.netclone:
            return [(i, 1.0 / self.num_servers) for i in range(self.num_servers)]
        acc: Dict[int, float] = {}
        for sid1, _sid2, w in self.pair_joint[rack_c]:
            acc[sid1] = acc.get(sid1, 0.0) + w
        return sorted(acc.items())

    def _cross(self, src: int, dst: int, spine: int, pkt_rate: float,
               size: float) -> None:
        self.up_bytes[src][spine] += pkt_rate * size
        self.up_pkts[src][spine] += pkt_rate
        self.down_bytes[dst][spine] += pkt_rate * size
        self.down_pkts[dst][spine] += pkt_rate
        self._down_feeders.setdefault((dst, spine), set()).add(src)

    def _rough_latency_ns(self) -> float:
        """Order-of-magnitude mean latency for boundary corrections."""
        hops = 2.0 * (2.0 * self.trunk_prop + 3.0 * self.pipe_ns + self.acc_prop)
        wait = self.p_wait * self.wait_mean
        return hops + wait + self.mean_exec_ns + 3000.0

    # -- per-direction utilisation and waits -----------------------------
    def _direction_waits(self) -> None:
        cap = self.trunk_bw / _BITS  # bytes per second
        self.up_util = self.up_bytes / cap
        self.down_util = self.down_bytes / cap
        # The saturation predictor is the *pinned* (pre-spread) layout:
        # how hard the cell pushes its hottest direction if nothing
        # reacts.  Reported utilisations are post-spread (what packet
        # mode measures); the gate compares against offered stress.
        self.pinned_hot_util = float(
            max(self.up_util.max(initial=0.0), self.down_util.max(initial=0.0))
        )
        if self.spread:
            # least-loaded: hot directions spill onto siblings well
            # before hard saturation (backlog feedback).
            for t in range(self.num_racks):
                self.up_util[t] = _water_fill(self.up_util[t], LL_SPILL_UTIL)
                self.down_util[t] = _water_fill(self.down_util[t], LL_SPILL_UTIL)

        def waits(util: np.ndarray, byts: np.ndarray, pkts: np.ndarray):
            stationary = np.zeros_like(util)
            slope = np.zeros_like(util)
            for idx in np.ndindex(util.shape):
                u = util[idx]
                if pkts[idx] <= 0.0:
                    continue
                ser = (byts[idx] / pkts[idx]) * _BITS / self.trunk_bw * 1e9
                ueff = min(u, SATURATION_UTIL)
                w = _TRUNK_WAIT_SCALE * ueff * ser / (2.0 * (1.0 - ueff))
                stationary[idx] = min(w, _STANDING_WAIT_CAP_PKTS * ser)
                if u > SATURATION_UTIL:
                    slope[idx] = max(0.0, u - 1.0)
            return stationary, slope

        self.up_wait, self.up_slope = waits(self.up_util, self.up_bytes, self.up_pkts)
        self.down_wait, self.down_slope = waits(
            self.down_util, self.down_bytes, self.down_pkts
        )
        # Saturated-uplink pacing: bytes join a down direction at the
        # offered rate for *accounting* (express forwarding books the
        # whole trunk hop at ToR egress), but its actual arrivals are
        # paced by the feeding uplink's serialiser.  A saturated feeder
        # delivers at exactly line rate — deterministic spacing equal
        # to the down service time — so the down queue never builds:
        # the backlog lives entirely in the uplink.  (Packet mode
        # confirms this: the recorded latency-growth slope matches one
        # saturated crossing, not two.)
        for (dst, spine), feeders in self._down_feeders.items():
            if any(self.up_util[src][spine] >= SATURATION_UTIL for src in feeders):
                self.down_wait[dst][spine] = 0.0
                self.down_slope[dst][spine] = 0.0

    # -- headline trunk extras ------------------------------------------
    def hot_trunk_utilisation(self) -> float:
        return self.pinned_hot_util

    def trunk_extras(self) -> Dict[str, float]:
        per_trunk = np.maximum(self.up_util, self.down_util).ravel()
        end_s = self.end_ns / 1e9
        total = float((self.up_bytes + self.down_bytes).sum() * end_s)
        return fluid_trunk_summary(per_trunk.tolist(), round(total), 0.0)

    # -- deterministic path delays --------------------------------------
    def _nic_wait(self, rate_per_s: float, cost_ns: float) -> float:
        rho = min(rate_per_s * cost_ns / 1e9, 0.97)
        return _NIC_WAIT_SCALE * rho * cost_ns / (2.0 * (1.0 - rho))

    def _acc_ser(self, size: float) -> float:
        return round(size * _BITS / self.acc_bw * 1e9)

    def _trunk_ser(self, size: float) -> float:
        return round(size * _BITS / self.trunk_bw * 1e9)

    def _leg_delays(self) -> None:
        """Per-client, per-rack deterministic request/response delays.

        ``req_leg[(ci, rack)]`` → (delay_ns, slope) of the client →
        server-rack request leg including NIC waits and trunk standing
        waits; ``resp_leg`` likewise for server rack → client.  Slopes
        collect the ``(u - 1)`` growth of saturated crossings.
        """
        cfg = self.config
        f, p_stale = self.clone_fraction, self.p_stale
        executed = f * (1.0 - p_stale)
        self.req_leg: Dict[Tuple[int, int], Tuple[float, float]] = {}
        self.resp_leg: Dict[Tuple[int, int], Tuple[float, float]] = {}
        arrivals_per_server = self.rate * (1.0 + f) / self.num_servers
        resp_per_server = self.rate * (1.0 + executed) / self.num_servers
        srv_rx_wait = self._nic_wait(arrivals_per_server, cfg.server_rx_ns)
        srv_tx_wait = self._nic_wait(resp_per_server, cfg.server_tx_ns)
        for ci, (ip_c, rack_c, rate_c) in enumerate(self.clients):
            tx_wait = self._nic_wait(rate_c, cfg.client_tx_ns)
            rx_wait = self._nic_wait(rate_c, cfg.client_rx_ns)
            spine_c = self._spine_of(ip_c)
            for rack_s in range(self.num_racks):
                d_req = (cfg.client_tx_ns + tx_wait
                         + self._acc_ser(self.req_size) + self.acc_prop
                         + self.pipe_ns)
                g_req = 0.0
                if rack_s != rack_c:
                    w, g = self._request_cross(rack_c, rack_s)
                    d_req += w + 2.0 * (self._trunk_ser(self.req_size)
                                        + self.trunk_prop + self.pipe_ns)
                    g_req += g
                d_req += (self._acc_ser(self.req_size) + self.acc_prop
                          + cfg.server_rx_ns + srv_rx_wait)
                self.req_leg[(ci, rack_s)] = (d_req, g_req)

                d_resp = (cfg.server_tx_ns + srv_tx_wait
                          + self._acc_ser(self.resp_size) + self.acc_prop
                          + self.pipe_ns)
                g_resp = 0.0
                if rack_s != rack_c:
                    if self.spread:
                        w = float(self.up_wait[rack_s].mean()
                                  + self.down_wait[rack_c].mean())
                        g = float(self.up_slope[rack_s].mean()
                                  + self.down_slope[rack_c].mean())
                    else:
                        w = float(self.up_wait[rack_s][spine_c]
                                  + self.down_wait[rack_c][spine_c])
                        g = float(self.up_slope[rack_s][spine_c]
                                  + self.down_slope[rack_c][spine_c])
                    d_resp += w + 2.0 * (self._trunk_ser(self.resp_size)
                                         + self.trunk_prop + self.pipe_ns)
                    g_resp += g
                d_resp += (self._acc_ser(self.resp_size) + self.acc_prop
                           + cfg.client_rx_ns + rx_wait)
                self.resp_leg[(ci, rack_s)] = (d_resp, g_resp)

    def _request_cross(self, rack_c: int, rack_s: int) -> Tuple[float, float]:
        """Marginal-weighted trunk wait/slope of the request crossing."""
        if self.spread:
            return (
                float(self.up_wait[rack_c].mean() + self.down_wait[rack_s].mean()),
                float(self.up_slope[rack_c].mean() + self.down_slope[rack_s].mean()),
            )
        total_w = total_g = total_p = 0.0
        for sid, weight in self._orig_marginal(rack_c):
            ip_s, rack, _ = self.servers[sid]
            if rack != rack_s:
                continue
            s = self._spine_of(ip_s)
            total_w += weight * (self.up_wait[rack_c][s] + self.down_wait[rack_s][s])
            total_g += weight * (self.up_slope[rack_c][s] + self.down_slope[rack_s][s])
            total_p += weight
        if total_p <= 0.0:
            return 0.0, 0.0
        return total_w / total_p, total_g / total_p

    # -- latency / throughput composition --------------------------------
    def load_point(self) -> LoadPoint:
        self._leg_delays()
        base, base_w = _base_service_grid(self.mean_base_ns)
        classes = self._classes()
        d_max = max(d for _, d, _, _ in classes)
        g_max = max(g for _, _, g, _ in classes)
        tail = -math.log(1e-5) * self.mean_base_ns * self.jitter_factor
        t_max = d_max + g_max * self.end_ns + tail + 12.0 * self.wait_mean
        grid = np.linspace(0.0, t_max, _TIME_POINTS)

        # Per-class latency CDF (send-time independent part).
        cdfs = []
        for weight, d, g, survival in classes:
            surv = survival(grid - d, base, base_w)
            cdfs.append((weight, d, g, 1.0 - surv))

        # Mixture over send times in the measured window, truncated at
        # the simulation horizon (a response arriving after the drain
        # is never recorded — exactly the packet recorder's behaviour).
        taus = np.linspace(self.warmup_ns, self.end_ns, _SEND_POINTS)
        mix = np.zeros(_TIME_POINTS)
        mass = 0.0
        for weight, _d, g, cdf in cdfs:
            for tau in taus:
                shifted = np.interp(grid - g * tau, grid, cdf, left=0.0, right=1.0)
                # A send at tau completes by the horizon iff its
                # backlog-free latency beats total - tau*(1+g).
                cap = float(np.interp(self.total_ns - tau * (1.0 + g), grid,
                                      cdf, left=0.0, right=1.0))
                mix += weight * np.minimum(shifted, cap)
                mass += weight * cap
        mix /= len(taus)
        mass /= len(taus)
        if mass <= 0.0:
            raise ExperimentError("fluid cell produced no completions")
        norm = mix / mass

        def quantile(q: float) -> float:
            return float(np.interp(q, norm, grid))

        mean_ns = float(np.trapezoid(1.0 - norm, grid))

        # Throughput: completions occurring inside the window.
        tp_taus = np.linspace(0.0, self.end_ns, _THROUGHPUT_POINTS)
        done = np.zeros(tp_taus.size)
        for weight, _d, g, cdf in cdfs:
            upper = np.interp(self.end_ns - tp_taus * (1.0 + g), grid, cdf,
                              left=0.0, right=1.0)
            lower = np.interp(self.warmup_ns - tp_taus * (1.0 + g), grid, cdf,
                              left=0.0, right=1.0)
            done += weight * (upper - lower)
        completions = self.rate / 1e9 * float(np.trapezoid(done, tp_taus))
        throughput = completions * 1e9 / self.window_ns

        samples = int(round(self.rate / 1e9 * self.window_ns * mass))
        extra = self._extras()
        return LoadPoint(
            offered_rps=self.rate,
            throughput_rps=throughput,
            p50_us=quantile(0.50) / 1000.0,
            p99_us=quantile(0.99) / 1000.0,
            p999_us=quantile(0.999) / 1000.0,
            mean_us=mean_ns / 1000.0,
            samples=samples,
            extra=extra,
        )

    def _classes(self) -> List[Tuple[float, float, float, Any]]:
        """(weight, shift, growth slope, survival(x, base, weights))."""
        classes: List[Tuple[float, float, float, Any]] = []
        f, p_stale = self.clone_fraction, self.p_stale
        jp, jf = self.jitter_p, self.jitter_factor
        for ci, (_ip, rack_c, rate_c) in enumerate(self.clients):
            share = rate_c / self.rate
            if self.netclone:
                joint: Dict[Tuple[int, int], float] = {}
                orig: Dict[int, float] = {}
                for sid1, sid2, w in self.pair_joint[rack_c]:
                    r1 = self.servers[sid1][1]
                    r2 = self.servers[sid2][1]
                    joint[(r1, r2)] = joint.get((r1, r2), 0.0) + w
                    orig[r1] = orig.get(r1, 0.0) + w
            else:
                orig = {}
                for sid, weight in self._orig_marginal(rack_c):
                    rack = self.servers[sid][1]
                    orig[rack] = orig.get(rack, 0.0) + weight
                joint = {}

            for rack_s, pw in sorted(orig.items()):
                d = (self.req_leg[(ci, rack_s)][0]
                     + self.resp_leg[(ci, rack_s)][0])
                g = (self.req_leg[(ci, rack_s)][1]
                     + self.resp_leg[(ci, rack_s)][1])
                p_uw, wm = self.p_wait_uncloned, self.wait_mean

                def surv_uncloned(x, base, bw, _p=p_uw, _wm=wm):
                    return (bw[None, :] @ _exec_survival(
                        x, base, jp, jf, _p, _wm
                    ))[0]

                classes.append((share * (1.0 - f) * pw, d, g, surv_uncloned))

            if self.netclone and f > 0.0:
                for (r1, r2), pw in sorted(joint.items()):
                    d1 = (self.req_leg[(ci, r1)][0]
                          + self.resp_leg[(ci, r1)][0])
                    g1 = (self.req_leg[(ci, r1)][1]
                          + self.resp_leg[(ci, r1)][1])
                    d2 = (self.req_leg[(ci, r2)][0] + self.recirc_ns
                          + self.pipe_ns + self.resp_leg[(ci, r2)][0])
                    g2 = (self.req_leg[(ci, r2)][1]
                          + self.resp_leg[(ci, r2)][1])
                    delta = d2 - d1
                    p_cw, wm = self.p_wait_cloned, self.wait_mean

                    def surv_pair(x, base, bw, _delta=delta, _p=p_cw, _wm=wm):
                        a = _exec_survival(x, base, jp, jf, _p, _wm)
                        b = _exec_survival(x - _delta, base, jp, jf, _p, _wm)
                        both = a * (p_stale + (1.0 - p_stale) * b)
                        return (bw[None, :] @ both)[0]

                    classes.append((share * f * pw, d1, min(g1, g2), surv_pair))
        return classes

    # -- diagnostic extras ----------------------------------------------
    def _extras(self) -> Dict[str, float]:
        f, p_stale = self.clone_fraction, self.p_stale
        executed = f * (1.0 - p_stale)
        sends_total = self.rate / 1e9 * self.end_ns
        extra: Dict[str, float] = {
            "redundant_responses": 0.0,
            "clones_dropped": round(sends_total * f * p_stale),
            "empty_queue_fraction": self.q_empty,
            "state_samples_zero": round(sends_total * (1.0 + executed)
                                        * self.q_empty),
            "state_samples_total": round(sends_total * (1.0 + executed)),
            "nc_cloned": round(sends_total * f),
            "nc_filtered": round(sends_total * executed),
            "nc_fingerprint_overwrite": 0.0,
        }
        extra.update(self.trunk_extras())
        extra["fluid"] = 1.0
        return extra


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
@dataclass
class FluidPlan:
    """Eligibility + predicted saturation of one sweep cell.

    ``eligible`` is False (with ``reason``) for configurations the
    model does not cover; ``hot_trunk_utilisation`` is the predicted
    busiest-direction offered utilisation — the number harnesses
    compare against their fluid threshold.
    """

    eligible: bool
    reason: str
    hot_trunk_utilisation: float
    _model: Optional[_CellModel] = None

    def point(self) -> LoadPoint:
        """The cell's analytic :class:`LoadPoint` (raises if ineligible)."""
        if not self.eligible or self._model is None:
            raise ExperimentError(f"cell is not fluid-eligible: {self.reason}")
        return self._model.load_point()


def plan(config: Any) -> FluidPlan:
    """Eligibility check + cheap flow model for one cell config.

    Builds the cluster assembly (never started) to derive exact
    addresses, racks and trunk capacities, then predicts the hot-trunk
    utilisation.  Ineligible configs return an explanatory plan rather
    than raising, so sweep harnesses can fall back to packet mode.
    """
    reason = _ineligible_reason(config)
    if reason is not None:
        return FluidPlan(False, reason, 0.0)
    model = _CellModel(config)
    return FluidPlan(True, "", model.hot_trunk_utilisation(), model)


def evaluate(config: Any) -> LoadPoint:
    """Analytic :class:`LoadPoint` for *config* (raises if unsupported)."""
    return plan(config).point()
