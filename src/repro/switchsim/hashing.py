"""Hash units.

Tofino stages contain CRC-based hash units; NetClone uses one to map a
request ID onto a filter-table slot (§3.5).  We use CRC32 over the
little-endian byte representation, reduced modulo the table size, which
matches the spirit (cheap, well-mixed, deterministic) without modelling
the exact polynomial configuration.
"""

from __future__ import annotations

import zlib

from repro.errors import PipelineConfigError

__all__ = ["HashUnit", "crc32_hash"]


def crc32_hash(value: int, buckets: int) -> int:
    """CRC32 of *value* folded into ``[0, buckets)``."""
    if buckets <= 0:
        raise PipelineConfigError("hash bucket count must be positive")
    data = (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
    return zlib.crc32(data) % buckets


class HashUnit:
    """A named hash unit bound to a stage (for resource accounting)."""

    def __init__(self, name: str, stage: int, buckets: int):
        if buckets <= 0:
            raise PipelineConfigError(f"hash unit {name!r} needs positive buckets")
        self.name = name
        self.stage = stage
        self.buckets = buckets
        self.invocations = 0

    def index(self, value: int) -> int:
        """Hash *value* into a slot index."""
        self.invocations += 1
        return crc32_hash(value, self.buckets)
