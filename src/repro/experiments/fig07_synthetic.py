"""Figure 7: synthetic workloads, Baseline vs C-Clone vs NetClone.

Four panels — Exp(25), Bimodal(90%-25,10%-250), Exp(50),
Bimodal(90%-50,10%-500) — each a throughput / 99%-latency sweep with 6
worker servers and 15 worker threads each, jitter p = 0.01.

Expected shape (paper §5.2): C-Clone saturates at roughly half the
Baseline's throughput; NetClone tracks the Baseline's throughput while
keeping p99 below it at low and mid loads; the improvement shrinks for
the longer 50/500 µs RPCs at high load.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import ClusterConfig
from repro.experiments.harness import (
    capacity_rps,
    format_series,
    load_grid,
    scaled_config,
    sweep_schemes,
)
from repro.experiments.registry import register
from repro.experiments.specs import make_synthetic_spec
from repro.metrics.sweep import SweepResult

__all__ = ["PANELS", "collect", "run"]

SCHEMES = ("baseline", "cclone", "netclone")

#: Panel id -> (kind, mean/modes) mirroring Figure 7 (a)-(d).
PANELS = {
    "a-Exp(25)": ("exp", 25.0, None),
    "b-Bimodal(90-25,10-250)": ("bimodal", None, ((0.9, 25.0), (0.1, 250.0))),
    "c-Exp(50)": ("exp", 50.0, None),
    "d-Bimodal(90-50,10-500)": ("bimodal", None, ((0.9, 50.0), (0.1, 500.0))),
}

NUM_SERVERS = 6
WORKERS = 15


def collect(
    scale: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
    workload: Optional[str] = None,
    metrics: str = "exact",
) -> Dict[str, Dict[str, SweepResult]]:
    """All four panels' curves, keyed by panel then scheme.

    *workload* (a registered workload name, optionally with inline
    params — ``"mmpp:burst=8"``) replaces the four paper panels with a
    single panel sweeping that workload; ``None`` reproduces the paper
    figure.  *metrics* selects the latency backend (``"exact"`` |
    ``"sketch"``); sketch points carry mergeable O(buckets) sketches
    instead of raw samples, so million-request sweeps stay cheap.
    """
    if workload is not None:
        from repro.experiments.workloads_registry import make_workload_spec

        spec = make_workload_spec(workload)
        panels = {spec.name: spec}
    else:
        panels = {
            panel: make_synthetic_spec(kind, mean_us=mean_us or 25.0, modes=modes)
            for panel, (kind, mean_us, modes) in PANELS.items()
        }
    results: Dict[str, Dict[str, SweepResult]] = {}
    for panel, spec in panels.items():
        config = scaled_config(
            ClusterConfig(
                workload=spec,
                topology=topology,
                placement=placement,
                num_servers=NUM_SERVERS,
                workers_per_server=WORKERS,
                seed=seed,
                metrics=metrics,
            ),
            scale,
        )
        capacity = capacity_rps(NUM_SERVERS * WORKERS, spec.mean_service_ns)
        loads = load_grid(capacity, scale)
        results[panel] = sweep_schemes(config, SCHEMES, loads, jobs=jobs)
    return results


def run(
    scale: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
    workload: Optional[str] = None,
    metrics: str = "exact",
) -> str:
    """Run Figure 7 and return the formatted report."""
    sections = []
    panels = collect(
        scale,
        seed,
        jobs=jobs,
        topology=topology,
        placement=placement,
        workload=workload,
        metrics=metrics,
    )
    for panel, series in panels.items():
        base = series["baseline"]
        cclone = series["cclone"]
        netclone = series["netclone"]
        low = base.points[0].offered_rps
        notes = [
            f"C-Clone max throughput {cclone.max_throughput_mrps():.2f} MRPS vs "
            f"Baseline {base.max_throughput_mrps():.2f} MRPS "
            f"(paper: about half)",
            f"NetClone max throughput {netclone.max_throughput_mrps():.2f} MRPS "
            f"(paper: tracks Baseline)",
            f"p99 at lowest load: Baseline {base.p99_at_load(low):.0f} us, "
            f"NetClone {netclone.p99_at_load(low):.0f} us "
            f"(paper: NetClone lower)",
        ]
        sections.append(format_series(f"Figure 7 ({panel})", series, notes))
    report = "\n".join(sections)
    print(report)
    return report


@register("fig7", "synthetic workloads: Baseline vs C-Clone vs NetClone (4 panels)")
def _run(
    scale: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    topology: Optional[str] = None,
    placement: Optional[str] = None,
    workload: Optional[str] = None,
    metrics: str = "exact",
) -> str:
    return run(
        scale,
        seed,
        jobs=jobs,
        topology=topology,
        placement=placement,
        workload=workload,
        metrics=metrics,
    )
