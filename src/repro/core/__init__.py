"""NetClone: the paper's primary contribution.

* :mod:`header` — the NetClone wire header (Figure 3).
* :mod:`groups` — group-ID construction (§3.3's ordered server pairs).
* :mod:`placement` — rack-aware placement policies turning the group
  construction into per-ToR tables (global / rack-local / weighted).
* :mod:`program` — the switch data-plane program (Algorithm 1),
  compiled into the PISA pipeline model with state + shadow tables,
  hashed filter tables, multicast cloning and recirculation.
* :mod:`racksched` — RackSched (JSQ / power-of-two) and the
  NetClone+RackSched integration (§3.7).
* :mod:`client` / :mod:`server` — NetClone-aware end hosts.
* :mod:`multirack` — switch-ID gating for multi-rack deployments.
"""

from repro.core.constants import (
    CLO_CLONED_COPY,
    CLO_CLONED_ORIGINAL,
    CLO_NOT_CLONED,
    MSG_REQ,
    MSG_RESP,
    NETCLONE_UDP_PORT,
    STATE_BUSY,
    STATE_IDLE,
    VIRTUAL_SERVICE_IP,
)
from repro.core.groups import build_group_pairs, install_group_table, ordered_pairs
from repro.core.header import NetCloneHeader
from repro.core.placement import (
    GlobalPlacement,
    GroupTable,
    PlacementContext,
    PlacementPolicy,
    RackLocalPlacement,
    RackWeightedPlacement,
)
from repro.core.program import NetCloneProgram
from repro.core.racksched import NetCloneRackSchedProgram, RackSchedProgram
from repro.core.client import NetCloneClient
from repro.core.server import RpcServer

__all__ = [
    "CLO_CLONED_COPY",
    "CLO_CLONED_ORIGINAL",
    "CLO_NOT_CLONED",
    "GlobalPlacement",
    "GroupTable",
    "MSG_REQ",
    "MSG_RESP",
    "NETCLONE_UDP_PORT",
    "NetCloneClient",
    "NetCloneHeader",
    "NetCloneProgram",
    "NetCloneRackSchedProgram",
    "PlacementContext",
    "PlacementPolicy",
    "RackLocalPlacement",
    "RackSchedProgram",
    "RackWeightedPlacement",
    "RpcServer",
    "STATE_BUSY",
    "STATE_IDLE",
    "VIRTUAL_SERVICE_IP",
    "build_group_pairs",
    "install_group_table",
    "ordered_pairs",
]
