"""Tests for latency recording, percentiles, sweeps and tables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExperimentError
from repro.metrics import LatencyRecorder, LoadPoint, SweepResult, format_table, percentile
from repro.sim.monitor import IntervalMonitor
from repro.sim.units import sec


def test_percentile_lower_interpolation_returns_sample():
    samples = [10, 20, 30, 40, 50]
    assert percentile(samples, 50) in samples
    assert percentile(samples, 0) == 10
    assert percentile(samples, 100) == 50


def test_percentile_empty_is_nan():
    assert percentile([], 99) != percentile([], 99)


def test_percentile_range_checked():
    with pytest.raises(ExperimentError):
        percentile([1], 101)


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=500))
@settings(max_examples=100, deadline=None)
def test_property_percentile_bounds(samples):
    p99 = percentile(samples, 99)
    assert min(samples) <= p99 <= max(samples)
    assert p99 in samples


def test_recorder_windows_latency_by_send_time():
    recorder = LatencyRecorder(warmup_ns=100, end_ns=200)
    recorder.record(send_time_ns=50, done_time_ns=120)  # sent in warmup
    recorder.record(send_time_ns=150, done_time_ns=180)  # in window
    recorder.record(send_time_ns=250, done_time_ns=260)  # after end
    assert len(recorder) == 1
    assert recorder.latencies_ns[0] == 30


def test_recorder_throughput_counts_completions_in_window():
    recorder = LatencyRecorder(warmup_ns=0, end_ns=sec(1))
    recorder.note_sent(10)
    recorder.note_sent(20)
    recorder.record(send_time_ns=10, done_time_ns=100)
    recorder.record(send_time_ns=20, done_time_ns=sec(2))  # completes late
    assert recorder.completed_in_window == 1
    assert recorder.sent_in_window == 2
    assert recorder.throughput_rps() == pytest.approx(1.0)
    assert recorder.offered_rps() == pytest.approx(2.0)


def test_recorder_rejects_time_travel():
    recorder = LatencyRecorder()
    with pytest.raises(ExperimentError):
        recorder.record(send_time_ns=100, done_time_ns=50)


def test_recorder_percentile_helpers():
    recorder = LatencyRecorder(warmup_ns=0, end_ns=1000)
    for latency in (1_000, 2_000, 3_000, 100_000):
        recorder.record(send_time_ns=1, done_time_ns=1 + latency)
    assert recorder.p50_us() == pytest.approx(2.0)
    # 'lower' interpolation on 4 samples: index floor(0.99 * 3) = 2.
    assert recorder.p99_us() == pytest.approx(3.0)
    assert recorder.mean_us() == pytest.approx(26.5)


def test_recorder_merge():
    a = LatencyRecorder(warmup_ns=0, end_ns=100)
    b = LatencyRecorder(warmup_ns=0, end_ns=100)
    a.record(1, 11)
    b.record(2, 22)
    b.note_sent(2)
    a.merge(b)
    assert len(a) == 2
    assert a.sent_in_window == 1


def test_recorder_completion_monitor_feed():
    recorder = LatencyRecorder(warmup_ns=0, end_ns=sec(10))
    monitor = IntervalMonitor(window_ns=sec(1), horizon_ns=sec(10))
    recorder.completion_monitor = monitor
    recorder.record(send_time_ns=0, done_time_ns=sec(3) + 5)
    assert monitor.counts()[3] == 1


def test_recorder_validation():
    with pytest.raises(ExperimentError):
        LatencyRecorder(warmup_ns=-1)
    with pytest.raises(ExperimentError):
        LatencyRecorder(warmup_ns=100, end_ns=100)


def make_point(offered, tput, p99):
    return LoadPoint(
        offered_rps=offered,
        throughput_rps=tput,
        p50_us=10.0,
        p99_us=p99,
        p999_us=2 * p99,
        mean_us=12.0,
        samples=1000,
    )


def test_sweep_result_max_and_lookup():
    sweep = SweepResult(scheme="netclone", workload="Exp(25)")
    sweep.add(make_point(1e6, 0.99e6, 100.0))
    sweep.add(make_point(2e6, 1.8e6, 300.0))
    assert sweep.max_throughput_mrps() == pytest.approx(1.8)
    assert sweep.p99_at_load(1.1e6) == 100.0
    assert sweep.p99_at_load(9e6) != sweep.p99_at_load(9e6)  # too far: NaN
    text = sweep.format()
    assert "netclone" in text and "Exp(25)" in text
    assert len(text.splitlines()) == 4


def test_sweep_empty_is_nan():
    sweep = SweepResult(scheme="x", workload="y")
    assert sweep.max_throughput_mrps() != sweep.max_throughput_mrps()
    assert sweep.p99_at_load(1.0) != sweep.p99_at_load(1.0)


def test_load_point_row_and_mrps():
    point = make_point(1e6, 0.5e6, 99.9)
    assert point.throughput_mrps == pytest.approx(0.5)
    assert "0.500" in point.row()


def test_format_table_aligns_columns():
    text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    with pytest.raises(ValueError):
        format_table(["a"], [["1", "2"]])
