"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event engine."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or with an invalid delay."""


class ProcessError(SimulationError):
    """A simulation process was used incorrectly (e.g. bad yield)."""


class NetworkError(ReproError):
    """Base class for errors raised by the network substrate."""


class AddressError(NetworkError):
    """An address was malformed or could not be resolved."""


class PortError(NetworkError):
    """A port number was out of range or already in use."""


class CodecError(NetworkError):
    """A packet or header failed to encode or decode."""


class SwitchError(ReproError):
    """Base class for errors raised by the programmable switch model."""


class PipelineConfigError(SwitchError):
    """The pipeline was configured inconsistently (stages, tables)."""


class StageAccessError(SwitchError):
    """A stateful object was accessed illegally for the PISA model.

    Raised when a register array is accessed twice within a single
    pipeline pass or from a stage other than the one it was allocated
    to.  These are exactly the hardware constraints that force the
    paper's shadow-table and recirculation designs.
    """


class TableError(SwitchError):
    """A match-action table was misused (bad key width, missing entry)."""


class ResourceBudgetError(SwitchError):
    """A switch program exceeded the modelled ASIC resource budget."""


class WorkloadError(ReproError):
    """A workload or distribution was configured with invalid values."""


class KVStoreError(ReproError):
    """A key-value store operation failed."""


class ExperimentError(ReproError):
    """An experiment harness was configured or invoked incorrectly."""
