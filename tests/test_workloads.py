"""Tests for distributions, jitter, Zipf and workload factories."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads import (
    BimodalDistribution,
    ExponentialDistribution,
    FixedDistribution,
    JitterModel,
    KvOp,
    KvWorkload,
    LognormalDistribution,
    RpcRequest,
    SyntheticWorkload,
    ZipfGenerator,
)


def rng():
    return random.Random(42)


# ----------------------------------------------------------------------
# Distributions
# ----------------------------------------------------------------------
def test_fixed_distribution_constant():
    dist = FixedDistribution(25.0)
    r = rng()
    assert {dist.sample(r) for _ in range(10)} == {25_000}
    assert dist.mean_ns == 25_000


def test_exponential_distribution_mean():
    dist = ExponentialDistribution(25.0)
    r = rng()
    samples = [dist.sample(r) for _ in range(20_000)]
    mean = sum(samples) / len(samples)
    assert mean == pytest.approx(25_000, rel=0.05)
    assert all(s >= 1 for s in samples)


def test_exponential_tail_heavier_than_mean():
    dist = ExponentialDistribution(25.0)
    r = rng()
    samples = sorted(dist.sample(r) for _ in range(20_000))
    p99 = samples[int(0.99 * len(samples))]
    # Exponential p99 = mean * ln(100) ~= 4.6x mean.
    assert p99 == pytest.approx(25_000 * 4.6, rel=0.15)


def test_bimodal_distribution_mean_and_modes():
    dist = BimodalDistribution(((0.9, 25.0), (0.1, 250.0)))
    assert dist.mean_ns == pytest.approx(0.9 * 25_000 + 0.1 * 250_000)
    r = rng()
    samples = [dist.sample(r) for _ in range(20_000)]
    mean = sum(samples) / len(samples)
    assert mean == pytest.approx(dist.mean_ns, rel=0.1)


def test_bimodal_weights_must_sum_to_one():
    with pytest.raises(WorkloadError):
        BimodalDistribution(((0.5, 25.0), (0.1, 250.0)))
    with pytest.raises(WorkloadError):
        BimodalDistribution(())
    with pytest.raises(WorkloadError):
        BimodalDistribution(((1.0, -5.0),))


def test_lognormal_distribution_mean():
    dist = LognormalDistribution(25.0, sigma=1.0)
    r = rng()
    samples = [dist.sample(r) for _ in range(50_000)]
    mean = sum(samples) / len(samples)
    assert mean == pytest.approx(25_000, rel=0.1)


def test_distribution_validation():
    with pytest.raises(WorkloadError):
        ExponentialDistribution(0)
    with pytest.raises(WorkloadError):
        FixedDistribution(-1)
    with pytest.raises(WorkloadError):
        LognormalDistribution(25.0, sigma=0)


# ----------------------------------------------------------------------
# Jitter
# ----------------------------------------------------------------------
def test_jitter_probability_zero_never_fires():
    jitter = JitterModel(0.0, 15.0)
    r = rng()
    assert all(jitter.apply(1000, r) == 1000 for _ in range(100))


def test_jitter_probability_one_always_fires():
    jitter = JitterModel(1.0, 15.0)
    r = rng()
    assert jitter.apply(1000, r) == 15_000


def test_jitter_rate_close_to_p():
    jitter = JitterModel(0.01, 15.0)
    r = rng()
    fired = sum(1 for _ in range(100_000) if jitter.apply(1000, r) > 1000)
    assert fired == pytest.approx(1000, rel=0.2)


def test_jitter_validation():
    with pytest.raises(WorkloadError):
        JitterModel(-0.1, 15.0)
    with pytest.raises(WorkloadError):
        JitterModel(0.01, 0.5)


@given(
    p=st.floats(min_value=0.0, max_value=1.0),
    factor=st.floats(min_value=1.0, max_value=100.0),
    base=st.integers(min_value=1, max_value=10**9),
)
@settings(max_examples=100, deadline=None)
def test_property_jitter_never_shortens(p, factor, base):
    jitter = JitterModel(p, factor)
    assert jitter.apply(base, random.Random(0)) >= base


# ----------------------------------------------------------------------
# Zipf
# ----------------------------------------------------------------------
def test_zipf_skews_toward_low_ranks():
    zipf = ZipfGenerator(1000, 0.99)
    r = rng()
    samples = [zipf.sample(r) for _ in range(20_000)]
    top_10 = sum(1 for s in samples if s < 10) / len(samples)
    assert top_10 > 0.3  # heavily skewed
    assert all(0 <= s < 1000 for s in samples)


def test_zipf_zero_skew_is_uniform():
    zipf = ZipfGenerator(100, 0.0)
    r = rng()
    samples = [zipf.sample(r) for _ in range(50_000)]
    top_10 = sum(1 for s in samples if s < 10) / len(samples)
    assert top_10 == pytest.approx(0.1, rel=0.15)


def test_zipf_popularity_sums_to_one():
    zipf = ZipfGenerator(50, 0.99)
    total = sum(zipf.popularity(k) for k in range(50))
    assert total == pytest.approx(1.0)
    assert zipf.popularity(0) > zipf.popularity(49)


def test_zipf_validation():
    with pytest.raises(WorkloadError):
        ZipfGenerator(0)
    with pytest.raises(WorkloadError):
        ZipfGenerator(10, -1)
    with pytest.raises(WorkloadError):
        ZipfGenerator(10).popularity(10)


# ----------------------------------------------------------------------
# Workload factories
# ----------------------------------------------------------------------
def test_synthetic_workload_draws_service_times():
    workload = SyntheticWorkload(ExponentialDistribution(25.0), rng())
    request = workload.make_request(client_id=1, client_seq=7)
    assert isinstance(request, RpcRequest)
    assert request.client_id == 1
    assert request.client_seq == 7
    assert request.service_ns >= 1
    assert not request.write
    assert workload.request_size(request) == 128
    assert workload.response_size(request) == 128


def test_kv_workload_deterministic_mix_paced_under_boundary():
    workload = KvWorkload(rng(), num_keys=1000, scan_fraction=0.01, scan_count=100)
    ops = [workload.make_request(0, i).op for i in range(1090)]
    # SCANs are paced with an ~8 % margin under the nominal fraction so
    # the realised share stays strictly below the p99 boundary.
    assert ops.count(KvOp.SCAN) == 10
    assert 0.008 < ops.count(KvOp.SCAN) / len(ops) < 0.01


def test_kv_workload_bernoulli_mix_approximate():
    workload = KvWorkload(
        rng(), num_keys=1000, scan_fraction=0.1, deterministic_mix=False
    )
    ops = [workload.make_request(0, i).op for i in range(5000)]
    assert ops.count(KvOp.SCAN) == pytest.approx(500, rel=0.25)


def test_kv_workload_sizes_and_validation():
    workload = KvWorkload(rng(), num_keys=100, scan_fraction=0.1, scan_count=100)
    requests = [workload.make_request(0, i) for i in range(100)]
    scan = next(r for r in requests if r.op is KvOp.SCAN)
    get = next(r for r in requests if r.op is KvOp.GET)
    assert workload.response_size(scan) > workload.response_size(get)
    with pytest.raises(WorkloadError):
        KvWorkload(rng(), scan_fraction=1.5)
    with pytest.raises(WorkloadError):
        KvWorkload(rng(), scan_count=0)


def test_kv_workload_name_reflects_mix():
    workload = KvWorkload(rng(), num_keys=10, scan_fraction=0.1)
    assert "90" in workload.name and "10" in workload.name
